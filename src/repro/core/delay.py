"""Processing-delay prediction (paper Section 7 / future work item 4).

"The processing delay of colocated games can be predicted in a similar way
using our methodology."  This module does so: the same contention features
that drive the RM (target sensitivity curves + Eq. 5 aggregate co-runner
intensity) regress the *delay inflation ratio* — colocated processing delay
over solo processing delay — and the predicted ratio is mapped back to
milliseconds through the game's solo delay at its resolution.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.features import rm_feature_vector
from repro.core.training import ColocationSpec, SampleSet
from repro.games.catalog import GameCatalog
from repro.hardware.server import DEFAULT_SERVER, ServerSpec
from repro.ml.base import BaseEstimator, check_array
from repro.ml.gbdt import GradientBoostingRegressor
from repro.ml.preprocessing import StandardScaler
from repro.simulator.encoder import EncoderModel, processing_delays
from repro.simulator.measurement import MeasurementConfig, run_colocation

if TYPE_CHECKING:
    from repro.profiling.database import ProfileDatabase

__all__ = [
    "MeasuredDelays",
    "measure_delay_colocations",
    "solo_delay_ms",
    "build_delay_dataset",
    "GAugurDelayRegressor",
]


@dataclass(frozen=True)
class MeasuredDelays:
    """A colocation with the processing delay measured for each game."""

    spec: ColocationSpec
    delays_ms: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.delays_ms) != self.spec.size:
            raise ValueError("delay readings must align with colocation entries")


def solo_delay_ms(
    db: "ProfileDatabase",
    name: str,
    resolution,
    encoder: EncoderModel | None = None,
) -> float:
    """Solo processing delay from profiled quantities only.

    Solo frame time comes from the profile's Eq. 2 law; solo encode time
    from the encoder model (deployers know their encoder's cost curve).
    """
    encoder = encoder if encoder is not None else EncoderModel()
    frame_ms = 1000.0 / db.get(name).solo_fps_at(resolution)
    return frame_ms + encoder.solo_encode_time_ms(resolution)


def measure_delay_colocations(
    catalog: GameCatalog,
    colocations: Sequence[ColocationSpec],
    *,
    server: ServerSpec = DEFAULT_SERVER,
    config: MeasurementConfig | None = None,
    encoder: EncoderModel | None = None,
) -> list[MeasuredDelays]:
    """Run colocations and record per-game processing delays."""
    encoder = encoder if encoder is not None else EncoderModel()
    out = []
    for spec in colocations:
        result = run_colocation(spec.instances(catalog), server=server, config=config)
        delays = processing_delays(result, encoder)
        out.append(MeasuredDelays(spec=spec, delays_ms=tuple(delays[: spec.size])))
    return out


def build_delay_dataset(
    measured: Sequence[MeasuredDelays],
    db: "ProfileDatabase",
    *,
    encoder: EncoderModel | None = None,
) -> SampleSet:
    """Delay-model samples: RM features -> delay inflation ratio."""
    if not measured:
        raise ValueError("measured delay colocations must be non-empty")
    encoder = encoder if encoder is not None else EncoderModel()
    rows, y, cids, sizes, games = [], [], [], [], []
    for cid, m in enumerate(measured):
        if m.spec.size < 2:
            continue
        profiles = [db.get(name) for name, _ in m.spec.entries]
        intensities = [
            profiles[i].intensity_at(res).values
            for i, (_, res) in enumerate(m.spec.entries)
        ]
        for i, (name, resolution) in enumerate(m.spec.entries):
            co = [intensities[j] for j in range(m.spec.size) if j != i]
            rows.append(rm_feature_vector(profiles[i].sensitivity_vector(), co))
            solo = solo_delay_ms(db, name, resolution, encoder)
            y.append(m.delays_ms[i] / solo)
            cids.append(cid)
            sizes.append(m.spec.size)
            games.append(name)
    return SampleSet(
        X=np.vstack(rows),
        y=np.asarray(y, dtype=float),
        colocation_ids=np.asarray(cids, dtype=int),
        sizes=np.asarray(sizes, dtype=int),
        games=games,
    )


class GAugurDelayRegressor:
    """Delay model: colocation features -> processing-delay inflation."""

    def __init__(
        self,
        estimator: BaseEstimator | None = None,
        encoder: EncoderModel | None = None,
    ):
        self.estimator = (
            estimator
            if estimator is not None
            else GradientBoostingRegressor(
                n_estimators=300, learning_rate=0.06, max_depth=4
            )
        )
        self.encoder = encoder if encoder is not None else EncoderModel()
        self._scaler = StandardScaler()

    def fit(self, samples: SampleSet) -> "GAugurDelayRegressor":
        """Train on samples from :func:`build_delay_dataset`.

        The model regresses ``log(ratio)``: delay inflation is
        multiplicative and heavy-tailed (ratio ~ 1/degradation), so the log
        target keeps extreme colocations from dominating the squared loss.
        """
        if np.any(samples.y <= 0):
            raise ValueError("delay inflation ratios must be positive")
        X = self._scaler.fit_transform(samples.X)
        self.estimator.fit(X, np.log(samples.y))
        self.n_features_ = samples.X.shape[1]
        return self

    def predict_from_features(self, X) -> np.ndarray:
        """Predict delay inflation ratios (clipped below at 0.5)."""
        if not hasattr(self, "n_features_"):
            raise RuntimeError("GAugurDelayRegressor is not fitted")
        X = check_array(X)
        log_pred = self.estimator.predict(self._scaler.transform(X))
        return np.clip(np.exp(log_pred), 0.5, None)

    def predict_delay_ms(
        self, db: "ProfileDatabase", spec: ColocationSpec
    ) -> np.ndarray:
        """Predicted processing delay (ms) per entry of a colocation."""
        profiles = [db.get(name) for name, _ in spec.entries]
        intensities = [
            profiles[i].intensity_at(res).values
            for i, (_, res) in enumerate(spec.entries)
        ]
        solos = np.array(
            [
                solo_delay_ms(db, name, res, self.encoder)
                for name, res in spec.entries
            ]
        )
        if spec.size < 2:
            return solos
        rows = []
        for i in range(spec.size):
            co = [intensities[j] for j in range(spec.size) if j != i]
            rows.append(rm_feature_vector(profiles[i].sensitivity_vector(), co))
        return self.predict_from_features(np.vstack(rows)) * solos
