"""Training-data collection (paper Section 3.5 and Section 4 setup).

The paper measures 700 real colocations (500 pairs, 100 triples, 100
quadruples) of randomly chosen games at randomly chosen resolutions; a
colocation of ``k`` games yields ``k`` samples per model — one per member
game, labelled with that game's measured QoS outcome (CM) or degradation
ratio (RM).  Train/test splits are made *by colocation*, never by sample,
so sibling samples of one measurement cannot leak across the split.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoid the core <-> profiling import cycle
    from repro.profiling.database import ProfileDatabase

import numpy as np

from repro.core.features import cm_feature_vector, rm_feature_vector
from repro.core.profiles import GameProfile
from repro.games.catalog import GameCatalog
from repro.games.resolution import PRESET_RESOLUTIONS, Resolution
from repro.hardware.server import DEFAULT_SERVER, ServerSpec
from repro.simulator.measurement import MeasurementConfig, run_colocation
from repro.simulator.workload import GameInstance
from repro.utils.rng import spawn_rng

__all__ = [
    "ColocationSpec",
    "MeasuredColocation",
    "SampleSet",
    "TrainingDataset",
    "generate_colocations",
    "measure_colocations",
    "build_dataset",
]


@dataclass(frozen=True)
class ColocationSpec:
    """(game name, resolution) entries to run on one server.

    Duplicate games are allowed — two players streaming the same title to
    one server is a normal cloud-gaming configuration (the measurement
    campaign of Section 4 happens not to sample such colocations, but the
    online schedulers of Section 5 may produce them).
    """

    entries: tuple[tuple[str, Resolution], ...]

    def __post_init__(self) -> None:
        if len(self.entries) < 1:
            raise ValueError("a colocation needs at least one game")

    @property
    def size(self) -> int:
        """Number of colocated games."""
        return len(self.entries)

    @property
    def names(self) -> tuple[str, ...]:
        """Game names in entry order."""
        return tuple(name for name, _ in self.entries)

    def instances(self, catalog: GameCatalog) -> list[GameInstance]:
        """Materialize simulator workloads."""
        return [
            GameInstance(catalog.get(name), resolution)
            for name, resolution in self.entries
        ]


@dataclass(frozen=True)
class MeasuredColocation:
    """A colocation together with the frame rates measured when running it."""

    spec: ColocationSpec
    fps: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.fps) != self.spec.size:
            raise ValueError("fps readings must align with colocation entries")


@dataclass
class SampleSet:
    """Feature matrix + labels + provenance for one model.

    ``colocation_ids`` tags each sample with the measurement it came from,
    enabling leakage-free splits; ``sizes`` records the colocation size for
    the paper's per-size error breakdowns.
    """

    X: np.ndarray
    y: np.ndarray
    colocation_ids: np.ndarray
    sizes: np.ndarray
    games: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        n = self.X.shape[0]
        if not (len(self.y) == len(self.colocation_ids) == len(self.sizes) == n):
            raise ValueError("SampleSet arrays must have equal lengths")

    def __len__(self) -> int:
        return self.X.shape[0]

    def select(self, mask: np.ndarray) -> "SampleSet":
        """Row-subset by boolean mask or index array."""
        idx = np.asarray(mask)
        if idx.dtype == bool:
            idx = np.where(idx)[0]
        return SampleSet(
            X=self.X[idx],
            y=self.y[idx],
            colocation_ids=self.colocation_ids[idx],
            sizes=self.sizes[idx],
            games=[self.games[i] for i in idx],
        )

    def split_by_colocation(
        self, train_ids: Sequence[int]
    ) -> tuple["SampleSet", "SampleSet"]:
        """(train, test) split keeping sibling samples together."""
        train_ids = set(int(i) for i in train_ids)
        mask = np.array([cid in train_ids for cid in self.colocation_ids])
        return self.select(mask), self.select(~mask)

    def subsample(self, n: int, rng: np.random.Generator) -> "SampleSet":
        """Random subset of ``n`` samples (without replacement)."""
        if n > len(self):
            raise ValueError(f"cannot draw {n} samples from {len(self)}")
        return self.select(rng.choice(len(self), size=n, replace=False))


@dataclass
class TrainingDataset:
    """Paired CM and RM sample sets built from the same measurements."""

    cm: SampleSet
    rm: SampleSet
    qos_values: tuple[float, ...]


def generate_colocations(
    names: Sequence[str],
    *,
    sizes: Mapping[int, int] | None = None,
    resolutions: Sequence[Resolution] = PRESET_RESOLUTIONS,
    seed: int = 0,
) -> list[ColocationSpec]:
    """Random colocations mirroring the paper's measurement campaign.

    ``sizes`` maps colocation size to count; the default is the paper's
    {2: 500, 3: 100, 4: 100}.  Games are drawn without replacement within a
    colocation; each runs at a uniformly chosen preset resolution.
    """
    sizes = dict(sizes) if sizes is not None else {2: 500, 3: 100, 4: 100}
    names = list(names)
    resolutions = list(resolutions)
    for size in sizes:
        if size < 1 or size > len(names):
            raise ValueError(f"colocation size {size} impossible with {len(names)} games")
    rng = spawn_rng(seed, "colocations")
    colocations: list[ColocationSpec] = []
    for size in sorted(sizes):
        for _ in range(sizes[size]):
            chosen = rng.choice(len(names), size=size, replace=False)
            entries = tuple(
                (names[int(i)], resolutions[int(rng.integers(len(resolutions)))])
                for i in chosen
            )
            colocations.append(ColocationSpec(entries))
    return colocations


def measure_colocations(
    catalog: GameCatalog,
    colocations: Sequence[ColocationSpec],
    *,
    server: ServerSpec = DEFAULT_SERVER,
    config: MeasurementConfig | None = None,
) -> list[MeasuredColocation]:
    """Run each colocation on the (simulated) testbed, recording frame rates."""
    measured = []
    for spec in colocations:
        result = run_colocation(spec.instances(catalog), server=server, config=config)
        measured.append(MeasuredColocation(spec=spec, fps=result.fps))
    return measured


def _profile_inputs(
    db: ProfileDatabase, spec: ColocationSpec
) -> tuple[list[GameProfile], list[np.ndarray], list[float]]:
    """Per-entry (profile, intensity-at-resolution, solo-fps-at-resolution)."""
    profiles = [db.get(name) for name, _ in spec.entries]
    intensities = [
        profiles[i].intensity_at(resolution).values
        for i, (_, resolution) in enumerate(spec.entries)
    ]
    solo = [
        profiles[i].solo_fps_at(resolution)
        for i, (_, resolution) in enumerate(spec.entries)
    ]
    return profiles, intensities, solo


def build_dataset(
    measured: Sequence[MeasuredColocation],
    db: ProfileDatabase,
    *,
    qos_values: Sequence[float] = (60.0,),
) -> TrainingDataset:
    """Turn measured colocations into CM and RM sample sets (Section 3.5).

    Per colocation of ``k`` games, emits ``k`` RM samples (degradation =
    measured FPS / solo FPS at the game's resolution) and ``k * len(qos_values)``
    CM samples (does measured FPS meet the floor?).
    """
    if not measured:
        raise ValueError("measured colocations must be non-empty")
    cm_rows, cm_y, cm_cid, cm_sizes, cm_games = [], [], [], [], []
    rm_rows, rm_y, rm_cid, rm_sizes, rm_games = [], [], [], [], []

    for cid, m in enumerate(measured):
        profiles, intensities, solo = _profile_inputs(db, m.spec)
        k = m.spec.size
        for i in range(k):
            co = [intensities[j] for j in range(k) if j != i]
            if not co:
                continue  # solo "colocations" carry no interference signal
            sens = profiles[i].sensitivity_vector()
            degradation = m.fps[i] / solo[i]
            rm_rows.append(rm_feature_vector(sens, co))
            rm_y.append(degradation)
            rm_cid.append(cid)
            rm_sizes.append(k)
            rm_games.append(m.spec.entries[i][0])
            for qos in qos_values:
                cm_rows.append(cm_feature_vector(qos, solo[i], sens, co))
                cm_y.append(1 if m.fps[i] >= qos else 0)
                cm_cid.append(cid)
                cm_sizes.append(k)
                cm_games.append(m.spec.entries[i][0])

    return TrainingDataset(
        cm=SampleSet(
            X=np.vstack(cm_rows),
            y=np.asarray(cm_y, dtype=int),
            colocation_ids=np.asarray(cm_cid, dtype=int),
            sizes=np.asarray(cm_sizes, dtype=int),
            games=cm_games,
        ),
        rm=SampleSet(
            X=np.vstack(rm_rows),
            y=np.asarray(rm_y, dtype=float),
            colocation_ids=np.asarray(rm_cid, dtype=int),
            sizes=np.asarray(rm_sizes, dtype=int),
            games=rm_games,
        ),
        qos_values=tuple(float(q) for q in qos_values),
    )
