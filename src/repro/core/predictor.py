"""Online prediction facade (paper Section 3.5, "online prediction").

Bundles the profile database with trained CM/RM models behind a
colocation-level API: given any :class:`ColocationSpec`, returns per-game
QoS verdicts, degradation ratios or frame rates instantaneously — the
operation a cloud-gaming request dispatcher performs at every arrival.

Beyond the single-colocation calls, the ``*_batch`` methods evaluate many
candidate colocations in one model invocation: feature rows for every
entry of every candidate are assembled into one matrix and pushed through
the CM/RM exactly once, which is what makes scanning a whole server pool
per request-arrival cheap (the serving hot path of
:mod:`repro.serving`).
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.core.classification import GAugurClassifier
from repro.core.features import cm_feature_matrix, rm_feature_matrix
from repro.core.regression import GAugurRegressor
from repro.core.training import ColocationSpec
from repro.obs.tracing import NOOP_TRACER

if TYPE_CHECKING:  # avoid the core <-> profiling import cycle
    from repro.profiling.database import ProfileDatabase

__all__ = ["InterferencePredictor", "MissingProfileError"]


class MissingProfileError(KeyError):
    """A colocation references game(s) absent from the profile database.

    Raised up front, before any feature assembly, so callers (and the
    serving layer's fallback path) see one clear error naming every
    missing game instead of a bare ``KeyError`` from deep inside
    :meth:`repro.profiling.database.ProfileDatabase.get`.
    """

    def __init__(self, missing: Sequence[str]):
        self.missing = tuple(missing)
        super().__init__(self.missing)

    def __str__(self) -> str:
        names = ", ".join(repr(n) for n in self.missing)
        return f"no profile for game(s) {names}"


class InterferencePredictor:
    """Real-time interference predictor over a profiled game population."""

    def __init__(
        self,
        db: ProfileDatabase,
        classifier: GAugurClassifier | None = None,
        regressor: GAugurRegressor | None = None,
    ):
        if classifier is None and regressor is None:
            raise ValueError("provide at least one of classifier / regressor")
        self.db = db
        self.classifier = classifier
        self.regressor = regressor
        self.telemetry = None
        self.tracer = NOOP_TRACER
        # (game, width, height) -> (profile, intensity values, solo FPS,
        # sensitivity vector).  Profiles are immutable once loaded and
        # these derivations are pure, so the memo never invalidates; it
        # is bounded by games x preset resolutions.  Caching them turns
        # the cold-decision feature assembly from per-candidate
        # interpolation work into list indexing.
        self._feature_cache: dict[tuple, tuple] = {}
        # spec.entries -> (profiles, intensity matrix (n, 7), solo FPS
        # vector (n,), sensitivity matrix (n, d)).  The pre-stacked form
        # of the blocks above, so batched featurization is pure array
        # indexing per spec.  Derivations are pure but the key space is
        # the colocation multiset space, so the memo is cleared (cheaply,
        # rarely) rather than allowed to grow without bound.
        self._spec_cache: dict[tuple, tuple] = {}

    def instrument(self, telemetry=None, tracer=None) -> "InterferencePredictor":
        """Attach observability sinks (both optional, chainable).

        ``telemetry`` (a :class:`repro.serving.Telemetry`) receives the
        per-stage profiling histograms — feature assembly vs. model
        evaluation — that the batch prediction paths record; ``tracer``
        (a :class:`repro.obs.Tracer`) receives matching nested spans.
        Un-instrumented predictors skip both with near-zero overhead.
        """
        if telemetry is not None:
            self.telemetry = telemetry
        if tracer is not None:
            self.tracer = tracer
        return self

    def _observe_stage(self, stage: str, model: str, seconds: float) -> None:
        """Record one profiling stage into the attached telemetry."""
        if self.telemetry is not None:
            self.telemetry.histogram(f"predict_{stage}_s").observe(seconds)
            self.telemetry.counter("predict_stage_calls", stage=stage, model=model).inc()

    # ------------------------------------------------------------------

    def validate_spec(self, spec: ColocationSpec) -> None:
        """Raise :class:`MissingProfileError` if any game lacks a profile."""
        missing = tuple(
            dict.fromkeys(name for name, _ in spec.entries if name not in self.db)
        )
        if missing:
            raise MissingProfileError(missing)

    def _entry_block(self, name: str, res) -> tuple:
        """Memoized (profile, intensity, solo FPS, sensitivity) for one entry."""
        key = (name, res.width, res.height)
        block = self._feature_cache.get(key)
        if block is None:
            profile = self.db.get(name)
            block = (
                profile,
                profile.intensity_at(res).values,
                profile.solo_fps_at(res),
                profile.sensitivity_vector(),
            )
            self._feature_cache[key] = block
        return block

    def _spec_arrays(self, spec: ColocationSpec) -> tuple:
        """Pre-stacked per-spec arrays: (profiles, intensity matrix ``(n, 7)``,
        solo FPS vector ``(n,)``, sensitivity matrix ``(n, d)``), memoized
        per entries tuple so repeat evaluations are one dict lookup.
        """
        cached = self._spec_cache.get(spec.entries)
        if cached is None:
            self.validate_spec(spec)
            blocks = [self._entry_block(name, res) for name, res in spec.entries]
            if len(self._spec_cache) >= 65536:
                self._spec_cache.clear()
            cached = self._spec_cache[spec.entries] = (
                tuple(b[0] for b in blocks),
                np.vstack([b[1] for b in blocks]),
                np.asarray([b[2] for b in blocks], dtype=float),
                np.vstack([b[3] for b in blocks]),
            )
        return cached

    def _inputs(self, spec: ColocationSpec):
        """Parallel per-entry lists: profiles, intensities, solo FPS,
        sensitivity vectors (the legacy list view of :meth:`_spec_arrays`).
        """
        profiles, stack, solo, sensitivities = self._spec_arrays(spec)
        return list(profiles), list(stack), [float(s) for s in solo], list(sensitivities)

    def _grouped_matrix(self, specs: Sequence[ColocationSpec], qos: float | None):
        """Feature rows for every entry of every size->=2 spec, grouped by size.

        Returns ``(X, slots)`` where ``X`` stacks one feature row per
        entry (CM rows when ``qos`` is given, RM rows otherwise) and
        ``slots`` lists ``(spec_index, row_start, size)`` blocks mapping
        contiguous row ranges of ``X`` back to their spec.  Grouping
        specs by size keeps the construction free of per-row Python:
        each distinct colocation size costs one set of numpy ops.
        """
        groups: dict[int, list[int]] = {}
        for si, spec in enumerate(specs):
            if spec.size >= 2:
                groups.setdefault(spec.size, []).append(si)
        if not groups:
            return None, []
        blocks, slots, row = [], [], 0
        for size, members in groups.items():
            arrays = [self._spec_arrays(specs[si]) for si in members]
            stacks = np.stack([a[1] for a in arrays])
            sens = np.stack([a[3] for a in arrays])
            if qos is None:
                block = rm_feature_matrix(sens, stacks)
            else:
                solo = np.stack([a[2] for a in arrays])
                block = cm_feature_matrix(qos, solo, sens, stacks)
            blocks.append(block)
            for si in members:
                slots.append((si, row, size))
                row += size
        X = blocks[0] if len(blocks) == 1 else np.vstack(blocks)
        return X, slots

    def predict_degradations(self, spec: ColocationSpec) -> np.ndarray:
        """RM degradation ratio per entry of the colocation."""
        return self.predict_degradations_batch([spec])[0]

    def predict_fps(self, spec: ColocationSpec) -> np.ndarray:
        """Predicted colocated FPS per entry (RM degradation x solo FPS)."""
        return self.predict_fps_batch([spec])[0]

    def predict_feasible(self, spec: ColocationSpec, qos: float) -> np.ndarray:
        """CM verdict per entry: does each game meet ``qos`` FPS?"""
        return self.predict_feasible_batch([spec], qos)[0]

    def colocation_feasible(self, spec: ColocationSpec, qos: float) -> bool:
        """True iff every game in the colocation is predicted to meet QoS."""
        return bool(np.all(self.predict_feasible(spec, qos)))

    # ------------------------------------------------------------------
    # Batched prediction: evaluate many candidate colocations with one
    # model invocation per attached model.  Outputs are bitwise identical
    # to the equivalent sequence of single-spec calls (standardization and
    # tree evaluation are row-independent, and the grouped matrix builders
    # of :mod:`repro.core.features` reproduce the per-row builders
    # bitwise); only the number of model invocations changes.

    def predict_degradations_batch(
        self, specs: Sequence[ColocationSpec]
    ) -> list[np.ndarray]:
        """RM degradation ratios for each spec, one model invocation total."""
        if self.regressor is None:
            raise RuntimeError("no regression model attached")
        out: list[np.ndarray] = [np.ones(spec.size, dtype=float) for spec in specs]
        start = time.perf_counter()
        with self.tracer.span("featurize", model="rm", specs=len(specs)):
            X, slots = self._grouped_matrix(specs, None)
        self._observe_stage("featurize", "rm", time.perf_counter() - start)
        if X is not None:
            start = time.perf_counter()
            with self.tracer.span("model_eval", model="rm", rows=X.shape[0]):
                predictions = self.regressor.predict_from_features(X)
            self._observe_stage("model_eval", "rm", time.perf_counter() - start)
            for si, row, size in slots:
                out[si] = predictions[row : row + size]
        return out

    def predict_fps_batch(self, specs: Sequence[ColocationSpec]) -> list[np.ndarray]:
        """Predicted colocated FPS per entry for each spec (batched RM)."""
        degradations = self.predict_degradations_batch(specs)
        return [
            deg * self._spec_arrays(spec)[2]
            for spec, deg in zip(specs, degradations)
        ]

    def predict_feasible_batch(
        self, specs: Sequence[ColocationSpec], qos: float
    ) -> list[np.ndarray]:
        """CM verdict per entry for each spec, one model invocation total."""
        if self.classifier is None:
            raise RuntimeError("no classification model attached")
        out: list[np.ndarray] = []
        start = time.perf_counter()
        with self.tracer.span("featurize", model="cm", specs=len(specs)):
            for spec in specs:
                if spec.size < 2:
                    # A game running alone is feasible iff its solo FPS
                    # meets QoS.
                    out.append(self._spec_arrays(spec)[2] >= qos)
                else:
                    out.append(np.zeros(spec.size, dtype=bool))
            X, slots = self._grouped_matrix(specs, qos)
        self._observe_stage("featurize", "cm", time.perf_counter() - start)
        if X is not None:
            start = time.perf_counter()
            with self.tracer.span("model_eval", model="cm", rows=X.shape[0]):
                verdicts = self.classifier.predict_from_features(X)
            self._observe_stage("model_eval", "cm", time.perf_counter() - start)
            for si, row, size in slots:
                out[si] = verdicts[row : row + size].astype(bool)
        return out

    def colocations_feasible(
        self, specs: Sequence[ColocationSpec], qos: float
    ) -> np.ndarray:
        """Whole-colocation CM verdict for each spec (batched)."""
        return np.asarray(
            [bool(np.all(v)) for v in self.predict_feasible_batch(specs, qos)],
            dtype=bool,
        )

    def predict_batch(
        self,
        specs: Sequence[ColocationSpec],
        qos: float | None = None,
        *,
        models: Sequence[str] | None = None,
    ) -> list[dict]:
        """Evaluate the attached models over ``specs`` in batched form.

        Returns one dict per spec with keys ``"fps"`` / ``"degradations"``
        (present when a regressor is attached) and ``"feasible"`` (present
        when a classifier is attached and ``qos`` is given).  Values equal
        the corresponding single-spec calls exactly, but the whole batch
        costs one model invocation per attached model.

        ``models`` restricts evaluation to a subset of ``("rm", "cm")``;
        the default runs every attached model.  Single-model callers (the
        CM admission policy scans a whole candidate pool per arrival)
        use it to skip work whose outputs they would discard.

        When instrumented (:meth:`instrument`), the whole call is timed
        into ``predict_batch_s`` and the featurize/model-eval stages into
        ``predict_featurize_s`` / ``predict_model_eval_s``, giving the
        per-decision latency attribution the serving layer reports.
        """
        start = time.perf_counter()
        run_rm = self.regressor is not None and (models is None or "rm" in models)
        run_cm = (
            self.classifier is not None
            and qos is not None
            and (models is None or "cm" in models)
        )
        with self.tracer.span("predict_batch", specs=len(specs)):
            results: list[dict] = [{} for _ in specs]
            if run_rm:
                degradations = self.predict_degradations_batch(specs)
                for spec, result, deg in zip(specs, results, degradations):
                    result["degradations"] = deg
                    result["fps"] = deg * self._spec_arrays(spec)[2]
            if run_cm:
                for result, verdicts in zip(
                    results, self.predict_feasible_batch(specs, qos)
                ):
                    result["feasible"] = verdicts
        if self.telemetry is not None:
            self.telemetry.histogram("predict_batch_s").observe(
                time.perf_counter() - start
            )
        return results

    # ------------------------------------------------------------------
    # RM-as-classifier (the paper's GAugur(RM) classification variant)

    def predict_feasible_rm(self, spec: ColocationSpec, qos: float) -> np.ndarray:
        """QoS verdict per entry by thresholding the RM's predicted FPS."""
        return self.predict_fps(spec) >= qos

    def colocation_feasible_rm(self, spec: ColocationSpec, qos: float) -> bool:
        """True iff the RM predicts every game's FPS meets ``qos``."""
        return bool(np.all(self.predict_feasible_rm(spec, qos)))

    # ------------------------------------------------------------------
    # Deployment bundle: profiles + trained models in one artifact.

    def save(self, path) -> None:
        """Write the predictor (profile DB + fitted models) as one JSON file."""
        from repro.utils.serialization import dump_json

        bundle = {
            "db": self.db.to_dict(),
            "classifier": self.classifier.to_dict() if self.classifier else None,
            "regressor": self.regressor.to_dict() if self.regressor else None,
        }
        dump_json(bundle, path)

    @classmethod
    def load(cls, path) -> "InterferencePredictor":
        """Load a predictor bundle written by :meth:`save`."""
        from repro.core.classification import GAugurClassifier
        from repro.core.regression import GAugurRegressor
        from repro.profiling.database import ProfileDatabase
        from repro.utils.serialization import load_json

        bundle = load_json(path)
        if not isinstance(bundle, dict) or "db" not in bundle:
            raise ValueError(
                f"{path}: not a predictor bundle (expected an object with a "
                "'db' key; was this written by InterferencePredictor.save?)"
            )
        return cls(
            ProfileDatabase.from_dict(bundle["db"]),
            classifier=(
                GAugurClassifier.from_dict(bundle["classifier"])
                if bundle.get("classifier")
                else None
            ),
            regressor=(
                GAugurRegressor.from_dict(bundle["regressor"])
                if bundle.get("regressor")
                else None
            ),
        )
