"""Online prediction facade (paper Section 3.5, "online prediction").

Bundles the profile database with trained CM/RM models behind a
colocation-level API: given any :class:`ColocationSpec`, returns per-game
QoS verdicts, degradation ratios or frame rates instantaneously — the
operation a cloud-gaming request dispatcher performs at every arrival.
"""

from __future__ import annotations

import numpy as np

from repro.core.classification import GAugurClassifier
from repro.core.features import cm_feature_vector, rm_feature_vector
from repro.core.regression import GAugurRegressor
from repro.core.training import ColocationSpec
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoid the core <-> profiling import cycle
    from repro.profiling.database import ProfileDatabase

__all__ = ["InterferencePredictor"]


class InterferencePredictor:
    """Real-time interference predictor over a profiled game population."""

    def __init__(
        self,
        db: ProfileDatabase,
        classifier: GAugurClassifier | None = None,
        regressor: GAugurRegressor | None = None,
    ):
        if classifier is None and regressor is None:
            raise ValueError("provide at least one of classifier / regressor")
        self.db = db
        self.classifier = classifier
        self.regressor = regressor

    # ------------------------------------------------------------------

    def _inputs(self, spec: ColocationSpec):
        profiles = [self.db.get(name) for name, _ in spec.entries]
        intensities = [
            profiles[i].intensity_at(res).values
            for i, (_, res) in enumerate(spec.entries)
        ]
        solo = [
            profiles[i].solo_fps_at(res) for i, (_, res) in enumerate(spec.entries)
        ]
        return profiles, intensities, solo

    def predict_degradations(self, spec: ColocationSpec) -> np.ndarray:
        """RM degradation ratio per entry of the colocation."""
        if self.regressor is None:
            raise RuntimeError("no regression model attached")
        if spec.size < 2:
            return np.ones(spec.size, dtype=float)
        profiles, intensities, _ = self._inputs(spec)
        rows = []
        for i in range(spec.size):
            co = [intensities[j] for j in range(spec.size) if j != i]
            rows.append(rm_feature_vector(profiles[i].sensitivity_vector(), co))
        return self.regressor.predict_from_features(np.vstack(rows))

    def predict_fps(self, spec: ColocationSpec) -> np.ndarray:
        """Predicted colocated FPS per entry (RM degradation x solo FPS)."""
        _, _, solo = self._inputs(spec)
        return self.predict_degradations(spec) * np.asarray(solo)

    def predict_feasible(self, spec: ColocationSpec, qos: float) -> np.ndarray:
        """CM verdict per entry: does each game meet ``qos`` FPS?"""
        if self.classifier is None:
            raise RuntimeError("no classification model attached")
        if spec.size < 2:
            # A game running alone is feasible iff its solo FPS meets QoS.
            _, _, solo = self._inputs(spec)
            return np.asarray([fps >= qos for fps in solo], dtype=bool)
        profiles, intensities, solo = self._inputs(spec)
        rows = []
        for i in range(spec.size):
            co = [intensities[j] for j in range(spec.size) if j != i]
            rows.append(
                cm_feature_vector(
                    qos, solo[i], profiles[i].sensitivity_vector(), co
                )
            )
        return self.classifier.predict_from_features(np.vstack(rows)).astype(bool)

    def colocation_feasible(self, spec: ColocationSpec, qos: float) -> bool:
        """True iff every game in the colocation is predicted to meet QoS."""
        return bool(np.all(self.predict_feasible(spec, qos)))

    # ------------------------------------------------------------------
    # RM-as-classifier (the paper's GAugur(RM) classification variant)

    def predict_feasible_rm(self, spec: ColocationSpec, qos: float) -> np.ndarray:
        """QoS verdict per entry by thresholding the RM's predicted FPS."""
        return self.predict_fps(spec) >= qos

    def colocation_feasible_rm(self, spec: ColocationSpec, qos: float) -> bool:
        """True iff the RM predicts every game's FPS meets ``qos``."""
        return bool(np.all(self.predict_feasible_rm(spec, qos)))

    # ------------------------------------------------------------------
    # Deployment bundle: profiles + trained models in one artifact.

    def save(self, path) -> None:
        """Write the predictor (profile DB + fitted models) as one JSON file."""
        from repro.utils.serialization import dump_json

        bundle = {
            "db": self.db.to_dict(),
            "classifier": self.classifier.to_dict() if self.classifier else None,
            "regressor": self.regressor.to_dict() if self.regressor else None,
        }
        dump_json(bundle, path)

    @classmethod
    def load(cls, path) -> "InterferencePredictor":
        """Load a predictor bundle written by :meth:`save`."""
        from repro.core.classification import GAugurClassifier
        from repro.core.regression import GAugurRegressor
        from repro.profiling.database import ProfileDatabase
        from repro.utils.serialization import load_json

        bundle = load_json(path)
        return cls(
            ProfileDatabase.from_dict(bundle["db"]),
            classifier=(
                GAugurClassifier.from_dict(bundle["classifier"])
                if bundle.get("classifier")
                else None
            ),
            regressor=(
                GAugurRegressor.from_dict(bundle["regressor"])
                if bundle.get("regressor")
                else None
            ),
        )
