"""GAugur's regression model (RM, Eq. 4).

Predicts the exact degradation ratio a game suffers under a colocation.
Wraps any regressor from :mod:`repro.ml` (GBRT by default — the paper's
most accurate choice) behind feature construction and standardization.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.features import rm_feature_vector
from repro.core.profiles import GameProfile
from repro.core.training import SampleSet
from repro.games.resolution import Resolution
from repro.ml.base import BaseEstimator, check_array
from repro.ml.gbdt import GradientBoostingRegressor
from repro.ml.preprocessing import StandardScaler

__all__ = ["GAugurRegressor"]


class GAugurRegressor:
    """The RM: colocation features -> degradation ratio.

    Parameters
    ----------
    estimator:
        Any fit/predict regressor; defaults to gradient-boosted trees with
        the paper's best-performing configuration.
    """

    def __init__(self, estimator: BaseEstimator | None = None):
        self.estimator = (
            estimator
            if estimator is not None
            else GradientBoostingRegressor(
                n_estimators=300, learning_rate=0.06, max_depth=4
            )
        )
        self._scaler = StandardScaler()

    def fit(self, samples: SampleSet) -> "GAugurRegressor":
        """Train on an RM sample set from :func:`repro.core.training.build_dataset`."""
        X = self._scaler.fit_transform(samples.X)
        self.estimator.fit(X, samples.y)
        self.n_features_ = samples.X.shape[1]
        return self

    def predict_from_features(self, X) -> np.ndarray:
        """Predict degradation ratios for raw RM feature rows."""
        if not hasattr(self, "n_features_"):
            raise RuntimeError("GAugurRegressor is not fitted")
        X = check_array(X)
        return np.clip(self.estimator.predict(self._scaler.transform(X)), 0.01, None)

    def predict(
        self,
        target: GameProfile,
        co_runners: Sequence[tuple[GameProfile, Resolution]],
    ) -> float:
        """Predicted degradation of ``target`` colocated with ``co_runners``.

        Each co-runner is (profile, resolution); intensities are resolved
        at the co-runner's resolution via the Observation 7/8 laws.
        """
        if not co_runners:
            raise ValueError("predict requires at least one co-runner")
        co = [p.intensity_at(res).values for p, res in co_runners]
        x = rm_feature_vector(target.sensitivity_vector(), co)
        return float(self.predict_from_features(x.reshape(1, -1))[0])

    def predict_fps(
        self,
        target: GameProfile,
        target_resolution: Resolution,
        co_runners: Sequence[tuple[GameProfile, Resolution]],
    ) -> float:
        """Predicted colocated FPS: degradation x solo FPS at the resolution."""
        degradation = self.predict(target, co_runners)
        return degradation * target.solo_fps_at(target_resolution)

    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Serialize the fitted model to plain types."""
        from repro.ml.serialization import estimator_to_dict

        if not hasattr(self, "n_features_"):
            raise RuntimeError("cannot serialize an unfitted GAugurRegressor")
        return {
            "estimator": estimator_to_dict(self.estimator),
            "scaler": estimator_to_dict(self._scaler),
            "n_features": self.n_features_,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GAugurRegressor":
        """Inverse of :meth:`to_dict`."""
        from repro.ml.serialization import estimator_from_dict

        model = cls(estimator=estimator_from_dict(data["estimator"]))
        model._scaler = estimator_from_dict(data["scaler"])
        model.n_features_ = int(data["n_features"])
        return model
