"""GAugur core: contention features, prediction models, online predictor.

Implements the paper's methodology (Section 3): profiled sensitivity curves
and intensities as features, the Eq. 5 aggregate-intensity transform that
fixes the input dimensionality for arbitrary colocation sizes, the
classification model (CM) for QoS feasibility, the regression model (RM)
for exact degradation, training-sample generation from measured
colocations, and a real-time online predictor facade.
"""

from repro.core.classification import GAugurClassifier
from repro.core.delay import (
    GAugurDelayRegressor,
    build_delay_dataset,
    measure_delay_colocations,
    solo_delay_ms,
)
from repro.core.features import (
    aggregate_intensity,
    cm_feature_names,
    cm_feature_vector,
    rm_feature_names,
    rm_feature_vector,
)
from repro.core.predictor import InterferencePredictor, MissingProfileError
from repro.core.profiles import GameProfile, SensitivityCurve
from repro.core.regression import GAugurRegressor
from repro.core.training import (
    ColocationSpec,
    MeasuredColocation,
    TrainingDataset,
    build_dataset,
    generate_colocations,
    measure_colocations,
)

__all__ = [
    "SensitivityCurve",
    "GameProfile",
    "aggregate_intensity",
    "cm_feature_vector",
    "rm_feature_vector",
    "cm_feature_names",
    "rm_feature_names",
    "GAugurClassifier",
    "GAugurRegressor",
    "GAugurDelayRegressor",
    "build_delay_dataset",
    "measure_delay_colocations",
    "solo_delay_ms",
    "InterferencePredictor",
    "MissingProfileError",
    "ColocationSpec",
    "MeasuredColocation",
    "TrainingDataset",
    "generate_colocations",
    "measure_colocations",
    "build_dataset",
]
