"""GAugur's classification model (CM, Eq. 3).

Predicts whether a game meets the QoS frame-rate floor under a colocation.
The paper keeps the CM alongside the RM because direct classification beats
thresholding regression output (Section 3.4); GBDT is the default learner.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.features import cm_feature_vector
from repro.core.profiles import GameProfile
from repro.core.training import SampleSet
from repro.games.resolution import Resolution
from repro.ml.base import BaseEstimator, check_array
from repro.ml.gbdt import GradientBoostingClassifier
from repro.ml.preprocessing import StandardScaler

__all__ = ["GAugurClassifier"]


class GAugurClassifier:
    """The CM: colocation features + QoS floor -> feasible / infeasible.

    Parameters
    ----------
    estimator:
        Any fit/predict classifier; defaults to gradient-boosted trees with
        Newton leaf updates (the paper's GBDT, its best performer).
    """

    def __init__(self, estimator: BaseEstimator | None = None):
        self.estimator = (
            estimator
            if estimator is not None
            else GradientBoostingClassifier(n_estimators=300, learning_rate=0.06)
        )
        self._scaler = StandardScaler()

    def fit(self, samples: SampleSet) -> "GAugurClassifier":
        """Train on a CM sample set from :func:`repro.core.training.build_dataset`."""
        if set(np.unique(samples.y)) - {0, 1}:
            raise ValueError("CM labels must be binary 0/1")
        X = self._scaler.fit_transform(samples.X)
        self.estimator.fit(X, samples.y)
        self.n_features_ = samples.X.shape[1]
        return self

    def predict_from_features(self, X) -> np.ndarray:
        """Predict 0/1 QoS outcomes for raw CM feature rows."""
        if not hasattr(self, "n_features_"):
            raise RuntimeError("GAugurClassifier is not fitted")
        X = check_array(X)
        return np.asarray(self.estimator.predict(self._scaler.transform(X)), dtype=int)

    def predict(
        self,
        target: GameProfile,
        target_resolution: Resolution,
        co_runners: Sequence[tuple[GameProfile, Resolution]],
        qos: float,
    ) -> bool:
        """Does ``target`` meet ``qos`` FPS when colocated with ``co_runners``?"""
        if not co_runners:
            raise ValueError("predict requires at least one co-runner")
        co = [p.intensity_at(res).values for p, res in co_runners]
        x = cm_feature_vector(
            qos,
            target.solo_fps_at(target_resolution),
            target.sensitivity_vector(),
            co,
        )
        return bool(self.predict_from_features(x.reshape(1, -1))[0])

    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Serialize the fitted model to plain types."""
        from repro.ml.serialization import estimator_to_dict

        if not hasattr(self, "n_features_"):
            raise RuntimeError("cannot serialize an unfitted GAugurClassifier")
        return {
            "estimator": estimator_to_dict(self.estimator),
            "scaler": estimator_to_dict(self._scaler),
            "n_features": self.n_features_,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GAugurClassifier":
        """Inverse of :meth:`to_dict`."""
        from repro.ml.serialization import estimator_from_dict

        model = cls(estimator=estimator_from_dict(data["estimator"]))
        model._scaler = estimator_from_dict(data["scaler"])
        model.n_features_ = int(data["n_features"])
        return model
