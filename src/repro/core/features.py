"""Model input construction (paper Section 3.4).

The CM and RM take a target game's sensitivity curves plus the intensities
of its co-runners.  Because the number of co-runners varies, the paper
folds their intensities into a fixed-size block (Eq. 5):

``I_G = [|G|, (mean_1, var_1), ..., (mean_R, var_R)]``

where ``mean_r`` / ``var_r`` aggregate the co-runners' per-resource
intensities.  Note the paper's ``var`` is a scaled root-sum-of-squares,
``(1/|G|) * sqrt(sum (I - mean)^2)`` — we implement that formula verbatim.
Observation 5 forbids the naive alternative of summing intensities.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.hardware.resources import NUM_RESOURCES, Resource

__all__ = [
    "aggregate_intensity",
    "rm_feature_vector",
    "cm_feature_vector",
    "aggregate_intensity_matrix",
    "rm_feature_matrix",
    "cm_feature_matrix",
    "rm_feature_names",
    "cm_feature_names",
    "AGGREGATE_DIM",
]

#: Dimension of the Eq. 5 aggregate block: |G| plus (mean, var) per resource.
AGGREGATE_DIM = 1 + 2 * NUM_RESOURCES


def aggregate_intensity(intensities: Sequence[np.ndarray]) -> np.ndarray:
    """Eq. 5 transform of co-runner intensity vectors.

    Parameters
    ----------
    intensities:
        One ``(7,)`` intensity vector per co-located game (>= 1).

    Returns
    -------
    ``(15,)`` vector ``[|G|, mean_1, var_1, ..., mean_7, var_7]``.
    """
    if len(intensities) == 0:
        raise ValueError("aggregate_intensity requires at least one co-runner")
    stack = np.vstack([np.asarray(v, dtype=float).reshape(-1) for v in intensities])
    if stack.shape[1] != NUM_RESOURCES:
        raise ValueError(
            f"intensity vectors must have {NUM_RESOURCES} entries, "
            f"got {stack.shape[1]}"
        )
    size = stack.shape[0]
    mean = stack.mean(axis=0)
    # The paper's variance term: (1/|G|) * sqrt(sum (I - mean)^2).
    var = np.sqrt(np.sum((stack - mean) ** 2, axis=0)) / size
    out = np.empty(AGGREGATE_DIM, dtype=float)
    out[0] = float(size)
    out[1::2] = mean
    out[2::2] = var
    return out


def rm_feature_vector(
    sensitivity: np.ndarray, co_intensities: Sequence[np.ndarray]
) -> np.ndarray:
    """RM input (Eq. 4): target sensitivity curves + aggregate intensity."""
    sensitivity = np.asarray(sensitivity, dtype=float).reshape(-1)
    return np.concatenate([sensitivity, aggregate_intensity(co_intensities)])


def cm_feature_vector(
    qos: float,
    solo_fps: float,
    sensitivity: np.ndarray,
    co_intensities: Sequence[np.ndarray],
) -> np.ndarray:
    """CM input (Eq. 3): QoS floor, solo FPS, sensitivity, aggregate intensity.

    The required degradation ratio ``qos / solo_fps`` is added as a derived
    third feature: the QoS question is exactly "is the degradation ratio
    above this threshold?", and giving tree learners the ratio directly
    (rather than asking them to approximate a division with axis-aligned
    splits) measurably improves CM accuracy.  It is a pure function of the
    two Eq. 3 inputs, so the model contract is unchanged.
    """
    sensitivity = np.asarray(sensitivity, dtype=float).reshape(-1)
    if solo_fps <= 0:
        raise ValueError(f"solo_fps must be positive, got {solo_fps}")
    required_ratio = float(qos) / float(solo_fps)
    return np.concatenate(
        [
            [float(qos), float(solo_fps), required_ratio],
            sensitivity,
            aggregate_intensity(co_intensities),
        ]
    )


# ----------------------------------------------------------------------
# Batched construction: whole-colocation feature matrices in a handful of
# numpy ops.  Each builder takes every same-size colocation of a batch at
# once — ``stacks[g, i]`` is the intensity vector of member ``i`` of
# colocation ``g`` — and produces one feature row per member, in
# colocation-major, member order.  Outputs are bitwise identical to the
# per-row builders above: the leave-one-out co-runner subsets are gathered
# explicitly (rather than derived via the ``(S - I_i)/(n-1)``
# sum-minus-self identity, whose different floating-point summation order
# would drift in the last ulp) so every reduction runs over the same
# values in the same order as the scalar path, just batched along
# leading axes.


def _loo_indices(n: int) -> np.ndarray:
    """``(n, n-1)`` co-runner index matrix: row ``i`` lists ``j != i`` ascending."""
    base = np.arange(n - 1)
    return base[None, :] + (base[None, :] >= np.arange(n)[:, None])


def aggregate_intensity_matrix(stacks: np.ndarray) -> np.ndarray:
    """Eq. 5 leave-one-out aggregates for every member of every colocation.

    Parameters
    ----------
    stacks:
        ``(g, n, 7)`` intensity matrices of ``g`` colocations, all of the
        same size ``n >= 2``.

    Returns
    -------
    ``(g, n, 15)`` array whose ``[g, i]`` block equals
    ``aggregate_intensity`` of member ``i``'s co-runners (every member of
    colocation ``g`` except ``i``), bitwise.
    """
    stacks = np.asarray(stacks, dtype=float)
    if stacks.ndim != 3:
        raise ValueError(f"stacks must be (g, n, {NUM_RESOURCES}), got {stacks.shape}")
    g, n, width = stacks.shape
    if width != NUM_RESOURCES:
        raise ValueError(
            f"intensity vectors must have {NUM_RESOURCES} entries, got {width}"
        )
    if n < 2:
        raise ValueError("leave-one-out aggregation needs colocations of >= 2 games")
    co = stacks[:, _loo_indices(n), :]  # (g, n, n-1, 7)
    mean = co.mean(axis=2)
    var = np.sqrt(np.sum((co - mean[:, :, None, :]) ** 2, axis=2)) / (n - 1)
    out = np.empty((g, n, AGGREGATE_DIM), dtype=float)
    out[..., 0] = float(n - 1)
    out[..., 1::2] = mean
    out[..., 2::2] = var
    return out


def rm_feature_matrix(
    sensitivities: np.ndarray, stacks: np.ndarray
) -> np.ndarray:
    """Batched :func:`rm_feature_vector`: one row per colocation member.

    ``sensitivities`` is ``(g, n, d)`` (member sensitivity vectors) and
    ``stacks`` is ``(g, n, 7)`` (member intensities) for ``g``
    same-size colocations; returns ``(g * n, d + 15)`` rows in
    colocation-major, member order, each bitwise equal to the scalar
    builder applied to that member.
    """
    sensitivities = np.asarray(sensitivities, dtype=float)
    agg = aggregate_intensity_matrix(stacks)
    g, n, d = sensitivities.shape
    return np.concatenate([sensitivities, agg], axis=2).reshape(g * n, d + AGGREGATE_DIM)


def cm_feature_matrix(
    qos: float,
    solo_fps: np.ndarray,
    sensitivities: np.ndarray,
    stacks: np.ndarray,
) -> np.ndarray:
    """Batched :func:`cm_feature_vector`: one row per colocation member.

    ``solo_fps`` is ``(g, n)`` (member solo frame rates, all positive);
    the other arguments and the row order match
    :func:`rm_feature_matrix`.
    """
    solo_fps = np.asarray(solo_fps, dtype=float)
    if np.any(solo_fps <= 0):
        bad = float(solo_fps[solo_fps <= 0].flat[0])
        raise ValueError(f"solo_fps must be positive, got {bad}")
    sensitivities = np.asarray(sensitivities, dtype=float)
    agg = aggregate_intensity_matrix(stacks)
    g, n, d = sensitivities.shape
    head = np.empty((g, n, 3), dtype=float)
    head[..., 0] = float(qos)
    head[..., 1] = solo_fps
    head[..., 2] = float(qos) / solo_fps
    return np.concatenate([head, sensitivities, agg], axis=2).reshape(
        g * n, 3 + d + AGGREGATE_DIM
    )


def _sensitivity_names(samples_per_curve: int) -> list[str]:
    return [
        f"sens[{res.label}][{i}]"
        for res in Resource
        for i in range(samples_per_curve)
    ]


def _aggregate_names() -> list[str]:
    names = ["n_corunners"]
    for res in Resource:
        names.append(f"intensity_mean[{res.label}]")
        names.append(f"intensity_var[{res.label}]")
    return names


def rm_feature_names(samples_per_curve: int = 11) -> list[str]:
    """Column names matching :func:`rm_feature_vector`."""
    return _sensitivity_names(samples_per_curve) + _aggregate_names()


def cm_feature_names(samples_per_curve: int = 11) -> list[str]:
    """Column names matching :func:`cm_feature_vector`."""
    return (
        ["qos", "solo_fps", "required_ratio"]
        + _sensitivity_names(samples_per_curve)
        + _aggregate_names()
    )
