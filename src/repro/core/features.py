"""Model input construction (paper Section 3.4).

The CM and RM take a target game's sensitivity curves plus the intensities
of its co-runners.  Because the number of co-runners varies, the paper
folds their intensities into a fixed-size block (Eq. 5):

``I_G = [|G|, (mean_1, var_1), ..., (mean_R, var_R)]``

where ``mean_r`` / ``var_r`` aggregate the co-runners' per-resource
intensities.  Note the paper's ``var`` is a scaled root-sum-of-squares,
``(1/|G|) * sqrt(sum (I - mean)^2)`` — we implement that formula verbatim.
Observation 5 forbids the naive alternative of summing intensities.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.hardware.resources import NUM_RESOURCES, Resource

__all__ = [
    "aggregate_intensity",
    "rm_feature_vector",
    "cm_feature_vector",
    "rm_feature_names",
    "cm_feature_names",
    "AGGREGATE_DIM",
]

#: Dimension of the Eq. 5 aggregate block: |G| plus (mean, var) per resource.
AGGREGATE_DIM = 1 + 2 * NUM_RESOURCES


def aggregate_intensity(intensities: Sequence[np.ndarray]) -> np.ndarray:
    """Eq. 5 transform of co-runner intensity vectors.

    Parameters
    ----------
    intensities:
        One ``(7,)`` intensity vector per co-located game (>= 1).

    Returns
    -------
    ``(15,)`` vector ``[|G|, mean_1, var_1, ..., mean_7, var_7]``.
    """
    if len(intensities) == 0:
        raise ValueError("aggregate_intensity requires at least one co-runner")
    stack = np.vstack([np.asarray(v, dtype=float).reshape(-1) for v in intensities])
    if stack.shape[1] != NUM_RESOURCES:
        raise ValueError(
            f"intensity vectors must have {NUM_RESOURCES} entries, "
            f"got {stack.shape[1]}"
        )
    size = stack.shape[0]
    mean = stack.mean(axis=0)
    # The paper's variance term: (1/|G|) * sqrt(sum (I - mean)^2).
    var = np.sqrt(np.sum((stack - mean) ** 2, axis=0)) / size
    out = np.empty(AGGREGATE_DIM, dtype=float)
    out[0] = float(size)
    out[1::2] = mean
    out[2::2] = var
    return out


def rm_feature_vector(
    sensitivity: np.ndarray, co_intensities: Sequence[np.ndarray]
) -> np.ndarray:
    """RM input (Eq. 4): target sensitivity curves + aggregate intensity."""
    sensitivity = np.asarray(sensitivity, dtype=float).reshape(-1)
    return np.concatenate([sensitivity, aggregate_intensity(co_intensities)])


def cm_feature_vector(
    qos: float,
    solo_fps: float,
    sensitivity: np.ndarray,
    co_intensities: Sequence[np.ndarray],
) -> np.ndarray:
    """CM input (Eq. 3): QoS floor, solo FPS, sensitivity, aggregate intensity.

    The required degradation ratio ``qos / solo_fps`` is added as a derived
    third feature: the QoS question is exactly "is the degradation ratio
    above this threshold?", and giving tree learners the ratio directly
    (rather than asking them to approximate a division with axis-aligned
    splits) measurably improves CM accuracy.  It is a pure function of the
    two Eq. 3 inputs, so the model contract is unchanged.
    """
    sensitivity = np.asarray(sensitivity, dtype=float).reshape(-1)
    if solo_fps <= 0:
        raise ValueError(f"solo_fps must be positive, got {solo_fps}")
    required_ratio = float(qos) / float(solo_fps)
    return np.concatenate(
        [
            [float(qos), float(solo_fps), required_ratio],
            sensitivity,
            aggregate_intensity(co_intensities),
        ]
    )


def _sensitivity_names(samples_per_curve: int) -> list[str]:
    return [
        f"sens[{res.label}][{i}]"
        for res in Resource
        for i in range(samples_per_curve)
    ]


def _aggregate_names() -> list[str]:
    names = ["n_corunners"]
    for res in Resource:
        names.append(f"intensity_mean[{res.label}]")
        names.append(f"intensity_var[{res.label}]")
    return names


def rm_feature_names(samples_per_curve: int = 11) -> list[str]:
    """Column names matching :func:`rm_feature_vector`."""
    return _sensitivity_names(samples_per_curve) + _aggregate_names()


def cm_feature_names(samples_per_curve: int = 11) -> list[str]:
    """Column names matching :func:`cm_feature_vector`."""
    return (
        ["qos", "solo_fps", "required_ratio"]
        + _sensitivity_names(samples_per_curve)
        + _aggregate_names()
    )
