"""Profiled contention features of a game.

A :class:`GameProfile` is everything GAugur knows about a game after the
offline profiling step (Section 3.2): per-resource sensitivity curves at a
reference resolution, per-resource intensity and solo frame rate at two
profiled resolutions, plus the solo demand vector used by the VBP baseline.
Resolution extrapolation implements Observations 6-8 and Eq. 2:

* sensitivity curves apply at any resolution unchanged (Obs 6);
* CPU-side intensity is resolution-independent — profiled values are
  averaged (Obs 7);
* GPU-side intensity and solo FPS vary with pixel count — interpolated
  piecewise-linearly through the profiled points (Obs 8 / Eq. 2).

The paper fits a single line through two profiled resolutions (Eq. 2);
with exactly two profiled points our piecewise-linear interpolation *is*
that line.  We default to three profiled resolutions bracketing the preset
range because the simulated ground-truth FPS-vs-pixels law, ``1/(a + b*N)``,
is mildly convex — a two-point line extrapolated beyond its endpoints can
go badly wrong for GPU-bound games, and a real deployment would bracket
its supported resolutions anyway (cost is still O(1) per game).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.games.resolution import Resolution
from repro.hardware.resources import (
    CPU_RESOURCES,
    NUM_RESOURCES,
    Resource,
    ResourceVector,
)

__all__ = ["SensitivityCurve", "GameProfile"]


@dataclass(frozen=True)
class SensitivityCurve:
    """Measured degradation curve of one game for one resource (Eq. 1).

    ``degradations[i]`` is the FPS ratio (colocated / solo) observed at
    benchmark pressure ``pressures[i]``.  1.0 means unaffected; the paper
    calls ``1 - ratio`` the degradation *suffered*.
    """

    resource: Resource
    pressures: tuple[float, ...]
    degradations: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.pressures) != len(self.degradations):
            raise ValueError("pressures and degradations must align")
        if len(self.pressures) < 2:
            raise ValueError("a sensitivity curve needs at least 2 samples")
        if list(self.pressures) != sorted(self.pressures):
            raise ValueError("pressures must be sorted ascending")
        if any(d < 0 for d in self.degradations):
            raise ValueError("degradation ratios must be >= 0")

    def value_at(self, pressure: float) -> float:
        """Linear interpolation of the retained-FPS ratio at ``pressure``."""
        return float(
            np.interp(pressure, self.pressures, self.degradations)
        )

    @property
    def max_suffering(self) -> float:
        """Worst-case degradation suffered: ``1 - min ratio`` (SMiTe's score)."""
        return 1.0 - min(self.degradations)

    @property
    def at_full_pressure(self) -> float:
        """Retained ratio at the maximum pressure sample."""
        return self.degradations[-1]

    def to_dict(self) -> dict:
        """Serialize to plain types."""
        return {
            "resource": self.resource.label,
            "pressures": list(self.pressures),
            "degradations": list(self.degradations),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SensitivityCurve":
        """Inverse of :meth:`to_dict`."""
        return cls(
            resource=Resource.from_label(data["resource"]),
            pressures=tuple(float(v) for v in data["pressures"]),
            degradations=tuple(float(v) for v in data["degradations"]),
        )


def _interp_profiled(x: Sequence[float], y: Sequence[float], at: float) -> float:
    """Piecewise-linear interpolation through profiled points.

    Queries beyond the profiled pixel range are clamped to the nearest
    endpoint (safer than extrapolating the paper's linear law outside its
    fitted range); with two points this reduces to Eq. 2 within the range.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size < 2:
        raise ValueError("interpolation requires >= 2 profiled points")
    order = np.argsort(x)
    return float(np.interp(at, x[order], y[order]))


@dataclass(frozen=True)
class GameProfile:
    """Offline-profiled contention features of one game.

    Attributes
    ----------
    name:
        Game name.
    sensitivity:
        Per-resource sensitivity curves, profiled at one resolution
        (sufficient by Observation 6).
    solo_fps:
        Measured solo frame rate at each profiled resolution (>= 2).
    intensity:
        Measured intensity vector at each profiled resolution.
    demand:
        Solo-run utilization vector at each profiled resolution (what VBP
        uses as the resource-demand vector).
    cpu_mem_gb, gpu_mem_gb:
        Observed memory consumption (at the largest profiled resolution).
    """

    name: str
    sensitivity: Mapping[Resource, SensitivityCurve]
    solo_fps: Mapping[Resolution, float]
    intensity: Mapping[Resolution, ResourceVector]
    demand: Mapping[Resolution, ResourceVector]
    cpu_mem_gb: float
    gpu_mem_gb: float

    def __post_init__(self) -> None:
        missing = [r.label for r in Resource if r not in self.sensitivity]
        if missing:
            raise ValueError(f"{self.name}: sensitivity curves missing for {missing}")
        if len(self.solo_fps) < 2:
            raise ValueError(
                f"{self.name}: need >= 2 profiled resolutions for Eq. 2, "
                f"got {len(self.solo_fps)}"
            )
        if set(self.solo_fps) != set(self.intensity) or set(self.solo_fps) != set(
            self.demand
        ):
            raise ValueError(f"{self.name}: profiled resolution sets must match")

    # ------------------------------------------------------------------
    # Resolution extrapolation (Observations 6-8, Eq. 2)

    @property
    def profiled_resolutions(self) -> list[Resolution]:
        """Profiled resolutions sorted by pixel count."""
        return sorted(self.solo_fps, key=lambda r: r.pixels)

    def solo_fps_at(self, resolution: Resolution) -> float:
        """Solo FPS at any resolution via the pixel law (Eq. 2)."""
        resolutions = self.profiled_resolutions
        return max(
            1.0,
            _interp_profiled(
                [r.megapixels for r in resolutions],
                [self.solo_fps[r] for r in resolutions],
                resolution.megapixels,
            ),
        )

    def intensity_at(self, resolution: Resolution) -> ResourceVector:
        """Intensity at any resolution (Obs 7 for CPU side, Obs 8 for GPU)."""
        resolutions = self.profiled_resolutions
        mpix = [r.megapixels for r in resolutions]
        values = np.zeros(NUM_RESOURCES, dtype=float)
        for res in Resource:
            samples = [self.intensity[r][res] for r in resolutions]
            if res in CPU_RESOURCES:
                values[int(res)] = float(np.mean(samples))
            else:
                values[int(res)] = max(
                    0.0, _interp_profiled(mpix, samples, resolution.megapixels)
                )
        return ResourceVector(values)

    def demand_at(self, resolution: Resolution) -> ResourceVector:
        """Solo demand vector at any resolution (same laws as intensity)."""
        resolutions = self.profiled_resolutions
        mpix = [r.megapixels for r in resolutions]
        values = np.zeros(NUM_RESOURCES, dtype=float)
        for res in Resource:
            samples = [self.demand[r][res] for r in resolutions]
            if res in CPU_RESOURCES:
                values[int(res)] = float(np.mean(samples))
            else:
                values[int(res)] = min(
                    1.0,
                    max(0.0, _interp_profiled(mpix, samples, resolution.megapixels)),
                )
        return ResourceVector(values)

    def sensitivity_vector(self) -> np.ndarray:
        """All sensitivity curves flattened resource-major (model input)."""
        parts = [
            np.asarray(self.sensitivity[res].degradations, dtype=float)
            for res in Resource
        ]
        return np.concatenate(parts)

    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Serialize to plain types."""
        return {
            "name": self.name,
            "sensitivity": {
                r.label: c.to_dict() for r, c in self.sensitivity.items()
            },
            "solo_fps": [
                {"resolution": r.to_dict(), "fps": fps}
                for r, fps in self.solo_fps.items()
            ],
            "intensity": [
                {"resolution": r.to_dict(), "values": v.to_dict()}
                for r, v in self.intensity.items()
            ],
            "demand": [
                {"resolution": r.to_dict(), "values": v.to_dict()}
                for r, v in self.demand.items()
            ],
            "cpu_mem_gb": self.cpu_mem_gb,
            "gpu_mem_gb": self.gpu_mem_gb,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "GameProfile":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            sensitivity={
                Resource.from_label(label): SensitivityCurve.from_dict(c)
                for label, c in data["sensitivity"].items()
            },
            solo_fps={
                Resolution.from_dict(e["resolution"]): float(e["fps"])
                for e in data["solo_fps"]
            },
            intensity={
                Resolution.from_dict(e["resolution"]): ResourceVector.from_dict(
                    e["values"]
                )
                for e in data["intensity"]
            },
            demand={
                Resolution.from_dict(e["resolution"]): ResourceVector.from_dict(
                    e["values"]
                )
                for e in data["demand"]
            },
            cpu_mem_gb=float(data["cpu_mem_gb"]),
            gpu_mem_gb=float(data["gpu_mem_gb"]),
        )
