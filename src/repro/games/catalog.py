"""The 100-game synthetic catalog.

Game names and the six representative profiling subjects come from the
paper (reference [3] and Figures 1/4/5/6).  Each game is assigned a genre
and its hidden parameters are drawn from the genre archetype using a
per-game RNG substream, so the catalog is fully deterministic in the seed
and insensitive to iteration order.

A handful of games carry hand-tuned overrides reproducing the paper's
anecdotes: *The Elder Scrolls5* suffers ~70% degradation under maximum
CPU-CE pressure while *Far Cry4* suffers only ~30% (Observation 3);
*Far Cry4* is sensitive to all seven resources (Observation 1);
*Granado Espada* is very sensitive to GPU-CE while exerting little GPU-CE
intensity itself (Observation 2).
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from dataclasses import replace

import numpy as np

from repro.games.curves import CurveShape, SensitivityShape
from repro.games.game import GameSpec
from repro.games.genres import Genre, GenreArchetype, genre_archetypes
from repro.games.resolution import REFERENCE_RESOLUTION
from repro.hardware.resources import Resource, ResourceKind, ResourceVector
from repro.utils.rng import spawn_rng

__all__ = ["GAME_NAMES", "GameCatalog", "build_catalog", "DEFAULT_CATALOG_SEED"]

DEFAULT_CATALOG_SEED = 20190622  # HPDC'19 opening day

#: (game name, genre) for the paper's 100 games (reference [3]; names that
#: appear in figures use the figure spelling).
GAME_NAMES: tuple[tuple[str, Genre], ...] = (
    ("A Walk in the Woods", Genre.INDIE),
    ("After Dreams", Genre.INDIE),
    ("AirMech Strike", Genre.MOBA_ESPORTS),
    ("Ancestors Legacy", Genre.STRATEGY),
    ("ARK Survival Evolved", Genre.AAA_OPEN_WORLD),
    ("Battlerite", Genre.MOBA_ESPORTS),
    ("Black Squad", Genre.SHOOTER),
    ("BlubBlub", Genre.CARD_CASUAL),
    ("Borderland", Genre.SHOOTER),
    ("Borderland2", Genre.SHOOTER),
    ("Call to Arms", Genre.STRATEGY),
    ("Candle", Genre.INDIE),
    ("Cities: Skylines", Genre.STRATEGY),
    ("CoD14", Genre.SHOOTER),
    ("Cognizer", Genre.INDIE),
    ("Craft The World", Genre.SIM_SANDBOX),
    ("Dark Souls III", Genre.RPG),
    ("Dragon's Dogma", Genre.RPG),
    ("Delicious 12", Genre.CARD_CASUAL),
    ("Destined", Genre.INDIE),
    ("Divinity: Original Sin 2", Genre.RPG),
    ("DmC: Devil May Cry", Genre.RPG),
    ("Dota2", Genre.MOBA_ESPORTS),
    ("Dragon Ball Xenoverse 2", Genre.SPORTS_RACING),
    ("Empire Earth III", Genre.STRATEGY),
    ("Endless Fables: The Minotaur's Curse", Genre.CARD_CASUAL),
    ("Far Cry4", Genre.AAA_OPEN_WORLD),
    ("FAR: Lone Sails", Genre.INDIE),
    ("Final Fantasy XII: The Zodiac Age", Genre.RPG),
    ("Frightened Beetles", Genre.INDIE),
    ("Gems of War", Genre.CARD_CASUAL),
    ("Getting Over It with Bennett Foddy", Genre.INDIE),
    ("Granado Espada", Genre.MMO),
    ("GUNS UP!", Genre.STRATEGY),
    ("H1Z1", Genre.SHOOTER),
    ("Hand of Fate 2", Genre.CARD_CASUAL),
    ("Heroes and Generals", Genre.SHOOTER),
    ("Hobo Tough Life", Genre.SIM_SANDBOX),
    ("Human: Fall Flat", Genre.INDIE),
    ("Impact Winter", Genre.SIM_SANDBOX),
    ("Kingdom Come: Deliverance", Genre.AAA_OPEN_WORLD),
    ("Life is Strange: Before the Storm", Genre.RPG),
    ("Little Nightmares", Genre.INDIE),
    ("Little Witch Academia", Genre.RPG),
    ("LOL", Genre.MOBA_ESPORTS),
    ("Logout", Genre.INDIE),
    ("Maries Room", Genre.INDIE),
    ("Naruto Shippuden: Ultimate Ninja Storm 4", Genre.SPORTS_RACING),
    ("NBA 2K17", Genre.SPORTS_RACING),
    ("NBA Playgrounds", Genre.SPORTS_RACING),
    ("Need for Speed: Hot Pursuit", Genre.SPORTS_RACING),
    ("NieR: Automata", Genre.RPG),
    ("Northgard", Genre.STRATEGY),
    ("Ori and the Blind Forest", Genre.INDIE),
    ("Oxygen Not Included", Genre.SIM_SANDBOX),
    ("PES2017", Genre.SPORTS_RACING),
    ("PlanetSide2", Genre.SHOOTER),
    ("PES2015", Genre.SPORTS_RACING),
    ("Project RAT", Genre.INDIE),
    ("Project CARS", Genre.SPORTS_RACING),
    ("Radical Heights", Genre.SHOOTER),
    ("RiME", Genre.INDIE),
    ("RimWorld", Genre.SIM_SANDBOX),
    ("Robocraft", Genre.SHOOTER),
    ("Russian Fishing 4", Genre.SIM_SANDBOX),
    ("Salt and Sanctuary", Genre.INDIE),
    ("Shop Heroes", Genre.CARD_CASUAL),
    ("Slay the Spire", Genre.CARD_CASUAL),
    ("StarCraft 2", Genre.STRATEGY),
    ("Stardew Valley", Genre.SIM_SANDBOX),
    ("Stellaris", Genre.STRATEGY),
    ("Tactical Monsters Rumble Arena", Genre.CARD_CASUAL),
    ("Team Fortress 2", Genre.SHOOTER),
    ("TEKKEN 7", Genre.SPORTS_RACING),
    ("The Long Dark", Genre.SIM_SANDBOX),
    ("The Sibling Experiment", Genre.INDIE),
    ("The Walking Dead: A New Frontier", Genre.RPG),
    ("The Will of a Single Tale", Genre.INDIE),
    ("The Witcher 3: Wild Hunt", Genre.AAA_OPEN_WORLD),
    ("Tiger Knight", Genre.SHOOTER),
    ("Torchlight II", Genre.RPG),
    ("The Legend of Heroes: Trails of Cold Steel", Genre.RPG),
    ("Unturned", Genre.SHOOTER),
    ("VEGA Conflict", Genre.STRATEGY),
    ("War Robots", Genre.SHOOTER),
    ("War Thunder", Genre.MMO),
    ("Warface", Genre.SHOOTER),
    ("Warframe", Genre.MMO),
    ("World of Warships", Genre.MMO),
    ("WRC 5", Genre.SPORTS_RACING),
    ("Assassin's Creed Origins", Genre.AAA_OPEN_WORLD),
    ("Rise of The Tomb Raider", Genre.AAA_OPEN_WORLD),
    ("Hearth Stone", Genre.CARD_CASUAL),
    ("Mahou Arms", Genre.INDIE),
    ("World of Warcraft", Genre.MMO),
    ("Warcraft", Genre.STRATEGY),
    ("Romance of the Three Kingdoms 11", Genre.STRATEGY),
    ("The Elder Scrolls5", Genre.AAA_OPEN_WORLD),
    ("PES2012", Genre.SPORTS_RACING),
    ("Dynasty Warriors 5", Genre.SPORTS_RACING),
)

#: The six games whose sensitivity/intensity the paper plots (Figures 4-5).
REPRESENTATIVE_GAMES: tuple[str, ...] = (
    "Dota2",
    "Far Cry4",
    "Granado Espada",
    "Rise of The Tomb Raider",
    "The Elder Scrolls5",
    "World of Warcraft",
)

# Shape families plausible per resource class; sampled with the weights
# below so nonlinear curves dominate (Observation 4).  All pools are
# convex-leaning: core and bandwidth contention behave like queueing
# systems (little pain until load concentrates), caches like working-set
# cliffs — which is also what makes interference strongly partner-specific
# (light co-runners barely register, heavy ones devastate, Figure 1).
_SHAPE_POOLS: dict[ResourceKind, tuple[tuple[CurveShape, tuple[float, float]], ...]] = {
    ResourceKind.COMPUTE: (
        (CurveShape.LINEAR, (1.0, 1.0)),
        (CurveShape.CONVEX, (1.5, 3.0)),
        (CurveShape.SIGMOID, (4.0, 10.0)),
    ),
    ResourceKind.BANDWIDTH: (
        (CurveShape.LINEAR, (1.0, 1.0)),
        (CurveShape.CONVEX, (1.3, 2.8)),
        (CurveShape.SIGMOID, (3.0, 8.0)),
    ),
    ResourceKind.CACHE: (
        (CurveShape.CLIFF, (0.2, 0.6)),
        (CurveShape.CONVEX, (1.6, 3.5)),
        (CurveShape.SIGMOID, (5.0, 12.0)),
    ),
}
_SHAPE_WEIGHTS = (0.25, 0.40, 0.35)


def _uniform(rng: np.random.Generator, bounds: tuple[float, float]) -> float:
    lo, hi = bounds
    return float(rng.uniform(lo, hi))


def _sample_shape(
    rng: np.random.Generator, kind: ResourceKind, magnitude: float
) -> SensitivityShape:
    pool = _SHAPE_POOLS[kind]
    idx = int(rng.choice(len(pool), p=_SHAPE_WEIGHTS))
    shape, param_range = pool[idx]
    return SensitivityShape(
        magnitude=magnitude, shape=shape, param=_uniform(rng, param_range)
    )


def _sample_spec(
    name: str, genre: Genre, arch: GenreArchetype, rng: np.random.Generator
) -> GameSpec:
    cpu_time = _uniform(rng, arch.cpu_time_ms)
    gpu_fixed = _uniform(rng, arch.gpu_fixed_ms)
    gpu_mpix = _uniform(rng, arch.gpu_per_mpix_ms)
    xfer_fixed = _uniform(rng, arch.xfer_fixed_ms)
    xfer_mpix = _uniform(rng, arch.xfer_per_mpix_ms)
    width_cpu = _uniform(rng, arch.width_cpu)
    width_gpu = _uniform(rng, arch.width_gpu)

    ref_mpix = REFERENCE_RESOLUTION.megapixels
    gpu_time = gpu_fixed + gpu_mpix * ref_mpix
    xfer_time = xfer_fixed + xfer_mpix * ref_mpix
    frame_time = max(cpu_time, gpu_time) + xfer_time

    util = {res: _uniform(rng, bounds) for res, bounds in arch.util.items()}
    util[Resource.CPU_CE] = min(1.0, width_cpu * cpu_time / frame_time)
    util[Resource.GPU_CE] = min(1.0, width_gpu * gpu_time / frame_time)

    sensitivity = {
        res: _sample_shape(rng, res.kind, _uniform(rng, arch.sensitivity[res]))
        for res in Resource
    }

    return GameSpec(
        name=name,
        genre=genre,
        cpu_time_ms=cpu_time,
        gpu_fixed_ms=gpu_fixed,
        gpu_per_mpix_ms=gpu_mpix,
        xfer_fixed_ms=xfer_fixed,
        xfer_per_mpix_ms=xfer_mpix,
        base_util=ResourceVector(util),
        sensitivity=sensitivity,
        cpu_mem_gb=_uniform(rng, arch.cpu_mem_gb),
        gpu_mem_gb=_uniform(rng, arch.gpu_mem_gb),
        gpu_mem_per_mpix_gb=float(rng.uniform(0.08, 0.25)),
        pixel_fraction=float(rng.uniform(0.5, 0.8)),
        scene_rho=_uniform(rng, arch.scene_rho),
        scene_sigma=_uniform(rng, arch.scene_sigma),
        cpu_complexity_exp=float(rng.uniform(0.5, 1.0)),
        gpu_complexity_exp=float(rng.uniform(0.8, 1.2)),
    )


def _apply_overrides(spec: GameSpec) -> GameSpec:
    """Hand-tuned adjustments reproducing the paper's per-game anecdotes."""
    sens = dict(spec.sensitivity)
    if spec.name == "The Elder Scrolls5":
        # ~70% degradation under maximum CPU-CE pressure (Observation 3).
        sens[Resource.CPU_CE] = SensitivityShape(2.3, CurveShape.SIGMOID, 6.0)
        return replace(spec, sensitivity=sens, cpu_time_ms=max(spec.cpu_time_ms, 8.0))
    if spec.name == "Far Cry4":
        # Sensitive to every shared resource, but only ~30% CPU-CE
        # degradation at maximum pressure (Observations 1 and 3).  The CPU
        # stage is made nearly co-dominant with the GPU stage so CPU-side
        # pressure actually shows up in the frame rate.
        sens[Resource.CPU_CE] = SensitivityShape(0.45, CurveShape.LINEAR)
        for res in Resource:
            if res is Resource.CPU_CE:
                continue
            old = sens[res]
            if old.magnitude < 0.5:
                sens[res] = SensitivityShape(0.7, old.shape, old.param)
        cpu_time = 0.92 * spec.gpu_time_ms(REFERENCE_RESOLUTION)
        return replace(spec, sensitivity=sens, cpu_time_ms=cpu_time)
    if spec.name == "Granado Espada":
        # Very sensitive to GPU-CE while exerting little GPU-CE pressure
        # itself (Observation 2).
        sens[Resource.GPU_CE] = SensitivityShape(2.2, CurveShape.CONCAVE, 0.6)
        util = spec.base_util.values.copy()
        util[int(Resource.GPU_CE)] = min(util[int(Resource.GPU_CE)], 0.15)
        return replace(spec, sensitivity=sens, base_util=ResourceVector(util))
    return spec


class GameCatalog:
    """Ordered, name-indexed collection of :class:`GameSpec`."""

    def __init__(self, specs: Sequence[GameSpec], seed: int):
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate game names in catalog: {dupes}")
        self._specs: dict[str, GameSpec] = {s.name: s for s in specs}
        self.seed = int(seed)

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[GameSpec]:
        return iter(self._specs.values())

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def get(self, name: str) -> GameSpec:
        """Lookup by exact name; raises ``KeyError`` with suggestions."""
        try:
            return self._specs[name]
        except KeyError:
            close = [n for n in self._specs if name.lower() in n.lower()]
            hint = f"; did you mean one of {close}?" if close else ""
            raise KeyError(f"unknown game {name!r}{hint}") from None

    def names(self) -> list[str]:
        """All game names in catalog order."""
        return list(self._specs)

    def games(self) -> list[GameSpec]:
        """All specs in catalog order."""
        return list(self._specs.values())

    def subset(self, names: Sequence[str]) -> "GameCatalog":
        """Catalog restricted to ``names`` (preserving the given order)."""
        return GameCatalog([self.get(n) for n in names], seed=self.seed)

    def representative_games(self) -> list[GameSpec]:
        """The six games the paper profiles in Figures 4-5."""
        return [self.get(n) for n in REPRESENTATIVE_GAMES if n in self]

    def by_genre(self, genre: Genre) -> list[GameSpec]:
        """All games of one genre."""
        return [s for s in self if s.genre is genre]

    def to_dict(self) -> dict:
        """Serialize to plain types."""
        return {"seed": self.seed, "games": [s.to_dict() for s in self]}

    @classmethod
    def from_dict(cls, data: Mapping) -> "GameCatalog":
        """Inverse of :meth:`to_dict`."""
        specs = [GameSpec.from_dict(d) for d in data["games"]]
        return cls(specs, seed=int(data["seed"]))


def build_catalog(seed: int = DEFAULT_CATALOG_SEED) -> GameCatalog:
    """Build the deterministic 100-game catalog for ``seed``."""
    archetypes = genre_archetypes()
    specs = []
    for name, genre in GAME_NAMES:
        rng = spawn_rng(seed, "catalog", name)
        spec = _sample_spec(name, genre, archetypes[genre], rng)
        specs.append(_apply_overrides(spec))
    return GameCatalog(specs, seed=seed)
