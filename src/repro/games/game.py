"""The hidden ground-truth specification of a single game.

A :class:`GameSpec` carries everything the simulator needs to produce the
game's frame rate under any colocation: frame-loop stage costs, per-resource
utilizations (what the paper calls *intensity* sources), per-resource
sensitivity shapes, memory demands and scene-complexity dynamics.

These fields are *hidden* from the GAugur pipeline: profiling, training and
prediction only see frame rates measured through :mod:`repro.simulator`,
mirroring the black-box position the paper's methodology is in on real
hardware.

Resolution handling implements the paper's Observations 6-8 exactly:

* sensitivity shapes are resolution-independent (Obs 6);
* CPU-side utilizations are resolution-independent (Obs 7);
* GPU-side utilizations are affine in pixel count (Obs 8), split into a
  fixed part and a pixel-proportional part by ``pixel_fraction``.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.games.curves import SensitivityShape, pack_shapes, vector_response
from repro.games.genres import Genre
from repro.games.resolution import REFERENCE_RESOLUTION, Resolution
from repro.hardware.resources import (
    GPU_RESOURCES,
    Resource,
    ResourceDomain,
    ResourceVector,
)
from repro.utils.validation import check_fraction, check_positive

__all__ = ["GameSpec"]

#: Resources whose utilization scales with pixel count (Observation 8).
PIXEL_SCALED_RESOURCES: tuple[Resource, ...] = GPU_RESOURCES + (Resource.PCIE_BW,)

# Index arrays for the three pipeline stages (used by stage_inflations).
_CPU_IDX = np.array(
    [int(r) for r in Resource if r.domain is ResourceDomain.CPU], dtype=int
)
_GPU_IDX = np.array(
    [int(r) for r in Resource if r.domain is ResourceDomain.GPU], dtype=int
)
_LINK_IDX = np.array(
    [int(r) for r in Resource if r.domain is ResourceDomain.LINK], dtype=int
)


@dataclass(frozen=True)
class GameSpec:
    """Hidden ground truth for one game (see module docstring).

    All stage times are per-frame costs at unit scene complexity on the
    reference server; ``base_util`` is the solo-run utilization vector at the
    reference resolution (1080p).
    """

    name: str
    genre: Genre
    cpu_time_ms: float
    gpu_fixed_ms: float
    gpu_per_mpix_ms: float
    xfer_fixed_ms: float
    xfer_per_mpix_ms: float
    base_util: ResourceVector
    sensitivity: Mapping[Resource, SensitivityShape]
    cpu_mem_gb: float
    gpu_mem_gb: float
    gpu_mem_per_mpix_gb: float = 0.15
    pixel_fraction: float = 0.65
    scene_rho: float = 0.95
    scene_sigma: float = 0.08
    cpu_complexity_exp: float = 0.8
    gpu_complexity_exp: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.cpu_time_ms, "cpu_time_ms")
        check_positive(self.gpu_per_mpix_ms, "gpu_per_mpix_ms")
        if self.gpu_fixed_ms < 0 or self.xfer_fixed_ms < 0 or self.xfer_per_mpix_ms < 0:
            raise ValueError("fixed/transfer stage times must be non-negative")
        check_positive(self.cpu_mem_gb, "cpu_mem_gb")
        check_positive(self.gpu_mem_gb, "gpu_mem_gb")
        check_fraction(self.pixel_fraction, "pixel_fraction")
        check_fraction(self.scene_rho, "scene_rho")
        if self.scene_sigma < 0:
            raise ValueError("scene_sigma must be >= 0")
        missing = [r.label for r in Resource if r not in self.sensitivity]
        if missing:
            raise ValueError(f"{self.name}: sensitivity missing for {missing}")

    # ------------------------------------------------------------------
    # Stage times

    def gpu_time_ms(self, resolution: Resolution) -> float:
        """GPU stage time per frame at ``resolution`` (unit complexity)."""
        return self.gpu_fixed_ms + self.gpu_per_mpix_ms * resolution.megapixels

    def xfer_time_ms(self, resolution: Resolution) -> float:
        """PCIe transfer time per frame at ``resolution``."""
        return self.xfer_fixed_ms + self.xfer_per_mpix_ms * resolution.megapixels

    def solo_frame_time_ms(self, resolution: Resolution) -> float:
        """Uncontended frame time at unit complexity: CPU/GPU overlap + transfer."""
        return max(self.cpu_time_ms, self.gpu_time_ms(resolution)) + self.xfer_time_ms(
            resolution
        )

    def solo_fps_nominal(self, resolution: Resolution) -> float:
        """Analytic solo FPS at unit scene complexity (noise-free)."""
        return 1000.0 / self.solo_frame_time_ms(resolution)

    # ------------------------------------------------------------------
    # Utilization (= intensity ground truth)

    def utilization(self, resolution: Resolution | None = None) -> ResourceVector:
        """Solo-run utilization vector at ``resolution``.

        CPU-side entries are resolution-independent (Obs 7); GPU-side and
        PCIe entries are affine in the pixel ratio (Obs 8):
        ``u = u_ref * (1 - pixel_fraction + pixel_fraction * ratio)``.
        """
        if resolution is None:
            resolution = REFERENCE_RESOLUTION
        ratio = resolution.pixel_ratio()
        scale = 1.0 - self.pixel_fraction + self.pixel_fraction * ratio
        values = self.base_util.values.copy()
        for res in PIXEL_SCALED_RESOURCES:
            values[int(res)] = min(1.0, values[int(res)] * scale)
        return ResourceVector(values)

    def memory_demand(self, resolution: Resolution | None = None) -> tuple[float, float]:
        """(CPU GB, GPU GB) memory demand; GPU part grows with render targets."""
        if resolution is None:
            resolution = REFERENCE_RESOLUTION
        extra = self.gpu_mem_per_mpix_gb * max(
            0.0, resolution.megapixels - REFERENCE_RESOLUTION.megapixels
        )
        return (self.cpu_mem_gb, self.gpu_mem_gb + extra)

    # ------------------------------------------------------------------
    # Sensitivity (resolution-independent, Obs 6)

    def inflation(self, resource: Resource, pressure: float) -> float:
        """Stage-time multiplier this game suffers from ``pressure`` on ``resource``."""
        return self.sensitivity[Resource(resource)].inflation(pressure)

    @cached_property
    def _packed_sensitivity(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(magnitude, code, param) arrays for vectorized response evaluation."""
        return pack_shapes([self.sensitivity[res] for res in Resource])

    def stage_inflations(self, pressures: np.ndarray) -> tuple[float, float, float]:
        """(CPU, GPU, link) stage multipliers for a ``(7,)`` pressure vector.

        Per-resource stall contributions within a stage add up:
        ``1 + sum_r magnitude_r * g_r(p_r)`` over the stage's resources.
        Additive composition keeps the single-resource semantics of
        ``magnitude`` (profiled against one benchmark at a time) while
        avoiding the unrealistically harsh multiplicative compounding.
        """
        pressures = np.asarray(pressures, dtype=float)
        mag, code, param = self._packed_sensitivity
        contrib = mag * vector_response(pressures, code, param)
        cpu = 1.0 + float(contrib[_CPU_IDX].sum())
        gpu = 1.0 + float(contrib[_GPU_IDX].sum())
        link = 1.0 + float(contrib[_LINK_IDX].sum())
        return cpu, gpu, link

    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Serialize to plain types."""
        return {
            "name": self.name,
            "genre": self.genre.value,
            "cpu_time_ms": self.cpu_time_ms,
            "gpu_fixed_ms": self.gpu_fixed_ms,
            "gpu_per_mpix_ms": self.gpu_per_mpix_ms,
            "xfer_fixed_ms": self.xfer_fixed_ms,
            "xfer_per_mpix_ms": self.xfer_per_mpix_ms,
            "base_util": self.base_util.to_dict(),
            "sensitivity": {r.label: s.to_dict() for r, s in self.sensitivity.items()},
            "cpu_mem_gb": self.cpu_mem_gb,
            "gpu_mem_gb": self.gpu_mem_gb,
            "gpu_mem_per_mpix_gb": self.gpu_mem_per_mpix_gb,
            "pixel_fraction": self.pixel_fraction,
            "scene_rho": self.scene_rho,
            "scene_sigma": self.scene_sigma,
            "cpu_complexity_exp": self.cpu_complexity_exp,
            "gpu_complexity_exp": self.gpu_complexity_exp,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GameSpec":
        """Inverse of :meth:`to_dict`."""
        kwargs = dict(data)
        kwargs["genre"] = Genre(kwargs["genre"])
        kwargs["base_util"] = ResourceVector.from_dict(kwargs["base_util"])
        kwargs["sensitivity"] = {
            Resource.from_label(label): SensitivityShape.from_dict(sd)
            for label, sd in kwargs["sensitivity"].items()
        }
        return cls(**kwargs)
