"""Parametric sensitivity-curve shapes.

Observation 4 of the paper: a game's sensitivity does not necessarily change
linearly with pressure.  Each game maps the external pressure ``p`` on a
shared resource to a stage-time *inflation factor* through one of five
normalized response shapes.  All responses ``g`` satisfy ``g(0) = 0`` and
``g(1) = 1`` and are monotone non-decreasing, so the ``magnitude`` parameter
alone controls the worst-case inflation ``1 + magnitude``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_in_range

__all__ = ["CurveShape", "SensitivityShape"]


class CurveShape(enum.Enum):
    """Normalized response families for pressure -> inflation mapping."""

    LINEAR = "linear"
    CONCAVE = "concave"
    CONVEX = "convex"
    SIGMOID = "sigmoid"
    CLIFF = "cliff"


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-z))


@dataclass(frozen=True)
class SensitivityShape:
    """One game's hidden sensitivity to one shared resource.

    Parameters
    ----------
    magnitude:
        Stage-time inflation at maximum pressure is ``1 + magnitude``.
        ``0`` means the game is insensitive to this resource.
    shape:
        Response family (see :class:`CurveShape`).
    param:
        Shape parameter: exponent for CONCAVE/CONVEX (must be < 1 for
        CONCAVE, > 1 for CONVEX), steepness for SIGMOID (> 0), threshold
        position in (0, 1) for CLIFF.  Ignored for LINEAR.
    """

    magnitude: float
    shape: CurveShape = CurveShape.LINEAR
    param: float = 1.0

    def __post_init__(self) -> None:
        if not np.isfinite(self.magnitude) or self.magnitude < 0:
            raise ValueError(f"magnitude must be >= 0, got {self.magnitude!r}")
        if self.shape is CurveShape.CONCAVE:
            check_in_range(self.param, 0.05, 1.0, "param (concave exponent)")
        elif self.shape is CurveShape.CONVEX:
            check_in_range(self.param, 1.0, 20.0, "param (convex exponent)")
        elif self.shape is CurveShape.SIGMOID:
            check_in_range(self.param, 0.5, 50.0, "param (sigmoid steepness)")
        elif self.shape is CurveShape.CLIFF:
            check_in_range(self.param, 0.0, 0.95, "param (cliff threshold)", inclusive=False)

    def response(self, pressure):
        """Normalized response ``g(p) in [0, 1]``; accepts scalars or arrays."""
        p = np.clip(np.asarray(pressure, dtype=float), 0.0, 1.0)
        if self.shape is CurveShape.LINEAR:
            g = p
        elif self.shape in (CurveShape.CONCAVE, CurveShape.CONVEX):
            g = p**self.param
        elif self.shape is CurveShape.SIGMOID:
            k = self.param
            lo = _sigmoid(np.asarray(-k / 2.0))
            hi = _sigmoid(np.asarray(k / 2.0))
            g = (_sigmoid(k * (p - 0.5)) - lo) / (hi - lo)
        else:  # CLIFF: smoothstep starting at the threshold
            t = self.param
            u = np.clip((p - t) / (1.0 - t), 0.0, 1.0)
            g = u * u * (3.0 - 2.0 * u)
        if np.isscalar(pressure):
            return float(g)
        return g

    def inflation(self, pressure):
        """Stage-time multiplier ``1 + magnitude * g(p)`` (>= 1)."""
        g = self.response(pressure)
        if np.isscalar(pressure):
            return 1.0 + self.magnitude * float(g)
        return 1.0 + self.magnitude * np.asarray(g)

    def to_dict(self) -> dict:
        """Serialize to plain types."""
        return {
            "magnitude": self.magnitude,
            "shape": self.shape.value,
            "param": self.param,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SensitivityShape":
        """Inverse of :meth:`to_dict`."""
        return cls(
            magnitude=float(data["magnitude"]),
            shape=CurveShape(data["shape"]),
            param=float(data["param"]),
        )

    @classmethod
    def insensitive(cls) -> "SensitivityShape":
        """A shape with zero response at every pressure."""
        return cls(magnitude=0.0, shape=CurveShape.LINEAR)


# ----------------------------------------------------------------------
# Vectorized evaluation across many shapes at once (simulator hot path).

#: Numeric codes grouping shapes by evaluation formula: 0 = power
#: (LINEAR/CONCAVE/CONVEX), 1 = sigmoid, 2 = cliff.
SHAPE_CODES: dict[CurveShape, int] = {
    CurveShape.LINEAR: 0,
    CurveShape.CONCAVE: 0,
    CurveShape.CONVEX: 0,
    CurveShape.SIGMOID: 1,
    CurveShape.CLIFF: 2,
}


def pack_shapes(
    shapes: "list[SensitivityShape]",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pack shapes into (magnitude, code, param) arrays for vector_response."""
    mag = np.array([s.magnitude for s in shapes], dtype=float)
    code = np.array([SHAPE_CODES[s.shape] for s in shapes], dtype=np.int8)
    param = np.array(
        [1.0 if s.shape is CurveShape.LINEAR else s.param for s in shapes], dtype=float
    )
    return mag, code, param


def vector_response(
    pressures: np.ndarray, code: np.ndarray, param: np.ndarray
) -> np.ndarray:
    """Evaluate normalized responses ``g(p)`` elementwise for packed shapes.

    Equivalent to calling :meth:`SensitivityShape.response` per element but
    in a handful of vectorized operations — the simulator evaluates this in
    every fixed-point iteration.
    """
    p = np.clip(np.asarray(pressures, dtype=float), 0.0, 1.0)
    g = np.empty_like(p)

    power = code == 0
    if power.any():
        g[power] = p[power] ** param[power]

    sig = code == 1
    if sig.any():
        k = param[sig]
        lo = _sigmoid(-k / 2.0)
        hi = _sigmoid(k / 2.0)
        g[sig] = (_sigmoid(k * (p[sig] - 0.5)) - lo) / (hi - lo)

    cliff = code == 2
    if cliff.any():
        t = param[cliff]
        u = np.clip((p[cliff] - t) / (1.0 - t), 0.0, 1.0)
        g[cliff] = u * u * (3.0 - 2.0 * u)

    return g
