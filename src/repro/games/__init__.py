"""Synthetic game catalog.

The paper profiles 100 commercial Windows games (its reference [3] lists
them).  We cannot run those games here, so this package generates a seeded
synthetic catalog carrying the *hidden ground truth* each game would have on
the paper's testbed: per-frame CPU/GPU/transfer stage costs, shared-resource
utilizations, nonlinear per-resource sensitivity shapes, memory demands, and
resolution scaling laws.  The catalog is constructed to reproduce the paper's
Observations 1-8 (see DESIGN.md section 5), and nothing outside
:mod:`repro.simulator` ever reads the hidden fields — the GAugur pipeline
only sees measured frame rates, exactly as on real hardware.
"""

from repro.games.catalog import GAME_NAMES, GameCatalog, build_catalog
from repro.games.curves import CurveShape, SensitivityShape
from repro.games.game import GameSpec
from repro.games.genres import Genre, GenreArchetype, genre_archetypes
from repro.games.resolution import (
    DEFAULT_DEGRADE_LADDER,
    NAMED_RESOLUTIONS,
    PRESET_RESOLUTIONS,
    REFERENCE_RESOLUTION,
    DegradeLadder,
    Resolution,
)
from repro.games.validation import ObservationReport, validate_catalog

__all__ = [
    "CurveShape",
    "SensitivityShape",
    "Genre",
    "GenreArchetype",
    "genre_archetypes",
    "GameSpec",
    "GameCatalog",
    "build_catalog",
    "GAME_NAMES",
    "Resolution",
    "REFERENCE_RESOLUTION",
    "PRESET_RESOLUTIONS",
    "NAMED_RESOLUTIONS",
    "DegradeLadder",
    "DEFAULT_DEGRADE_LADDER",
    "ObservationReport",
    "validate_catalog",
]
