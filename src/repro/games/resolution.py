"""Display resolutions and pixel-count scaling.

Players choose resolutions per request (Section 3.3).  The reference
resolution for hidden catalog parameters is 1080p; GPU-side quantities scale
with the pixel ratio relative to it (Observations 7-8).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Resolution", "REFERENCE_RESOLUTION", "PRESET_RESOLUTIONS"]


@dataclass(frozen=True, order=True)
class Resolution:
    """A display resolution in pixels."""

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"resolution must be positive, got {self.width}x{self.height}")

    @property
    def pixels(self) -> int:
        """Total pixel count."""
        return self.width * self.height

    @property
    def megapixels(self) -> float:
        """Pixel count in units of 10^6."""
        return self.pixels / 1e6

    def pixel_ratio(self, reference: "Resolution | None" = None) -> float:
        """Pixel count relative to ``reference`` (default 1080p)."""
        ref = reference if reference is not None else REFERENCE_RESOLUTION
        return self.pixels / ref.pixels

    def __str__(self) -> str:
        return f"{self.width}x{self.height}"

    def to_dict(self) -> dict:
        """Serialize to plain types."""
        return {"width": self.width, "height": self.height}

    @classmethod
    def from_dict(cls, data: dict) -> "Resolution":
        """Inverse of :meth:`to_dict`."""
        return cls(int(data["width"]), int(data["height"]))


REFERENCE_RESOLUTION = Resolution(1920, 1080)

#: Resolutions players may pick, mirroring common presets on the paper's
#: GTX 1060 testbed (a 1060 streams 720p-1080p; 1440p cloud gaming was not
#: served on this hardware class).
PRESET_RESOLUTIONS: tuple[Resolution, ...] = (
    Resolution(1280, 720),
    Resolution(1600, 900),
    Resolution(1920, 1080),
)
