"""Display resolutions and pixel-count scaling.

Players choose resolutions per request (Section 3.3).  The reference
resolution for hidden catalog parameters is 1080p; GPU-side quantities scale
with the pixel ratio relative to it (Observations 7-8).

This module also owns the *degrade ladder* vocabulary used by the
placement tier's :class:`~repro.placement.engine.ResolutionDownscaleActuator`:
a named, ordered list of resolutions a session may be stepped down
through when the CM deems every candidate infeasible at the requested
resolution (and stepped back up through when capacity frees).  Ladders
parse from the CLI (``--degrade-ladder 1080p,900p,720p``) via
:meth:`DegradeLadder.from_str`, accepting both named presets and raw
``WxH`` entries.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Resolution",
    "REFERENCE_RESOLUTION",
    "PRESET_RESOLUTIONS",
    "NAMED_RESOLUTIONS",
    "DegradeLadder",
    "DEFAULT_DEGRADE_LADDER",
]


@dataclass(frozen=True, order=True)
class Resolution:
    """A display resolution in pixels."""

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"resolution must be positive, got {self.width}x{self.height}")

    @property
    def pixels(self) -> int:
        """Total pixel count."""
        return self.width * self.height

    @property
    def megapixels(self) -> float:
        """Pixel count in units of 10^6."""
        return self.pixels / 1e6

    def pixel_ratio(self, reference: "Resolution | None" = None) -> float:
        """Pixel count relative to ``reference`` (default 1080p).

        The reference must carry a positive pixel count: a duck-typed
        reference with zero or negative ``pixels`` would silently divide
        into nonsense (or crash deep inside a scaling law), so it is
        rejected here at the boundary.
        """
        ref = reference if reference is not None else REFERENCE_RESOLUTION
        ref_pixels = getattr(ref, "pixels", None)
        if ref_pixels is None or ref_pixels <= 0:
            raise ValueError(
                f"pixel_ratio reference must have a positive pixel count, "
                f"got {ref!r}"
            )
        return self.pixels / ref_pixels

    def __str__(self) -> str:
        return f"{self.width}x{self.height}"

    def to_dict(self) -> dict:
        """Serialize to plain types."""
        return {"width": self.width, "height": self.height}

    @classmethod
    def from_dict(cls, data: dict) -> "Resolution":
        """Inverse of :meth:`to_dict`."""
        return cls(int(data["width"]), int(data["height"]))

    @classmethod
    def from_str(cls, text: str) -> "Resolution":
        """Parse a named preset (``"900p"``) or a ``WxH`` pair (``"1600x900"``).

        Raises :class:`ValueError` with a one-line message on malformed
        input — the CLI surfaces it verbatim as ``error: ...``.
        """
        token = text.strip().lower()
        if not token:
            raise ValueError("empty resolution")
        named = NAMED_RESOLUTIONS.get(token)
        if named is not None:
            return named
        if "x" in token:
            width_text, _, height_text = token.partition("x")
            try:
                return cls(int(width_text), int(height_text))
            except ValueError:
                pass
        known = ", ".join(sorted(NAMED_RESOLUTIONS))
        raise ValueError(
            f"bad resolution {text!r} (expected WxH like 1600x900, "
            f"or one of: {known})"
        )


REFERENCE_RESOLUTION = Resolution(1920, 1080)

#: Resolutions players may pick, mirroring common presets on the paper's
#: GTX 1060 testbed (a 1060 streams 720p-1080p; 1440p cloud gaming was not
#: served on this hardware class).
PRESET_RESOLUTIONS: tuple[Resolution, ...] = (
    Resolution(1280, 720),
    Resolution(1600, 900),
    Resolution(1920, 1080),
)

#: Named presets accepted wherever a resolution is parsed from text.
NAMED_RESOLUTIONS: dict[str, Resolution] = {
    "720p": Resolution(1280, 720),
    "900p": Resolution(1600, 900),
    "1080p": Resolution(1920, 1080),
    "1440p": Resolution(2560, 1440),
    "2160p": Resolution(3840, 2160),
    "4k": Resolution(3840, 2160),
}


@dataclass(frozen=True)
class DegradeLadder:
    """An ordered quality ladder for the resolution-downscale actuator.

    ``rungs`` are distinct resolutions sorted by descending pixel count;
    a session requested at some resolution may be placed (or re-placed)
    at any rung strictly below it, and promoted back up towards the
    requested resolution when capacity frees.
    """

    rungs: tuple[Resolution, ...]

    def __post_init__(self) -> None:
        if not self.rungs:
            raise ValueError("degrade ladder needs at least one resolution")
        ordered = tuple(
            sorted(self.rungs, key=lambda r: r.pixels, reverse=True)
        )
        if len({r.pixels for r in ordered}) != len(ordered):
            raise ValueError(
                "degrade ladder rungs must have distinct pixel counts, got "
                + ",".join(str(r) for r in self.rungs)
            )
        object.__setattr__(self, "rungs", ordered)

    def __len__(self) -> int:
        return len(self.rungs)

    def __iter__(self):
        return iter(self.rungs)

    def rungs_below(self, resolution: Resolution) -> tuple[Resolution, ...]:
        """Ladder rungs strictly below ``resolution``, best (largest) first."""
        return tuple(r for r in self.rungs if r.pixels < resolution.pixels)

    def rungs_between(
        self, floor: Resolution, ceiling: Resolution
    ) -> tuple[Resolution, ...]:
        """Rungs strictly above ``floor`` and strictly below ``ceiling``,
        best (largest) first — the intermediate promotion targets of the
        restore loop."""
        return tuple(
            r
            for r in self.rungs
            if floor.pixels < r.pixels < ceiling.pixels
        )

    def to_list(self) -> list[str]:
        """JSON-able form (``["1920x1080", ...]``, descending)."""
        return [str(r) for r in self.rungs]

    @classmethod
    def from_str(cls, text: str) -> "DegradeLadder":
        """Parse ``"1080p,900p,720p"`` (presets and/or ``WxH`` entries).

        Raises :class:`ValueError` with a one-line message on malformed
        input, surfaced by the CLI as ``error: ...``.
        """
        tokens = [chunk.strip() for chunk in text.split(",")]
        tokens = [t for t in tokens if t]
        if not tokens:
            raise ValueError(
                f"--degrade-ladder expects a comma-separated resolution "
                f"list, got {text!r}"
            )
        return cls(tuple(Resolution.from_str(token) for token in tokens))


#: The stock ladder: the preset resolutions, best first (1080p→900p→720p).
DEFAULT_DEGRADE_LADDER = DegradeLadder(PRESET_RESOLUTIONS)
