"""Genre archetypes driving the synthetic catalog.

Each genre carries sampling ranges for every hidden parameter of a game:
frame-loop stage costs, shared-resource utilizations, sensitivity magnitudes,
memory demands and scene-complexity dynamics.  Individual games draw
uniformly from their genre's ranges using a per-game RNG substream, which
yields the demand/FPS diversity of the paper's Figure 2 while keeping games
of a genre recognizably similar.

The numbers are calibrated to the paper's testbed scale: esports titles
render at 200-350 FPS solo, AAA open-world titles at 50-90 FPS, pairs of
mid-weight games usually stay above 60 FPS while four-way colocations
usually do not (Section 4: "most of the games run at very low frame rate
when they are colocated with four other games").
"""

from __future__ import annotations

import enum
from collections.abc import Mapping
from dataclasses import dataclass

from repro.hardware.resources import Resource

__all__ = ["Genre", "GenreArchetype", "genre_archetypes", "Range"]

#: Inclusive (low, high) sampling range.
Range = tuple[float, float]


class Genre(enum.Enum):
    """Game genres represented in the paper's 100-game list."""

    MOBA_ESPORTS = "moba-esports"
    AAA_OPEN_WORLD = "aaa-open-world"
    SHOOTER = "shooter"
    RPG = "rpg"
    STRATEGY = "strategy"
    INDIE = "indie"
    MMO = "mmo"
    SPORTS_RACING = "sports-racing"
    CARD_CASUAL = "card-casual"
    SIM_SANDBOX = "sim-sandbox"


@dataclass(frozen=True)
class GenreArchetype:
    """Sampling ranges for every hidden game parameter.

    ``util`` ranges cover the five non-compute resources (MEM-BW, LLC,
    GPU-BW, GPU-L2, PCIe-BW); CPU-CE and GPU-CE utilizations are derived
    from stage busy fractions at catalog-build time.  ``sensitivity`` ranges
    are inflation magnitudes for all seven resources.
    """

    genre: Genre
    cpu_time_ms: Range
    gpu_fixed_ms: Range
    gpu_per_mpix_ms: Range
    xfer_fixed_ms: Range
    xfer_per_mpix_ms: Range
    width_cpu: Range
    width_gpu: Range
    util: Mapping[Resource, Range]
    sensitivity: Mapping[Resource, Range]
    cpu_mem_gb: Range
    gpu_mem_gb: Range
    scene_rho: Range
    scene_sigma: Range

    def __post_init__(self) -> None:
        for res in (
            Resource.MEM_BW,
            Resource.LLC,
            Resource.GPU_BW,
            Resource.GPU_L2,
            Resource.PCIE_BW,
        ):
            if res not in self.util:
                raise ValueError(f"{self.genre}: util range missing for {res.label}")
        for res in Resource:
            if res not in self.sensitivity:
                raise ValueError(
                    f"{self.genre}: sensitivity range missing for {res.label}"
                )


def _stretch(r: Range, lo_factor: float, hi_factor: float, cap: float | None = None) -> Range:
    """Widen a sampling range around itself (diversity calibration).

    The paper stresses how widely games differ in sensitivity and intensity
    (Observations 1-3); stretching the per-genre ranges reproduces that
    within-genre spread, which in turn is what defeats partner-blind
    baselines like Sigmoid.
    """
    lo, hi = r
    lo = lo * lo_factor
    hi = hi * hi_factor
    if cap is not None:
        hi = min(hi, cap)
    return (lo, max(hi, lo + 1e-6))


def _arch(
    genre: Genre,
    *,
    cpu: Range,
    gpu_fixed: Range,
    gpu_mpix: Range,
    xfer_fixed: Range = (0.2, 0.6),
    xfer_mpix: Range = (0.05, 0.25),
    width_cpu: Range = (0.3, 0.8),
    width_gpu: Range = (0.6, 1.0),
    mem_bw: Range,
    llc: Range,
    gpu_bw: Range,
    gpu_l2: Range,
    pcie: Range,
    s_cpu: Range,
    s_mem: Range,
    s_llc: Range,
    s_gce: Range,
    s_gbw: Range,
    s_gl2: Range,
    s_pcie: Range,
    cpu_mem: Range,
    gpu_mem: Range,
    rho: Range = (0.90, 0.98),
    sigma: Range = (0.05, 0.15),
) -> GenreArchetype:
    return GenreArchetype(
        genre=genre,
        cpu_time_ms=cpu,
        gpu_fixed_ms=gpu_fixed,
        gpu_per_mpix_ms=gpu_mpix,
        xfer_fixed_ms=xfer_fixed,
        xfer_per_mpix_ms=xfer_mpix,
        width_cpu=width_cpu,
        width_gpu=width_gpu,
        util={
            Resource.MEM_BW: _stretch(mem_bw, 0.7, 1.2, cap=0.85),
            Resource.LLC: _stretch(llc, 0.7, 1.2, cap=0.85),
            Resource.GPU_BW: _stretch(gpu_bw, 0.7, 1.2, cap=0.85),
            Resource.GPU_L2: _stretch(gpu_l2, 0.7, 1.2, cap=0.85),
            Resource.PCIE_BW: _stretch(pcie, 0.7, 1.2, cap=0.85),
        },
        sensitivity={
            Resource.CPU_CE: _stretch(s_cpu, 0.7, 1.35),
            Resource.MEM_BW: _stretch(s_mem, 0.7, 1.35),
            Resource.LLC: _stretch(s_llc, 0.7, 1.35),
            Resource.GPU_CE: _stretch(s_gce, 0.7, 1.35),
            Resource.GPU_BW: _stretch(s_gbw, 0.7, 1.35),
            Resource.GPU_L2: _stretch(s_gl2, 0.7, 1.35),
            Resource.PCIE_BW: _stretch(s_pcie, 0.7, 1.35),
        },
        cpu_mem_gb=cpu_mem,
        gpu_mem_gb=gpu_mem,
        scene_rho=rho,
        scene_sigma=sigma,
    )


def genre_archetypes() -> dict[Genre, GenreArchetype]:
    """The archetype table for all ten genres."""
    return {
        Genre.MOBA_ESPORTS: _arch(
            Genre.MOBA_ESPORTS,
            cpu=(2.0, 4.0),
            gpu_fixed=(0.4, 1.0),
            gpu_mpix=(0.6, 1.3),
            width_cpu=(0.3, 0.6),
            mem_bw=(0.08, 0.22),
            llc=(0.10, 0.30),
            gpu_bw=(0.08, 0.22),
            gpu_l2=(0.08, 0.25),
            pcie=(0.04, 0.15),
            s_cpu=(0.6, 1.6),
            s_mem=(0.2, 0.8),
            s_llc=(0.3, 1.0),
            s_gce=(0.4, 1.2),
            s_gbw=(0.2, 0.7),
            s_gl2=(0.2, 0.8),
            s_pcie=(0.1, 0.5),
            cpu_mem=(0.5, 1.2),
            gpu_mem=(0.4, 0.9),
            sigma=(0.04, 0.10),
        ),
        Genre.AAA_OPEN_WORLD: _arch(
            Genre.AAA_OPEN_WORLD,
            cpu=(5.0, 11.0),
            gpu_fixed=(1.0, 2.5),
            gpu_mpix=(4.5, 8.0),
            xfer_fixed=(0.4, 1.0),
            xfer_mpix=(0.15, 0.45),
            width_cpu=(0.45, 0.9),
            mem_bw=(0.30, 0.60),
            llc=(0.30, 0.65),
            gpu_bw=(0.40, 0.75),
            gpu_l2=(0.30, 0.65),
            pcie=(0.15, 0.40),
            s_cpu=(0.5, 1.8),
            s_mem=(0.5, 1.5),
            s_llc=(0.5, 1.6),
            s_gce=(0.8, 2.4),
            s_gbw=(0.6, 1.8),
            s_gl2=(0.5, 1.5),
            s_pcie=(0.3, 1.0),
            cpu_mem=(1.0, 2.0),
            gpu_mem=(0.8, 1.5),
            sigma=(0.10, 0.20),
        ),
        Genre.SHOOTER: _arch(
            Genre.SHOOTER,
            cpu=(3.0, 6.5),
            gpu_fixed=(0.8, 1.8),
            gpu_mpix=(2.4, 4.5),
            width_cpu=(0.4, 0.8),
            mem_bw=(0.20, 0.45),
            llc=(0.20, 0.50),
            gpu_bw=(0.25, 0.55),
            gpu_l2=(0.20, 0.50),
            pcie=(0.10, 0.30),
            s_cpu=(0.5, 1.6),
            s_mem=(0.4, 1.2),
            s_llc=(0.4, 1.3),
            s_gce=(0.7, 2.0),
            s_gbw=(0.5, 1.5),
            s_gl2=(0.4, 1.2),
            s_pcie=(0.2, 0.8),
            cpu_mem=(0.8, 1.7),
            gpu_mem=(0.6, 1.2),
        ),
        Genre.RPG: _arch(
            Genre.RPG,
            cpu=(3.0, 7.0),
            gpu_fixed=(0.8, 2.0),
            gpu_mpix=(2.0, 4.8),
            mem_bw=(0.18, 0.42),
            llc=(0.20, 0.50),
            gpu_bw=(0.22, 0.55),
            gpu_l2=(0.20, 0.50),
            pcie=(0.08, 0.28),
            s_cpu=(0.6, 2.2),
            s_mem=(0.4, 1.3),
            s_llc=(0.5, 1.5),
            s_gce=(0.6, 2.0),
            s_gbw=(0.4, 1.4),
            s_gl2=(0.4, 1.3),
            s_pcie=(0.2, 0.8),
            cpu_mem=(0.8, 1.7),
            gpu_mem=(0.5, 1.1),
        ),
        Genre.STRATEGY: _arch(
            Genre.STRATEGY,
            cpu=(6.0, 12.0),
            gpu_fixed=(0.6, 1.5),
            gpu_mpix=(1.0, 2.4),
            width_cpu=(0.5, 0.95),
            mem_bw=(0.25, 0.52),
            llc=(0.30, 0.60),
            gpu_bw=(0.12, 0.32),
            gpu_l2=(0.12, 0.35),
            pcie=(0.05, 0.18),
            s_cpu=(1.0, 2.6),
            s_mem=(0.6, 1.6),
            s_llc=(0.6, 1.8),
            s_gce=(0.3, 1.0),
            s_gbw=(0.2, 0.8),
            s_gl2=(0.2, 0.8),
            s_pcie=(0.1, 0.5),
            cpu_mem=(0.8, 1.8),
            gpu_mem=(0.4, 0.9),
            sigma=(0.05, 0.12),
        ),
        Genre.INDIE: _arch(
            Genre.INDIE,
            cpu=(2.0, 4.5),
            gpu_fixed=(0.3, 1.0),
            gpu_mpix=(0.5, 2.0),
            width_cpu=(0.25, 0.5),
            mem_bw=(0.05, 0.18),
            llc=(0.08, 0.25),
            gpu_bw=(0.06, 0.20),
            gpu_l2=(0.06, 0.22),
            pcie=(0.03, 0.12),
            s_cpu=(0.4, 1.2),
            s_mem=(0.2, 0.7),
            s_llc=(0.2, 0.8),
            s_gce=(0.3, 1.0),
            s_gbw=(0.2, 0.6),
            s_gl2=(0.2, 0.6),
            s_pcie=(0.1, 0.4),
            cpu_mem=(0.4, 0.9),
            gpu_mem=(0.25, 0.6),
            sigma=(0.03, 0.08),
        ),
        Genre.MMO: _arch(
            Genre.MMO,
            cpu=(4.0, 8.0),
            gpu_fixed=(0.8, 1.8),
            gpu_mpix=(1.5, 3.5),
            width_cpu=(0.4, 0.8),
            mem_bw=(0.20, 0.45),
            llc=(0.25, 0.55),
            gpu_bw=(0.18, 0.45),
            gpu_l2=(0.18, 0.45),
            pcie=(0.08, 0.25),
            s_cpu=(0.8, 2.2),
            s_mem=(0.5, 1.4),
            s_llc=(0.5, 1.6),
            s_gce=(0.5, 1.8),
            s_gbw=(0.4, 1.2),
            s_gl2=(0.3, 1.1),
            s_pcie=(0.2, 0.7),
            cpu_mem=(0.8, 1.7),
            gpu_mem=(0.5, 1.1),
        ),
        Genre.SPORTS_RACING: _arch(
            Genre.SPORTS_RACING,
            cpu=(3.0, 6.0),
            gpu_fixed=(0.8, 1.6),
            gpu_mpix=(2.0, 4.0),
            mem_bw=(0.18, 0.40),
            llc=(0.18, 0.45),
            gpu_bw=(0.22, 0.50),
            gpu_l2=(0.18, 0.45),
            pcie=(0.10, 0.28),
            s_cpu=(0.5, 1.5),
            s_mem=(0.4, 1.1),
            s_llc=(0.4, 1.2),
            s_gce=(0.6, 1.8),
            s_gbw=(0.5, 1.4),
            s_gl2=(0.4, 1.1),
            s_pcie=(0.2, 0.7),
            cpu_mem=(0.7, 1.6),
            gpu_mem=(0.5, 1.1),
            sigma=(0.06, 0.14),
        ),
        Genre.CARD_CASUAL: _arch(
            Genre.CARD_CASUAL,
            cpu=(1.8, 3.2),
            gpu_fixed=(0.3, 0.8),
            gpu_mpix=(0.4, 1.2),
            xfer_fixed=(0.1, 0.3),
            xfer_mpix=(0.02, 0.10),
            width_cpu=(0.25, 0.45),
            mem_bw=(0.03, 0.10),
            llc=(0.05, 0.18),
            gpu_bw=(0.03, 0.12),
            gpu_l2=(0.04, 0.15),
            pcie=(0.02, 0.08),
            s_cpu=(0.3, 0.9),
            s_mem=(0.1, 0.5),
            s_llc=(0.2, 0.6),
            s_gce=(0.2, 0.8),
            s_gbw=(0.1, 0.5),
            s_gl2=(0.1, 0.5),
            s_pcie=(0.05, 0.3),
            cpu_mem=(0.3, 0.7),
            gpu_mem=(0.15, 0.45),
            sigma=(0.02, 0.06),
        ),
        Genre.SIM_SANDBOX: _arch(
            Genre.SIM_SANDBOX,
            cpu=(3.0, 8.0),
            gpu_fixed=(0.5, 1.4),
            gpu_mpix=(0.8, 2.2),
            width_cpu=(0.35, 0.75),
            mem_bw=(0.15, 0.38),
            llc=(0.18, 0.45),
            gpu_bw=(0.10, 0.30),
            gpu_l2=(0.10, 0.32),
            pcie=(0.05, 0.18),
            s_cpu=(0.7, 2.0),
            s_mem=(0.4, 1.2),
            s_llc=(0.5, 1.4),
            s_gce=(0.3, 1.2),
            s_gbw=(0.2, 0.8),
            s_gl2=(0.2, 0.8),
            s_pcie=(0.1, 0.5),
            cpu_mem=(0.6, 1.5),
            gpu_mem=(0.35, 0.8),
        ),
    }
