"""Catalog self-validation against the paper's Observations 1-8.

The synthetic catalog only earns its role as a testbed substitute if it
exhibits the empirical structure the paper measured on real games.  This
module checks each observation mechanically over a catalog's hidden
parameters and returns structured reports — used by the test suite, and
available to anyone regenerating a catalog with different seeds or
archetypes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.games.catalog import GameCatalog
from repro.games.curves import CurveShape
from repro.games.game import PIXEL_SCALED_RESOURCES
from repro.games.resolution import Resolution
from repro.hardware.resources import CPU_RESOURCES, Resource

__all__ = ["ObservationReport", "validate_catalog"]


@dataclass(frozen=True)
class ObservationReport:
    """Outcome of checking one observation over a catalog."""

    observation: str
    description: str
    passed: bool
    detail: str


def _obs1_multi_resource_sensitivity(catalog: GameCatalog) -> ObservationReport:
    counts = [
        sum(1 for res in Resource if g.sensitivity[res].magnitude > 0.3)
        for g in catalog
    ]
    fraction = float(np.mean([c >= 3 for c in counts]))
    return ObservationReport(
        observation="Obs 1",
        description="games are sensitive to many shared resources",
        passed=fraction > 0.7,
        detail=f"{fraction:.0%} of games have >=3 resources with magnitude > 0.3",
    )


def _obs2_sensitivity_intensity_decoupled(catalog: GameCatalog) -> ObservationReport:
    correlations = []
    for res in Resource:
        mags = np.array([g.sensitivity[res].magnitude for g in catalog])
        utils = np.array([g.base_util[res] for g in catalog])
        if mags.std() > 0 and utils.std() > 0:
            correlations.append(abs(float(np.corrcoef(mags, utils)[0, 1])))
    worst = max(correlations)
    return ObservationReport(
        observation="Obs 2",
        description="sensitivity is not determined by intensity",
        passed=worst < 0.7,
        detail=f"max |corr(magnitude, utilization)| over resources = {worst:.2f}",
    )


def _obs3_per_resource_diversity(catalog: GameCatalog) -> ObservationReport:
    spreads = []
    for res in Resource:
        inflations = np.array([g.sensitivity[res].inflation(1.0) for g in catalog])
        spreads.append(float(inflations.max() - inflations.min()))
    return ObservationReport(
        observation="Obs 3",
        description="different games differ on the same resource",
        passed=min(spreads) > 0.3,
        detail=f"min/max worst-case inflation spread = {min(spreads):.2f}/{max(spreads):.2f}",
    )


def _obs4_nonlinear_shapes(catalog: GameCatalog) -> ObservationReport:
    total = nonlinear = 0
    for g in catalog:
        for res in Resource:
            total += 1
            if g.sensitivity[res].shape is not CurveShape.LINEAR:
                nonlinear += 1
    fraction = nonlinear / total
    return ObservationReport(
        observation="Obs 4",
        description="sensitivity curves are mostly nonlinear",
        passed=fraction > 0.5,
        detail=f"{fraction:.0%} of per-resource shapes are nonlinear",
    )


def _obs6_resolution_invariant_sensitivity(catalog: GameCatalog) -> ObservationReport:
    # Shapes carry no resolution dependence by construction; verify the
    # evaluation API honours that for a probe of games and pressures.
    probe = catalog.games()[:5]
    pressures = np.linspace(0.0, 1.0, 5)
    ok = all(
        np.allclose(
            g.sensitivity[res].inflation(pressures),
            g.sensitivity[res].inflation(pressures),
        )
        for g in probe
        for res in Resource
    )
    return ObservationReport(
        observation="Obs 6",
        description="sensitivity curves are resolution-independent",
        passed=ok,
        detail="inflation responses carry no resolution parameter",
    )


def _obs7_cpu_side_intensity_stable(catalog: GameCatalog) -> ObservationReport:
    r720, r1080 = Resolution(1280, 720), Resolution(1920, 1080)
    worst = 0.0
    for g in catalog:
        u720 = g.utilization(r720)
        u1080 = g.utilization(r1080)
        for res in CPU_RESOURCES:
            worst = max(worst, abs(u720[res] - u1080[res]))
    return ObservationReport(
        observation="Obs 7",
        description="CPU-side utilization is resolution-independent",
        passed=worst < 1e-9,
        detail=f"max CPU-side utilization shift across resolutions = {worst:.2e}",
    )


def _obs8_gpu_side_affine(catalog: GameCatalog) -> ObservationReport:
    resolutions = [Resolution(1280, 720), Resolution(1600, 900), Resolution(1920, 1080)]
    mpix = np.array([r.megapixels for r in resolutions])
    worst = 0.0
    for g in catalog.games()[:20]:
        for res in PIXEL_SCALED_RESOURCES:
            values = np.array([g.utilization(r)[res] for r in resolutions])
            if np.any(values >= 1.0):
                continue  # clamped at capacity
            fitted = np.polyval(np.polyfit(mpix, values, 1), mpix)
            worst = max(worst, float(np.max(np.abs(values - fitted))))
    return ObservationReport(
        observation="Obs 8",
        description="GPU-side utilization is affine in pixel count",
        passed=worst < 1e-6,
        detail=f"max residual from the affine fit = {worst:.2e}",
    )


def _fps_diversity(catalog: GameCatalog) -> ObservationReport:
    fps = np.array(
        [g.solo_fps_nominal(Resolution(1920, 1080)) for g in catalog]
    )
    ratio = float(fps.max() / fps.min())
    return ObservationReport(
        observation="Fig 2b",
        description="solo frame rates span a wide range",
        passed=ratio > 3.0 and fps.min() > 25.0,
        detail=f"solo FPS {fps.min():.0f} .. {fps.max():.0f} (ratio {ratio:.1f}x)",
    )


def validate_catalog(catalog: GameCatalog) -> list[ObservationReport]:
    """Check the paper's observations over ``catalog``; returns all reports.

    Observation 5 (non-additive intensity) is a property of the contention
    combinators rather than the catalog; it is validated in
    :mod:`repro.hardware.contention`'s tests and Figure 6's bench.
    """
    return [
        _obs1_multi_resource_sensitivity(catalog),
        _obs2_sensitivity_intensity_decoupled(catalog),
        _obs3_per_resource_diversity(catalog),
        _obs4_nonlinear_shapes(catalog),
        _obs6_resolution_invariant_sensitivity(catalog),
        _obs7_cpu_side_intensity_stable(catalog),
        _obs8_gpu_side_affine(catalog),
        _fps_diversity(catalog),
    ]
