"""Offline frontend: batch-clocked simulation over the placement core.

This is the driver behind
:func:`repro.scheduling.dynamic.simulate_sessions`: it sorts a session
trace by arrival, advances a virtual clock through arrivals and
departures on a shared :class:`~repro.placement.fleet.FleetState`, and
routes every placement decision through a strict
:class:`~repro.placement.engine.DecisionEngine` — the same dispatch path
the online serving broker uses, which is what makes offline/online
placement parity structural rather than test-enforced.

Ground truth for QoS violations comes from the simulator: every distinct
server composition is measured once (memoized by canonical signature)
and violation time is charged per session for every interval its
server's *measured* frame rate sits below the floor.  The engine runs
``strict=True`` here: a broken policy should crash the experiment, not
silently consolidate onto dedicated servers.
"""

from __future__ import annotations

import time as _time
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.training import ColocationSpec
from repro.games.catalog import GameCatalog
from repro.hardware.server import DEFAULT_SERVER, ServerSpec
from repro.placement.engine import DecisionEngine
from repro.placement.fleet import FleetState, Session
from repro.placement.policies import AdmissionPolicy, OfflinePolicyAdapter
from repro.placement.signature import Signature
from repro.simulator.measurement import MeasurementConfig, run_colocation

__all__ = ["DynamicMetrics", "simulate_sessions"]


@dataclass
class DynamicMetrics:
    """Outcome of a dynamic simulation."""

    n_sessions: int
    server_minutes: float
    dedicated_server_minutes: float
    peak_servers: int
    violation_minutes: float
    session_minutes: float
    #: Total servers ever opened (stable ids; default 0 keeps older
    #: call sites that construct metrics positionally working).
    servers_opened: int = 0

    @property
    def utilization_gain(self) -> float:
        """Server-time saved vs dedicated provisioning."""
        if self.dedicated_server_minutes == 0:
            return 0.0
        return 1.0 - self.server_minutes / self.dedicated_server_minutes

    @property
    def violation_fraction(self) -> float:
        """Fraction of total session-time spent below the QoS floor."""
        return (
            self.violation_minutes / self.session_minutes
            if self.session_minutes
            else 0.0
        )


def simulate_sessions(
    catalog: GameCatalog,
    sessions: Sequence[Session],
    policy,
    *,
    qos: float = 60.0,
    server: ServerSpec = DEFAULT_SERVER,
    config: MeasurementConfig | None = None,
    telemetry=None,
    ledger=None,
    downscale_ladder=None,
    restore_interval: int | None = None,
) -> DynamicMetrics:
    """Event-driven simulation of a placement policy over a session trace.

    ``policy`` is either an :class:`~repro.placement.policies.AdmissionPolicy`
    object or a bare ``(signatures, session) -> index | None`` callable
    (the offline style), which is adapted on the fly.

    Violation time is charged per session for every interval during which
    the *measured* frame rate of its server's composition is below ``qos``.

    ``telemetry`` (a :class:`repro.obs.Telemetry`, duck-typed) makes
    the simulator self-profiling: each arrival's full round is timed into
    the ``sim_round_s`` histogram and the placement decision alone into
    ``sim_decision_s``, with ``sim_arrivals``/``sim_measurements``
    counters — the same instruments the online broker records, so offline
    and serving runs are comparable in ``repro metrics diff``.

    ``ledger`` (a :class:`repro.obs.qos.QoSLedger`) rides the fleet as a
    mutation observer and books per-session calibration and SLO samples
    against the same ground-truth oracle this driver scores with — a
    ledger built with the same ``server``/``config``/target reproduces
    this function's violation-minutes accounting, which the qos test
    suite cross-checks.

    ``downscale_ladder`` (a :class:`repro.games.DegradeLadder`) arms the
    engine's resolution-downscale actuator — sessions the policy cannot
    colocate at their requested resolution are retried at lower ladder
    rungs before a new server opens; ``restore_interval`` (arrivals)
    periodically re-promotes degraded sessions capacity now allows.
    Both default to off, leaving the simulation byte-identical to the
    pre-actuator driver.
    """
    member: AdmissionPolicy = (
        policy if callable(getattr(policy, "select", None))
        else OfflinePolicyAdapter(policy)
    )
    if restore_interval is not None and restore_interval <= 0:
        raise ValueError(f"restore_interval must be positive, got {restore_interval}")
    # The engine keeps its own private telemetry: the caller-visible
    # snapshot carries exactly the sim_* instruments documented above.
    engine = DecisionEngine(member, strict=True, downscale_ladder=downscale_ladder)
    fleet = FleetState(observer=ledger)

    sessions = sorted(sessions, key=lambda s: s.arrival)
    fps_cache: dict[Signature, tuple[float, ...]] = {}

    def measured_fps(sig: Signature) -> tuple[float, ...]:
        if sig not in fps_cache:
            result = run_colocation(
                ColocationSpec(sig).instances(catalog), server=server, config=config
            )
            fps_cache[sig] = result.fps
            if telemetry is not None:
                telemetry.counter("sim_measurements").inc()
        return fps_cache[sig]

    server_minutes = 0.0
    violation_minutes = 0.0
    last_time = 0.0

    def accrue(until: float) -> None:
        nonlocal server_minutes, violation_minutes, last_time
        dt = until - last_time
        if dt > 0:
            server_minutes += dt * fleet.n_open
            for sig in fleet.signatures():
                fps = measured_fps(sig)
                violation_minutes += dt * sum(1 for f in fps if f < qos)
        last_time = until

    for arrival_no, session in enumerate(sessions):
        round_start = _time.perf_counter()
        if ledger is not None:
            ledger.advance(session.arrival)
        fleet.pop_departures(session.arrival, before_each=accrue)
        accrue(session.arrival)
        if (
            restore_interval is not None
            and arrival_no
            and arrival_no % restore_interval == 0
            and engine.can_restore
        ):
            engine.restore(fleet)
        if telemetry is not None:
            decision_start = _time.perf_counter()
            engine.admit(fleet, session)
            telemetry.histogram("sim_decision_s").observe(
                _time.perf_counter() - decision_start
            )
            telemetry.counter("sim_arrivals").inc()
            telemetry.histogram("sim_round_s").observe(
                _time.perf_counter() - round_start
            )
        else:
            engine.admit(fleet, session)

    end = max(s.departure for s in sessions)
    if ledger is not None:
        ledger.advance(end)
    fleet.pop_departures(end, before_each=accrue)
    accrue(end)
    if ledger is not None:
        ledger.finalize()

    return DynamicMetrics(
        n_sessions=len(sessions),
        server_minutes=server_minutes,
        dedicated_server_minutes=sum(s.duration for s in sessions),
        peak_servers=fleet.peak,
        violation_minutes=violation_minutes,
        session_minutes=sum(s.duration for s in sessions),
        servers_opened=fleet.servers_opened,
    )
