"""Canonical server signatures and colocation cache keys.

One module owns the canonicalization contract that the whole placement
stack relies on: a server's *signature* is the sorted tuple of its
hosted ``(game, resolution)`` entries, so two servers hosting the same
multiset of games compare equal regardless of arrival order, and a
colocation's *cache key* folds that signature (resolution expanded to
``(width, height)`` for plain-tuple hashing) together with the optional
QoS floor.  Interference predictions are pure functions of the
colocation multiset — the Eq. 5 aggregate is symmetric in the
co-runners — so any permutation of the same entries must map to the same
signature and the same cache line.

Everything placement-shaped builds on these helpers: the
:class:`~repro.placement.fleet.FleetState` bookkeeping, the admission
policies' candidate construction, and the
:class:`~repro.placement.cache.PredictionCache` key schema.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.games.resolution import Resolution

__all__ = [
    "Signature",
    "entry_of",
    "signature_of",
    "signature_add",
    "colocation_key",
]

#: A server signature: sorted tuple of (game, resolution) entries.
Signature = tuple[tuple[str, Resolution], ...]


def entry_of(session) -> tuple[str, Resolution]:
    """The ``(game, resolution)`` entry a session contributes to a server.

    ``session`` is anything with ``game`` and ``resolution`` attributes
    (:class:`repro.placement.fleet.Session`,
    :class:`repro.scheduling.requests.GameRequest`, ...).
    """
    return (session.game, session.resolution)


def signature_of(sessions: Iterable) -> Signature:
    """Canonical signature of the sessions hosted on one server."""
    return tuple(sorted(entry_of(s) for s in sessions))


def signature_add(signature: Signature, entry: tuple[str, Resolution]) -> Signature:
    """The canonical signature after adding one ``(game, resolution)`` entry."""
    return tuple(sorted(signature + (entry,)))


def colocation_key(
    entries: Iterable[tuple[str, Resolution]], qos: float | None = None
) -> tuple:
    """Canonical, order-insensitive cache key for a colocation.

    ``entries`` is any iterable of ``(game, resolution)`` pairs (a
    signature, or :attr:`ColocationSpec.entries`); ``qos`` folds the CM
    floor into the key so verdicts at different floors never collide.
    Permutations of the same multiset map to the same key.
    """
    signature = tuple(
        sorted((name, res.width, res.height) for name, res in entries)
    )
    return (signature, None if qos is None else float(qos))
