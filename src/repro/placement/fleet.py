"""Fleet state: the server-pool bookkeeping both frontends share.

Before this core existed, the offline simulator
(:func:`repro.scheduling.dynamic.simulate_sessions`) and the online
broker (:class:`repro.serving.RequestBroker`) each carried their own
copy of the same bookkeeping — a dict of server compositions, a
departure heap, peak tracking — proven equivalent only by parity tests.
:class:`FleetState` is the single implementation: servers are stable
integer ids hosting lists of live sessions, members are kept in
departure order (earliest-ending first), and every admitted session gets
a monotonically increasing *member id* so crash evictions can be
re-ordered deterministically regardless of any container iteration
order.

Mutation goes through three verbs — :meth:`place` (admit a session, on
an existing server or a fresh one), :meth:`pop_departures` (retire
sessions whose time has come), and :meth:`crash` (evict a whole server)
— which is what lets :class:`repro.placement.DecisionEngine` be the only
place placement decisions turn into fleet changes.

A fourth verb, :meth:`update_resolution`, supports the resolution
actuator: it swaps one member's session for a same-game, same-departure
copy at a different resolution, adjusting the server signature in place
— the restore loop's promotion primitive (and, symmetrically, how an
in-place downscale would land).

An optional *observer* (duck-typed: ``fleet_placed`` /
``fleet_departed`` / ``fleet_evicted``, plus the optional
``fleet_resolution_changed``) is notified synchronously after each
mutation with the stable member ids involved — the hook the QoS ledger
(:class:`repro.obs.qos.QoSLedger`) uses to mirror group composition
without the fleet knowing anything about QoS.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass, replace

from repro.games.resolution import Resolution
from repro.placement.signature import Signature, entry_of, signature_add

__all__ = ["Session", "FleetState", "degraded_to", "promoted_to"]


@dataclass(frozen=True)
class Session:
    """One play session: a game at a resolution over [arrival, arrival+duration).

    ``resolution`` is the resolution the session is currently served at;
    ``requested`` remembers the player's original request when the
    downscale actuator placed (or re-placed) the session below it.  A
    session with ``requested`` unset was never degraded.  Because the
    whole :class:`Session` object travels through crash eviction,
    readmission, shard migration, and failover, degraded state survives
    all of them without any side-channel bookkeeping.
    """

    game: str
    resolution: Resolution
    arrival: float
    duration: float
    requested: Resolution | None = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.arrival < 0:
            raise ValueError("arrival must be >= 0")
        if (
            self.requested is not None
            and self.requested.pixels < self.resolution.pixels
        ):
            raise ValueError(
                "requested resolution must not be below the served one"
            )

    @property
    def departure(self) -> float:
        """The instant the session ends."""
        return self.arrival + self.duration

    @property
    def degraded(self) -> bool:
        """Whether the session is currently served below its request."""
        return self.requested is not None and self.resolution != self.requested


def degraded_to(session: Session, resolution: Resolution) -> Session:
    """Copy of ``session`` served at a lower ``resolution``.

    The original request is remembered (first degradation pins it;
    further degradations keep the original, not the intermediate rung).
    """
    requested = session.requested if session.requested is not None else session.resolution
    return replace(session, resolution=resolution, requested=requested)


def promoted_to(session: Session, resolution: Resolution) -> Session:
    """Copy of ``session`` promoted towards its request.

    ``requested`` is kept even on a full restore — `degraded` turns
    False by equality, and the QoS ledger still knows the session spent
    time below its request.
    """
    return replace(session, resolution=resolution)


class FleetState:
    """Servers, member signatures, and arrival/departure bookkeeping.

    The pool grows on demand (:meth:`place` with ``choice=None``) and
    shrinks when servers empty; ``peak`` records the largest
    simultaneous pool observed after any placement.  Iteration order of
    the open servers is insertion order (stable ids ascending within one
    run), and the index a policy returns is interpreted against exactly
    the :meth:`signatures` list of the same instant.
    """

    def __init__(self, observer=None) -> None:
        # Duck-typed mutation observer (fleet_placed / fleet_departed /
        # fleet_evicted), or None for zero-overhead operation.
        self.observer = observer
        # server id -> members as (member_id, session), departure-ordered.
        self._servers: dict[int, list[tuple[int, Session]]] = {}
        # server id -> canonical signature, maintained incrementally in
        # lockstep with _servers (same insertion order, same deletions)
        # so signatures() is a values() copy instead of a per-server
        # re-sort on every decision.
        self._signatures: dict[int, Signature] = {}
        # Open-server ids in pool order, mirrored from _servers so
        # place() resolves a policy's index without materializing the
        # key list per decision.
        self._ids: list[int] = []
        self._departures: list[tuple[float, int, int]] = []  # (time, seq, server)
        self._next_server_id = 0
        self._next_member_id = 0
        self._seq = 0
        self._n_live = 0
        self._n_degraded = 0
        self.peak = 0

    # -- read side ------------------------------------------------------

    @property
    def n_open(self) -> int:
        """Number of currently open (non-empty) servers."""
        return len(self._servers)

    @property
    def n_live(self) -> int:
        """Live (placed, not yet departed or evicted) sessions fleet-wide.

        Maintained incrementally so occupancy checks — the sharded
        tier's rebalancer compares this across shards on every cycle —
        stay O(1) regardless of pool size.
        """
        return self._n_live

    @property
    def n_degraded(self) -> int:
        """Live sessions currently served below their requested resolution.

        Maintained incrementally so the restore loop's fast path — "is
        there anything to promote at all?" — is O(1) per barrier.
        """
        return self._n_degraded

    def degraded_members(self) -> list[tuple[int, int, Session]]:
        """Degraded live sessions as ``(server_id, member_id, session)``.

        Ordered by member id (admission order) so restore trajectories
        are deterministic: the longest-degraded session gets first claim
        on freed capacity, and no container iteration order leaks in.
        """
        out = [
            (server_id, member_id, session)
            for server_id, members in self._servers.items()
            for member_id, session in members
            if session.degraded
        ]
        out.sort(key=lambda m: m[1])
        return out

    def server_signature(self, server_id: int) -> Signature:
        """Canonical signature of one open server."""
        return self._signatures[server_id]

    def loads(self) -> dict[int, int]:
        """Member count per open server, in pool (decision-index) order."""
        return {sid: len(members) for sid, members in self._servers.items()}

    @property
    def servers_opened(self) -> int:
        """Total servers ever opened (stable ids are never reused)."""
        return self._next_server_id

    def server_ids(self) -> list[int]:
        """Stable ids of the open servers, in pool (decision-index) order."""
        return list(self._ids)

    def signatures(self) -> list[Signature]:
        """Canonical signatures of the open servers, in pool order.

        This is the list placement policies decide against; the index a
        policy returns is a position in this list.  Signatures are
        maintained under mutation (each verb touches only the affected
        server), so this is a pool-order copy, not a recomputation.
        """
        return list(self._signatures.values())

    def members(self, server_id: int) -> list[Session]:
        """Live sessions hosted on ``server_id``, departure-ordered."""
        return [s for _, s in self._servers[server_id]]

    # -- mutation -------------------------------------------------------

    def place(self, choice: int | None, session: Session) -> int:
        """Apply a placement decision; returns the hosting server's id.

        ``choice`` is a policy's index into the current :meth:`signatures`
        list, or ``None`` to open a fresh server.  The session's
        departure is scheduled and the member list re-sorted so the
        earliest-ending session leaves first.
        """
        member = (self._next_member_id, session)
        self._next_member_id += 1
        if choice is None:
            server_id = self._next_server_id
            self._next_server_id += 1
            self._servers[server_id] = [member]
            self._signatures[server_id] = (entry_of(session),)
            self._ids.append(server_id)
        else:
            server_id = self._ids[choice]
            hosted = self._servers[server_id]
            hosted.append(member)
            # Keep departure order: earliest-ending session leaves first.
            hosted.sort(key=lambda m: m[1].departure)
            self._signatures[server_id] = signature_add(
                self._signatures[server_id], entry_of(session)
            )
        heapq.heappush(self._departures, (session.departure, self._seq, server_id))
        self._seq += 1
        self._n_live += 1
        if session.degraded:
            self._n_degraded += 1
        self.peak = max(self.peak, len(self._servers))
        if self.observer is not None:
            self.observer.fleet_placed(server_id, member[0], session)
        return server_id

    def pop_departures(
        self, until: float, *, before_each: Callable[[float], None] | None = None
    ) -> int:
        """Retire every session departing at or before ``until``.

        Servers that empty leave the pool.  ``before_each`` (if given) is
        called with the departure time just before each member is
        removed — the offline frontend uses it to accrue server-time and
        QoS-violation time up to that instant.  Departure entries whose
        server already vanished (crashed) are skipped silently: a
        crashed server's sessions were re-admitted under new entries.
        Returns the number of sessions actually retired.
        """
        removed = 0
        while self._departures and self._departures[0][0] <= until:
            t, _, server_id = heapq.heappop(self._departures)
            members = self._servers.get(server_id)
            if members is None:
                continue
            if before_each is not None:
                before_each(t)
            member_id, session = members.pop(0)
            if not members:
                del self._servers[server_id]
                del self._signatures[server_id]
                self._ids.remove(server_id)
            else:
                # Drop one occurrence of the departing entry; removal
                # from a sorted tuple keeps it canonical.
                sig = self._signatures[server_id]
                i = sig.index(entry_of(session))
                self._signatures[server_id] = sig[:i] + sig[i + 1 :]
            removed += 1
            if session.degraded:
                self._n_degraded -= 1
            if self.observer is not None:
                self.observer.fleet_departed(server_id, member_id, session, t)
        self._n_live -= removed
        return removed

    def update_resolution(
        self, server_id: int, member_id: int, session: Session
    ) -> None:
        """Swap member ``member_id``'s session for a resolution-changed copy.

        The replacement must be the same session at a different
        resolution (same game, same interval) — this verb changes *how*
        a session is served, never *what* is served or *when* it leaves,
        so departure bookkeeping and member ids stay untouched.  The
        server's signature is re-canonicalized for the one changed
        entry.
        """
        members = self._servers[server_id]
        for pos, (mid, old) in enumerate(members):
            if mid == member_id:
                break
        else:
            raise KeyError(f"member {member_id} not on server {server_id}")
        if (
            session.game != old.game
            or session.arrival != old.arrival
            or session.duration != old.duration
        ):
            raise ValueError(
                "update_resolution may only change the resolution of a session"
            )
        members[pos] = (member_id, session)
        sig = self._signatures[server_id]
        i = sig.index(entry_of(old))
        self._signatures[server_id] = signature_add(
            sig[:i] + sig[i + 1 :], entry_of(session)
        )
        self._n_degraded += int(session.degraded) - int(old.degraded)
        hook = getattr(self.observer, "fleet_resolution_changed", None)
        if callable(hook):
            hook(server_id, member_id, old, session)

    def crash(self, server_id: int) -> list[Session]:
        """Evict ``server_id`` wholesale, returning its live sessions.

        The evicted sessions are ordered by *member id* (admission
        order), making crash → evict → readmission trajectories a pure
        function of the crash RNG: no dict or member-list iteration
        order can leak into who re-enters admission first.  Stale
        departure entries for the crashed server remain in the heap and
        are skipped by :meth:`pop_departures`.
        """
        members = self._servers.pop(server_id)
        del self._signatures[server_id]
        self._ids.remove(server_id)
        self._n_live -= len(members)
        self._n_degraded -= sum(1 for _, s in members if s.degraded)
        ordered = sorted(members, key=lambda m: m[0])
        if self.observer is not None:
            self.observer.fleet_evicted(server_id, ordered)
        return [s for _, s in ordered]
