"""The canonical placement policies behind one interface.

Every policy answers the same question in both the offline scheduling
simulator and the online serving broker — given the signatures of the
currently open servers and an arriving session, which server takes it
(``None`` opens a fresh one)?  These are the *only* implementations:
:func:`repro.scheduling.dynamic.cm_feasible_policy` and friends are thin
factories over the classes here, and the serving stack dispatches them
through :class:`repro.placement.DecisionEngine`, so offline/online
decision parity holds by construction rather than by duplicated code.

The prediction-guided policies route all model queries through a shared
:class:`PredictionCache` and the predictor's batched API — one
``predict_batch`` call scores every uncached candidate for an arrival —
so scanning a pool of candidate servers costs one model invocation, not
one per candidate.  Predictors that lack the batched endpoints are
still served via per-candidate calls.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Protocol

import numpy as np

from repro.baselines.vbp import VBPJudge
from repro.core.training import ColocationSpec
from repro.hardware.server import DEFAULT_SERVER, ServerSpec
from repro.obs.tracing import NOOP_TRACER
from repro.placement.cache import PredictionCache
from repro.placement.signature import (
    Signature,
    colocation_key,
    entry_of,
    signature_add,
)

__all__ = [
    "Signature",
    "AdmissionPolicy",
    "CMFeasiblePolicy",
    "MaxFPSPolicy",
    "WorstFitPolicy",
    "VBPFirstFitPolicy",
    "DedicatedPolicy",
    "OfflinePolicyAdapter",
    "POLICY_NAMES",
    "build_policy",
]

#: CLI-facing policy names accepted by :func:`build_policy`.
POLICY_NAMES: tuple[str, ...] = ("cm-feasible", "max-fps", "worst-fit", "dedicated")


class AdmissionPolicy(Protocol):
    """The policy interface: pick a server index for a session, or ``None``.

    ``session`` is anything with ``game`` and ``resolution`` attributes
    (:class:`repro.placement.fleet.Session`,
    :class:`repro.scheduling.requests.GameRequest`, ...).
    """

    name: str

    def select(self, signatures: list[Signature], session) -> int | None:
        """Index into ``signatures`` to join, or ``None`` to open a server."""
        ...


def _candidates(
    signatures: list[Signature], session, max_colocation: int
) -> list[tuple[int, Signature]]:
    """Non-full servers with the candidate signature after adding the session."""
    entry = entry_of(session)
    return [
        (idx, signature_add(sig, entry))
        for idx, sig in enumerate(signatures)
        if len(sig) < max_colocation
    ]


class _InstrumentedPolicy:
    """Shared observability plumbing for the prediction-guided policies.

    The admission controller calls :meth:`instrument` once at
    construction; the tracer/telemetry sinks then flow down into the
    wrapped predictor so cache lookups, feature assembly and model
    evaluation all land in the same per-request trace.
    """

    predictor = None
    telemetry = None
    tracer = NOOP_TRACER

    def instrument(self, telemetry=None, tracer=None) -> None:
        """Attach telemetry/tracer sinks, forwarding to the predictor."""
        if telemetry is not None:
            self.telemetry = telemetry
        if tracer is not None:
            self.tracer = tracer
        forward = getattr(self.predictor, "instrument", None)
        if callable(forward):
            forward(telemetry=telemetry, tracer=tracer)

    def _count(self, name: str, **labels) -> None:
        if self.telemetry is not None:
            self.telemetry.counter(name, **labels).inc()


class CMFeasiblePolicy(_InstrumentedPolicy):
    """CM-guided packing: fullest feasible server wins (paper Section 5.1).

    The one canonical implementation behind both
    :func:`repro.scheduling.dynamic.cm_feasible_policy` (offline) and the
    serving broker's ``cm-feasible`` policy (online): whole-colocation CM
    verdicts resolve through the LRU cache and all uncached candidates
    are scored with a single ``predict_batch`` call (CM only — the RM is
    skipped).  ``margin`` scales the
    floor the CM is queried with: a value of 1.1 demands 10% headroom
    above the player-facing QoS, trading some consolidation for fewer
    violations when the CM's boundary is noisy — the knob the Section 7
    discussion implies for production deployments.
    """

    name = "cm-feasible"

    def __init__(
        self,
        predictor,
        qos: float,
        *,
        cache: PredictionCache | None = None,
        max_colocation: int = 4,
        margin: float = 1.0,
    ):
        if margin < 1.0:
            raise ValueError("margin must be >= 1.0")
        self.predictor = predictor
        self.qos = float(qos)
        self.margin = float(margin)
        self.max_colocation = int(max_colocation)
        self.cache = cache if cache is not None else PredictionCache()

    def _query(self, specs: list[ColocationSpec], floor: float) -> list[bool]:
        batched = getattr(self.predictor, "predict_batch", None)
        if batched is not None:
            # One predict_batch call scores every uncached candidate:
            # feature rows for the whole pool hit the CM in a single
            # model invocation (models=("cm",) skips the RM, whose
            # output this policy would discard).
            results = batched(specs, qos=floor, models=("cm",))
            return [bool(np.all(result["feasible"])) for result in results]
        legacy = getattr(self.predictor, "colocations_feasible", None)
        if legacy is not None:
            return legacy(specs, floor)
        # Predictors without any batched endpoint (duck-typed baselines)
        # still answer, one colocation at a time.
        return [self.predictor.colocation_feasible(spec, floor) for spec in specs]

    def _verdicts(self, candidate_sigs: list[Signature]) -> dict[Signature, bool]:
        floor = self.qos * self.margin
        verdicts: dict[Signature, bool] = {}
        unknown: list[Signature] = []
        # Set mirror of `unknown` so the seen-check is O(1); the list
        # keeps the deterministic query order the cache-fill relies on.
        pending: set[Signature] = set()
        with self.tracer.span("cache", policy=self.name) as span:
            for sig in candidate_sigs:
                if sig in verdicts or sig in pending:
                    continue
                hit = self.cache.lookup(colocation_key(sig, floor), None)
                if hit is not None:
                    verdicts[sig] = hit
                else:
                    unknown.append(sig)
                    pending.add(sig)
            span.set(hits=len(verdicts), misses=len(unknown))
        with self.tracer.span(
            "predict", policy=self.name, batched=len(unknown), cached=not unknown
        ):
            if unknown:
                feasible = self._query([ColocationSpec(sig) for sig in unknown], floor)
                for sig, verdict in zip(unknown, feasible):
                    verdict = bool(verdict)
                    verdicts[sig] = verdict
                    self.cache.put(colocation_key(sig, floor), verdict)
            else:
                self._count("predict_cache_shortcuts", policy=self.name)
        return verdicts

    def select(self, signatures: list[Signature], session) -> int | None:
        """Fullest server the CM predicts stays feasible; ``None`` otherwise."""
        candidates = _candidates(signatures, session, self.max_colocation)
        verdicts = self._verdicts([sig for _, sig in candidates])
        best, best_size = None, -1
        for idx, candidate in candidates:
            if verdicts[candidate] and len(signatures[idx]) > best_size:
                best, best_size = idx, len(signatures[idx])
        return best

    def group_feasible(self, signature: Signature) -> bool:
        """CM verdict for one whole colocation (the restore-loop query).

        Answers through the same cache and batched path as
        :meth:`select`, so promotion probes share verdicts with
        admission scans of the same group.
        """
        if len(signature) > self.max_colocation:
            return False
        return self._verdicts([signature])[signature]


class MaxFPSPolicy(_InstrumentedPolicy):
    """RM-guided placement: best predicted post-placement FPS (Section 5.2).

    Among servers where the RM predicts every hosted game (including the
    newcomer) still meets the QoS floor, picks the one with the highest
    predicted total FPS; opens a new server when none qualifies.  Per-
    candidate FPS vectors are cached and uncached candidates are evaluated
    with one batched RM invocation.
    """

    name = "max-fps"

    def __init__(
        self,
        predictor,
        qos: float,
        *,
        cache: PredictionCache | None = None,
        max_colocation: int = 4,
    ):
        self.predictor = predictor
        self.qos = float(qos)
        self.max_colocation = int(max_colocation)
        self.cache = cache if cache is not None else PredictionCache()

    def _fps(self, candidate_sigs: list[Signature]) -> dict[Signature, tuple]:
        fps: dict[Signature, tuple] = {}
        unknown: list[Signature] = []
        # Set mirror of `unknown` so the seen-check is O(1); the list
        # keeps the deterministic query order the cache-fill relies on.
        pending: set[Signature] = set()
        with self.tracer.span("cache", policy=self.name) as span:
            for sig in candidate_sigs:
                if sig in fps:
                    continue
                hit = self.cache.lookup(colocation_key(sig), None)
                if hit is not None:
                    fps[sig] = hit
                elif sig not in pending:
                    unknown.append(sig)
                    pending.add(sig)
            span.set(hits=len(fps), misses=len(unknown))
        with self.tracer.span(
            "predict", policy=self.name, batched=len(unknown), cached=not unknown
        ):
            if unknown:
                batched = self.predictor.predict_fps_batch(
                    [ColocationSpec(sig) for sig in unknown]
                )
                for sig, values in zip(unknown, batched):
                    values = tuple(float(v) for v in values)
                    fps[sig] = values
                    self.cache.put(colocation_key(sig), values)
            else:
                self._count("predict_cache_shortcuts", policy=self.name)
        return fps

    def select(self, signatures: list[Signature], session) -> int | None:
        """Feasible server maximizing predicted total FPS; ``None`` otherwise."""
        candidates = _candidates(signatures, session, self.max_colocation)
        fps = self._fps([sig for _, sig in candidates])
        if not candidates:
            return None
        best, best_total = None, -np.inf
        for idx, candidate in candidates:
            values = fps[candidate]
            if min(values) < self.qos:
                continue
            total = sum(values)
            if total > best_total:
                best, best_total = idx, total
        return best

    def group_feasible(self, signature: Signature) -> bool:
        """RM verdict for one whole colocation: every member meets the floor."""
        if len(signature) > self.max_colocation:
            return False
        return min(self._fps([signature])[signature]) >= self.qos


class WorstFitPolicy:
    """VBP worst-fit: the fitting server with the most remaining capacity.

    The model-free conservative baseline — also the default fallback when
    a prediction-guided policy cannot answer (missing profile, model
    error).  Requires only demand vectors, no trained models.
    """

    name = "worst-fit"

    def __init__(self, vbp: VBPJudge, *, max_colocation: int = 4):
        self.vbp = vbp
        self.max_colocation = int(max_colocation)

    def select(self, signatures: list[Signature], session) -> int | None:
        """Fitting server with maximal slack; ``None`` when nothing fits."""
        best, best_slack = None, -np.inf
        for idx, sig in enumerate(signatures):
            if len(sig) >= self.max_colocation:
                continue
            spec = ColocationSpec(sig) if sig else None
            if not self.vbp.fits_after_adding(spec, session.game, session.resolution):
                continue
            slack = self.vbp.remaining_capacity(spec)
            if slack > best_slack:
                best, best_slack = idx, slack
        return best


class VBPFirstFitPolicy:
    """VBP first fit: the first server whose summed demand still fits.

    The offline baseline from Section 2.2 (the canonical implementation
    behind :func:`repro.scheduling.dynamic.vbp_policy`): scan the open
    servers in order and join the first one where the demand-vector sum
    stays within capacity on every dimension.
    """

    name = "vbp-first-fit"

    def __init__(self, vbp: VBPJudge, *, max_colocation: int = 4):
        self.vbp = vbp
        self.max_colocation = int(max_colocation)

    def select(self, signatures: list[Signature], session) -> int | None:
        """First fitting server in pool order; ``None`` when nothing fits."""
        for idx, sig in enumerate(signatures):
            if len(sig) >= self.max_colocation:
                continue
            spec = ColocationSpec(sig) if sig else None
            if self.vbp.fits_after_adding(spec, session.game, session.resolution):
                return idx
        return None


class DedicatedPolicy:
    """No colocation: every session gets a fresh server."""

    name = "dedicated"

    def select(self, _signatures: list[Signature], _session) -> int | None:
        """Always ``None``."""
        return None


class OfflinePolicyAdapter:
    """Serve an offline :data:`repro.scheduling.dynamic.Policy` callable.

    Lets the broker replay any ``(signatures, session) -> index | None``
    function from :mod:`repro.scheduling.dynamic` unchanged — the bridge
    used by the offline/online parity tests.
    """

    def __init__(self, fn: Callable, name: str = "offline"):
        self._fn = fn
        self.name = name

    def select(self, signatures: list[Signature], session) -> int | None:
        """Delegate to the wrapped offline policy callable."""
        return self._fn(signatures, session)


def build_policy(
    name: str,
    *,
    predictor=None,
    qos: float = 60.0,
    cache: PredictionCache | None = None,
    max_colocation: int = 4,
    margin: float = 1.0,
    server: ServerSpec = DEFAULT_SERVER,
    injector=None,
) -> tuple[AdmissionPolicy, AdmissionPolicy | None]:
    """Build the named ``(policy, fallback)`` pair for the serving loop.

    Prediction-guided policies (``cm-feasible``, ``max-fps``) fall back to
    VBP worst-fit over the predictor's profile database; the model-free
    policies need no fallback (the controller degrades to opening a new
    server if they raise).

    ``injector`` (a :class:`repro.serving.faults.FaultInjector`) wraps the
    predictor and cache on the *primary* path so chaos runs inject errors,
    latency spikes, stale answers, and corrupted predictions there; the
    fallback path stays un-injected — it is the component the degraded
    modes rely on, and it queries only the profile database.
    """
    if name not in POLICY_NAMES:
        raise ValueError(f"unknown policy {name!r}; choose from {POLICY_NAMES}")
    if name == "dedicated":
        return DedicatedPolicy(), None
    if predictor is None:
        raise ValueError(f"policy {name!r} requires a predictor")
    if injector is not None:
        predictor = injector.wrap_predictor(predictor)
        if cache is not None:
            cache = injector.wrap_cache(cache)
    worst_fit = WorstFitPolicy(
        VBPJudge(predictor.db, server=server), max_colocation=max_colocation
    )
    if name == "worst-fit":
        return worst_fit, None
    if name == "cm-feasible":
        if predictor.classifier is None:
            raise ValueError("policy 'cm-feasible' needs a classification model")
        policy = CMFeasiblePolicy(
            predictor,
            qos,
            cache=cache,
            max_colocation=max_colocation,
            margin=margin,
        )
        return policy, worst_fit
    if predictor.regressor is None:
        raise ValueError("policy 'max-fps' needs a regression model")
    return (
        MaxFPSPolicy(predictor, qos, cache=cache, max_colocation=max_colocation),
        worst_fit,
    )
