"""The placement core shared by the offline simulator and the online broker.

This package is the single implementation of "where does this session
go": canonical signatures and cache keys (:mod:`.signature`), the fleet
bookkeeping (:mod:`.fleet`), the prediction cache (:mod:`.cache`), the
placement policies (:mod:`.policies`), circuit breakers (:mod:`.breaker`),
and the :class:`DecisionEngine` (:mod:`.engine`) that walks an actuator
pipeline — breaker-guarded policy steps, the resolution-downscale
quality actuator, deadline budgets, degraded modes, tracing spans and
telemetry — and applies decisions to the fleet.

Two thin frontends drive it: the batch-clocked offline simulator
(:mod:`.offline`, re-exported as
:func:`repro.scheduling.dynamic.simulate_sessions`) and the event-loop
online broker (:class:`repro.serving.RequestBroker`).  Layering is
strict: ``repro.obs`` (tracing + metrics) sits below this package, and
this package never imports ``repro.serving`` or ``repro.scheduling`` —
both depend on it, not the other way around.
"""

from repro.placement.assignment import (
    AssignmentResult,
    assign_max_fps,
    assign_worst_fit,
    evaluate_assignment,
)
from repro.placement.breaker import BreakerConfig, BreakerState, CircuitBreaker
from repro.placement.cache import PredictionCache
from repro.placement.engine import (
    Actuator,
    AdmissionDecision,
    DecisionEngine,
    Mode,
    PlacementOutcome,
    PolicyActuator,
    ResolutionDownscaleActuator,
)
from repro.placement.fleet import FleetState, Session, degraded_to, promoted_to
from repro.placement.offline import DynamicMetrics, simulate_sessions
from repro.placement.policies import (
    POLICY_NAMES,
    AdmissionPolicy,
    CMFeasiblePolicy,
    DedicatedPolicy,
    MaxFPSPolicy,
    OfflinePolicyAdapter,
    VBPFirstFitPolicy,
    WorstFitPolicy,
    build_policy,
)
from repro.placement.signature import (
    Signature,
    colocation_key,
    entry_of,
    signature_add,
    signature_of,
)

__all__ = [
    "Actuator",
    "AdmissionDecision",
    "AdmissionPolicy",
    "AssignmentResult",
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "CMFeasiblePolicy",
    "DecisionEngine",
    "DedicatedPolicy",
    "DynamicMetrics",
    "FleetState",
    "MaxFPSPolicy",
    "Mode",
    "OfflinePolicyAdapter",
    "POLICY_NAMES",
    "PlacementOutcome",
    "PolicyActuator",
    "PredictionCache",
    "ResolutionDownscaleActuator",
    "Session",
    "Signature",
    "VBPFirstFitPolicy",
    "WorstFitPolicy",
    "assign_max_fps",
    "assign_worst_fit",
    "build_policy",
    "colocation_key",
    "degraded_to",
    "entry_of",
    "evaluate_assignment",
    "promoted_to",
    "signature_add",
    "signature_of",
    "simulate_sessions",
]
