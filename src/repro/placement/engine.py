"""The decision engine: an actuator pipeline between policies and the fleet.

Both frontends — the offline batch-clocked simulator
(:func:`repro.scheduling.dynamic.simulate_sessions`) and the online
event-loop broker (:class:`repro.serving.RequestBroker`) — answer every
arrival through :class:`DecisionEngine`.  Since the actuator refactor the
engine no longer hardwires a ``primary → fallback → dedicated`` chain:
it walks an ordered pipeline of **actuators**, where each step is one
lever the admission path can pull when the previous step could not place
the session.  Three kinds of lever exist, in escalation order:

1. **degrade placement** — consult the next (more conservative) policy
   in the chain.  Each :class:`PolicyActuator` wraps one
   :class:`~repro.placement.policies.AdmissionPolicy` together with its
   own circuit breaker, skip counter, and error counter.
2. **degrade quality** — transform the *session* instead of the
   placement: :class:`ResolutionDownscaleActuator` re-queries the
   deciding policy at a ladder of lower resolutions (the Eq. 2 pixel
   scaling of GPU intensity and solo FPS) before giving up on
   colocation.
3. **add capacity** — the implicit terminal actuator: open a dedicated
   server.  It cannot fail, so the pipeline always terminates.

The default construction (a primary policy, an optional fallback, no
ladder) builds the exact pre-refactor chain, and the decision path is
byte-identical to it: same counters in the same order, same spans, same
breaker consultations — pinned by the chaos/parity suites.

A production dispatcher must never crash on one bad request, so in the
default (serving) configuration *any* exception during placement
evaluation — a game missing from the profile database
(:class:`repro.core.MissingProfileError`), an unfitted model raising
``RuntimeError``, a numerical failure, an injected chaos fault — is
counted and absorbed: the decision falls through the pipeline, and in
the worst case to opening a dedicated server.  A policy returning an
out-of-range server index is treated exactly like a policy that raised
(``invalid_choices`` counter), so a buggy return value can never corrupt
the fleet bookkeeping downstream.  The offline frontend instead runs
with ``strict=True``, where a policy error propagates to the caller — a
simulation with a broken policy should fail loudly, not consolidate
conservatively.

Beyond per-decision fallthrough, the engine runs an explicit
degraded-mode state machine when given a :class:`BreakerConfig`:

- **NORMAL** — the first policy actuator answers (its circuit breaker
  is CLOSED).
- **DEGRADED** — sustained primary failures (error rate or decision
  deadline overruns over a sliding window) tripped the first breaker;
  arrivals are served by a later policy actuator without consulting the
  primary.  After a cooldown the breaker half-opens and probes the
  primary; enough successful probes recover to NORMAL.
- **CONSERVATIVE** — every later policy actuator's breaker tripped too
  (or there is none); every arrival opens a dedicated server until a
  probe window recovers a policy.

Every decision is timed into a fixed-bucket latency histogram; when a
``decision_deadline_s`` budget is set, overruns are counted and fed to
the breaker as failures — a policy that answers correctly but too slowly
is still a policy you stop asking.  Downscale re-queries run inside the
same budget: a ladder walk that blows the deadline charges the deciding
policy's breaker like any other slow answer.

The quality lever is reversible.  :meth:`DecisionEngine.restore` walks
the fleet's degraded sessions (oldest first) and re-promotes each to the
best resolution — its original request, or an intermediate ladder rung —
that the first policy actuator still deems feasible for the session's
current server group.  Frontends call it on departure-freed capacity:
the serving broker every ``restore_interval`` arrivals, the sharded tier
at its chunk/rebalance barriers.
"""

from __future__ import annotations

import operator
import time
from dataclasses import dataclass
from enum import Enum
from typing import Protocol, runtime_checkable

from repro.games.resolution import DegradeLadder, Resolution
from repro.obs.metrics import Telemetry
from repro.obs.tracing import NOOP_TRACER, Tracer
from repro.placement.breaker import BreakerConfig, BreakerState, CircuitBreaker
from repro.placement.fleet import FleetState, Session, degraded_to, promoted_to
from repro.placement.policies import AdmissionPolicy, Signature
from repro.placement.signature import entry_of, signature_add

__all__ = [
    "AdmissionDecision",
    "PlacementOutcome",
    "DecisionEngine",
    "Mode",
    "Actuator",
    "PolicyActuator",
    "ResolutionDownscaleActuator",
]


class Mode(Enum):
    """Health modes of the admission path (see module docstring)."""

    NORMAL = "normal"
    DEGRADED = "degraded"
    CONSERVATIVE = "conservative"


@runtime_checkable
class Actuator(Protocol):
    """One step of the admission pipeline.

    ``kind`` declares which lever the step pulls: ``"policy"`` (degrade
    placement — consult a policy, guarded by a breaker),
    ``"transform"`` (degrade quality — rewrite the candidate session and
    re-query), or ``"capacity"`` (add capacity — the implicit terminal
    open-a-server step).  ``name`` labels spans, counters, and snapshot
    entries.  The concrete actuators (:class:`PolicyActuator`,
    :class:`ResolutionDownscaleActuator`) are driven by
    :meth:`DecisionEngine.decide`, which owns ordering, timing, and the
    absorb-vs-strict error contract.
    """

    name: str
    kind: str


class PolicyActuator:
    """A placement policy as a pipeline step, with its breaker and counters.

    ``skip_counter`` is incremented when the breaker rejects the step
    without consulting the policy (``degraded_decisions`` for the first
    step, ``conservative_decisions`` for later steps — the historical
    names of the mode machine), and ``error_counter`` when the policy
    raises or answers out of range (``policy_errors`` /
    ``fallback_errors``).
    """

    kind = "policy"

    def __init__(
        self,
        policy: AdmissionPolicy,
        *,
        breaker: CircuitBreaker | None = None,
        skip_counter: str,
        error_counter: str,
        is_fallback: bool,
    ):
        self.policy = policy
        self.breaker = breaker
        self.skip_counter = skip_counter
        self.error_counter = error_counter
        self.is_fallback = bool(is_fallback)

    @property
    def name(self) -> str:
        return self.policy.name

    @property
    def available(self) -> bool:
        """Whether the step would currently be consulted (breaker not OPEN)."""
        return self.breaker is None or self.breaker.state in (
            BreakerState.CLOSED,
            BreakerState.HALF_OPEN,
        )


class ResolutionDownscaleActuator:
    """Degrade quality before adding capacity (ROADMAP item 3, Stimpack-style).

    When the deciding policy answers "open a new server" for a session,
    this actuator re-queries the *same* policy with the session rewritten
    to each ladder rung strictly below its current resolution, best rung
    first.  Eq. 2 makes the re-query trustworthy: solo FPS and GPU
    intensity scale linearly with pixel count while CPU intensity and
    sensitivity are resolution-invariant, so a lower rung strictly
    shrinks the candidate's footprint.  The first rung the policy accepts
    wins; the session is placed at that rung with its original request
    remembered (``Session.requested``) so the restore loop can promote
    it back when capacity frees.
    """

    name = "resolution-downscale"
    kind = "transform"

    def __init__(self, ladder: DegradeLadder):
        self.ladder = ladder

    def actuate(
        self,
        engine: "DecisionEngine",
        policy: AdmissionPolicy,
        signatures: list[Signature],
        session,
    ) -> tuple[int, Session] | None:
        """Try the ladder; returns ``(choice, degraded_session)`` or ``None``."""
        rungs = self.ladder.rungs_below(session.resolution)
        if not rungs:
            return None
        t = engine.telemetry
        span = engine.tracer.span(
            "downscale",
            policy=policy.name,
            game=getattr(session, "game", None),
            rungs=len(rungs),
        )
        with span:
            for rung in rungs:
                t.counter("downscale_queries", resolution=str(rung)).inc()
                candidate = degraded_to(session, rung)
                try:
                    choice = policy.select(signatures, candidate)
                except Exception:
                    if engine.strict:
                        raise
                    t.counter("downscale_errors").inc()
                    span.set(outcome="error")
                    return None
                if choice is None:
                    continue
                try:
                    index = operator.index(choice)
                except TypeError:
                    index = -1
                if not 0 <= index < len(signatures):
                    if engine.strict:
                        raise IndexError(
                            f"policy {policy.name!r} returned server index "
                            f"{choice!r} for a pool of {len(signatures)} "
                            f"servers during downscale"
                        )
                    t.counter("invalid_choices").inc()
                    t.counter("downscale_errors").inc()
                    span.set(outcome="error")
                    return None
                t.counter("downscales", resolution=str(rung)).inc()
                span.set(outcome="hit", choice=index, resolution=str(rung))
                return index, candidate
            span.set(outcome="miss")
        return None


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one placement evaluation.

    ``server`` is the index into the candidate-signature list (``None``
    opens a new server), ``policy`` names the policy whose answer was
    used, and ``fallback`` flags that the primary policy's answer was not
    (the primary failed, answered out of range, or was skipped by the
    breaker).  ``session`` is set when a transform actuator rewrote the
    session (resolution downscale): the rewritten session is the one to
    place; ``None`` means place the session as requested.
    """

    server: int | None
    policy: str
    fallback: bool
    session: Session | None = None


@dataclass(frozen=True)
class PlacementOutcome:
    """Outcome of one decision *applied* to a fleet.

    ``choice`` is the policy's index into the open-server list presented
    at decision time (``None`` = new server) — directly comparable
    across frontends; ``server_id`` is the stable id of the server that
    ended up hosting the session.  ``session`` is the session as placed
    — it differs from the session submitted only when a quality actuator
    degraded its resolution.
    """

    choice: int | None
    server_id: int
    policy: str
    fallback: bool
    session: Session | None = None


class DecisionEngine:
    """Evaluates placements through the actuator pipeline and mutates the fleet.

    ``strict=True`` (the offline frontend) disables the absorb-and-
    degrade machinery: a policy exception propagates and an out-of-range
    index raises ``IndexError`` instead of being converted into a
    fallback decision.  The downscale actuator still runs under
    ``strict`` (the offline experiments measure it); only its error
    absorption is disabled.
    """

    def __init__(
        self,
        policy: AdmissionPolicy,
        *,
        fallback: AdmissionPolicy | None = None,
        telemetry: Telemetry | None = None,
        breaker: BreakerConfig | None = None,
        decision_deadline_s: float | None = None,
        tracer: Tracer | None = None,
        strict: bool = False,
        downscale_ladder: DegradeLadder | None = None,
    ):
        if decision_deadline_s is not None and decision_deadline_s <= 0:
            raise ValueError("decision_deadline_s must be positive")
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.decision_deadline_s = decision_deadline_s
        self.strict = bool(strict)
        self.mode = Mode.NORMAL
        self.mode_transitions: list[dict] = []
        # The policy chain: step 0 is the primary, later steps are the
        # conservative fallbacks, each with its own breaker.  Breaker
        # names keep their historical labels ("primary"/"fallback") so
        # resilience snapshots and breaker events stay byte-compatible.
        primary_breaker = fallback_breaker = None
        if breaker is not None:
            primary_breaker = CircuitBreaker(
                breaker, name="primary", on_transition=self._breaker_event("primary")
            )
            if fallback is not None:
                fallback_breaker = CircuitBreaker(
                    breaker,
                    name="fallback",
                    on_transition=self._breaker_event("fallback"),
                )
        self.pipeline: list[PolicyActuator] = [
            PolicyActuator(
                policy,
                breaker=primary_breaker,
                skip_counter="degraded_decisions",
                error_counter="policy_errors",
                is_fallback=False,
            )
        ]
        if fallback is not None:
            self.pipeline.append(
                PolicyActuator(
                    fallback,
                    breaker=fallback_breaker,
                    skip_counter="conservative_decisions",
                    error_counter="fallback_errors",
                    is_fallback=True,
                )
            )
        self.downscale: ResolutionDownscaleActuator | None = (
            ResolutionDownscaleActuator(downscale_ladder)
            if downscale_ladder is not None
            else None
        )
        self._instrument_members()

    # -- pipeline views -------------------------------------------------

    @property
    def policy(self) -> AdmissionPolicy:
        """The first (primary) policy in the pipeline."""
        return self.pipeline[0].policy

    @property
    def fallback(self) -> AdmissionPolicy | None:
        """The second policy in the pipeline, if any (historical accessor)."""
        return self.pipeline[1].policy if len(self.pipeline) > 1 else None

    @property
    def _primary_breaker(self) -> CircuitBreaker | None:
        return self.pipeline[0].breaker

    @property
    def _fallback_breaker(self) -> CircuitBreaker | None:
        return self.pipeline[1].breaker if len(self.pipeline) > 1 else None

    def actuators(self) -> list[Actuator]:
        """The full pipeline in escalation order, downscale included."""
        steps: list[Actuator] = list(self.pipeline)
        if self.downscale is not None:
            steps.append(self.downscale)
        return steps

    def _instrument_members(self) -> None:
        # Flow the shared telemetry/tracer into the policies (and through
        # them into the predictor) so one request yields one trace.
        for step in self.pipeline:
            instrument = getattr(step.policy, "instrument", None)
            if callable(instrument):
                instrument(telemetry=self.telemetry, tracer=self.tracer)

    def set_tracer(self, tracer: Tracer) -> None:
        """Swap the tracer, re-instrumenting policies and predictor."""
        self.tracer = tracer
        self._instrument_members()

    def _breaker_event(self, which: str):
        def emit(change: dict) -> None:
            self.telemetry.event("breaker_transition", breaker=which, **change)
            self.tracer.instant("breaker_transition", breaker=which, **change)

        return emit

    # ------------------------------------------------------------------

    def _attempt(
        self, policy: AdmissionPolicy, signatures: list[Signature], session, *,
        is_fallback: bool,
    ) -> tuple[bool, int | None]:
        """Run one policy, validating its answer.  Returns (ok, choice)."""
        error_counter = "fallback_errors" if is_fallback else "policy_errors"
        span = self.tracer.span(
            "policy", policy=policy.name, fallback=is_fallback
        )
        try:
            with span:
                choice = policy.select(signatures, session)
        except Exception:
            if self.strict:
                raise
            self.telemetry.counter(error_counter).inc()
            return False, None
        if choice is None:
            return True, None
        try:
            index = operator.index(choice)
        except TypeError:
            index = -1
        if not 0 <= index < len(signatures):
            # A buggy policy return value is a policy error, not a crash
            # in the fleet bookkeeping downstream.
            if self.strict:
                raise IndexError(
                    f"policy {policy.name!r} returned server index {choice!r} "
                    f"for a pool of {len(signatures)} servers"
                )
            self.telemetry.counter("invalid_choices").inc()
            self.telemetry.counter(error_counter).inc()
            return False, None
        return True, index

    def decide(self, signatures: list[Signature], session) -> AdmissionDecision:
        """Place ``session`` against the open-server ``signatures``.

        Never raises (unless ``strict``): policy failures (exceptions,
        invalid indices, deadline overruns) are absorbed into the
        actuator pipeline (policy chain -> downscale -> dedicated) and
        surfaced as the ``policy_errors`` / ``fallbacks`` /
        ``fallback_errors`` / ``invalid_choices`` / ``deadline_overruns``
        counters.
        """
        t = self.telemetry
        t.counter("requests").inc()
        span = self.tracer.span(
            "admission",
            game=getattr(session, "game", None),
            candidates=len(signatures),
        )
        with span:
            start = time.perf_counter()
            choice: int | None = None
            policy_used = "dedicated"
            used_fallback = False
            placed_session: Session | None = None
            deciding: PolicyActuator | None = None
            # (step, ok) for every step whose policy was actually
            # consulted, in consultation order — the breaker feed.
            attempted: list[tuple[PolicyActuator, bool]] = []

            first = self.pipeline[0]
            first_ok: bool | None = None
            first_allowed = first.breaker.allow() if first.breaker else True
            if first_allowed:
                first_ok, choice = self._attempt(
                    first.policy, signatures, session, is_fallback=False
                )
                attempted.append((first, first_ok))
                if first_ok:
                    policy_used = first.name
                    deciding = first
            else:
                t.counter(first.skip_counter).inc()

            if not (first_allowed and first_ok):
                used_fallback = True
                t.counter("fallbacks").inc()
                choice = None
                for step in self.pipeline[1:]:
                    if not (step.breaker.allow() if step.breaker else True):
                        t.counter(step.skip_counter).inc()
                        continue
                    ok, choice = self._attempt(
                        step.policy, signatures, session, is_fallback=True
                    )
                    attempted.append((step, ok))
                    if ok:
                        policy_used = step.name
                        deciding = step
                        break
                    choice = None

            if (
                self.downscale is not None
                and choice is None
                and deciding is not None
            ):
                # The deciding policy said "open a new server" — pull the
                # quality lever before the capacity one.
                found = self.downscale.actuate(
                    self, deciding.policy, signatures, session
                )
                if found is not None:
                    choice, placed_session = found

            elapsed = time.perf_counter() - start
            overrun = (
                self.decision_deadline_s is not None
                and elapsed > self.decision_deadline_s
            )
            if overrun:
                t.counter("deadline_overruns").inc()
            for step, ok in attempted:
                if step.breaker is not None:
                    step.breaker.record(ok and not overrun)
            t.histogram("decision_latency_s").observe(elapsed)
            t.counter("admissions" if choice is not None else "servers_opened").inc()
            self._update_mode()
            t.counter("decisions", policy=policy_used, mode=self.mode.value).inc()
            span.set(
                policy=policy_used,
                fallback=used_fallback,
                choice=choice,
                mode=self.mode.value,
            )
            if placed_session is not None:
                span.set(resolution=str(placed_session.resolution))
        return AdmissionDecision(
            server=choice,
            policy=policy_used,
            fallback=used_fallback,
            session=placed_session,
        )

    def admit(self, fleet: FleetState, session) -> PlacementOutcome:
        """Decide against ``fleet``'s current pool and apply the placement.

        The one mutation path shared by every frontend: the decision is
        evaluated against :meth:`FleetState.signatures` and immediately
        applied with :meth:`FleetState.place`, so the index a policy
        returned can never be re-interpreted against a stale pool.
        The fleet maintains those signatures incrementally under
        mutation, so presenting the pool here is a pool-order list copy
        rather than a per-server canonicalization on every arrival.
        When a quality actuator rewrote the session, the rewritten
        session is the one placed.
        """
        decision = self.decide(fleet.signatures(), session)
        placed = decision.session if decision.session is not None else session
        server_id = fleet.place(decision.server, placed)
        return PlacementOutcome(
            choice=decision.server,
            server_id=server_id,
            policy=decision.policy,
            fallback=decision.fallback,
            session=placed,
        )

    # -- restore (the quality lever, reversed) --------------------------

    @property
    def can_restore(self) -> bool:
        """Whether the restore loop is operable.

        Requires a downscale ladder and a first policy that can answer
        group-level feasibility (``group_feasible``); model-free chains
        without it simply never promote.
        """
        return self.downscale is not None and callable(
            getattr(self.pipeline[0].policy, "group_feasible", None)
        )

    def restore(self, fleet: FleetState) -> int:
        """Re-promote degraded sessions that departure-freed capacity allows.

        Walks the fleet's degraded sessions oldest-first and, for each,
        asks the first policy whether the session's current server group
        stays feasible with the session promoted — to its originally
        requested resolution first, then to intermediate ladder rungs.
        The best feasible target wins and the fleet is updated in place
        (same server, same departure; only the resolution entry of the
        signature changes).  Returns the number of sessions promoted.

        Skipped entirely while the first policy's breaker is OPEN — a
        tripped primary is not consulted for promotions any more than
        for admissions.
        """
        if not self.can_restore or fleet.n_degraded == 0:
            return 0
        first = self.pipeline[0]
        if first.breaker is not None and first.breaker.state is BreakerState.OPEN:
            return 0
        t = self.telemetry
        ladder = self.downscale.ladder
        promoted = 0
        span = self.tracer.span("restore", degraded=fleet.n_degraded)
        with span:
            # Materialize first: promotions mutate the degraded set.
            for server_id, member_id, session in fleet.degraded_members():
                requested = session.requested
                sig = fleet.server_signature(server_id)
                i = sig.index(entry_of(session))
                without = sig[:i] + sig[i + 1 :]
                targets = (requested,) + ladder.rungs_between(
                    session.resolution, requested
                )
                for target in targets:
                    t.counter("restore_queries").inc()
                    candidate = signature_add(without, (session.game, target))
                    try:
                        feasible = first.policy.group_feasible(candidate)
                    except Exception:
                        if self.strict:
                            raise
                        t.counter("restore_errors").inc()
                        span.set(outcome="error", promoted=promoted)
                        return promoted
                    if feasible:
                        fleet.update_resolution(
                            server_id, member_id, promoted_to(session, target)
                        )
                        t.counter("restores", resolution=str(target)).inc()
                        promoted += 1
                        break
            span.set(promoted=promoted)
        return promoted

    # ------------------------------------------------------------------

    def _update_mode(self) -> None:
        """Re-derive the health mode from the breaker states, logging changes."""
        first = self.pipeline[0]
        if first.breaker is None:
            return
        if first.breaker.state is BreakerState.CLOSED:
            mode = Mode.NORMAL
        elif any(step.available for step in self.pipeline[1:]):
            mode = Mode.DEGRADED
        else:
            mode = Mode.CONSERVATIVE
        if mode is not self.mode:
            change = {
                "decision": self.telemetry.counter("requests").value,
                "from": self.mode.value,
                "to": mode.value,
            }
            self.mode_transitions.append(change)
            self.telemetry.counter("mode_transitions").inc()
            self.telemetry.event("mode_transition", **change)
            self.tracer.instant("mode_transition", **change)
            self.mode = mode
        self.telemetry.gauge("mode_level").set(
            {"normal": 0, "degraded": 1, "conservative": 2}[mode.value]
        )

    def resilience_snapshot(self) -> dict:
        """JSON-able resilience state: mode, transitions, breakers, budget."""
        breakers = {}
        trips = recoveries = 0
        for step in self.pipeline:
            if step.breaker is not None:
                breakers[step.breaker.name] = step.breaker.to_dict()
                trips += step.breaker.trips
                recoveries += step.breaker.recoveries
        return {
            "enabled": self.pipeline[0].breaker is not None,
            "mode": self.mode.value,
            "mode_transitions": list(self.mode_transitions),
            "decision_deadline_s": self.decision_deadline_s,
            "trips": trips,
            "recoveries": recoveries,
            "breakers": breakers,
        }

    def caches(self) -> dict[str, object]:
        """Prediction caches attached to the policies, keyed by policy name.

        Duck-typed on ``stats()`` so fault-injection cache wrappers
        (:class:`repro.serving.faults.FaultyCache`) are reported too.
        """
        out: dict[str, object] = {}
        for step in self.pipeline:
            cache = getattr(step.policy, "cache", None)
            if cache is not None and callable(getattr(cache, "stats", None)):
                out[step.policy.name] = cache
        return out
