"""Circuit breaker over admission-policy health.

A production dispatcher cannot afford to keep asking a failing predictor
for placements: every errored decision burns the fallback path's latency
budget and, worse, a *slow* policy (one blowing its decision deadline)
degrades every arrival behind it.  The classic remedy is a circuit
breaker (Nygard's "Release It!" pattern): track recent outcomes in a
sliding window, trip OPEN when the failure fraction is sustained, stop
calling the protected component, and probe it again after a cooldown
(HALF_OPEN) before trusting it (CLOSED).

Everything here is counted in *decisions*, not wall-clock time, so
breaker behaviour is deterministic for a deterministic trace — the same
property the placement-parity tests rely on everywhere else in
:mod:`repro.serving`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum

__all__ = ["BreakerState", "BreakerConfig", "CircuitBreaker"]


class BreakerState(Enum):
    """The three classic breaker states."""

    CLOSED = "closed"  # healthy: calls flow through
    OPEN = "open"  # tripped: calls are skipped until the cooldown elapses
    HALF_OPEN = "half_open"  # probing: a few trial calls decide recovery


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning knobs for a :class:`CircuitBreaker`.

    ``failure_threshold`` is the failure fraction over the sliding
    ``window`` that trips the breaker (only once ``min_requests`` outcomes
    have been seen, so one early error cannot trip it); ``cooldown`` is
    how many skipped decisions OPEN lasts before probing; ``probe_window``
    is how many consecutive successful probes close the breaker again.
    """

    failure_threshold: float = 0.5
    window: int = 20
    min_requests: int = 5
    cooldown: int = 25
    probe_window: int = 3

    def __post_init__(self) -> None:
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if self.window < 1 or self.min_requests < 1:
            raise ValueError("window and min_requests must be >= 1")
        if self.min_requests > self.window:
            raise ValueError("min_requests cannot exceed window")
        if self.cooldown < 1 or self.probe_window < 1:
            raise ValueError("cooldown and probe_window must be >= 1")

    def to_dict(self) -> dict:
        """JSON-able form (embedded in serving reports)."""
        return {
            "failure_threshold": self.failure_threshold,
            "window": self.window,
            "min_requests": self.min_requests,
            "cooldown": self.cooldown,
            "probe_window": self.probe_window,
        }


class CircuitBreaker:
    """Sliding-window circuit breaker, clocked by decisions.

    Usage per decision: call :meth:`allow` first — ``False`` means skip
    the protected component this decision — then, if the component was
    called, report the outcome with :meth:`record`.  Trips, recoveries
    and every state change are appended to :attr:`transitions` so the
    serving report can show the full resilience timeline.
    """

    def __init__(
        self,
        config: BreakerConfig | None = None,
        *,
        name: str = "breaker",
        on_transition=None,
    ):
        self.config = config if config is not None else BreakerConfig()
        self.name = name
        self.on_transition = on_transition  # callable(transition_dict) | None
        self.state = BreakerState.CLOSED
        self.trips = 0
        self.recoveries = 0
        self.transitions: list[dict] = []
        self._outcomes: deque[bool] = deque(maxlen=self.config.window)
        self._skipped = 0  # decisions skipped while OPEN
        self._probe_successes = 0
        self._decision = 0  # monotonic decision clock (allow() calls)

    # ------------------------------------------------------------------

    def _transition(self, state: BreakerState, reason: str) -> None:
        change = {
            "decision": self._decision,
            "from": self.state.value,
            "to": state.value,
            "reason": reason,
        }
        self.transitions.append(change)
        self.state = state
        if self.on_transition is not None:
            self.on_transition(change)

    def allow(self) -> bool:
        """Whether the protected component may be called this decision."""
        self._decision += 1
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            self._skipped += 1
            if self._skipped >= self.config.cooldown:
                self._probe_successes = 0
                self._transition(BreakerState.HALF_OPEN, "cooldown elapsed")
                return True
            return False
        return True  # HALF_OPEN: probes flow through

    def record(self, success: bool) -> None:
        """Report the outcome of a call that :meth:`allow` let through."""
        if self.state is BreakerState.HALF_OPEN:
            if not success:
                self._reopen("probe failed")
                return
            self._probe_successes += 1
            if self._probe_successes >= self.config.probe_window:
                self._outcomes.clear()
                self.recoveries += 1
                self._transition(BreakerState.CLOSED, "probe window succeeded")
            return
        self._outcomes.append(success)
        if (
            self.state is BreakerState.CLOSED
            and len(self._outcomes) >= self.config.min_requests
            and self.failure_rate >= self.config.failure_threshold
        ):
            self.trips += 1
            self._reopen("failure threshold exceeded")

    def _reopen(self, reason: str) -> None:
        self._skipped = 0
        self._outcomes.clear()
        self._transition(BreakerState.OPEN, reason)

    # ------------------------------------------------------------------

    @property
    def failure_rate(self) -> float:
        """Failure fraction over the current sliding window (0.0 if empty)."""
        if not self._outcomes:
            return 0.0
        return sum(1 for ok in self._outcomes if not ok) / len(self._outcomes)

    @property
    def state_age(self) -> int:
        """Decisions elapsed since the last state change (whole life if none).

        The shard supervisor clocks its breakers in chunk barriers, so
        for it this reads as "barriers spent in the current state" — the
        number an operator wants next to OPEN in a health report.
        """
        if not self.transitions:
            return self._decision
        return self._decision - self.transitions[-1]["decision"]

    def to_dict(self) -> dict:
        """JSON-able snapshot: state, trips/recoveries, transition log."""
        return {
            "name": self.name,
            "state": self.state.value,
            "trips": self.trips,
            "recoveries": self.recoveries,
            "failure_rate": self.failure_rate,
            "config": self.config.to_dict(),
            "transitions": list(self.transitions),
        }
