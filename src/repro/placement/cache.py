"""LRU prediction cache keyed by canonical colocation keys.

Interference predictions are pure functions of the colocation *multiset*:
which games run together at which resolutions (plus the QoS floor for CM
verdicts).  Entry order carries no information — the Eq. 5 aggregate is
symmetric in the co-runners — so keys are canonicalized by
:func:`repro.placement.signature.colocation_key` (sorted entries), making
``(A, B)`` and ``(B, A)`` one cache line.  This is the cache-key
contract: two colocations with equal entry multisets and equal QoS
floors always share a key, and invalidating any permutation of a
co-runner set therefore evicts every permutation at once.

The store is a plain LRU over an :class:`collections.OrderedDict` with
monotonic hit/miss/eviction statistics, sized for the serving hot path
where the same few hundred server signatures recur across thousands of
arrivals.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

from repro.placement.signature import colocation_key

__all__ = ["colocation_key", "PredictionCache"]

#: Sentinel distinguishing "not cached" from a cached ``None``.
_MISS = object()


class PredictionCache:
    """Bounded LRU cache for per-colocation prediction results.

    ``capacity=0`` disables caching (every lookup misses, nothing is
    stored), which keeps the serving code path uniform when caching is
    turned off for measurement.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._store: OrderedDict[tuple, Any] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    # ------------------------------------------------------------------

    def lookup(self, key: tuple, default: Any = None) -> Any:
        """Return the cached value for ``key`` (counting a hit) or ``default``."""
        value = self._store.get(key, _MISS)
        if value is _MISS:
            self._misses += 1
            return default
        self._hits += 1
        self._store.move_to_end(key)
        return value

    def __contains__(self, key: tuple) -> bool:
        return key in self._store

    def put(self, key: tuple, value: Any) -> None:
        """Insert or refresh ``key``, evicting the least recently used entry."""
        if self.capacity == 0:
            return
        if key in self._store:
            self._store.move_to_end(key)
        self._store[key] = value
        if len(self._store) > self.capacity:
            self._store.popitem(last=False)
            self._evictions += 1

    def get_or_compute(self, key: tuple, compute) -> Any:
        """Cached value for ``key``, calling ``compute()`` on a miss."""
        value = self.lookup(key, _MISS)
        if value is _MISS:
            value = compute()
            self.put(key, value)
        return value

    def invalidate(self, key: tuple) -> bool:
        """Drop ``key`` if present (returns whether an entry was removed).

        Invalidation is the *semantic* removal path — a profile was
        re-measured, a model was retrained, a fault injector declared the
        entry stale — counted separately from capacity evictions.
        """
        if key not in self._store:
            return False
        del self._store[key]
        self._invalidations += 1
        return True

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        """Drop all entries (statistics are preserved — they are monotonic)."""
        self._store.clear()

    # ------------------------------------------------------------------

    @property
    def hits(self) -> int:
        """Lookups served from the cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that found nothing."""
        return self._misses

    @property
    def evictions(self) -> int:
        """Entries dropped to respect ``capacity``."""
        return self._evictions

    @property
    def invalidations(self) -> int:
        """Entries dropped explicitly via :meth:`invalidate`."""
        return self._invalidations

    @property
    def hit_rate(self) -> float:
        """Hits over total lookups (0.0 before any lookup)."""
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def stats(self) -> dict:
        """JSON-able statistics snapshot."""
        return {
            "capacity": self.capacity,
            "size": len(self._store),
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "invalidations": self._invalidations,
            "hit_rate": self.hit_rate,
        }
