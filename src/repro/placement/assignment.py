"""Online request assignment onto a fixed fleet (Section 5.2).

Prediction-guided policies place each arriving request on the server whose
predicted post-assignment frame rates are best; VBP places worst-fit by
remaining capacity.  Because a server's predicted value depends only on its
*signature* (the multiset of hosted (game, resolution) entries), deltas are
memoized per (signature, request) pair — with 10 games the signature space
is tiny, making the greedy exact yet fast for thousands of requests.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.baselines.vbp import VBPJudge
from repro.core.training import ColocationSpec
from repro.games.catalog import GameCatalog
from repro.hardware.server import DEFAULT_SERVER, ServerSpec
from repro.placement.signature import Signature, entry_of, signature_add
from repro.simulator.measurement import MeasurementConfig, run_colocation

if TYPE_CHECKING:
    from repro.scheduling.requests import GameRequest

__all__ = ["AssignmentResult", "assign_max_fps", "assign_worst_fit", "evaluate_assignment"]


@dataclass
class AssignmentResult:
    """Final placement: one entry tuple per server (possibly empty)."""

    servers: list[Signature]

    @property
    def n_servers(self) -> int:
        """Fleet size."""
        return len(self.servers)

    @property
    def n_requests(self) -> int:
        """Total requests placed."""
        return sum(len(s) for s in self.servers)

    def occupied(self) -> list[Signature]:
        """Signatures of servers hosting at least one game."""
        return [s for s in self.servers if s]


def assign_max_fps(
    requests: Sequence[GameRequest],
    predictor,
    n_servers: int,
    *,
    max_colocation: int = 4,
) -> AssignmentResult:
    """Greedy best-predicted-server assignment.

    ``predictor`` must expose ``predict_fps(ColocationSpec) -> array``
    (GAugur's RM, Sigmoid or SMiTe all qualify).  Each request goes to the
    server maximizing the predicted total FPS after placement; servers at
    ``max_colocation`` games are excluded.
    """
    if n_servers < 1:
        raise ValueError("n_servers must be >= 1")
    if len(requests) > n_servers * max_colocation:
        raise ValueError(
            f"{len(requests)} requests cannot fit on {n_servers} servers "
            f"of capacity {max_colocation}"
        )

    servers: list[Signature] = [() for _ in range(n_servers)]
    by_signature: dict[Signature, set[int]] = defaultdict(set)
    for i in range(n_servers):
        by_signature[()].add(i)

    sum_cache: dict[Signature, float] = {(): 0.0}

    def predicted_sum(sig: Signature) -> float:
        if sig not in sum_cache:
            spec = ColocationSpec(sig)
            sum_cache[sig] = float(np.sum(predictor.predict_fps(spec)))
        return sum_cache[sig]

    delta_cache: dict[tuple[Signature, tuple], float] = {}

    for request in requests:
        key_entry = entry_of(request)
        best_sig, best_delta = None, -np.inf
        for sig, members in by_signature.items():
            if not members or len(sig) >= max_colocation:
                continue
            cache_key = (sig, key_entry)
            if cache_key not in delta_cache:
                delta_cache[cache_key] = predicted_sum(
                    signature_add(sig, key_entry)
                ) - predicted_sum(sig)
            delta = delta_cache[cache_key]
            if delta > best_delta:
                best_delta, best_sig = delta, sig
        if best_sig is None:
            raise RuntimeError("no server has remaining capacity")
        server_id = next(iter(by_signature[best_sig]))
        by_signature[best_sig].discard(server_id)
        new_sig = signature_add(best_sig, key_entry)
        servers[server_id] = new_sig
        by_signature[new_sig].add(server_id)

    return AssignmentResult(servers=servers)


def assign_worst_fit(
    requests: Sequence[GameRequest],
    vbp: VBPJudge,
    n_servers: int,
    *,
    max_colocation: int = 4,
) -> AssignmentResult:
    """VBP worst-fit: place on the fitting server with most remaining capacity.

    If no server fits the request under the demand-vector constraint, the
    emptiest server (by slack) takes it anyway — the fleet size is fixed and
    every request must be served.
    """
    if n_servers < 1:
        raise ValueError("n_servers must be >= 1")
    if len(requests) > n_servers * max_colocation:
        raise ValueError(
            f"{len(requests)} requests cannot fit on {n_servers} servers "
            f"of capacity {max_colocation}"
        )

    dims = len(vbp.demand_vector(requests[0].game, requests[0].resolution))
    usage = np.zeros((n_servers, dims), dtype=float)
    counts = np.zeros(n_servers, dtype=int)
    servers: list[list[tuple]] = [[] for _ in range(n_servers)]
    demand_cache: dict[tuple, np.ndarray] = {}

    for request in requests:
        key = entry_of(request)
        if key not in demand_cache:
            demand_cache[key] = vbp.demand_vector(request.game, request.resolution)
        demand = demand_cache[key]
        slack = dims - usage.sum(axis=1)
        open_mask = counts < max_colocation
        fits = open_mask & np.all(usage + demand <= 1.0 + 1e-9, axis=1)
        pool = np.where(fits)[0] if fits.any() else np.where(open_mask)[0]
        target = int(pool[np.argmax(slack[pool])])
        usage[target] += demand
        counts[target] += 1
        servers[target].append(key)

    return AssignmentResult(servers=[tuple(sorted(s)) for s in servers])


def evaluate_assignment(
    catalog: GameCatalog,
    result: AssignmentResult,
    *,
    server: ServerSpec = DEFAULT_SERVER,
    config: MeasurementConfig | None = None,
) -> np.ndarray:
    """Actual per-request FPS of a placement, measured on the simulator.

    Identical signatures are measured once (deterministic measurements make
    this exact, not an approximation).
    """
    fps_cache: dict[Signature, tuple[float, ...]] = {}
    readings: list[float] = []
    for sig in result.occupied():
        if sig not in fps_cache:
            spec = ColocationSpec(sig)
            run = run_colocation(spec.instances(catalog), server=server, config=config)
            fps_cache[sig] = run.fps
        readings.extend(fps_cache[sig])
    return np.asarray(readings, dtype=float)
