"""Vectorized frame-by-frame timing with AR(1) scene complexity.

The paper measures a game's frame rate as the average over minutes of play
of a popular scene (Section 3.2) and discusses how dynamic scene changes
move the instantaneous frame rate (Section 7).  We model scene complexity
as a stationary log-AR(1) process with mean 1, scale the CPU and GPU stages
by genre-specific complexity exponents, and read FPS off the simulated
frame-time series.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import lfilter

from repro.games.game import GameSpec
from repro.games.resolution import Resolution

__all__ = ["scene_complexity", "simulate_frame_times", "fps_from_frame_times"]


def scene_complexity(
    rho: float, sigma: float, n_frames: int, rng: np.random.Generator
) -> np.ndarray:
    """Stationary log-AR(1) complexity series with mean ~1.

    ``log c_t = rho * log c_{t-1} + eps_t`` with ``eps ~ N(0, sigma^2)``,
    mean-corrected so ``E[c] = 1``.  Uses :func:`scipy.signal.lfilter` for
    an O(n) vectorized recursion.
    """
    if n_frames < 1:
        raise ValueError("n_frames must be >= 1")
    if not (0.0 <= rho < 1.0):
        raise ValueError(f"rho must lie in [0, 1), got {rho}")
    if sigma < 0:
        raise ValueError("sigma must be >= 0")
    if sigma == 0.0:
        return np.ones(n_frames, dtype=float)
    eps = rng.normal(0.0, sigma, size=n_frames)
    # Start from the stationary distribution to avoid a warm-up transient.
    stationary_var = sigma * sigma / (1.0 - rho * rho)
    x0 = rng.normal(0.0, np.sqrt(stationary_var))
    x = lfilter([1.0], [1.0, -rho], eps, zi=np.array([rho * x0]))[0]
    return np.exp(x - stationary_var / 2.0)


def simulate_frame_times(
    spec: GameSpec,
    resolution: Resolution,
    *,
    stage_inflations: tuple[float, float, float] = (1.0, 1.0, 1.0),
    thrash: float = 1.0,
    n_frames: int = 400,
    rng: np.random.Generator,
    server_scales: tuple[float, float, float] = (1.0, 1.0, 1.0),
) -> np.ndarray:
    """Per-frame times (ms) for one game under fixed contention inflations.

    The steady-state engine provides mean-field stage inflations; here the
    scene-complexity process modulates the CPU and GPU stages around them,
    reproducing intra-run frame-rate variance.
    """
    ic, ig, il = stage_inflations
    cs, gs, ls = server_scales
    c = scene_complexity(spec.scene_rho, spec.scene_sigma, n_frames, rng)
    t_cpu = (spec.cpu_time_ms / cs) * ic * c**spec.cpu_complexity_exp
    t_gpu = (spec.gpu_time_ms(resolution) / gs) * ig * c**spec.gpu_complexity_exp
    t_link = (spec.xfer_time_ms(resolution) / ls) * il
    return (np.maximum(t_cpu, t_gpu) + t_link) * thrash


def fps_from_frame_times(frame_times_ms: np.ndarray) -> float:
    """Average FPS over a frame-time series: frames / total seconds."""
    frame_times_ms = np.asarray(frame_times_ms, dtype=float)
    if frame_times_ms.size == 0:
        raise ValueError("frame_times_ms must be non-empty")
    total_s = float(frame_times_ms.sum()) / 1000.0
    return frame_times_ms.size / total_s
