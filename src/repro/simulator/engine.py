"""Steady-state contention resolution for a colocated workload set.

Colocation performance is a fixed point: contention slows each game, a
slowed game issues less compute/bandwidth traffic, which in turn lowers the
pressure its co-runners feel.  The engine iterates this feedback loop with
damping until the per-game rate factors converge, then reports per-workload
pressures, stage inflations, frame times and benchmark slowdowns.

This rate feedback — combined with the non-additive combinators in
:mod:`repro.hardware.contention` — is what makes aggregate intensity differ
from the sum of individual intensities (the paper's Observation 5 and
Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.contention import ContentionModel
from repro.hardware.resources import NUM_RESOURCES, Resource
from repro.hardware.server import DEFAULT_SERVER, ServerSpec
from repro.simulator.workload import (
    RATE_SCALED_MASK,
    BenchmarkInstance,
    GameInstance,
    Workload,
)

__all__ = ["SteadyState", "ColocationEngine"]


@dataclass(frozen=True)
class SteadyState:
    """Converged contention state for one colocation.

    Attributes
    ----------
    pressures:
        ``(n, 7)`` — aggregate pressure each workload suffers per resource.
    rate_factors:
        ``(n,)`` — achieved/solo frame-rate ratio (1.0 for benchmarks).
    stage_inflations:
        ``(n, 3)`` — CPU/GPU/link stage multipliers (1.0 rows for benchmarks).
    frame_times_ms:
        ``(n,)`` — steady-state mean frame time (NaN for benchmarks).
    slowdowns:
        ``(n,)`` — benchmark completion-time inflation (NaN for games).
    converged:
        Whether the fixed point met tolerance within the iteration budget.
    iterations:
        Fixed-point iterations performed.
    """

    pressures: np.ndarray
    rate_factors: np.ndarray
    stage_inflations: np.ndarray
    frame_times_ms: np.ndarray
    slowdowns: np.ndarray
    converged: bool
    iterations: int


class ColocationEngine:
    """Resolves contention among colocated workloads on one server.

    Parameters
    ----------
    server:
        Server capacity spec; utilizations and stage times are rescaled
        from the reference server.
    contention:
        Per-resource aggregation combinators.
    max_iterations, tolerance, damping:
        Fixed-point controls.  Damping of 0.5 is ample for the monotone
        maps involved; tests assert convergence across random colocations.
    thrash_penalty:
        Frame-time multiplier slope applied when total memory demand
        exceeds server capacity (the paper excludes memory from contention
        features precisely because it is a cliff, not a gradient).
    rate_feedback:
        How strongly a slowed game's exerted compute/bandwidth pressure
        shrinks with its achieved frame rate: the effective utilization
        scale is ``(1 - rate_feedback) + rate_feedback * rate``.  Real
        games keep issuing background work (streaming, simulation ticks,
        prefetch) even when rendering slowly, so the feedback is partial.
    """

    def __init__(
        self,
        server: ServerSpec = DEFAULT_SERVER,
        contention: ContentionModel | None = None,
        *,
        max_iterations: int = 60,
        tolerance: float = 1e-7,
        damping: float = 0.5,
        thrash_penalty: float = 4.0,
        rate_feedback: float = 0.5,
    ):
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if not (0.0 < damping <= 1.0):
            raise ValueError("damping must lie in (0, 1]")
        self.server = server
        self.contention = contention if contention is not None else ContentionModel()
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)
        self.damping = float(damping)
        self.thrash_penalty = float(thrash_penalty)
        if not (0.0 <= rate_feedback <= 1.0):
            raise ValueError("rate_feedback must lie in [0, 1]")
        self.rate_feedback = float(rate_feedback)

    # ------------------------------------------------------------------

    def _memory_thrash_factor(self, workloads: list[Workload]) -> float:
        """Frame-time multiplier from memory oversubscription (1.0 if none)."""
        cpu_gb = gpu_gb = 0.0
        for w in workloads:
            if isinstance(w, GameInstance):
                c, g = w.memory_demand()
                cpu_gb += c
                gpu_gb += g
        over = max(
            0.0,
            (cpu_gb - self.server.cpu_mem_gb) / self.server.cpu_mem_gb,
            (gpu_gb - self.server.gpu_mem_gb) / self.server.gpu_mem_gb,
        )
        return 1.0 + self.thrash_penalty * over

    def steady_state(self, workloads: list[Workload]) -> SteadyState:
        """Resolve the colocation to a contention fixed point."""
        n = len(workloads)
        if n == 0:
            raise ValueError("steady_state requires at least one workload")

        # Base utilizations normalized to this server's capacities.
        base_util = np.zeros((n, NUM_RESOURCES), dtype=float)
        scales = np.array(
            [self.server.domain_scale(res) for res in Resource], dtype=float
        )
        for i, w in enumerate(workloads):
            base_util[i] = np.clip(w.base_utilization() / scales, 0.0, 1.0)

        is_game = np.array([w.is_game for w in workloads], dtype=bool)
        thrash = self._memory_thrash_factor(workloads)

        # Stage times on this server (faster hardware shrinks stages).
        stage_times = np.zeros((n, 3), dtype=float)
        solo_frame = np.zeros(n, dtype=float)
        for i, w in enumerate(workloads):
            if isinstance(w, GameInstance):
                tc, tg, tx = w.stage_times_ms()
                stage_times[i] = (
                    tc / self.server.cpu_scale,
                    tg / self.server.gpu_scale,
                    tx / self.server.link_scale,
                )
                solo_frame[i] = max(stage_times[i, 0], stage_times[i, 1]) + stage_times[i, 2]

        rate = np.ones(n, dtype=float)
        pressures = np.zeros((n, NUM_RESOURCES), dtype=float)
        inflations = np.ones((n, 3), dtype=float)
        frame_times = np.full(n, np.nan, dtype=float)
        converged = False
        iteration = 0

        for iteration in range(1, self.max_iterations + 1):
            eff_util = base_util.copy()
            fb = self.rate_feedback
            scale_rows = np.where(is_game, (1.0 - fb) + fb * rate, 1.0)[:, None]
            eff_util[:, RATE_SCALED_MASK] *= scale_rows

            pressures = self.contention.pressures_leave_one_out(eff_util)

            new_rate = rate.copy()
            for i, w in enumerate(workloads):
                if not isinstance(w, GameInstance):
                    continue
                ic, ig, il = w.spec.stage_inflations(pressures[i])
                inflations[i] = (ic, ig, il)
                tf = (
                    max(stage_times[i, 0] * ic, stage_times[i, 1] * ig)
                    + stage_times[i, 2] * il
                ) * thrash
                frame_times[i] = tf
                new_rate[i] = solo_frame[i] / tf

            delta = float(np.max(np.abs(new_rate - rate))) if n else 0.0
            rate = (1.0 - self.damping) * rate + self.damping * new_rate
            if delta < self.tolerance:
                converged = True
                break

        slowdowns = np.full(n, np.nan, dtype=float)
        for i, w in enumerate(workloads):
            if isinstance(w, BenchmarkInstance):
                slowdowns[i] = w.bench.slowdown(pressures[i])

        return SteadyState(
            pressures=pressures,
            rate_factors=np.where(is_game, rate, 1.0),
            stage_inflations=inflations,
            frame_times_ms=frame_times,
            slowdowns=slowdowns,
            converged=converged,
            iterations=iteration,
        )
