"""Hardware video encoding and processing delay (paper Section 7).

Cloud-gaming servers encode rendered frames and stream them to clients.
Modern GPUs carry dedicated encoder silicon (NVENC on the paper's GTX
1060), so encoding consumes little shared compute — the paper argues this
is why frame-rate prediction can ignore it — but the *processing delay*
a player feels is frame time + capture/encode time, and the encode path
does contend mildly for GPU memory bandwidth and PCIe (frame readback).

The paper's Section 7 notes that processing delay "can be predicted in a
similar way using our methodology"; :mod:`repro.core.delay` does exactly
that on top of this model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.games.resolution import Resolution
from repro.hardware.resources import Resource
from repro.simulator.measurement import ColocationResult
from repro.simulator.workload import GameInstance

__all__ = ["EncoderModel", "processing_delays"]


@dataclass(frozen=True)
class EncoderModel:
    """Dedicated-silicon video encoder (NVENC-class).

    Parameters
    ----------
    fixed_ms, per_mpix_ms:
        Uncontended per-frame capture+encode cost: a fixed pipeline setup
        part plus a pixel-proportional part.
    gpu_bw_sensitivity, pcie_sensitivity:
        Encode-time inflation per unit of pressure on GPU memory bandwidth
        (frame surface reads) and PCIe (bitstream/readback traffic).  Both
        are small: the encoder has its own execution units but shares the
        memory paths.
    """

    fixed_ms: float = 1.0
    per_mpix_ms: float = 1.1
    gpu_bw_sensitivity: float = 0.30
    pcie_sensitivity: float = 0.20

    def __post_init__(self) -> None:
        for name in ("fixed_ms", "per_mpix_ms", "gpu_bw_sensitivity", "pcie_sensitivity"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def solo_encode_time_ms(self, resolution: Resolution) -> float:
        """Uncontended capture+encode time per frame."""
        return self.fixed_ms + self.per_mpix_ms * resolution.megapixels

    def encode_time_ms(self, resolution: Resolution, pressures: np.ndarray) -> float:
        """Encode time under a ``(7,)`` shared-resource pressure vector."""
        pressures = np.asarray(pressures, dtype=float)
        inflation = (
            1.0
            + self.gpu_bw_sensitivity * float(pressures[int(Resource.GPU_BW)])
            + self.pcie_sensitivity * float(pressures[int(Resource.PCIE_BW)])
        )
        return self.solo_encode_time_ms(resolution) * inflation


def processing_delays(
    result: ColocationResult, encoder: EncoderModel | None = None
) -> np.ndarray:
    """Per-workload processing delay (ms) for a measured colocation.

    Processing delay = mean frame time (from the measured frame rate) +
    contention-inflated capture/encode time.  Benchmarks get NaN.
    """
    encoder = encoder if encoder is not None else EncoderModel()
    delays = np.full(len(result.workloads), np.nan, dtype=float)
    for i, workload in enumerate(result.workloads):
        if not isinstance(workload, GameInstance):
            continue
        frame_ms = 1000.0 / result.fps[i]
        encode_ms = encoder.encode_time_ms(
            workload.resolution, result.state.pressures[i]
        )
        delays[i] = frame_ms + encode_ms
    return delays
