"""Frame-loop colocation simulator — the reproduction's ground-truth oracle.

Everywhere the paper runs a real colocation on its testbed and reads frame
rates off the screen, this reproduction calls :func:`run_colocation`.  The
simulator resolves shared-resource contention among workloads to a steady
state (rate-scaled utilizations, non-additive pressure aggregation,
per-stage time inflation), then simulates a run of frames with AR(1) scene
complexity and measurement noise to produce the FPS numbers that profiling,
model training and every evaluation consume.
"""

from repro.simulator.encoder import EncoderModel, processing_delays
from repro.simulator.engine import ColocationEngine, SteadyState
from repro.simulator.frames import scene_complexity, simulate_frame_times
from repro.simulator.measurement import (
    ColocationResult,
    MeasurementConfig,
    measure_solo_fps,
    run_colocation,
)
from repro.simulator.workload import BenchmarkInstance, GameInstance, Workload

__all__ = [
    "EncoderModel",
    "processing_delays",
    "Workload",
    "GameInstance",
    "BenchmarkInstance",
    "ColocationEngine",
    "SteadyState",
    "scene_complexity",
    "simulate_frame_times",
    "MeasurementConfig",
    "ColocationResult",
    "run_colocation",
    "measure_solo_fps",
]
