"""Measurement API: run colocations, read frame rates.

This is the reproduction's substitute for the paper's testbed procedure
("run the game for several minutes, compute the average frame rate").
Every measurement is deterministic in (workload identities, config seed):
repeated calls with the same inputs return identical FPS, while different
colocations observe independent noise streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.server import DEFAULT_SERVER, ServerSpec
from repro.simulator.engine import ColocationEngine, SteadyState
from repro.simulator.frames import fps_from_frame_times, simulate_frame_times
from repro.simulator.workload import GameInstance, Workload
from repro.utils.rng import spawn_rng

__all__ = ["MeasurementConfig", "ColocationResult", "run_colocation", "measure_solo_fps"]


@dataclass(frozen=True)
class MeasurementConfig:
    """Measurement procedure parameters.

    ``noise_sigma`` is the run-to-run multiplicative measurement noise
    (driver scheduling, capture jitter); ``n_frames`` plays the role of the
    paper's multi-minute test period.  ``min_fps_mode`` switches the
    reported statistic from mean FPS to a low percentile of the
    instantaneous frame rate — the conservative profiling variant the paper
    suggests in Section 7.
    """

    n_frames: int = 400
    noise_sigma: float = 0.02
    seed: int = 0
    min_fps_mode: bool = False
    min_fps_percentile: float = 5.0

    def __post_init__(self) -> None:
        if self.n_frames < 1:
            raise ValueError("n_frames must be >= 1")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be >= 0")
        if not (0.0 < self.min_fps_percentile < 50.0):
            raise ValueError("min_fps_percentile must lie in (0, 50)")


@dataclass(frozen=True)
class ColocationResult:
    """Measured outcome of one colocation run."""

    workloads: tuple[Workload, ...]
    fps: tuple[float, ...]
    slowdowns: tuple[float, ...]
    state: SteadyState

    def fps_of(self, index: int) -> float:
        """Measured FPS of workload ``index`` (NaN for benchmarks)."""
        return self.fps[index]

    def slowdown_of(self, index: int) -> float:
        """Benchmark slowdown of workload ``index`` (NaN for games)."""
        return self.slowdowns[index]


def _scene_rng(config: MeasurementConfig, workload: Workload):
    """Scene-trace RNG — depends only on the game, not the colocation.

    The paper measures every run of a game on the *same* popular scene
    (Section 3.2), so the rendering workload trace is common across solo
    and colocated runs.  Common random numbers reproduce that: degradation
    ratios are not polluted by trace resampling variance.
    """
    return spawn_rng(config.seed, "scene", workload.identity())


def _noise_rng(config: MeasurementConfig, workloads: list[Workload], index: int):
    """Measurement-noise RNG — independent across colocations and slots."""
    identity = tuple(w.identity() for w in workloads)
    return spawn_rng(config.seed, "noise", identity, index)


def run_colocation(
    workloads: list[Workload],
    server: ServerSpec = DEFAULT_SERVER,
    config: MeasurementConfig | None = None,
    engine: ColocationEngine | None = None,
) -> ColocationResult:
    """Colocate ``workloads`` on ``server`` and measure each one.

    Games report FPS (mean over the simulated run, or a low percentile in
    ``min_fps_mode``); benchmarks report completion-time slowdown.
    """
    config = config if config is not None else MeasurementConfig()
    if engine is None:
        engine = ColocationEngine(server)
    elif engine.server is not server:
        raise ValueError("engine.server must match the server argument")
    state = engine.steady_state(workloads)
    thrash = engine._memory_thrash_factor(workloads)
    server_scales = (server.cpu_scale, server.gpu_scale, server.link_scale)

    fps: list[float] = []
    slowdowns: list[float] = []
    for i, w in enumerate(workloads):
        noise_rng = _noise_rng(config, workloads, i)
        noise = (
            float(noise_rng.lognormal(0.0, config.noise_sigma))
            if config.noise_sigma
            else 1.0
        )
        if isinstance(w, GameInstance):
            times = simulate_frame_times(
                w.spec,
                w.resolution,
                stage_inflations=tuple(state.stage_inflations[i]),
                thrash=thrash,
                n_frames=config.n_frames,
                rng=_scene_rng(config, w),
                server_scales=server_scales,
            )
            if config.min_fps_mode:
                inst_fps = 1000.0 / times
                value = float(np.percentile(inst_fps, config.min_fps_percentile))
            else:
                value = fps_from_frame_times(times)
            fps.append(value * noise)
            slowdowns.append(float("nan"))
        else:
            slowdowns.append(float(state.slowdowns[i]) * noise)
            fps.append(float("nan"))

    return ColocationResult(
        workloads=tuple(workloads),
        fps=tuple(fps),
        slowdowns=tuple(slowdowns),
        state=state,
    )


def measure_solo_fps(
    instance: GameInstance,
    server: ServerSpec = DEFAULT_SERVER,
    config: MeasurementConfig | None = None,
) -> float:
    """Measure a game's solo frame rate (same procedure, single workload)."""
    result = run_colocation([instance], server=server, config=config)
    return result.fps[0]
