"""Workload instances placed on a simulated server.

Two kinds of workload exist: a :class:`GameInstance` (a game at a player-
chosen resolution) and a :class:`BenchmarkInstance` (a pressure benchmark at
a dial setting).  The engine treats them uniformly through base utilization
vectors, but only games *rate-scale*: a game slowed by contention renders
fewer frames per second and therefore exerts proportionally less compute and
bandwidth pressure (cache footprints do not shrink).  Benchmarks hold their
calibrated pressure regardless of contention, as the paper's calibration
procedure guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.base import PressureBenchmark
from repro.games.game import GameSpec
from repro.games.resolution import REFERENCE_RESOLUTION, Resolution
from repro.hardware.resources import Resource, ResourceKind

__all__ = ["Workload", "GameInstance", "BenchmarkInstance", "RATE_SCALED_MASK"]

#: Boolean mask over resources whose exerted pressure scales with achieved
#: frame rate (compute and bandwidth, not cache footprints).
RATE_SCALED_MASK = np.array(
    [Resource(r).kind is not ResourceKind.CACHE for r in Resource], dtype=bool
)


@dataclass(frozen=True)
class GameInstance:
    """A game running at a specific resolution."""

    spec: GameSpec
    resolution: Resolution = REFERENCE_RESOLUTION

    @property
    def name(self) -> str:
        return f"{self.spec.name}@{self.resolution}"

    @property
    def is_game(self) -> bool:
        return True

    def base_utilization(self) -> np.ndarray:
        """Solo-run utilization vector at this resolution (reference server)."""
        return self.spec.utilization(self.resolution).values.copy()

    def stage_times_ms(self) -> tuple[float, float, float]:
        """(CPU, GPU, transfer) per-frame stage times at unit complexity."""
        return (
            self.spec.cpu_time_ms,
            self.spec.gpu_time_ms(self.resolution),
            self.spec.xfer_time_ms(self.resolution),
        )

    def solo_frame_time_ms(self) -> float:
        """Uncontended frame time at unit complexity."""
        return self.spec.solo_frame_time_ms(self.resolution)

    def memory_demand(self) -> tuple[float, float]:
        """(CPU GB, GPU GB) demand."""
        return self.spec.memory_demand(self.resolution)

    def identity(self) -> tuple:
        """Stable identity for seed derivation."""
        return ("game", self.spec.name, self.resolution.width, self.resolution.height)


@dataclass(frozen=True)
class BenchmarkInstance:
    """A pressure benchmark at a dial setting."""

    bench: PressureBenchmark

    @property
    def name(self) -> str:
        return self.bench.name

    @property
    def is_game(self) -> bool:
        return False

    def base_utilization(self) -> np.ndarray:
        """Calibrated utilization (pinned; benchmarks do not rate-scale)."""
        return self.bench.utilization().values.copy()

    def identity(self) -> tuple:
        """Stable identity for seed derivation."""
        return ("bench", int(self.bench.resource), round(self.bench.pressure, 6))


#: Union type for engine inputs.
Workload = GameInstance | BenchmarkInstance
