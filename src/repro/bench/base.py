"""Common pressure-benchmark model."""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.hardware.resources import NUM_RESOURCES, Resource, ResourceVector
from repro.utils.validation import check_fraction, check_positive

__all__ = ["PressureBenchmark"]


@dataclass(frozen=True)
class PressureBenchmark:
    """A calibrated single-resource pressure generator.

    Parameters
    ----------
    resource:
        The target shared resource.
    pressure:
        The dial ``x in [0, 1]``.  Calibration (the paper tunes sleep time
        per sampled ``x``) means the benchmark exerts exactly this
        utilization on its target resource regardless of contention.
    spill:
        Fraction of the dial leaking onto other resources, e.g. the GPU-BW
        benchmark cannot stream memory without occupying GPU cache.
    slowdown_gain:
        Completion-time inflation per unit of pressure suffered on the
        target resource — how loudly this benchmark reports contention.
    cross_gain:
        Much smaller inflation per unit of pressure on non-target resources.
    """

    resource: Resource
    pressure: float
    spill: Mapping[Resource, float] = field(default_factory=dict)
    slowdown_gain: float = 1.4
    cross_gain: float = 0.06
    name: str = ""

    def __post_init__(self) -> None:
        check_fraction(self.pressure, "pressure")
        check_positive(self.slowdown_gain, "slowdown_gain")
        if self.cross_gain < 0:
            raise ValueError("cross_gain must be >= 0")
        for res, frac in self.spill.items():
            check_fraction(frac, f"spill[{Resource(res).label}]")
        if Resource(self.resource) in self.spill:
            raise ValueError("spill must not include the target resource")
        if not self.name:
            object.__setattr__(
                self, "name", f"bench[{Resource(self.resource).label}@{self.pressure:.2f}]"
            )

    def with_pressure(self, pressure: float) -> "PressureBenchmark":
        """Same benchmark at a different dial setting."""
        return PressureBenchmark(
            resource=self.resource,
            pressure=pressure,
            spill=dict(self.spill),
            slowdown_gain=self.slowdown_gain,
            cross_gain=self.cross_gain,
        )

    def utilization(self) -> ResourceVector:
        """Calibrated utilization vector: the dial plus spill."""
        values = np.zeros(NUM_RESOURCES, dtype=float)
        values[int(self.resource)] = self.pressure
        for res, frac in self.spill.items():
            values[int(res)] = frac * self.pressure
        return ResourceVector(values)

    def slowdown(self, pressures: np.ndarray) -> float:
        """Completion-time inflation (>= 1) under a ``(7,)`` pressure vector.

        The paper's intensity metric is the benchmark's slowdown when
        colocated with a game; it responds mainly to the target resource
        with a weak cross-resource term.
        """
        pressures = np.asarray(pressures, dtype=float)
        if pressures.shape != (NUM_RESOURCES,):
            raise ValueError(f"expected (7,) pressure vector, got {pressures.shape}")
        own = float(pressures[int(self.resource)])
        cross = float(pressures.sum() - own)
        return 1.0 + self.slowdown_gain * own + self.cross_gain * cross
