"""The full benchmark suite, one factory per shared resource."""

from __future__ import annotations

from collections.abc import Callable

from repro.bench.base import PressureBenchmark
from repro.bench.cpu import cpu_core_benchmark, llc_benchmark, mem_bw_benchmark
from repro.bench.gpu import (
    gpu_bw_benchmark,
    gpu_core_benchmark,
    gpu_l2_benchmark,
    pcie_bw_benchmark,
)
from repro.hardware.resources import Resource

__all__ = ["BENCHMARK_FACTORIES", "make_benchmark"]

#: One benchmark factory per shared resource (paper Section 3.2).
BENCHMARK_FACTORIES: dict[Resource, Callable[[float], PressureBenchmark]] = {
    Resource.CPU_CE: cpu_core_benchmark,
    Resource.LLC: llc_benchmark,
    Resource.MEM_BW: mem_bw_benchmark,
    Resource.GPU_CE: gpu_core_benchmark,
    Resource.GPU_BW: gpu_bw_benchmark,
    Resource.GPU_L2: gpu_l2_benchmark,
    Resource.PCIE_BW: pcie_bw_benchmark,
}


def make_benchmark(resource: Resource, pressure: float) -> PressureBenchmark:
    """Instantiate the benchmark for ``resource`` at dial ``pressure``."""
    return BENCHMARK_FACTORIES[Resource(resource)](pressure)
