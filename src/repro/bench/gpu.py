"""GPU-side pressure benchmarks (GPU-CE, GPU-BW, GPU-L2, PCIe-BW).

These are the paper's novel contribution on the benchmarking side
(Section 3.2, "the benchmarks for the shared resources on GPU have not
been studied before"):

* **GPU-CE** — launch one thread per core running the same kernel, with a
  sleep between rounds tuned until the performance counters report exactly
  the target utilization.
* **GPU-BW** — streaming copies across a fraction of GPU memory.  Modern
  GPUs have no cache-bypassing store (no ``_mm_stream_si64x`` analogue),
  so this benchmark *necessarily* pressures the GPU caches too — the paper
  argues this is fine because no real application occupies bandwidth
  without touching cache.  We model that with a substantial GPU-L2 spill.
* **GPU-L2** — random accesses over an ``x * L2-capacity`` array with
  strides larger than L1 reach.
* **PCIe-BW** — streaming transfers between CPU and GPU memory; occupies
  some bandwidth on both ends of the link.
"""

from __future__ import annotations

from repro.bench.base import PressureBenchmark
from repro.hardware.resources import Resource

__all__ = [
    "gpu_core_benchmark",
    "gpu_bw_benchmark",
    "gpu_l2_benchmark",
    "pcie_bw_benchmark",
]


def gpu_core_benchmark(pressure: float) -> PressureBenchmark:
    """GPU-CE pressure: per-core kernel rounds with tuned inter-round sleeps."""
    return PressureBenchmark(
        resource=Resource.GPU_CE,
        pressure=pressure,
        spill={Resource.GPU_L2: 0.03},
        slowdown_gain=1.40,
    )


def gpu_bw_benchmark(pressure: float) -> PressureBenchmark:
    """GPU-BW pressure: device-memory streaming copies (cache spill unavoidable)."""
    return PressureBenchmark(
        resource=Resource.GPU_BW,
        pressure=pressure,
        spill={Resource.GPU_L2: 0.30, Resource.GPU_CE: 0.05},
        slowdown_gain=1.50,
    )


def gpu_l2_benchmark(pressure: float) -> PressureBenchmark:
    """GPU-L2 pressure: random accesses over an ``x * capacity`` device array."""
    return PressureBenchmark(
        resource=Resource.GPU_L2,
        pressure=pressure,
        spill={Resource.GPU_BW: 0.12, Resource.GPU_CE: 0.04},
        slowdown_gain=1.25,
    )


def pcie_bw_benchmark(pressure: float) -> PressureBenchmark:
    """PCIe-BW pressure: host<->device streaming transfers."""
    return PressureBenchmark(
        resource=Resource.PCIE_BW,
        pressure=pressure,
        spill={Resource.MEM_BW: 0.12, Resource.GPU_BW: 0.10},
        slowdown_gain=1.30,
    )
