"""CPU-side pressure benchmarks (CPU-CE, LLC, MEM-BW).

Benchmark designs for the CPU-side resources follow the prior work the
paper cites (iBench, Bubble-Up, Paragon): spin/sleep duty-cycle kernels for
core occupancy, random pointer-chases over an ``x * capacity`` working set
for the last-level cache, and streaming copies for memory bandwidth.  Each
model records the cross-resource spill its real counterpart would have —
a streaming-copy kernel necessarily occupies some LLC and some core time.
"""

from __future__ import annotations

from repro.bench.base import PressureBenchmark
from repro.hardware.resources import Resource

__all__ = ["cpu_core_benchmark", "llc_benchmark", "mem_bw_benchmark"]


def cpu_core_benchmark(pressure: float) -> PressureBenchmark:
    """CPU-CE pressure: one spinning thread per core with tuned sleeps.

    A pressure of ``x`` keeps every core busy with probability ``x``; the
    arithmetic kernel has a tiny footprint, so spill is negligible.
    """
    return PressureBenchmark(
        resource=Resource.CPU_CE,
        pressure=pressure,
        spill={Resource.LLC: 0.02},
        slowdown_gain=1.35,
    )


def llc_benchmark(pressure: float) -> PressureBenchmark:
    """LLC pressure: random accesses over an ``x * LLC-capacity`` array.

    Strides exceed L1/L2 reach so every access lands in the LLC; the misses
    it induces necessarily consume some memory bandwidth and core time.
    """
    return PressureBenchmark(
        resource=Resource.LLC,
        pressure=pressure,
        spill={Resource.MEM_BW: 0.15, Resource.CPU_CE: 0.06},
        slowdown_gain=1.25,
    )


def mem_bw_benchmark(pressure: float) -> PressureBenchmark:
    """MEM-BW pressure: non-temporal streaming copies between arrays.

    Uses ``_mm_stream``-style stores so cache spill stays small; the copy
    loop still occupies a core fraction while streaming.
    """
    return PressureBenchmark(
        resource=Resource.MEM_BW,
        pressure=pressure,
        spill={Resource.LLC: 0.08, Resource.CPU_CE: 0.08},
        slowdown_gain=1.45,
    )
