"""Tunable single-resource pressure microbenchmarks.

The paper (Section 3.2) designs one benchmark per shared resource, each able
to hold an exactly calibrated pressure ``x`` on its resource while staying
as quiet as practical on the others.  Sensitivity profiling colocates a game
with a benchmark sweeping ``x`` from 0 to 1; intensity profiling measures
how much the game slows the benchmark down.

Here each benchmark is a workload model for :mod:`repro.simulator`: it pins
its calibrated utilization (the paper tunes sleep intervals until observed
utilization equals the dial, so contention does not change the pressure it
*exerts*), carries the realistic cross-resource spill the paper acknowledges
(e.g. the GPU-BW benchmark necessarily touches GPU caches), and reports a
completion-time slowdown when pressured by co-runners.
"""

from repro.bench.base import PressureBenchmark
from repro.bench.cpu import cpu_core_benchmark, llc_benchmark, mem_bw_benchmark
from repro.bench.gpu import (
    gpu_bw_benchmark,
    gpu_core_benchmark,
    gpu_l2_benchmark,
    pcie_bw_benchmark,
)
from repro.bench.suite import BENCHMARK_FACTORIES, make_benchmark

__all__ = [
    "PressureBenchmark",
    "cpu_core_benchmark",
    "llc_benchmark",
    "mem_bw_benchmark",
    "gpu_core_benchmark",
    "gpu_bw_benchmark",
    "gpu_l2_benchmark",
    "pcie_bw_benchmark",
    "BENCHMARK_FACTORIES",
    "make_benchmark",
]
