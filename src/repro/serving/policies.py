"""Deprecated location: admission policies moved to :mod:`repro.placement.policies`.

The policy implementations are shared by the offline scheduling
simulator and the online serving broker, so they now live in the
placement core (:mod:`repro.placement.policies`), where both frontends
dispatch them through :class:`repro.placement.DecisionEngine`.  This
module re-exports the public surface so existing imports keep working
for one release — update to ``from repro.placement.policies import ...``
(or :mod:`repro.placement`).
"""

from repro.placement.policies import (
    POLICY_NAMES,
    AdmissionPolicy,
    CMFeasiblePolicy,
    DedicatedPolicy,
    MaxFPSPolicy,
    OfflinePolicyAdapter,
    Signature,
    VBPFirstFitPolicy,
    WorstFitPolicy,
    build_policy,
)

__all__ = [
    "Signature",
    "AdmissionPolicy",
    "CMFeasiblePolicy",
    "MaxFPSPolicy",
    "WorstFitPolicy",
    "VBPFirstFitPolicy",
    "DedicatedPolicy",
    "OfflinePolicyAdapter",
    "POLICY_NAMES",
    "build_policy",
]
