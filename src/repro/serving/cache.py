"""Deprecated location: the prediction cache moved to :mod:`repro.placement.cache`.

The LRU prediction cache and the canonical colocation key are part of
the shared placement core (the key canonicalization contract is owned by
:mod:`repro.placement.signature`).  This module re-exports the public
surface so existing imports keep working for one release — update to
``from repro.placement.cache import ...`` (or :mod:`repro.placement`).
"""

from repro.placement.cache import PredictionCache
from repro.placement.signature import colocation_key

__all__ = ["colocation_key", "PredictionCache"]
