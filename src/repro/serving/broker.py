"""The request broker: a discrete-event online serving loop.

Replays a session trace (arrivals and departures) against a growing and
shrinking server pool, asking the :class:`AdmissionController` for a
placement at every arrival — the role a cloud-gaming fleet's dispatcher
plays, with GAugur's predictions on the hot path (paper Section 5,
Algorithm 1's online setting).

The pool bookkeeping is the shared
:class:`repro.placement.FleetState` — the *same* implementation the
offline simulator (:func:`repro.scheduling.dynamic.simulate_sessions`)
advances, and every placement goes through
:meth:`repro.placement.DecisionEngine.admit` — so a deterministic policy
produces byte-identical placements here and there by construction; the
parity tests pin this down.  What the broker adds is the serving-side
machinery the offline simulator has no use for: telemetry, caches,
fallback accounting, a JSON-able report instead of ground-truth QoS
accounting — and failure realism.  With a nonzero ``crash_rate``,
servers crash at (seeded, deterministic) random before arrivals: a
crashed server leaves the pool and its live sessions re-enter the
admission queue for immediate re-placement, counted as
``server_crashes`` / ``sessions_evicted`` / ``readmissions``.  With
``crash_rate`` zero the crash RNG is never consulted, preserving
placement parity with the offline simulator.

The broker runs in two modes.  :meth:`run` is the one-shot replay loop
every existing caller uses.  Underneath it sits an incremental API —
:meth:`start` / :meth:`submit` / :meth:`finish` — that external drivers
(the sharded tier in :mod:`repro.sharding`) use to feed arrivals one at
a time, interleave control actions between them, and collect the report
when the stream ends.  ``run`` is exactly ``start`` + one ``submit`` per
arrival + ``finish``, so both modes share one code path and one
telemetry sequence.  Session *migration* (the sharded tier's rebalancer
moving load between brokers) reuses the crash→evict→readmit machinery as
its transport but is counted distinctly: ``migrations`` /
``sessions_migrated_out`` / ``sessions_migrated_in``, never
``server_crashes``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.obs.tracing import Tracer
from repro.placement.fleet import FleetState, Session
from repro.serving.admission import AdmissionController
from repro.utils.rng import spawn_rng

__all__ = ["PlacementRecord", "ServingReport", "RequestBroker"]


@dataclass(frozen=True)
class PlacementRecord:
    """One admission decision's outcome.

    ``choice`` is the policy's index into the open-server list presented
    at decision time (``None`` = new server) — directly comparable with an
    offline policy's return value; ``server_id`` is the stable identifier
    of the server that ended up hosting the session.  ``readmitted``
    marks a session displaced by a server crash and placed again;
    ``migrated`` marks a session moved in from another fleet shard by
    the rebalancer.  ``resolution``/``requested`` are set only when the
    downscale actuator placed the session below its request — records
    from degrade-disabled runs keep the historical eight-key shape.
    """

    index: int
    game: str
    choice: int | None
    server_id: int
    policy: str
    fallback: bool
    readmitted: bool = False
    migrated: bool = False
    resolution: str | None = None
    requested: str | None = None

    def to_dict(self) -> dict:
        """JSON-able form (degrade keys only for degraded placements)."""
        payload = {
            "index": self.index,
            "game": self.game,
            "choice": self.choice,
            "server_id": self.server_id,
            "policy": self.policy,
            "fallback": self.fallback,
            "readmitted": self.readmitted,
            "migrated": self.migrated,
        }
        if self.resolution is not None:
            payload["resolution"] = self.resolution
            payload["requested"] = self.requested
        return payload


@dataclass
class ServingReport:
    """Everything one broker run produced."""

    placements: list[PlacementRecord]
    servers_opened: int
    peak_servers: int
    telemetry: dict = field(default_factory=dict)
    readmissions: list[PlacementRecord] = field(default_factory=list)
    resilience: dict = field(default_factory=dict)
    migrations: list[PlacementRecord] = field(default_factory=list)
    n_arrivals: int = 0
    qos: dict = field(default_factory=dict)

    @property
    def n_sessions(self) -> int:
        """Sessions replayed (original arrivals, not re-admissions).

        Falls back to the arrival count when the broker ran with
        ``keep_records=False`` and retained no per-session records.
        """
        return len(self.placements) if self.placements else self.n_arrivals

    def choices(self) -> list[int | None]:
        """Per-arrival policy decisions (index into open servers or None)."""
        return [p.choice for p in self.placements]

    def server_ids(self) -> list[int]:
        """Per-arrival hosting server ids."""
        return [p.server_id for p in self.placements]

    def to_dict(self) -> dict:
        """JSON-able summary including per-session placements.

        The ``qos`` key appears only when a :class:`~repro.obs.qos.QoSLedger`
        rode the run — reports from ledger-less runs stay byte-identical
        to previous releases.
        """
        payload = {
            "n_sessions": self.n_sessions,
            "servers_opened": self.servers_opened,
            "peak_servers": self.peak_servers,
            "placements": [p.to_dict() for p in self.placements],
            "readmissions": [p.to_dict() for p in self.readmissions],
            "migrations": [p.to_dict() for p in self.migrations],
            "resilience": self.resilience,
            "telemetry": self.telemetry,
        }
        if self.qos:
            payload["qos"] = self.qos
        return payload


class RequestBroker:
    """Event loop pairing a session trace with an admission controller.

    ``crash_rate`` is the per-arrival probability that one open server
    crashes just before the arrival is handled; crashes are drawn from a
    dedicated substream of ``crash_seed`` so a chaos run is exactly
    reproducible and a zero rate never touches the RNG.

    ``keep_records=False`` drops the per-session
    :class:`PlacementRecord` lists (the counters and histograms still
    accumulate) — the memory valve the million-session scale benchmarks
    need; everything per-arrival is then only in telemetry.

    ``restore_interval`` (arrivals) periodically runs the controller's
    restore loop, re-promoting downscale-degraded sessions that
    departure-freed capacity now allows; ``None`` (the default) leaves
    restoration to an external driver — the sharded tier promotes at its
    chunk/rebalance barriers instead.
    """

    def __init__(
        self,
        controller: AdmissionController,
        *,
        crash_rate: float = 0.0,
        crash_seed: int = 0,
        tracer: Tracer | None = None,
        keep_records: bool = True,
        ledger=None,
        restore_interval: int | None = None,
    ):
        if not 0.0 <= crash_rate <= 1.0:
            raise ValueError(f"crash_rate must be in [0, 1], got {crash_rate}")
        if restore_interval is not None and restore_interval <= 0:
            raise ValueError(
                f"restore_interval must be positive, got {restore_interval}"
            )
        self.restore_interval = restore_interval
        self.controller = controller
        self.crash_rate = float(crash_rate)
        self.crash_seed = int(crash_seed)
        self.keep_records = bool(keep_records)
        # One `tracer=` argument in either place instruments the whole
        # request path: an explicit tracer here is pushed down into the
        # controller (and through it, the policies and predictor).
        if tracer is not None:
            controller.set_tracer(tracer)
        self.tracer = controller.tracer
        # Optional QoS ledger (repro.obs.qos.QoSLedger): rides the fleet
        # as a mutation observer and records into the controller's
        # telemetry so qos metrics land in the same snapshot/merge.
        self.ledger = ledger
        if ledger is not None:
            ledger.instrument(telemetry=controller.telemetry, tracer=self.tracer)
        self.fleet = FleetState(observer=ledger)
        self._placements: list[PlacementRecord] = []
        self._readmissions: list[PlacementRecord] = []
        self._migrations: list[PlacementRecord] = []
        self._n_arrivals = 0
        self._crash_rng = None

    # -- incremental API ------------------------------------------------

    def start(self) -> "RequestBroker":
        """Reset per-run state; the first step of every replay.

        External drivers (:class:`repro.sharding.ShardedBroker`) call
        this once, then :meth:`submit` arrivals in nondecreasing arrival
        order, then :meth:`finish`.  :meth:`run` does exactly this over a
        sorted trace.
        """
        if self.ledger is not None:
            self.ledger.reset()
        self.fleet = FleetState(observer=self.ledger)
        self._placements = []
        self._readmissions = []
        self._migrations = []
        self._n_arrivals = 0
        self._crash_rng = (
            spawn_rng(self.crash_seed, "server-crashes")
            if self.crash_rate > 0
            else None
        )
        return self

    def submit(self, session: Session, index: int) -> PlacementRecord:
        """Handle one arrival: departures first, then crashes, then admit.

        ``index`` is the caller's arrival index (global across shards in
        the sharded tier) — it labels records, events and spans but never
        influences a decision.
        """
        if self.ledger is not None:
            self.ledger.advance(session.arrival)
        removed = self.fleet.pop_departures(session.arrival)
        if removed:
            self.controller.telemetry.counter("departures").inc(removed)
        if (
            self.restore_interval is not None
            and self._n_arrivals
            and self._n_arrivals % self.restore_interval == 0
        ):
            self.restore_degraded(now=session.arrival, index=index)
        self._maybe_crash(session.arrival, index)
        record = self._admit(session, index, readmitted=False)
        self._n_arrivals += 1
        if self.keep_records:
            self._placements.append(record)
        return record

    def finish(self) -> ServingReport:
        """Snapshot telemetry and assemble the :class:`ServingReport`."""
        if self.ledger is not None:
            self.ledger.finalize()
        telemetry = self.controller.telemetry
        snapshot = telemetry.snapshot()
        snapshot["caches"] = {
            name: cache.stats()
            for name, cache in self.controller.caches().items()
        }
        counters = snapshot["counters"]
        resilience = self.controller.resilience_snapshot()
        resilience.update(
            {
                "crash_rate": self.crash_rate,
                "server_crashes": counters.get("server_crashes", 0),
                "sessions_evicted": counters.get("sessions_evicted", 0),
                "readmissions": counters.get("readmissions", 0),
            }
        )
        downscale = getattr(self.controller, "downscale", None)
        if downscale is not None:
            # Extra key only when the actuator rode the run: degrade-
            # disabled reports stay byte-identical to previous releases.
            resilience["downscale"] = {
                "ladder": downscale.ladder.to_list(),
                "restore": bool(self.controller.can_restore),
                "restore_interval": self.restore_interval,
            }
        return ServingReport(
            placements=self._placements,
            servers_opened=self.fleet.servers_opened,
            peak_servers=self.fleet.peak,
            telemetry=snapshot,
            readmissions=self._readmissions,
            resilience=resilience,
            migrations=self._migrations,
            n_arrivals=self._n_arrivals,
            qos=self.ledger.section(snapshot) if self.ledger is not None else {},
        )

    # -- restore hook (timer-driven here, barrier-driven when sharded) --

    def restore_degraded(self, *, now: float, index: int) -> int:
        """Re-promote degraded sessions that freed capacity now allows.

        Delegates to :meth:`repro.placement.DecisionEngine.restore`;
        called every ``restore_interval`` arrivals when configured, and
        by the sharded tier at its chunk/rebalance barriers.  A no-op
        (touching no telemetry at all) when the controller has no
        operable restore path or nothing is degraded.
        """
        if not getattr(self.controller, "can_restore", False):
            return 0
        if self.fleet.n_degraded == 0:
            return 0
        if self.ledger is not None:
            self.ledger.advance(now)
        promoted = self.controller.restore(self.fleet)
        if promoted:
            self.controller.telemetry.event(
                "restore", time=now, arrival_index=index, promoted=promoted
            )
        return promoted

    # -- migration hooks (driven by repro.sharding.Rebalancer) ----------

    def evict_for_migration(
        self, server_id: int, *, now: float, index: int, reason: str = "migration"
    ) -> list[Session]:
        """Evict ``server_id`` wholesale as the *source* side of a migration.

        Reuses the crash→evict primitive (:meth:`FleetState.crash`, so
        evicted sessions come back in admission order) but counts
        ``migrations`` / ``sessions_migrated_out`` — an operator must be
        able to tell planned moves from failures at a glance.  A
        non-default ``reason`` (the shard supervisor passes
        ``"failover"``) is stamped onto the event; the default leaves
        the event byte-identical to pre-supervision runs.
        """
        if self.ledger is not None:
            self.ledger.advance(now)
            self.ledger.mark_eviction(
                "migrated" if reason == "migration" else reason
            )
        evicted = self.fleet.crash(server_id)
        t = self.controller.telemetry
        t.counter("migrations").inc()
        t.counter("sessions_migrated_out").inc(len(evicted))
        t.gauge("open_servers").set(self.fleet.n_open)
        extra = {} if reason == "migration" else {"reason": reason}
        t.event(
            "migration_out",
            time=now,
            arrival_index=index,
            server_id=server_id,
            sessions=len(evicted),
            **extra,
        )
        return evicted

    def admit_migrations(
        self, sessions: Sequence[Session], index: int, *, now: float | None = None
    ) -> list[PlacementRecord]:
        """Admit sessions arriving from another shard (destination side).

        Each placement is counted as ``sessions_migrated_in`` and
        recorded with ``migrated=True`` — the readmission path's twin,
        with its own ledger.  ``now`` is the barrier time on the
        caller's clock; it advances the QoS ledger so migrated-in
        sessions open their records at the barrier instant rather than
        at this broker's last arrival.
        """
        if self.ledger is not None and now is not None:
            self.ledger.advance(now)
        t = self.controller.telemetry
        records = []
        for session in sessions:
            t.counter("sessions_migrated_in").inc()
            record = self._admit(session, index, readmitted=False, migrated=True)
            records.append(record)
            if self.keep_records:
                self._migrations.append(record)
        if sessions:
            t.event(
                "migration_in", arrival_index=index, sessions=len(sessions)
            )
        return records

    # -- internals ------------------------------------------------------

    def _admit(
        self, session: Session, index: int, *, readmitted: bool, migrated: bool = False
    ) -> PlacementRecord:
        attributes = {"index": index, "game": session.game, "readmitted": readmitted}
        if migrated:
            attributes["migrated"] = True
        with self.tracer.span("request", **attributes) as span:
            outcome = self.controller.admit(self.fleet, session)
            self.controller.telemetry.gauge("open_servers").set(self.fleet.n_open)
            span.set(server_id=outcome.server_id, policy=outcome.policy)
        placed = getattr(outcome, "session", None) or session
        degraded = getattr(placed, "degraded", False)
        return PlacementRecord(
            index=index,
            game=session.game,
            choice=outcome.choice,
            server_id=outcome.server_id,
            policy=outcome.policy,
            fallback=outcome.fallback,
            readmitted=readmitted,
            migrated=migrated,
            resolution=str(placed.resolution) if degraded else None,
            requested=str(placed.requested) if degraded else None,
        )

    def _maybe_crash(self, now: float, index: int) -> None:
        if self._crash_rng is None or self.fleet.n_open == 0:
            return
        if self._crash_rng.random() >= self.crash_rate:
            return
        telemetry = self.controller.telemetry
        victim = self.fleet.server_ids()[int(self._crash_rng.integers(self.fleet.n_open))]
        evicted = self.fleet.crash(victim)
        telemetry.counter("server_crashes").inc()
        telemetry.counter("sessions_evicted").inc(len(evicted))
        telemetry.event(
            "server_crash",
            time=now,
            arrival_index=index,
            server_id=victim,
            evicted=len(evicted),
        )
        self.tracer.instant(
            "server_crash", server_id=victim, evicted=len(evicted)
        )
        # Evicted sessions re-enter the admission queue immediately, in
        # admission order (FleetState.crash sorts by member id), so the
        # crash -> evict -> readmission trajectory is a pure function
        # of the crash RNG under a fixed seed.
        for session in evicted:
            telemetry.counter("readmissions").inc()
            record = self._admit(session, index, readmitted=True)
            if self.keep_records:
                self._readmissions.append(record)

    # -- one-shot API ---------------------------------------------------

    def run(self, sessions: Sequence[Session]) -> ServingReport:
        """Replay ``sessions`` (sorted by arrival) through the controller.

        Departures are applied before each arrival's decision, exactly as
        in :func:`repro.scheduling.dynamic.simulate_sessions` (both drive
        the same :class:`~repro.placement.fleet.FleetState`); emptied
        servers leave the pool.  Crash events (if enabled) fire after the
        departures and before the arrival's own decision, and every
        evicted live session is re-admitted immediately, in admission
        order (oldest member first).  Returns the placement log plus a
        telemetry snapshot (with cache statistics folded in) and the
        resilience summary.
        """
        ordered = sorted(sessions, key=lambda s: s.arrival)
        self.start()
        for index, session in enumerate(ordered):
            self.submit(session, index)
        return self.finish()
