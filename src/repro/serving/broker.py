"""The request broker: a discrete-event online serving loop.

Replays a session trace (arrivals and departures) against a growing and
shrinking server pool, asking the :class:`AdmissionController` for a
placement at every arrival — the role a cloud-gaming fleet's dispatcher
plays, with GAugur's predictions on the hot path (paper Section 5,
Algorithm 1's online setting).

The pool bookkeeping deliberately mirrors
:func:`repro.scheduling.dynamic.simulate_sessions` event for event (same
server ordering, same departure handling), so a deterministic policy
produces byte-identical placements here and there; the parity tests rely
on this.  What the broker adds is the serving-side machinery the offline
simulator has no use for: telemetry, caches, fallback accounting, and a
JSON-able report instead of ground-truth QoS accounting.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.scheduling.dynamic import Session
from repro.serving.admission import AdmissionController
from repro.serving.policies import Signature

__all__ = ["PlacementRecord", "ServingReport", "RequestBroker"]


@dataclass(frozen=True)
class PlacementRecord:
    """One arrival's outcome.

    ``choice`` is the policy's index into the open-server list presented
    at decision time (``None`` = new server) — directly comparable with an
    offline policy's return value; ``server_id`` is the stable identifier
    of the server that ended up hosting the session.
    """

    index: int
    game: str
    choice: int | None
    server_id: int
    policy: str
    fallback: bool


@dataclass
class ServingReport:
    """Everything one broker run produced."""

    placements: list[PlacementRecord]
    servers_opened: int
    peak_servers: int
    telemetry: dict = field(default_factory=dict)

    @property
    def n_sessions(self) -> int:
        """Sessions replayed."""
        return len(self.placements)

    def choices(self) -> list[int | None]:
        """Per-arrival policy decisions (index into open servers or None)."""
        return [p.choice for p in self.placements]

    def server_ids(self) -> list[int]:
        """Per-arrival hosting server ids."""
        return [p.server_id for p in self.placements]

    def to_dict(self) -> dict:
        """JSON-able summary including per-session placements."""
        return {
            "n_sessions": self.n_sessions,
            "servers_opened": self.servers_opened,
            "peak_servers": self.peak_servers,
            "placements": [
                {
                    "index": p.index,
                    "game": p.game,
                    "choice": p.choice,
                    "server_id": p.server_id,
                    "policy": p.policy,
                    "fallback": p.fallback,
                }
                for p in self.placements
            ],
            "telemetry": self.telemetry,
        }


class RequestBroker:
    """Event loop pairing a session trace with an admission controller."""

    def __init__(self, controller: AdmissionController):
        self.controller = controller

    def run(self, sessions: Sequence[Session]) -> ServingReport:
        """Replay ``sessions`` (sorted by arrival) through the controller.

        Departures are applied before each arrival's decision, exactly as
        in :func:`repro.scheduling.dynamic.simulate_sessions`; emptied
        servers leave the pool.  Returns the placement log plus a
        telemetry snapshot (with cache statistics folded in).
        """
        ordered = sorted(sessions, key=lambda s: s.arrival)
        servers: dict[int, list[Session]] = {}
        departures: list[tuple[float, int, int]] = []  # (time, seq, server_id)
        next_server_id = 0
        seq = 0
        peak = 0
        placements: list[PlacementRecord] = []

        def pop_departures(until: float) -> None:
            while departures and departures[0][0] <= until:
                _, _, server_id = heapq.heappop(departures)
                members = servers.get(server_id)
                if members is None:
                    continue
                members.pop(0)
                if not members:
                    del servers[server_id]
                self.controller.telemetry.counter("departures").inc()

        def signature(members: list[Session]) -> Signature:
            return tuple(sorted((s.game, s.resolution) for s in members))

        for index, session in enumerate(ordered):
            pop_departures(session.arrival)
            sigs = [signature(m) for m in servers.values()]
            ids = list(servers.keys())
            decision = self.controller.decide(sigs, session)
            if decision.server is None:
                server_id = next_server_id
                next_server_id += 1
                servers[server_id] = [session]
            else:
                server_id = ids[decision.server]
                servers[server_id].append(session)
                # Keep departure order: earliest-ending session leaves first.
                servers[server_id].sort(key=lambda s: s.arrival + s.duration)
            heapq.heappush(
                departures, (session.arrival + session.duration, seq, server_id)
            )
            seq += 1
            peak = max(peak, len(servers))
            placements.append(
                PlacementRecord(
                    index=index,
                    game=session.game,
                    choice=decision.server,
                    server_id=server_id,
                    policy=decision.policy,
                    fallback=decision.fallback,
                )
            )

        telemetry = self.controller.telemetry.snapshot()
        telemetry["caches"] = {
            name: cache.stats()
            for name, cache in self.controller.caches().items()
        }
        return ServingReport(
            placements=placements,
            servers_opened=next_server_id,
            peak_servers=peak,
            telemetry=telemetry,
        )
