"""The request broker: a discrete-event online serving loop.

Replays a session trace (arrivals and departures) against a growing and
shrinking server pool, asking the :class:`AdmissionController` for a
placement at every arrival — the role a cloud-gaming fleet's dispatcher
plays, with GAugur's predictions on the hot path (paper Section 5,
Algorithm 1's online setting).

The pool bookkeeping is the shared
:class:`repro.placement.FleetState` — the *same* implementation the
offline simulator (:func:`repro.scheduling.dynamic.simulate_sessions`)
advances, and every placement goes through
:meth:`repro.placement.DecisionEngine.admit` — so a deterministic policy
produces byte-identical placements here and there by construction; the
parity tests pin this down.  What the broker adds is the serving-side
machinery the offline simulator has no use for: telemetry, caches,
fallback accounting, a JSON-able report instead of ground-truth QoS
accounting — and failure realism.  With a nonzero ``crash_rate``,
servers crash at (seeded, deterministic) random before arrivals: a
crashed server leaves the pool and its live sessions re-enter the
admission queue for immediate re-placement, counted as
``server_crashes`` / ``sessions_evicted`` / ``readmissions``.  With
``crash_rate`` zero the crash RNG is never consulted, preserving
placement parity with the offline simulator.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.obs.tracing import Tracer
from repro.placement.fleet import FleetState, Session
from repro.serving.admission import AdmissionController
from repro.utils.rng import spawn_rng

__all__ = ["PlacementRecord", "ServingReport", "RequestBroker"]


@dataclass(frozen=True)
class PlacementRecord:
    """One admission decision's outcome.

    ``choice`` is the policy's index into the open-server list presented
    at decision time (``None`` = new server) — directly comparable with an
    offline policy's return value; ``server_id`` is the stable identifier
    of the server that ended up hosting the session.  ``readmitted``
    marks a session displaced by a server crash and placed again.
    """

    index: int
    game: str
    choice: int | None
    server_id: int
    policy: str
    fallback: bool
    readmitted: bool = False

    def to_dict(self) -> dict:
        """JSON-able form."""
        return {
            "index": self.index,
            "game": self.game,
            "choice": self.choice,
            "server_id": self.server_id,
            "policy": self.policy,
            "fallback": self.fallback,
            "readmitted": self.readmitted,
        }


@dataclass
class ServingReport:
    """Everything one broker run produced."""

    placements: list[PlacementRecord]
    servers_opened: int
    peak_servers: int
    telemetry: dict = field(default_factory=dict)
    readmissions: list[PlacementRecord] = field(default_factory=list)
    resilience: dict = field(default_factory=dict)

    @property
    def n_sessions(self) -> int:
        """Sessions replayed (original arrivals, not re-admissions)."""
        return len(self.placements)

    def choices(self) -> list[int | None]:
        """Per-arrival policy decisions (index into open servers or None)."""
        return [p.choice for p in self.placements]

    def server_ids(self) -> list[int]:
        """Per-arrival hosting server ids."""
        return [p.server_id for p in self.placements]

    def to_dict(self) -> dict:
        """JSON-able summary including per-session placements."""
        return {
            "n_sessions": self.n_sessions,
            "servers_opened": self.servers_opened,
            "peak_servers": self.peak_servers,
            "placements": [p.to_dict() for p in self.placements],
            "readmissions": [p.to_dict() for p in self.readmissions],
            "resilience": self.resilience,
            "telemetry": self.telemetry,
        }


class RequestBroker:
    """Event loop pairing a session trace with an admission controller.

    ``crash_rate`` is the per-arrival probability that one open server
    crashes just before the arrival is handled; crashes are drawn from a
    dedicated substream of ``crash_seed`` so a chaos run is exactly
    reproducible and a zero rate never touches the RNG.
    """

    def __init__(
        self,
        controller: AdmissionController,
        *,
        crash_rate: float = 0.0,
        crash_seed: int = 0,
        tracer: Tracer | None = None,
    ):
        if not 0.0 <= crash_rate <= 1.0:
            raise ValueError(f"crash_rate must be in [0, 1], got {crash_rate}")
        self.controller = controller
        self.crash_rate = float(crash_rate)
        self.crash_seed = int(crash_seed)
        # One `tracer=` argument in either place instruments the whole
        # request path: an explicit tracer here is pushed down into the
        # controller (and through it, the policies and predictor).
        if tracer is not None:
            controller.set_tracer(tracer)
        self.tracer = controller.tracer

    def run(self, sessions: Sequence[Session]) -> ServingReport:
        """Replay ``sessions`` (sorted by arrival) through the controller.

        Departures are applied before each arrival's decision, exactly as
        in :func:`repro.scheduling.dynamic.simulate_sessions` (both drive
        the same :class:`~repro.placement.fleet.FleetState`); emptied
        servers leave the pool.  Crash events (if enabled) fire after the
        departures and before the arrival's own decision, and every
        evicted live session is re-admitted immediately, in admission
        order (oldest member first).  Returns the placement log plus a
        telemetry snapshot (with cache statistics folded in) and the
        resilience summary.
        """
        ordered = sorted(sessions, key=lambda s: s.arrival)
        fleet = FleetState()
        placements: list[PlacementRecord] = []
        readmissions: list[PlacementRecord] = []
        telemetry = self.controller.telemetry
        crash_rng = (
            spawn_rng(self.crash_seed, "server-crashes")
            if self.crash_rate > 0
            else None
        )

        def admit(session: Session, index: int, readmitted: bool) -> PlacementRecord:
            with self.tracer.span(
                "request", index=index, game=session.game, readmitted=readmitted
            ) as span:
                outcome = self.controller.admit(fleet, session)
                telemetry.gauge("open_servers").set(fleet.n_open)
                span.set(server_id=outcome.server_id, policy=outcome.policy)
            return PlacementRecord(
                index=index,
                game=session.game,
                choice=outcome.choice,
                server_id=outcome.server_id,
                policy=outcome.policy,
                fallback=outcome.fallback,
                readmitted=readmitted,
            )

        def maybe_crash(now: float, index: int) -> None:
            if crash_rng is None or fleet.n_open == 0:
                return
            if crash_rng.random() >= self.crash_rate:
                return
            victim = fleet.server_ids()[int(crash_rng.integers(fleet.n_open))]
            evicted = fleet.crash(victim)
            telemetry.counter("server_crashes").inc()
            telemetry.counter("sessions_evicted").inc(len(evicted))
            telemetry.event(
                "server_crash",
                time=now,
                arrival_index=index,
                server_id=victim,
                evicted=len(evicted),
            )
            self.tracer.instant(
                "server_crash", server_id=victim, evicted=len(evicted)
            )
            # Evicted sessions re-enter the admission queue immediately, in
            # admission order (FleetState.crash sorts by member id), so the
            # crash -> evict -> readmission trajectory is a pure function
            # of the crash RNG under a fixed seed.
            for session in evicted:
                telemetry.counter("readmissions").inc()
                readmissions.append(admit(session, index, True))

        for index, session in enumerate(ordered):
            removed = fleet.pop_departures(session.arrival)
            if removed:
                telemetry.counter("departures").inc(removed)
            maybe_crash(session.arrival, index)
            placements.append(admit(session, index, False))

        snapshot = telemetry.snapshot()
        snapshot["caches"] = {
            name: cache.stats()
            for name, cache in self.controller.caches().items()
        }
        counters = snapshot["counters"]
        resilience = self.controller.resilience_snapshot()
        resilience.update(
            {
                "crash_rate": self.crash_rate,
                "server_crashes": counters.get("server_crashes", 0),
                "sessions_evicted": counters.get("sessions_evicted", 0),
                "readmissions": counters.get("readmissions", 0),
            }
        )
        return ServingReport(
            placements=placements,
            servers_opened=fleet.servers_opened,
            peak_servers=fleet.peak,
            telemetry=snapshot,
            readmissions=readmissions,
            resilience=resilience,
        )
