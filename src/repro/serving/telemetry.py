"""Serving telemetry: monotonic counters and fixed-bucket latency histograms.

The broker and admission controller record everything an operator would
scrape from a real dispatcher — request/admission/fallback counts and
per-decision latency distributions — without any external dependency.
Histograms use fixed upper-bound buckets (Prometheus-style ``le`` edges)
so snapshots from different processes are mergeable by bucket-wise
addition.  :meth:`Telemetry.snapshot` returns plain dicts/lists/floats,
directly serializable with :func:`json.dumps`.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager

__all__ = [
    "Counter",
    "LatencyHistogram",
    "Telemetry",
    "DEFAULT_LATENCY_BUCKETS",
    "MAX_EVENTS",
]

#: Cap on retained events: a misbehaving component (a flapping breaker, a
#: chaos run with extreme rates) must not grow the snapshot without bound.
MAX_EVENTS = 10_000

#: Default latency bucket upper bounds in seconds: 50us .. 1s, log-ish spaced.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    5e-5,
    1e-4,
    2.5e-4,
    5e-4,
    1e-3,
    2.5e-3,
    5e-3,
    1e-2,
    2.5e-2,
    5e-2,
    1e-1,
    2.5e-1,
    5e-1,
    1.0,
)


class Counter:
    """A monotonically increasing integer counter."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be >= 0 — counters never decrease)."""
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {n})")
        self._value += n

    @property
    def value(self) -> int:
        """Current count."""
        return self._value


class LatencyHistogram:
    """Fixed-bucket histogram of observed durations (seconds).

    Buckets are cumulative-style upper bounds; observations above the last
    edge land in an implicit +inf overflow bucket.  Tracks count and sum,
    so both mean and bucketed quantile estimates are available.
    """

    def __init__(self, name: str, buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # + overflow
        self._count = 0
        self._total = 0.0

    def observe(self, seconds: float) -> None:
        """Record one duration."""
        if seconds < 0:
            raise ValueError(f"negative duration {seconds}")
        for i, edge in enumerate(self.buckets):
            if seconds <= edge:
                self._counts[i] += 1
                break
        else:
            self._counts[-1] += 1
        self._count += 1
        self._total += seconds

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def total(self) -> float:
        """Sum of observed durations (seconds)."""
        return self._total

    @property
    def mean(self) -> float:
        """Mean observed duration (0.0 before any observation)."""
        return self._total / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Bucketed quantile estimate: the upper edge of the q-th bucket.

        Overflow observations report the last finite edge (the estimate is
        a lower bound there).  Returns 0.0 before any observation.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        rank = math.ceil(q * self._count)
        running = 0
        for i, n in enumerate(self._counts):
            running += n
            if running >= rank:
                return self.buckets[min(i, len(self.buckets) - 1)]
        return self.buckets[-1]

    def to_dict(self) -> dict:
        """JSON-able snapshot: count, total, mean, p50/p99, bucket counts."""
        return {
            "count": self._count,
            "total_s": self._total,
            "mean_s": self.mean,
            "p50_s": self.quantile(0.5),
            "p99_s": self.quantile(0.99),
            "buckets": [
                {"le_s": edge, "count": n}
                for edge, n in zip(self.buckets, self._counts)
            ]
            + [{"le_s": None, "count": self._counts[-1]}],
        }


class Telemetry:
    """Registry of named counters and histograms with one JSON snapshot.

    Metrics are created on first use, so instrumented code never has to
    pre-declare what it records.
    """

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, LatencyHistogram] = {}
        self._events: list[dict] = []
        self._events_dropped = 0

    def counter(self, name: str) -> Counter:
        """The named counter (created at zero on first use)."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    ) -> LatencyHistogram:
        """The named histogram (created empty on first use)."""
        if name not in self._histograms:
            self._histograms[name] = LatencyHistogram(name, buckets)
        return self._histograms[name]

    @contextmanager
    def time(self, name: str):
        """Context manager observing the block's wall time into ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.histogram(name).observe(time.perf_counter() - start)

    def event(self, name: str, **fields) -> None:
        """Append a structured event (breaker trip, mode change, crash...).

        Events form an ordered log next to the aggregate counters — the
        "what happened when" an operator needs after an incident.  At most
        :data:`MAX_EVENTS` are retained; older ones are dropped and the
        drop count is surfaced in the snapshot.
        """
        if len(self._events) >= MAX_EVENTS:
            self._events.pop(0)
            self._events_dropped += 1
        self._events.append({"event": name, **fields})

    @property
    def events(self) -> list[dict]:
        """The retained event log (oldest first)."""
        return list(self._events)

    def snapshot(self) -> dict:
        """All metrics as plain JSON-serializable types."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "histograms": {
                n: h.to_dict() for n, h in sorted(self._histograms.items())
            },
            "events": list(self._events),
            "events_dropped": self._events_dropped,
        }
