"""Deprecated location: telemetry moved to :mod:`repro.obs.metrics`.

The metric primitives (counters, gauges, fixed-bucket latency
histograms, snapshot merging, Prometheus exposition) are observability
infrastructure, not serving logic; they now live in
:mod:`repro.obs.metrics` where both the offline placement core and the
online serving stack can reach them without layering inversions.  This
module re-exports the full public surface so existing imports keep
working for one release — update to ``from repro.obs.metrics import
...`` (or :mod:`repro.obs`).
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MAX_EVENTS,
    Counter,
    Gauge,
    LatencyHistogram,
    Telemetry,
    merge_snapshots,
    snapshot_to_prometheus,
)

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "Telemetry",
    "merge_snapshots",
    "snapshot_to_prometheus",
    "DEFAULT_LATENCY_BUCKETS",
    "MAX_EVENTS",
]
