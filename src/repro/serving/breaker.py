"""Deprecated location: the circuit breaker moved to :mod:`repro.placement.breaker`.

The breaker is part of the shared placement core's decision engine
(:class:`repro.placement.DecisionEngine` owns the breaker hooks), so the
implementation now lives in :mod:`repro.placement.breaker`.  This module
re-exports the public surface so existing imports keep working for one
release — update to ``from repro.placement.breaker import ...`` (or
:mod:`repro.placement`).
"""

from repro.placement.breaker import BreakerConfig, BreakerState, CircuitBreaker

__all__ = ["BreakerConfig", "BreakerState", "CircuitBreaker"]
