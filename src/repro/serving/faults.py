"""Deterministic fault injection for the serving stack.

Chaos testing a dispatcher means answering "what happens when the
predictor throws, stalls, or lies?" *before* production does.  This
module wraps the three components on the serving hot path — admission
policies, the interference predictor, and the prediction cache — in
proxies that inject failures at configurable rates:

- **errors** — the wrapped call raises :class:`InjectedFault` instead of
  answering (a crashed model server, a poisoned request);
- **latency** — the call is delayed by a configurable spike, exercising
  the admission controller's decision deadline;
- **corruption** — the call answers, but wrongly: policies return
  out-of-range server indices, predictors flip CM verdicts and negate
  FPS vectors, caches store mangled values;
- **staleness** — the call returns a previously computed answer (a
  replica serving an old profile snapshot) or the cache forgets entries.

Every draw comes from one seeded substream
(:func:`repro.utils.rng.spawn_rng`), so a chaos run is exactly
reproducible, and a rate of ``0.0`` short-circuits before touching the
RNG — a fully zero-rate injector is a perfect pass-through, which is how
the parity tests prove the fault layer cannot perturb healthy serving.

:class:`InjectionWindow` generalizes the flat rates into time-varying
failure bursts (start/duration/intensity); the shard-level chaos layer
(:mod:`repro.sharding.chaos`) builds whole-shard outage schedules out of
them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.obs.metrics import Telemetry
from repro.utils.rng import spawn_rng

__all__ = [
    "InjectedFault",
    "InjectionWindow",
    "windowed_rate",
    "FaultConfig",
    "FaultInjector",
    "FaultyPolicy",
    "FaultyPredictor",
    "FaultyCache",
]


class InjectedFault(RuntimeError):
    """An artificial failure raised by the :class:`FaultInjector`."""


@dataclass(frozen=True)
class InjectionWindow:
    """A time-varying injection window: extra fault probability while open.

    The anomaly-injector shape — a failure burst with a start, a
    duration, and an intensity — as a reusable primitive.  ``rate`` is
    added to the base injection rate while ``start <= now < start +
    duration``; ``target`` optionally narrows the window to one
    component (the shard-level chaos layer uses shard ids).  Windows are
    pure functions of the logical clock, so enabling one never perturbs
    draws outside its span.
    """

    start: float
    duration: float
    rate: float
    target: int | str | None = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"window start must be >= 0, got {self.start}")
        if self.duration <= 0:
            raise ValueError(f"window duration must be > 0, got {self.duration}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"window rate must be in [0, 1], got {self.rate}")

    def open_at(self, now: float) -> bool:
        """Whether the window covers logical time ``now``."""
        return self.start <= now < self.start + self.duration

    def rate_at(self, now: float, target=None) -> float:
        """The extra rate this window contributes for ``target`` at ``now``."""
        if not self.open_at(now):
            return 0.0
        if self.target is not None and target != self.target:
            return 0.0
        return self.rate

    def to_dict(self) -> dict:
        """JSON-able form (embedded in serving reports)."""
        return {
            "start": self.start,
            "duration": self.duration,
            "rate": self.rate,
            "target": self.target,
        }


def windowed_rate(
    base: float, windows, now: float, target=None, *, cap: float = 1.0
) -> float:
    """``base`` plus every open window's contribution, clamped to ``cap``."""
    rate = base + sum(w.rate_at(now, target) for w in windows)
    return min(rate, cap)


@dataclass(frozen=True)
class FaultConfig:
    """Per-kind injection rates (probability per wrapped call) and seed.

    ``latency_s`` is the spike applied when a latency fault fires; keep
    it tiny in tests (the broker's decision deadline is the thing under
    test, not the wall clock).
    """

    error_rate: float = 0.0
    latency_rate: float = 0.0
    latency_s: float = 0.002
    corrupt_rate: float = 0.0
    stale_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for field in ("error_rate", "latency_rate", "corrupt_rate", "stale_rate"):
            rate = getattr(self, field)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{field} must be in [0, 1], got {rate}")
        if self.latency_s < 0:
            raise ValueError("latency_s must be >= 0")

    @property
    def active(self) -> bool:
        """True when any rate is nonzero."""
        return any(
            (self.error_rate, self.latency_rate, self.corrupt_rate, self.stale_rate)
        )

    def to_dict(self) -> dict:
        """JSON-able form (embedded in serving reports)."""
        return {
            "error_rate": self.error_rate,
            "latency_rate": self.latency_rate,
            "latency_s": self.latency_s,
            "corrupt_rate": self.corrupt_rate,
            "stale_rate": self.stale_rate,
            "seed": self.seed,
        }


class FaultInjector:
    """Seeded fault source shared by all the wrappers it hands out."""

    def __init__(self, config: FaultConfig, *, telemetry: Telemetry | None = None):
        self.config = config
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._rng = spawn_rng(config.seed, "fault-injector")

    def fire(self, kind: str) -> bool:
        """Draw whether a ``kind`` fault fires now (counted in telemetry).

        A zero rate returns ``False`` without consuming randomness, so
        disabled fault kinds leave the injection sequence of the enabled
        ones — and a fully disabled injector's wrapped components —
        untouched.
        """
        rate = getattr(self.config, f"{kind}_rate")
        if rate <= 0.0 or self._rng.random() >= rate:
            return False
        self.telemetry.counter("faults_injected").inc()
        self.telemetry.counter(f"faults_{kind}").inc()
        return True

    def maybe_delay(self) -> None:
        """Sleep through a latency spike when one fires."""
        if self.fire("latency"):
            time.sleep(self.config.latency_s)

    # ------------------------------------------------------------------

    def wrap_policy(self, policy) -> "FaultyPolicy":
        """An admission policy that errors, stalls, or answers nonsense."""
        return FaultyPolicy(policy, self)

    def wrap_predictor(self, predictor) -> "FaultyPredictor":
        """A predictor that errors, stalls, lies, or serves stale answers."""
        return FaultyPredictor(predictor, self)

    def wrap_cache(self, cache) -> "FaultyCache":
        """A prediction cache that forgets entries and corrupts values."""
        return FaultyCache(cache, self)


def _corrupt(value):
    """A plausibly-typed but wrong version of a prediction result."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, (int, float)):
        return -abs(value) - 1.0
    if isinstance(value, (tuple, list)):
        return type(value)(_corrupt(v) for v in value)
    if isinstance(value, dict):  # predict_batch result entries
        return {k: _corrupt(v) for k, v in value.items()}
    if hasattr(value, "tolist"):  # numpy arrays and scalars
        return _corrupt(value.tolist())
    return value


class FaultyPolicy:
    """Admission-policy proxy injecting errors, latency, and bad indices."""

    def __init__(self, policy, injector: FaultInjector):
        self._policy = policy
        self._injector = injector
        self.name = policy.name

    def __getattr__(self, attr):
        return getattr(self._policy, attr)

    def select(self, signatures, session):
        """Delegate to the wrapped policy, unless a fault fires first."""
        self._injector.maybe_delay()
        if self._injector.fire("error"):
            raise InjectedFault(f"policy {self.name!r}: injected error")
        choice = self._policy.select(signatures, session)
        if self._injector.fire("corrupt"):
            return len(signatures) + 1  # out of range: must be caught upstream
        return choice


class FaultyPredictor:
    """Predictor proxy: every prediction entry point can fail or lie.

    Non-prediction attributes (``db``, ``classifier``, ``regressor``,
    ``validate_spec``, ...) delegate untouched, so the proxy drops into
    any place an :class:`repro.core.InterferencePredictor` fits —
    including :func:`repro.placement.policies.build_policy`.
    """

    _WRAPPED = (
        "predict_fps",
        "predict_degradations",
        "predict_feasible",
        "colocation_feasible",
        "predict_fps_batch",
        "predict_degradations_batch",
        "predict_feasible_batch",
        "colocations_feasible",
        "predict_batch",
    )

    def __init__(self, predictor, injector: FaultInjector):
        self._predictor = predictor
        self._injector = injector
        self._last: dict[str, object] = {}  # per-method stale answers

    def __getattr__(self, attr):
        if attr in self._WRAPPED:
            inner = getattr(self._predictor, attr)

            def call(*args, _attr=attr, _inner=inner, **kwargs):
                return self._call(_attr, _inner, args, kwargs)

            return call
        return getattr(self._predictor, attr)

    def _call(self, attr: str, inner, args, kwargs):
        injector = self._injector
        injector.maybe_delay()
        if injector.fire("error"):
            raise InjectedFault(f"predictor.{attr}: injected error")
        if injector.fire("stale") and attr in self._last:
            return self._last[attr]
        result = inner(*args, **kwargs)
        self._last[attr] = result
        if injector.fire("corrupt"):
            return _corrupt(result)
        return result


class FaultyCache:
    """Prediction-cache proxy: lookups forget, stores corrupt.

    A stale fault turns a hit into a miss (the entry was "lost" by a
    restarted replica); a corrupt fault mangles the value being stored,
    modelling a poisoned cache line the policies must survive.
    """

    def __init__(self, cache, injector: FaultInjector):
        self._cache = cache
        self._injector = injector

    def __getattr__(self, attr):
        return getattr(self._cache, attr)

    def lookup(self, key, default=None):
        """Cache lookup that occasionally loses the entry for real."""
        if self._injector.fire("stale"):
            invalidate = getattr(self._cache, "invalidate", None)
            if invalidate is not None:
                invalidate(key)
            return default
        return self._cache.lookup(key, default)

    def put(self, key, value) -> None:
        """Cache store that occasionally writes a corrupted value."""
        if self._injector.fire("corrupt"):
            value = _corrupt(value)
        self._cache.put(key, value)

    def get_or_compute(self, key, compute):
        """Mirror :meth:`PredictionCache.get_or_compute` through the faults."""
        sentinel = object()
        value = self.lookup(key, sentinel)
        if value is sentinel:
            value = compute()
            self.put(key, value)
        return value
