"""Admission control for the serving loop (thin frontend).

The dispatch machinery — policy + counted fallback chain, circuit
breakers with NORMAL/DEGRADED/CONSERVATIVE modes, decision deadline
budgets, tracing spans and telemetry — lives in
:class:`repro.placement.DecisionEngine`; this module keeps the serving-
facing name and re-exports the decision vocabulary so existing imports
(``from repro.serving.admission import AdmissionController, Mode``)
keep working.  See :mod:`repro.placement.engine` for the semantics.
"""

from __future__ import annotations

from repro.placement.engine import AdmissionDecision, DecisionEngine, Mode

__all__ = ["Mode", "AdmissionDecision", "AdmissionController"]


class AdmissionController(DecisionEngine):
    """The serving-side decision engine (see :class:`DecisionEngine`).

    Identical to the base engine in its default (non-strict)
    configuration: policy failures are absorbed into the fallback chain
    and surfaced as counters, never raised into the serving loop.
    """
