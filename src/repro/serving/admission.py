"""The admission controller: policy evaluation with graceful degradation.

A production dispatcher must never crash on one bad request.  The
controller wraps the configured policy so that *any* exception during
placement evaluation — a game missing from the profile database
(:class:`repro.core.MissingProfileError`), an unfitted model raising
``RuntimeError``, a numerical failure — is counted and absorbed: the
decision falls back to the conservative policy (VBP worst-fit by
default), and if that also fails, to opening a dedicated server.  Every
decision is timed into a fixed-bucket latency histogram.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.serving.cache import PredictionCache
from repro.serving.policies import AdmissionPolicy, Signature
from repro.serving.telemetry import Telemetry

__all__ = ["AdmissionDecision", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission evaluation.

    ``server`` is the index into the candidate-signature list (``None``
    opens a new server), ``policy`` names the policy whose answer was
    used, and ``fallback`` flags that the primary policy failed.
    """

    server: int | None
    policy: str
    fallback: bool


class AdmissionController:
    """Evaluates placements through a primary policy with counted fallback."""

    def __init__(
        self,
        policy: AdmissionPolicy,
        *,
        fallback: AdmissionPolicy | None = None,
        telemetry: Telemetry | None = None,
    ):
        self.policy = policy
        self.fallback = fallback
        self.telemetry = telemetry if telemetry is not None else Telemetry()

    def decide(self, signatures: list[Signature], session) -> AdmissionDecision:
        """Place ``session`` against the open-server ``signatures``.

        Never raises: policy failures are absorbed into the fallback chain
        (primary -> fallback -> dedicated) and surfaced as the
        ``policy_errors`` / ``fallbacks`` / ``fallback_errors`` counters.
        """
        t = self.telemetry
        t.counter("requests").inc()
        start = time.perf_counter()
        policy_used, used_fallback = self.policy.name, False
        try:
            choice = self.policy.select(signatures, session)
        except Exception:
            t.counter("policy_errors").inc()
            t.counter("fallbacks").inc()
            used_fallback = True
            choice, policy_used = None, "dedicated"
            if self.fallback is not None:
                try:
                    choice = self.fallback.select(signatures, session)
                    policy_used = self.fallback.name
                except Exception:
                    t.counter("fallback_errors").inc()
        t.histogram("decision_latency_s").observe(time.perf_counter() - start)
        t.counter("admissions" if choice is not None else "servers_opened").inc()
        return AdmissionDecision(server=choice, policy=policy_used, fallback=used_fallback)

    def caches(self) -> dict[str, PredictionCache]:
        """Prediction caches attached to the policies, keyed by policy name."""
        out: dict[str, PredictionCache] = {}
        for policy in (self.policy, self.fallback):
            cache = getattr(policy, "cache", None)
            if isinstance(cache, PredictionCache):
                out[policy.name] = cache
        return out
