"""Trace-driven load generation for the serving loop.

Wraps :func:`repro.scheduling.dynamic.generate_sessions` behind a single
validated, serializable configuration object so a serving run is fully
described by ``(trace config, policy config, predictor bundle)`` — the
reproducibility contract the CLI's ``serve`` subcommand exposes.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.games.resolution import PRESET_RESOLUTIONS, Resolution
from repro.placement.fleet import Session
from repro.scheduling.dynamic import generate_sessions

__all__ = ["TraceConfig", "generate_trace"]


@dataclass(frozen=True)
class TraceConfig:
    """Parameters of a synthetic arrival trace.

    ``arrival_rate`` is sessions per minute (Poisson); ``mean_duration``
    is minutes (exponential); ``mixed_resolutions`` draws each session's
    resolution uniformly from the preset list instead of fixing 1080p.
    """

    n_requests: int = 500
    arrival_rate: float = 2.0
    mean_duration: float = 30.0
    mixed_resolutions: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        if self.arrival_rate <= 0 or self.mean_duration <= 0:
            raise ValueError("arrival_rate and mean_duration must be positive")

    def to_dict(self) -> dict:
        """JSON-able form (for embedding in serving reports)."""
        return {
            "n_requests": self.n_requests,
            "arrival_rate": self.arrival_rate,
            "mean_duration": self.mean_duration,
            "mixed_resolutions": self.mixed_resolutions,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceConfig":
        """Rebuild a config from :meth:`to_dict` output, validating shape.

        Malformed configs (non-dict input, unknown keys, wrong value
        types) raise :class:`ValueError` with a one-line message naming
        the offending field — never a bare ``TypeError`` traceback — so
        user-supplied trace files surface as clean CLI errors.
        """
        if not isinstance(data, dict):
            raise ValueError(
                f"trace config must be a mapping, got {type(data).__name__}"
            )
        known = {
            "n_requests": int,
            "arrival_rate": float,
            "mean_duration": float,
            "mixed_resolutions": bool,
            "seed": int,
        }
        unknown = sorted(set(data) - set(known))
        if unknown:
            raise ValueError(
                f"unknown trace config key(s): {', '.join(unknown)}; "
                f"expected {', '.join(sorted(known))}"
            )
        kwargs = {}
        for key, value in data.items():
            want = known[key]
            if isinstance(value, bool) and want is not bool:
                raise ValueError(f"trace config {key!r} must be {want.__name__}")
            try:
                kwargs[key] = want(value)
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"trace config {key!r} must be {want.__name__}, "
                    f"got {value!r}"
                ) from exc
        return cls(**kwargs)


def generate_trace(names: Sequence[str], config: TraceConfig) -> list[Session]:
    """Sessions over ``names`` as described by ``config`` (deterministic)."""
    resolutions: Sequence[Resolution] | None = (
        PRESET_RESOLUTIONS if config.mixed_resolutions else None
    )
    return generate_sessions(
        names,
        config.n_requests,
        arrival_rate=config.arrival_rate,
        mean_duration=config.mean_duration,
        resolutions=resolutions,
        seed=config.seed,
    )
