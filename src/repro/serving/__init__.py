"""Online serving subsystem: the dispatcher in front of GAugur's models.

The paper's predictions are cheap enough to run at request-arrival time
(Section 5); this package supplies the component that actually does so in
a fleet — a discrete-event :class:`RequestBroker` consuming a session
trace and driving the shared placement core (:mod:`repro.placement`):
the :class:`AdmissionController` (the serving face of
:class:`repro.placement.DecisionEngine`) evaluates candidate servers
through pluggable policies with graceful fallback, a canonical-key LRU
:class:`PredictionCache` over the predictor's batched API, and
:class:`Telemetry` (counters + latency histograms + event log) exposed as
one JSON snapshot.  ``python -m repro serve`` wires it all together.
The policy, cache, breaker and telemetry names re-exported here live in
:mod:`repro.placement` and :mod:`repro.obs` since the placement-core
refactor; importing them from ``repro.serving`` remains supported.

The fault-tolerance layer keeps the dispatcher up when components fail:
a seeded :class:`FaultInjector` wraps policies/predictors/caches with
deterministic chaos (errors, latency spikes, stale answers, corrupted
predictions), a :class:`CircuitBreaker` per policy drives the
controller's NORMAL → DEGRADED → CONSERVATIVE state machine, and the
broker survives server crashes by re-admitting evicted sessions — all
surfaced in the report's resilience section.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    LatencyHistogram,
    Telemetry,
    merge_snapshots,
    snapshot_to_prometheus,
)
from repro.placement.breaker import BreakerConfig, BreakerState, CircuitBreaker
from repro.placement.cache import PredictionCache, colocation_key
from repro.placement.policies import (
    POLICY_NAMES,
    AdmissionPolicy,
    CMFeasiblePolicy,
    DedicatedPolicy,
    MaxFPSPolicy,
    OfflinePolicyAdapter,
    WorstFitPolicy,
    build_policy,
)
from repro.serving.admission import AdmissionController, AdmissionDecision, Mode
from repro.serving.broker import PlacementRecord, RequestBroker, ServingReport
from repro.serving.faults import (
    FaultConfig,
    FaultInjector,
    FaultyCache,
    FaultyPolicy,
    FaultyPredictor,
    InjectedFault,
)
from repro.serving.loadgen import TraceConfig, generate_trace

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "Mode",
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "FaultConfig",
    "FaultInjector",
    "FaultyCache",
    "FaultyPolicy",
    "FaultyPredictor",
    "InjectedFault",
    "RequestBroker",
    "ServingReport",
    "PlacementRecord",
    "PredictionCache",
    "colocation_key",
    "TraceConfig",
    "generate_trace",
    "AdmissionPolicy",
    "CMFeasiblePolicy",
    "MaxFPSPolicy",
    "WorstFitPolicy",
    "DedicatedPolicy",
    "OfflinePolicyAdapter",
    "build_policy",
    "POLICY_NAMES",
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "Telemetry",
    "merge_snapshots",
    "snapshot_to_prometheus",
    "DEFAULT_LATENCY_BUCKETS",
]
