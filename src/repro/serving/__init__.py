"""Online serving subsystem: the dispatcher in front of GAugur's models.

The paper's predictions are cheap enough to run at request-arrival time
(Section 5); this package supplies the component that actually does so in
a fleet — a discrete-event :class:`RequestBroker` consuming a session
trace, an :class:`AdmissionController` that evaluates candidate servers
through pluggable policies with graceful fallback, a canonical-key LRU
:class:`PredictionCache` over the predictor's batched API, and
:class:`Telemetry` (counters + latency histograms) exposed as one JSON
snapshot.  ``python -m repro serve`` wires it all together.
"""

from repro.serving.admission import AdmissionController, AdmissionDecision
from repro.serving.broker import PlacementRecord, RequestBroker, ServingReport
from repro.serving.cache import PredictionCache, colocation_key
from repro.serving.loadgen import TraceConfig, generate_trace
from repro.serving.policies import (
    POLICY_NAMES,
    AdmissionPolicy,
    CMFeasiblePolicy,
    DedicatedPolicy,
    MaxFPSPolicy,
    OfflinePolicyAdapter,
    WorstFitPolicy,
    build_policy,
)
from repro.serving.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    LatencyHistogram,
    Telemetry,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "RequestBroker",
    "ServingReport",
    "PlacementRecord",
    "PredictionCache",
    "colocation_key",
    "TraceConfig",
    "generate_trace",
    "AdmissionPolicy",
    "CMFeasiblePolicy",
    "MaxFPSPolicy",
    "WorstFitPolicy",
    "DedicatedPolicy",
    "OfflinePolicyAdapter",
    "build_policy",
    "POLICY_NAMES",
    "Counter",
    "LatencyHistogram",
    "Telemetry",
    "DEFAULT_LATENCY_BUCKETS",
]
