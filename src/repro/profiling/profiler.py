"""The contention-feature profiler."""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.bench.suite import make_benchmark
from repro.core.profiles import GameProfile, SensitivityCurve
from repro.games.game import GameSpec
from repro.games.resolution import Resolution
from repro.hardware.resources import NUM_RESOURCES, Resource, ResourceVector
from repro.hardware.server import DEFAULT_SERVER, ServerSpec
from repro.profiling.database import ProfileDatabase
from repro.simulator.measurement import (
    MeasurementConfig,
    measure_solo_fps,
    run_colocation,
)
from repro.simulator.workload import BenchmarkInstance, GameInstance
from repro.utils.rng import spawn_rng

__all__ = ["ProfilerConfig", "ContentionProfiler"]


@dataclass(frozen=True)
class ProfilerConfig:
    """Profiling procedure parameters.

    ``pressure_levels`` is the paper's sampling granularity ``k``: dials
    are ``{0, 1/k, ..., 1}`` (k=10 in the paper's experiments).
    ``resolutions`` are the two profiled resolutions; sensitivity curves
    are recorded at ``sensitivity_resolution`` only (Observation 6 makes
    one resolution sufficient).  ``demand_noise`` is the relative error of
    the performance-counter utilization readings that feed the VBP
    baseline's demand vectors.
    """

    pressure_levels: int = 10
    resolutions: tuple[Resolution, ...] = (
        Resolution(1280, 720),
        Resolution(1600, 900),
        Resolution(1920, 1080),
    )
    sensitivity_resolution: Resolution = Resolution(1920, 1080)
    intensity_levels: int = 4
    measurement: MeasurementConfig = field(default_factory=MeasurementConfig)
    demand_noise: float = 0.01

    def __post_init__(self) -> None:
        if self.pressure_levels < 1 or self.intensity_levels < 1:
            raise ValueError("pressure/intensity levels must be >= 1")
        if len(set(self.resolutions)) < 2:
            raise ValueError("need at least two distinct profiled resolutions")
        if self.sensitivity_resolution not in self.resolutions:
            raise ValueError("sensitivity_resolution must be a profiled resolution")
        if self.demand_noise < 0:
            raise ValueError("demand_noise must be >= 0")

    @property
    def dials(self) -> np.ndarray:
        """The full pressure sweep ``{0, 1/k, ..., 1}`` (sensitivity curves)."""
        return np.linspace(0.0, 1.0, self.pressure_levels + 1)

    @property
    def intensity_dials(self) -> np.ndarray:
        """Coarser sweep for intensity-only resolutions.

        Intensity is the *mean* benchmark slowdown over the dials, so a
        coarse sweep loses little fidelity while cutting the per-resolution
        profiling cost roughly in half.
        """
        return np.linspace(0.0, 1.0, self.intensity_levels + 1)


class ContentionProfiler:
    """Profiles sensitivity and intensity of games against the benchmarks.

    Each (game, resource, dial) colocation yields two readings at once: the
    game's frame rate (a sensitivity-curve sample) and the benchmark's
    slowdown (an intensity sample), exactly as on the paper's testbed.
    """

    def __init__(
        self,
        server: ServerSpec = DEFAULT_SERVER,
        config: ProfilerConfig | None = None,
    ):
        self.server = server
        self.config = config if config is not None else ProfilerConfig()

    # ------------------------------------------------------------------

    def _measure_demand(self, instance: GameInstance) -> ResourceVector:
        """Read solo utilization 'performance counters' (with reading noise)."""
        true_util = instance.base_utilization()
        noise_level = self.config.demand_noise
        if noise_level:
            rng = spawn_rng(
                self.config.measurement.seed, "demand", instance.identity()
            )
            true_util = true_util * rng.lognormal(0.0, noise_level, NUM_RESOURCES)
        return ResourceVector(np.clip(true_util, 0.0, 1.0))

    def _sweep(
        self, instance: GameInstance, solo_fps: float, dials: np.ndarray
    ) -> tuple[dict[Resource, SensitivityCurve], ResourceVector]:
        """Benchmark sweep at one resolution -> (curves, intensity vector)."""
        curves: dict[Resource, SensitivityCurve] = {}
        intensity = np.zeros(NUM_RESOURCES, dtype=float)
        for res in Resource:
            degradations = []
            slowdowns = []
            for dial in dials:
                bench = BenchmarkInstance(make_benchmark(res, float(dial)))
                result = run_colocation(
                    [instance, bench], server=self.server, config=self.config.measurement
                )
                degradations.append(result.fps[0] / solo_fps)
                slowdowns.append(result.slowdowns[1])
            curves[res] = SensitivityCurve(
                resource=res,
                pressures=tuple(float(d) for d in dials),
                degradations=tuple(degradations),
            )
            intensity[int(res)] = float(np.mean(slowdowns)) - 1.0
        return curves, ResourceVector(np.maximum(intensity, 0.0))

    def profile_game(self, spec: GameSpec) -> GameProfile:
        """Profile one game at the configured resolutions."""
        solo_fps: dict[Resolution, float] = {}
        intensity: dict[Resolution, ResourceVector] = {}
        demand: dict[Resolution, ResourceVector] = {}
        sensitivity: dict[Resource, SensitivityCurve] | None = None

        for resolution in self.config.resolutions:
            instance = GameInstance(spec, resolution)
            fps = measure_solo_fps(
                instance, server=self.server, config=self.config.measurement
            )
            solo_fps[resolution] = fps
            demand[resolution] = self._measure_demand(instance)
            is_sens = resolution == self.config.sensitivity_resolution
            dials = self.config.dials if is_sens else self.config.intensity_dials
            curves, intensity_vec = self._sweep(instance, fps, dials)
            intensity[resolution] = intensity_vec
            if is_sens:
                sensitivity = curves

        assert sensitivity is not None  # guaranteed by config validation
        largest = max(self.config.resolutions, key=lambda r: r.pixels)
        cpu_mem, gpu_mem = spec.memory_demand(largest)
        return GameProfile(
            name=spec.name,
            sensitivity=sensitivity,
            solo_fps=solo_fps,
            intensity=intensity,
            demand=demand,
            cpu_mem_gb=cpu_mem,
            gpu_mem_gb=gpu_mem,
        )

    def profile_catalog(
        self,
        specs,
        *,
        progress: Callable[[str, int, int], None] | None = None,
    ) -> ProfileDatabase:
        """Profile every game in ``specs`` into a :class:`ProfileDatabase`.

        ``progress(name, done, total)`` is invoked after each game — the
        offline profiling pass is the expensive O(N) step of the pipeline.
        """
        specs = list(specs)
        db = ProfileDatabase(
            server_name=self.server.name, config=self.config
        )
        for i, spec in enumerate(specs):
            db.add(self.profile_game(spec))
            if progress is not None:
                progress(spec.name, i + 1, len(specs))
        return db
