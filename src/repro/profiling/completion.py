"""Collaborative-filtering profile completion (Paragon-style, paper §6).

Profiling one game costs ~R * (k+1) colocation runs.  When the profiled
population is large, per-game profiles are strongly correlated (genre
structure), so a new game can be swept against only a *subset* of the
benchmarks and the rest of its profile recovered by low-rank matrix
completion over the population — the technique of the paper's references
[13, 14], which it calls complementary to GAugur.

The completion operates on a games x features matrix whose columns are the
flattened sensitivity curves plus the per-resolution intensity vectors; a
game's unobserved resources simply mask out the matching columns.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.profiles import GameProfile, SensitivityCurve
from repro.hardware.resources import NUM_RESOURCES, Resource, ResourceVector
from repro.ml.factorization import ALSMatrixCompletion
from repro.profiling.database import ProfileDatabase

__all__ = ["complete_profiles", "profile_feature_matrix"]


def _columns_per_profile(db: ProfileDatabase) -> tuple[int, int]:
    first = db.profiles()[0]
    samples = len(next(iter(first.sensitivity.values())).pressures)
    n_resolutions = len(first.profiled_resolutions)
    return samples, n_resolutions


def profile_feature_matrix(db: ProfileDatabase) -> np.ndarray:
    """(n_games, R*samples + R*n_resolutions) matrix of profile features.

    Layout: resource-major sensitivity samples, then per-resolution
    intensity blocks (resolutions sorted by pixel count).
    """
    samples, n_res = _columns_per_profile(db)
    rows = []
    for profile in db:
        sens = profile.sensitivity_vector()
        intensity = np.concatenate(
            [profile.intensity[r].values for r in profile.profiled_resolutions]
        )
        rows.append(np.concatenate([sens, intensity]))
    return np.vstack(rows)


def _mask_for(
    db: ProfileDatabase,
    observed_resources: Mapping[str, Sequence[Resource]],
) -> np.ndarray:
    samples, n_res = _columns_per_profile(db)
    n_cols = NUM_RESOURCES * samples + n_res * NUM_RESOURCES
    mask = np.ones((len(db), n_cols), dtype=bool)
    names = db.names()
    for i, name in enumerate(names):
        if name not in observed_resources:
            continue
        observed = {Resource(r) for r in observed_resources[name]}
        for res in Resource:
            if res in observed:
                continue
            start = int(res) * samples
            mask[i, start : start + samples] = False
            for block in range(n_res):
                col = NUM_RESOURCES * samples + block * NUM_RESOURCES + int(res)
                mask[i, col] = False
    return mask


def complete_profiles(
    db: ProfileDatabase,
    observed_resources: Mapping[str, Sequence[Resource]],
    *,
    rank: int = 8,
    reg: float = 0.05,
    seed: int = 0,
) -> ProfileDatabase:
    """Recover unobserved per-resource profiles by matrix completion.

    Parameters
    ----------
    db:
        Database whose listed games are *fully* profiled except for the
        entries declared partial (their unobserved values are ignored).
    observed_resources:
        For each partially profiled game, the resources that actually were
        swept; all other resources' sensitivity samples and intensities are
        treated as missing and reconstructed.

    Returns a new database where the partial games carry completed
    profiles; fully profiled games are passed through untouched.
    """
    if not observed_resources:
        return db
    for name, resources in observed_resources.items():
        if name not in db:
            raise KeyError(f"unknown game {name!r} in observed_resources")
        if not resources:
            raise ValueError(f"{name}: at least one resource must be observed")

    samples, n_res = _columns_per_profile(db)
    M = profile_feature_matrix(db)
    mask = _mask_for(db, observed_resources)
    model = ALSMatrixCompletion(rank=rank, reg=reg, seed=seed).fit(M, mask)
    completed = np.where(mask, M, model.reconstruct())

    out = ProfileDatabase(server_name=db.server_name)
    for i, profile in enumerate(db):
        if profile.name not in observed_resources:
            out.add(profile)
            continue
        observed = {Resource(r) for r in observed_resources[profile.name]}
        sensitivity: dict[Resource, SensitivityCurve] = {}
        for res in Resource:
            if res in observed:
                sensitivity[res] = profile.sensitivity[res]
                continue
            start = int(res) * samples
            values = np.clip(completed[i, start : start + samples], 0.0, 1.5)
            template = profile.sensitivity[res]
            sensitivity[res] = SensitivityCurve(
                resource=res,
                pressures=template.pressures,
                degradations=tuple(float(v) for v in values),
            )
        intensity = {}
        resolutions = profile.profiled_resolutions
        for block, resolution in enumerate(resolutions):
            vec = profile.intensity[resolution].values.copy()
            for res in Resource:
                if res not in observed:
                    col = NUM_RESOURCES * samples + block * NUM_RESOURCES + int(res)
                    vec[int(res)] = max(0.0, float(completed[i, col]))
            intensity[resolution] = ResourceVector(vec)
        out.add(
            GameProfile(
                name=profile.name,
                sensitivity=sensitivity,
                solo_fps=dict(profile.solo_fps),
                intensity=intensity,
                demand=dict(profile.demand),
                cpu_mem_gb=profile.cpu_mem_gb,
                gpu_mem_gb=profile.gpu_mem_gb,
            )
        )
    return out
