"""Offline contention-feature profiling (paper Section 3.2).

The profiler colocates each game with every pressure benchmark over a sweep
of dial settings, recording the game's degradation (sensitivity curve) and
the benchmark's slowdown (intensity).  Profiles are collected at two
resolutions so resolution extrapolation (Observations 6-8) can serve any
player-requested resolution without further profiling — the property that
keeps GAugur's offline cost O(N) in the number of games.
"""

from repro.profiling.completion import complete_profiles, profile_feature_matrix
from repro.profiling.database import ProfileDatabase
from repro.profiling.profiler import ContentionProfiler, ProfilerConfig

__all__ = [
    "ContentionProfiler",
    "ProfilerConfig",
    "ProfileDatabase",
    "complete_profiles",
    "profile_feature_matrix",
]
