"""Persistent store of game profiles."""

from __future__ import annotations

from collections.abc import Iterator
from pathlib import Path

from repro.core.profiles import GameProfile
from repro.utils.serialization import dump_json, load_json

__all__ = ["ProfileDatabase"]


class ProfileDatabase:
    """Name-indexed collection of :class:`GameProfile` with JSON persistence.

    The database is the artifact of the one-time offline profiling pass;
    online components (predictors, schedulers) only ever read it.
    """

    def __init__(self, *, server_name: str = "", config=None):
        self._profiles: dict[str, GameProfile] = {}
        self.server_name = server_name
        self._config = config

    def add(self, profile: GameProfile) -> None:
        """Insert or replace a game's profile."""
        self._profiles[profile.name] = profile

    def get(self, name: str) -> GameProfile:
        """Lookup by game name."""
        try:
            return self._profiles[name]
        except KeyError:
            raise KeyError(f"no profile for game {name!r}") from None

    def names(self) -> list[str]:
        """All profiled game names."""
        return list(self._profiles)

    def profiles(self) -> list[GameProfile]:
        """All profiles in insertion order."""
        return list(self._profiles.values())

    def __len__(self) -> int:
        return len(self._profiles)

    def __contains__(self, name: str) -> bool:
        return name in self._profiles

    def __iter__(self) -> Iterator[GameProfile]:
        return iter(self._profiles.values())

    def subset(self, names) -> "ProfileDatabase":
        """Database restricted to ``names``."""
        sub = ProfileDatabase(server_name=self.server_name, config=self._config)
        for name in names:
            sub.add(self.get(name))
        return sub

    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Serialize to plain types."""
        return {
            "server_name": self.server_name,
            "profiles": [p.to_dict() for p in self.profiles()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProfileDatabase":
        """Inverse of :meth:`to_dict`."""
        db = cls(server_name=data.get("server_name", ""))
        for entry in data["profiles"]:
            db.add(GameProfile.from_dict(entry))
        return db

    def save(self, path: str | Path) -> None:
        """Write the database as JSON."""
        dump_json(self.to_dict(), path)

    @classmethod
    def load(cls, path: str | Path) -> "ProfileDatabase":
        """Load a database written by :meth:`save`."""
        return cls.from_dict(load_json(path))
