"""Gradient-boosted decision trees (GBRT / GBDT).

Regression boosts least-squares residuals.  Binary classification boosts
the logistic loss with Newton leaf updates: each stage fits a regression
tree to the negative gradient ``y - p``, then replaces every leaf value
with ``sum(g) / sum(p (1 - p))`` over the samples it captures — the
standard second-order (LogitBoost-style) step that makes small ensembles
accurate.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_array, check_X_y
from repro.ml.packed import PackedTrees, pack_trees
from repro.ml.tree import DecisionTreeRegressor
from repro.utils.rng import derive_seed

__all__ = ["GradientBoostingRegressor", "GradientBoostingClassifier"]


class _BaseBoosting(BaseEstimator):
    """Shared boosting hyperparameters and staged-tree plumbing."""

    def __init__(
        self,
        n_estimators: int = 200,
        learning_rate: float = 0.08,
        max_depth: int = 3,
        min_samples_leaf: int = 3,
        subsample: float = 1.0,
        seed: int = 0,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not (0.0 < learning_rate <= 1.0):
            raise ValueError("learning_rate must lie in (0, 1]")
        if not (0.0 < subsample <= 1.0):
            raise ValueError("subsample must lie in (0, 1]")
        self.n_estimators = int(n_estimators)
        self.learning_rate = float(learning_rate)
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.subsample = float(subsample)
        self.seed = seed

    def _stage_tree(self, t: int) -> DecisionTreeRegressor:
        return DecisionTreeRegressor(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            seed=derive_seed(self.seed, "gbdt-tree", t),
        )

    def _stage_indices(self, n: int, t: int) -> np.ndarray:
        if self.subsample >= 1.0:
            return np.arange(n)
        rng = np.random.default_rng(derive_seed(self.seed, "gbdt-subsample", t))
        size = max(1, int(round(self.subsample * n)))
        return rng.choice(n, size=size, replace=False)

    def _packed(self) -> PackedTrees:
        # Derived evaluation cache: built lazily after fit() or
        # deserialization (which restores estimators_ but not the pack),
        # never serialized (get_params/estimator_to_dict skip it).
        pack = getattr(self, "_packed_", None)
        if pack is None or pack.n_trees != len(self.estimators_):
            pack = pack_trees([tree.tree_ for tree in self.estimators_])
            self._packed_ = pack
        return pack

    def _raw_predict(self, X: np.ndarray) -> np.ndarray:
        return self._packed().boosted_predict(X, self.init_, self.learning_rate)


class GradientBoostingRegressor(_BaseBoosting):
    """Least-squares gradient boosting (the paper's GBRT)."""

    def fit(self, X, y) -> "GradientBoostingRegressor":
        """Fit ``n_estimators`` stages of residual trees."""
        X, y = check_X_y(X, y)
        y = np.asarray(y, dtype=float)
        self.init_ = float(y.mean())
        self._packed_ = None
        self.estimators_ = []
        raw = np.full(y.shape[0], self.init_, dtype=float)
        self.train_losses_ = []
        for t in range(self.n_estimators):
            idx = self._stage_indices(y.shape[0], t)
            residual = y - raw
            tree = self._stage_tree(t).fit(X[idx], residual[idx])
            raw += self.learning_rate * tree.predict(X)
            self.estimators_.append(tree)
            self.train_losses_.append(float(np.mean((y - raw) ** 2)))
        return self

    def predict(self, X) -> np.ndarray:
        """Boosted prediction."""
        self._check_fitted("estimators_")
        return self._raw_predict(check_array(X))


class GradientBoostingClassifier(_BaseBoosting):
    """Binary logistic gradient boosting with Newton leaf updates (GBDT)."""

    def fit(self, X, y) -> "GradientBoostingClassifier":
        """Fit on binary labels (any two distinct values)."""
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        if self.classes_.shape[0] != 2:
            raise ValueError(
                f"GradientBoostingClassifier is binary; got "
                f"{self.classes_.shape[0]} classes"
            )
        y01 = (y == self.classes_[1]).astype(float)
        prior = float(np.clip(y01.mean(), 1e-6, 1.0 - 1e-6))
        self.init_ = float(np.log(prior / (1.0 - prior)))
        self._packed_ = None
        self.estimators_ = []
        raw = np.full(y01.shape[0], self.init_, dtype=float)
        self.train_losses_ = []
        for t in range(self.n_estimators):
            p = 1.0 / (1.0 + np.exp(-raw))
            grad = y01 - p
            hess = np.maximum(p * (1.0 - p), 1e-9)
            idx = self._stage_indices(y01.shape[0], t)
            tree = self._stage_tree(t).fit(X[idx], grad[idx])
            # Newton step: replace leaf means with sum(g)/sum(h) per leaf,
            # computed over the full training set for stability.  The
            # per-leaf sums come from one bincount pass over the leaf
            # assignment instead of a boolean-mask loop per leaf.
            leaves = tree.apply(X)
            n_nodes = tree.tree_.n_nodes
            counts = np.bincount(leaves, minlength=n_nodes)
            sum_g = np.bincount(leaves, weights=grad, minlength=n_nodes)
            sum_h = np.bincount(leaves, weights=hess, minlength=n_nodes)
            visited = counts > 0
            tree.tree_.value[visited, 0] = sum_g[visited] / sum_h[visited]
            raw += self.learning_rate * tree.predict(X)
            self.estimators_.append(tree)
            p = 1.0 / (1.0 + np.exp(-raw))
            eps = 1e-12
            self.train_losses_.append(
                float(-np.mean(y01 * np.log(p + eps) + (1 - y01) * np.log(1 - p + eps)))
            )
        return self

    def decision_function(self, X) -> np.ndarray:
        """Raw log-odds scores."""
        self._check_fitted("estimators_")
        return self._raw_predict(check_array(X))

    def predict_proba(self, X) -> np.ndarray:
        """Class-probability matrix ``(n, 2)`` ordered as ``classes_``."""
        p1 = 1.0 / (1.0 + np.exp(-self.decision_function(X)))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X) -> np.ndarray:
        """Most probable class."""
        p1 = self.predict_proba(X)[:, 1]
        return np.where(p1 >= 0.5, self.classes_[1], self.classes_[0])
