"""Kernel support-vector machines trained in the primal.

By the representer theorem the SVM decision function is
``f(x) = sum_i beta_i K(x_i, x) + b``; we optimize the regularized primal

``0.5 * beta^T K beta + C * sum_i loss(y_i, f(x_i))``

directly over ``(beta, b)`` with L-BFGS, using smoothed losses (squared
hinge for SVC, smoothed epsilon-insensitive for SVR) so the objective is
differentiable.  This avoids hand-rolled SMO while producing the same
class of models the paper evaluates; inputs should be standardized
(:class:`repro.ml.preprocessing.StandardScaler`) before fitting.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from repro.ml.base import BaseEstimator, check_array, check_X_y

__all__ = ["SVC", "SVR", "rbf_kernel", "linear_kernel"]


def rbf_kernel(A: np.ndarray, B: np.ndarray, gamma: float) -> np.ndarray:
    """Gaussian kernel matrix ``exp(-gamma * ||a - b||^2)``."""
    sq = (
        np.sum(A * A, axis=1)[:, None]
        + np.sum(B * B, axis=1)[None, :]
        - 2.0 * (A @ B.T)
    )
    return np.exp(-gamma * np.maximum(sq, 0.0))


def linear_kernel(A: np.ndarray, B: np.ndarray, gamma: float = 1.0) -> np.ndarray:  # noqa: ARG001 — uniform kernel interface
    """Plain inner-product kernel (gamma ignored)."""
    return A @ B.T


class _BaseKernelMachine(BaseEstimator):
    """Shared kernel plumbing and L-BFGS driver."""

    def __init__(
        self,
        C: float = 1.0,
        kernel: str = "rbf",
        gamma: float | str = "scale",
        max_iter: int = 300,
    ):
        if C <= 0:
            raise ValueError("C must be positive")
        if kernel not in ("rbf", "linear"):
            raise ValueError(f"unknown kernel {kernel!r}")
        self.C = float(C)
        self.kernel = kernel
        self.gamma = gamma
        self.max_iter = int(max_iter)

    def _resolve_gamma(self, X: np.ndarray) -> float:
        if self.gamma == "scale":
            var = float(X.var())
            return 1.0 / (X.shape[1] * var) if var > 0 else 1.0
        gamma = float(self.gamma)
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        return gamma

    def _kernel_matrix(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        fn = rbf_kernel if self.kernel == "rbf" else linear_kernel
        return fn(A, B, self.gamma_)

    def _optimize(self, K: np.ndarray, loss_grad) -> tuple[np.ndarray, float]:
        """Minimize 0.5 b^T K b + C * loss(K b + b0) over (beta, b0)."""
        n = K.shape[0]

        def objective(theta):
            beta, b0 = theta[:n], theta[n]
            f = K @ beta + b0
            loss, dloss = loss_grad(f)
            Kbeta = K @ beta
            value = 0.5 * float(beta @ Kbeta) + self.C * loss
            grad_beta = Kbeta + self.C * (K @ dloss)
            grad_b0 = self.C * float(dloss.sum())
            return value, np.concatenate([grad_beta, [grad_b0]])

        result = minimize(
            objective,
            np.zeros(n + 1),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        return result.x[:n], float(result.x[n])

    def _decision(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted("beta_")
        X = check_array(X)
        return self._kernel_matrix(X, self.X_train_) @ self.beta_ + self.intercept_


class SVC(_BaseKernelMachine):
    """Binary kernel classifier with squared-hinge loss."""

    def fit(self, X, y) -> "SVC":
        """Fit on binary labels (any two distinct values)."""
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        if self.classes_.shape[0] != 2:
            raise ValueError(f"SVC is binary; got {self.classes_.shape[0]} classes")
        y_pm = np.where(y == self.classes_[1], 1.0, -1.0)
        self.gamma_ = self._resolve_gamma(X)
        self.X_train_ = X
        K = self._kernel_matrix(X, X)

        def loss_grad(f):
            margin = 1.0 - y_pm * f
            active = margin > 0
            loss = float(np.sum(margin[active] ** 2))
            dloss = np.where(active, -2.0 * y_pm * margin, 0.0)
            return loss, dloss

        self.beta_, self.intercept_ = self._optimize(K, loss_grad)
        return self

    def decision_function(self, X) -> np.ndarray:
        """Signed margin scores (positive favours ``classes_[1]``)."""
        return self._decision(X)

    def predict(self, X) -> np.ndarray:
        """Predicted class per sample."""
        scores = self.decision_function(X)
        return np.where(scores >= 0.0, self.classes_[1], self.classes_[0])


class SVR(_BaseKernelMachine):
    """Kernel regressor with smoothed epsilon-insensitive loss."""

    def __init__(
        self,
        C: float = 1.0,
        kernel: str = "rbf",
        gamma: float | str = "scale",
        max_iter: int = 300,
        epsilon: float = 0.01,
        smoothing: float = 1e-3,
    ):
        super().__init__(C=C, kernel=kernel, gamma=gamma, max_iter=max_iter)
        if epsilon < 0:
            raise ValueError("epsilon must be >= 0")
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        self.epsilon = float(epsilon)
        self.smoothing = float(smoothing)

    def fit(self, X, y) -> "SVR":
        """Fit on a continuous target."""
        X, y = check_X_y(X, y)
        y = np.asarray(y, dtype=float)
        self.gamma_ = self._resolve_gamma(X)
        self.X_train_ = X
        K = self._kernel_matrix(X, X)
        eps, mu = self.epsilon, self.smoothing

        def loss_grad(f):
            r = f - y
            excess = np.maximum(np.abs(r) - eps, 0.0)
            # Huber-smooth the epsilon-insensitive hinge near the kink.
            quad = excess < mu
            loss = float(
                np.sum(np.where(quad, 0.5 * excess**2 / mu, excess - 0.5 * mu))
            )
            slope = np.where(quad, excess / mu, 1.0)
            dloss = np.sign(r) * np.where(np.abs(r) > eps, slope, 0.0)
            return loss, dloss

        self.beta_, self.intercept_ = self._optimize(K, loss_grad)
        return self

    def predict(self, X) -> np.ndarray:
        """Predicted target per sample."""
        return self._decision(X)
