"""Estimator base class and input validation."""

from __future__ import annotations

import numpy as np

__all__ = ["BaseEstimator", "check_array", "check_X_y"]


def check_array(X, *, name: str = "X") -> np.ndarray:
    """Validate and convert a 2-D feature matrix to float64."""
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(1, -1)
    if X.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got ndim={X.ndim}")
    if X.shape[0] == 0 or X.shape[1] == 0:
        raise ValueError(f"{name} must be non-empty, got shape {X.shape}")
    if not np.isfinite(X).all():
        raise ValueError(f"{name} contains NaN or infinity")
    return X


def check_X_y(X, y) -> tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix and aligned target vector."""
    X = check_array(X)
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError(f"y must be 1-D, got ndim={y.ndim}")
    if y.shape[0] != X.shape[0]:
        raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
    if y.dtype.kind in "fc" and not np.isfinite(y.astype(float)).all():
        raise ValueError("y contains NaN or infinity")
    return X, y


class BaseEstimator:
    """Minimal estimator protocol: constructor params + fitted state.

    Subclasses set all hyperparameters in ``__init__`` and learn state only
    in ``fit``.  ``get_params`` enables cloning with modified parameters.
    """

    def get_params(self) -> dict:
        """Constructor parameters as a dict (non-private attributes only)."""
        return {
            k: v
            for k, v in vars(self).items()
            if not k.startswith("_") and not k.endswith("_")
        }

    def clone(self, **overrides) -> "BaseEstimator":
        """Fresh unfitted copy with optionally overridden hyperparameters."""
        params = self.get_params()
        params.update(overrides)
        return type(self)(**params)

    def _check_fitted(self, attr: str) -> None:
        if not hasattr(self, attr):
            raise RuntimeError(
                f"{type(self).__name__} is not fitted; call fit() first"
            )

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.get_params().items()))
        return f"{type(self).__name__}({params})"
