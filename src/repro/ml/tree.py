"""CART decision trees (classification and regression).

One builder serves both tasks: targets are presented as an ``(n, d)``
matrix ``Y`` (one-hot class indicators for classification, the raw target
column for regression).  Minimizing weighted Gini impurity and minimizing
within-node SSE are both equivalent to *maximizing* ``sum ||S_child||^2 /
n_child`` over the two children, where ``S`` is the columnwise sum of
``Y`` — so the split search is a single vectorized prefix-sum scan per
feature, O(n log n) per node.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_array, check_X_y
from repro.ml.packed import traverse

__all__ = ["DecisionTreeClassifier", "DecisionTreeRegressor"]

_LEAF = -1


class _Tree:
    """Flat-array binary tree produced by :class:`_TreeBuilder`."""

    __slots__ = ("feature", "threshold", "left", "right", "value", "n_node_samples")

    def __init__(self, feature, threshold, left, right, value, n_node_samples):
        self.feature = feature
        self.threshold = threshold
        self.left = left
        self.right = right
        self.value = value
        self.n_node_samples = n_node_samples

    @property
    def n_nodes(self) -> int:
        return self.feature.shape[0]

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index for every row of ``X``."""
        n = X.shape[0]
        node = np.zeros(n, dtype=np.int64)
        return traverse(
            self.feature, self.threshold, self.left, self.right,
            node, np.arange(n), X,
        )

    def predict_value(self, X: np.ndarray) -> np.ndarray:
        """Leaf value matrix ``(n, d)`` for every row of ``X``."""
        return self.value[self.apply(X)]


class _TreeBuilder:
    """Grows a CART tree on an ``(n, d)`` target matrix."""

    def __init__(
        self,
        *,
        max_depth: int | None,
        min_samples_split: int,
        min_samples_leaf: int,
        max_features: int | None,
        rng: np.random.Generator,
    ):
        self.max_depth = max_depth if max_depth is not None else np.inf
        self.min_samples_split = max(2, int(min_samples_split))
        self.min_samples_leaf = max(1, int(min_samples_leaf))
        self.max_features = max_features
        self.rng = rng

    def build(self, X: np.ndarray, Y: np.ndarray) -> tuple[_Tree, np.ndarray]:
        """Return the grown tree and gain-based feature importances."""
        n, p = X.shape
        self._X, self._Y = X, Y
        self._feature: list[int] = []
        self._threshold: list[float] = []
        self._left: list[int] = []
        self._right: list[int] = []
        self._value: list[np.ndarray] = []
        self._n_samples: list[int] = []
        self._importances = np.zeros(p, dtype=float)
        self._grow(np.arange(n), depth=0)
        tree = _Tree(
            feature=np.asarray(self._feature, dtype=np.int64),
            threshold=np.asarray(self._threshold, dtype=float),
            left=np.asarray(self._left, dtype=np.int64),
            right=np.asarray(self._right, dtype=np.int64),
            value=np.vstack(self._value),
            n_node_samples=np.asarray(self._n_samples, dtype=np.int64),
        )
        total = self._importances.sum()
        importances = self._importances / total if total > 0 else self._importances
        del self._X, self._Y
        return tree, importances

    # ------------------------------------------------------------------

    def _new_node(self, idx: np.ndarray) -> int:
        node_id = len(self._feature)
        self._feature.append(_LEAF)
        self._threshold.append(np.nan)
        self._left.append(_LEAF)
        self._right.append(_LEAF)
        self._value.append(self._Y[idx].mean(axis=0))
        self._n_samples.append(idx.shape[0])
        return node_id

    def _grow(self, idx: np.ndarray, depth: int) -> int:
        node_id = self._new_node(idx)
        n = idx.shape[0]
        if depth >= self.max_depth or n < self.min_samples_split:
            return node_id

        split = self._best_split(idx)
        if split is None:
            return node_id
        feature, threshold, gain, left_mask = split
        self._feature[node_id] = feature
        self._threshold[node_id] = threshold
        self._importances[feature] += gain
        self._left[node_id] = self._grow(idx[left_mask], depth + 1)
        self._right[node_id] = self._grow(idx[~left_mask], depth + 1)
        return node_id

    def _candidate_features(self, p: int) -> np.ndarray:
        if self.max_features is None or self.max_features >= p:
            return np.arange(p)
        return self.rng.choice(p, size=self.max_features, replace=False)

    def _best_split(self, idx: np.ndarray):
        """Best (feature, threshold, gain, left_mask) or None.

        Score of a split = ||S_L||^2/n_L + ||S_R||^2/n_R; gain is scored
        against the unsplit node's ||S||^2/n (equivalently SSE reduction or
        Gini decrease, scaled by node size).
        """
        X, Y = self._X[idx], self._Y[idx]
        n = idx.shape[0]
        total = Y.sum(axis=0)
        parent_score = float(total @ total) / n
        min_leaf = self.min_samples_leaf

        best_gain = 1e-12
        best = None
        for feature in self._candidate_features(X.shape[1]):
            col = X[:, feature]
            order = np.argsort(col, kind="stable")
            xs = col[order]
            if xs[0] == xs[-1]:
                continue
            csum = np.cumsum(Y[order], axis=0)
            n_left = np.arange(1, n)
            # Valid cut after position i only where the value changes.
            valid = xs[:-1] < xs[1:]
            if min_leaf > 1:
                valid &= (n_left >= min_leaf) & (n - n_left >= min_leaf)
            if not valid.any():
                continue
            s_left = csum[:-1]
            s_right = total[None, :] - s_left
            score = (
                np.einsum("ij,ij->i", s_left, s_left) / n_left
                + np.einsum("ij,ij->i", s_right, s_right) / (n - n_left)
            )
            score[~valid] = -np.inf
            pos = int(np.argmax(score))
            gain = float(score[pos]) - parent_score
            if gain > best_gain:
                threshold = 0.5 * (xs[pos] + xs[pos + 1])
                best_gain = gain
                best = (int(feature), float(threshold), gain, col <= threshold)
        return best


class _BaseDecisionTree(BaseEstimator):
    """Shared hyperparameters and fitted-tree plumbing."""

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        seed: int = 0,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed

    def _resolve_max_features(self, p: int) -> int | None:
        mf = self.max_features
        if mf is None:
            return None
        if mf == "sqrt":
            return max(1, int(np.sqrt(p)))
        if mf == "log2":
            return max(1, int(np.log2(p)))
        mf = int(mf)
        if mf < 1:
            raise ValueError(f"max_features must be >= 1, got {mf}")
        return min(mf, p)

    def _build(self, X: np.ndarray, Y: np.ndarray) -> None:
        builder = _TreeBuilder(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self._resolve_max_features(X.shape[1]),
            rng=np.random.default_rng(self.seed),
        )
        self.tree_, self.feature_importances_ = builder.build(X, Y)
        self.n_features_ = X.shape[1]

    def apply(self, X) -> np.ndarray:
        """Leaf index for every sample."""
        self._check_fitted("tree_")
        return self.tree_.apply(check_array(X))

    @property
    def n_leaves_(self) -> int:
        """Number of leaf nodes."""
        self._check_fitted("tree_")
        return int(np.sum(self.tree_.feature == _LEAF))

    @property
    def depth_(self) -> int:
        """Maximum depth of the fitted tree (root = 0)."""
        self._check_fitted("tree_")
        depth = np.zeros(self.tree_.n_nodes, dtype=int)
        for node in range(self.tree_.n_nodes):
            if self.tree_.feature[node] != _LEAF:
                for child in (self.tree_.left[node], self.tree_.right[node]):
                    depth[child] = depth[node] + 1
        return int(depth.max())


class DecisionTreeRegressor(_BaseDecisionTree):
    """CART regressor minimizing within-leaf squared error (DTR)."""

    def fit(self, X, y) -> "DecisionTreeRegressor":
        """Grow the tree on (X, y)."""
        X, y = check_X_y(X, y)
        self._build(X, np.asarray(y, dtype=float).reshape(-1, 1))
        return self

    def predict(self, X) -> np.ndarray:
        """Predicted target per sample."""
        self._check_fitted("tree_")
        return self.tree_.predict_value(check_array(X))[:, 0]


class DecisionTreeClassifier(_BaseDecisionTree):
    """CART classifier minimizing Gini impurity (DTC)."""

    def fit(self, X, y) -> "DecisionTreeClassifier":
        """Grow the tree on (X, y); y may hold arbitrary hashable labels."""
        X, y = check_X_y(X, y)
        self.classes_, y_enc = np.unique(y, return_inverse=True)
        onehot = np.zeros((y_enc.shape[0], self.classes_.shape[0]), dtype=float)
        onehot[np.arange(y_enc.shape[0]), y_enc] = 1.0
        self._build(X, onehot)
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Class-probability matrix ``(n, n_classes)``."""
        self._check_fitted("tree_")
        return self.tree_.predict_value(check_array(X))

    def predict(self, X) -> np.ndarray:
        """Most probable class per sample."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]
