"""Low-rank matrix completion via alternating least squares.

Paragon/Quasar (the paper's references [13, 14]) reduce profiling cost with
collaborative filtering: a new application is profiled against only a few
microbenchmarks, and the rest of its contention profile is recovered from
the low-rank structure of the population's profiles.  The paper calls the
technique "complementary to our work"; :mod:`repro.profiling.completion`
applies this solver to game profiles.

Standard regularized ALS: ``M ~ U V^T`` with observed-entry least squares,
solved row-by-row with per-factor ridge regularization.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator
from repro.utils.rng import derive_seed

__all__ = ["ALSMatrixCompletion"]


class ALSMatrixCompletion(BaseEstimator):
    """Completes a partially observed matrix with a rank-``rank`` model.

    Parameters
    ----------
    rank:
        Latent dimension; should be well below ``min(n_rows, n_cols)``.
    reg:
        Ridge regularization on both factor matrices.
    n_iters:
        ALS sweeps; the objective decreases monotonically.
    seed:
        Initialization seed.
    """

    def __init__(self, rank: int = 6, reg: float = 0.1, n_iters: int = 40, seed: int = 0):
        if rank < 1:
            raise ValueError("rank must be >= 1")
        if reg < 0:
            raise ValueError("reg must be >= 0")
        if n_iters < 1:
            raise ValueError("n_iters must be >= 1")
        self.rank = int(rank)
        self.reg = float(reg)
        self.n_iters = int(n_iters)
        self.seed = seed

    @staticmethod
    def _solve_rows(
        factors_other: np.ndarray,
        M: np.ndarray,
        mask: np.ndarray,
        reg: float,
        rank: int,
    ) -> np.ndarray:
        """Least-squares update of one side's factors, row by row."""
        n = M.shape[0]
        out = np.zeros((n, rank), dtype=float)
        eye = reg * np.eye(rank)
        for i in range(n):
            observed = mask[i]
            if not observed.any():
                continue
            A = factors_other[observed]
            b = M[i, observed]
            out[i] = np.linalg.solve(A.T @ A + eye, A.T @ b)
        return out

    def fit(self, M: np.ndarray, mask: np.ndarray) -> "ALSMatrixCompletion":
        """Fit factors to the observed entries of ``M`` (``mask`` = observed)."""
        M = np.asarray(M, dtype=float)
        mask = np.asarray(mask, dtype=bool)
        if M.ndim != 2 or M.shape != mask.shape:
            raise ValueError("M and mask must be equal-shape 2-D arrays")
        if not mask.any():
            raise ValueError("at least one entry must be observed")
        if not np.isfinite(M[mask]).all():
            raise ValueError("observed entries must be finite")

        n, m = M.shape
        rng = np.random.default_rng(derive_seed(self.seed, "als-init"))
        # Center on the observed mean so factors model deviations.
        self.mean_ = float(M[mask].mean())
        R = np.where(mask, M - self.mean_, 0.0)

        U = rng.normal(0.0, 0.1, size=(n, self.rank))
        V = rng.normal(0.0, 0.1, size=(m, self.rank))
        self.train_errors_ = []
        for _ in range(self.n_iters):
            U = self._solve_rows(V, R, mask, self.reg, self.rank)
            V = self._solve_rows(U, R.T, mask.T, self.reg, self.rank)
            residual = (U @ V.T - R)[mask]
            self.train_errors_.append(float(np.sqrt(np.mean(residual**2))))
        self.U_ = U
        self.V_ = V
        return self

    def reconstruct(self) -> np.ndarray:
        """The completed matrix ``U V^T + mean``."""
        self._check_fitted("U_")
        return self.U_ @ self.V_.T + self.mean_
