"""Evaluation metrics.

Includes the paper's error definitions: prediction error for regression is
``|pred - actual| / actual`` (Section 4.2), classification quality uses
accuracy together with the precision/recall decomposition over
feasible-colocation judgements (Section 5.1).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "confusion_counts",
    "relative_errors",
    "mean_relative_error",
    "mean_absolute_error",
    "r2_score",
]


def _pair(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ValueError(
            f"y_true and y_pred must be equal-length 1-D arrays, got "
            f"{y_true.shape} and {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("metric inputs must be non-empty")
    return y_true, y_pred


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exact label matches."""
    y_true, y_pred = _pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_counts(y_true, y_pred, *, positive=1) -> dict[str, int]:
    """TP/FP/FN/TN counts for a binary problem."""
    y_true, y_pred = _pair(y_true, y_pred)
    t = y_true == positive
    p = y_pred == positive
    return {
        "tp": int(np.sum(t & p)),
        "fp": int(np.sum(~t & p)),
        "fn": int(np.sum(t & ~p)),
        "tn": int(np.sum(~t & ~p)),
    }


def precision_score(y_true, y_pred, *, positive=1) -> float:
    """TP / (TP + FP); 0 when nothing was predicted positive."""
    c = confusion_counts(y_true, y_pred, positive=positive)
    denom = c["tp"] + c["fp"]
    return c["tp"] / denom if denom else 0.0


def recall_score(y_true, y_pred, *, positive=1) -> float:
    """TP / (TP + FN); 0 when there are no actual positives."""
    c = confusion_counts(y_true, y_pred, positive=positive)
    denom = c["tp"] + c["fn"]
    return c["tp"] / denom if denom else 0.0


def f1_score(y_true, y_pred, *, positive=1) -> float:
    """Harmonic mean of precision and recall."""
    p = precision_score(y_true, y_pred, positive=positive)
    r = recall_score(y_true, y_pred, positive=positive)
    return 2 * p * r / (p + r) if (p + r) else 0.0


def relative_errors(y_true, y_pred) -> np.ndarray:
    """Per-sample ``|pred - actual| / actual`` (the paper's error metric)."""
    y_true, y_pred = _pair(np.asarray(y_true, float), np.asarray(y_pred, float))
    if np.any(y_true <= 0):
        raise ValueError("relative error requires strictly positive actual values")
    return np.abs(y_pred - y_true) / y_true


def mean_relative_error(y_true, y_pred) -> float:
    """Mean of :func:`relative_errors`."""
    return float(np.mean(relative_errors(y_true, y_pred)))


def mean_absolute_error(y_true, y_pred) -> float:
    """Mean absolute deviation."""
    y_true, y_pred = _pair(np.asarray(y_true, float), np.asarray(y_pred, float))
    return float(np.mean(np.abs(y_pred - y_true)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination."""
    y_true, y_pred = _pair(np.asarray(y_true, float), np.asarray(y_pred, float))
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot
