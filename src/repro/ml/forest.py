"""Random forests (bagged CART ensembles with feature subsampling)."""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_array, check_X_y
from repro.ml.packed import PackedTrees, pack_trees
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.utils.rng import derive_seed

__all__ = ["RandomForestClassifier", "RandomForestRegressor"]


class _BaseForest(BaseEstimator):
    """Shared bootstrap/ensemble plumbing."""

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        bootstrap: bool = True,
        seed: int = 0,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bool(bootstrap)
        self.seed = seed

    def _tree_factory(self, seed: int):
        raise NotImplementedError

    def _fit_ensemble(self, X: np.ndarray, y: np.ndarray) -> None:
        self._packed_ = None
        self.estimators_ = []
        n = X.shape[0]
        for t in range(self.n_estimators):
            tree_seed = derive_seed(self.seed, "forest-tree", t)
            tree = self._tree_factory(tree_seed)
            if self.bootstrap:
                rng = np.random.default_rng(derive_seed(self.seed, "bootstrap", t))
                idx = rng.integers(0, n, size=n)
                tree.fit(X[idx], y[idx])
            else:
                tree.fit(X, y)
            self.estimators_.append(tree)
        importances = np.mean(
            [tree.feature_importances_ for tree in self.estimators_], axis=0
        )
        total = importances.sum()
        self.feature_importances_ = importances / total if total > 0 else importances

    def _pack(self) -> PackedTrees:
        raise NotImplementedError

    def _packed(self) -> PackedTrees:
        # Derived evaluation cache: built lazily after fit() or
        # deserialization (which restores estimators_ but not the pack),
        # never serialized (get_params/estimator_to_dict skip it).
        pack = getattr(self, "_packed_", None)
        if pack is None or pack.n_trees != len(self.estimators_):
            pack = self._pack()
            self._packed_ = pack
        return pack


class RandomForestRegressor(_BaseForest):
    """Bagged regression trees; prediction is the ensemble mean (RF)."""

    def _tree_factory(self, seed: int) -> DecisionTreeRegressor:
        return DecisionTreeRegressor(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            seed=seed,
        )

    def fit(self, X, y) -> "RandomForestRegressor":
        """Fit the ensemble on (X, y)."""
        X, y = check_X_y(X, y)
        self._fit_ensemble(X, np.asarray(y, dtype=float))
        return self

    def _pack(self) -> PackedTrees:
        return pack_trees([tree.tree_ for tree in self.estimators_])

    def predict(self, X) -> np.ndarray:
        """Mean prediction over trees."""
        self._check_fitted("estimators_")
        X = check_array(X)
        return self._packed().mean_predict(X)


class RandomForestClassifier(_BaseForest):
    """Bagged classification trees; prediction averages class probabilities."""

    def _tree_factory(self, seed: int) -> DecisionTreeClassifier:
        return DecisionTreeClassifier(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            seed=seed,
        )

    def fit(self, X, y) -> "RandomForestClassifier":
        """Fit the ensemble on (X, y)."""
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        self._fit_ensemble(X, y)
        return self

    def _pack(self) -> PackedTrees:
        # A bootstrap resample can miss a class, so tree value matrices
        # may cover different classes_ subsets; project each into the
        # global class order so the pack shares one value array.  The
        # injected zero columns add exact 0.0 to the (non-negative)
        # probability sums, matching the old sparse accumulation bitwise.
        values = []
        for tree in self.estimators_:
            v = tree.tree_.value
            padded = np.zeros((v.shape[0], self.classes_.shape[0]), dtype=float)
            padded[:, np.searchsorted(self.classes_, tree.classes_)] = v
            values.append(padded)
        return pack_trees([tree.tree_ for tree in self.estimators_], values=values)

    def predict_proba(self, X) -> np.ndarray:
        """Soft-voted class-probability matrix over the full class set."""
        self._check_fitted("estimators_")
        X = check_array(X)
        return self._packed().sum_values(X) / self.n_estimators

    def predict(self, X) -> np.ndarray:
        """Soft-voted most probable class."""
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]
