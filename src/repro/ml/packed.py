"""Packed tree-ensemble evaluation: all trees x all rows in one traversal.

The ensembles in :mod:`repro.ml.forest` and :mod:`repro.ml.gbdt` used to
evaluate their trees one Python iteration at a time — ``T`` separate
breadth-parallel descents per prediction call, which made the serving
cold path (a 300-tree GBDT per decision) pure interpreter overhead.  A
:class:`PackedTrees` concatenates every tree's flat node arrays
(``feature``/``threshold``/``left``/``right``/``value``) once, with
child pointers rebased to absolute node ids, so a single breadth-first
loop advances every (tree, row) pair simultaneously: the loop body runs
``O(max depth)`` times total instead of per tree.

Packing is a *derived cache*: it is built lazily from the fitted
per-tree arrays (after :meth:`fit` or deserialization) and never
serialized — bundles written by :mod:`repro.ml.serialization` are
unchanged.  Every evaluator here is bitwise identical to the per-tree
loop it replaces: node descents perform the same comparisons, and the
ensemble folds (forest mean, soft-vote sum, boosted accumulation) reduce
over the outer axis of a C-contiguous array, which numpy evaluates in
tree order exactly like the original Python accumulation.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["PackedTrees", "pack_trees"]

_LEAF = -1


def _stage_sum(terms: np.ndarray) -> np.ndarray:
    """Sum ``terms`` over axis 0 in stage order (bitwise-loop-equal).

    ``np.add.reduce`` over the outer axis of a C-contiguous array
    accumulates sequentially — except when the trailing axes have size
    1, where numpy merges them into one contiguous vector and switches
    to pairwise summation.  Accumulate that (single-row) case explicitly
    so the result always matches a per-stage ``+=`` loop bitwise.
    """
    if terms[0].size == 1:
        out = terms[0].copy()
        for row in terms[1:]:
            out += row
        return out
    return np.add.reduce(terms, axis=0)


def traverse(
    feature: np.ndarray,
    threshold: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
    node: np.ndarray,
    rows: np.ndarray,
    X: np.ndarray,
) -> np.ndarray:
    """Advance every cursor in ``node`` to its leaf; returns ``node``.

    The shared breadth-parallel descent kernel: ``node[k]`` is a cursor
    into the flat node arrays and ``rows[k]`` names the row of ``X`` it
    descends with.  Used with one cursor per row for a single tree
    (:meth:`repro.ml.tree._Tree.apply`) and one cursor per (tree, row)
    pair for a packed ensemble — the loop body executes once per tree
    *level*, not per tree.
    """
    while True:
        feat = feature[node]
        internal = feat != _LEAF
        if not internal.any():
            return node
        idx = np.where(internal)[0]
        f = feat[idx]
        go_left = X[rows[idx], f] <= threshold[node[idx]]
        node[idx] = np.where(go_left, left[node[idx]], right[node[idx]])


class PackedTrees:
    """An ensemble's trees concatenated into one set of flat node arrays."""

    __slots__ = ("feature", "threshold", "left", "right", "value", "roots")

    def __init__(self, feature, threshold, left, right, value, roots):
        self.feature = feature
        self.threshold = threshold
        self.left = left
        self.right = right
        self.value = value
        self.roots = roots

    @property
    def n_trees(self) -> int:
        """Number of packed trees."""
        return self.roots.shape[0]

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Absolute leaf id per (tree, row): shape ``(n_trees, n)``."""
        n = X.shape[0]
        node = np.repeat(self.roots, n)
        rows = np.tile(np.arange(n), self.n_trees)
        traverse(self.feature, self.threshold, self.left, self.right, node, rows, X)
        return node.reshape(self.n_trees, n)

    def leaf_values(self, X: np.ndarray) -> np.ndarray:
        """Leaf value block per (tree, row): shape ``(n_trees, n, d)``."""
        return self.value[self.apply(X)]

    # -- ensemble folds (each bitwise equal to the per-tree loop) -------

    def mean_predict(self, X: np.ndarray) -> np.ndarray:
        """Forest-regressor fold: mean over trees of the scalar leaf value."""
        return np.mean(self.leaf_values(X)[:, :, 0], axis=0)

    def sum_values(self, X: np.ndarray) -> np.ndarray:
        """Soft-vote fold: summed leaf value blocks, shape ``(n, d)``."""
        return _stage_sum(self.leaf_values(X))

    def boosted_predict(
        self, X: np.ndarray, init: float, learning_rate: float
    ) -> np.ndarray:
        """Boosting fold: ``init + sum_t lr * value_t``, accumulated in
        stage order (the first reduction step adds stage 0 to ``init``,
        exactly like the sequential per-tree loop)."""
        leaves = self.leaf_values(X)[:, :, 0]
        terms = np.empty((leaves.shape[0] + 1, leaves.shape[1]), dtype=float)
        terms[0] = init
        terms[1:] = learning_rate * leaves
        return _stage_sum(terms)


def pack_trees(
    trees: Sequence, values: Sequence[np.ndarray] | None = None
) -> PackedTrees:
    """Concatenate fitted :class:`repro.ml.tree._Tree` instances.

    ``values`` optionally overrides each tree's leaf value matrix — the
    forest classifier passes per-tree matrices projected into the global
    class order so heterogeneous ``classes_`` subsets (a bootstrap
    resample can miss a class) share one value array.  All value
    matrices must then agree on width.
    """
    if len(trees) == 0:
        raise ValueError("pack_trees needs at least one tree")
    sizes = np.asarray([t.feature.shape[0] for t in trees], dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    lefts, rights = [], []
    for t, off in zip(trees, offsets):
        left = t.left.copy()
        right = t.right.copy()
        left[left != _LEAF] += off
        right[right != _LEAF] += off
        lefts.append(left)
        rights.append(right)
    return PackedTrees(
        feature=np.concatenate([t.feature for t in trees]),
        threshold=np.concatenate([t.threshold for t in trees]),
        left=np.concatenate(lefts),
        right=np.concatenate(rights),
        value=np.vstack(list(values) if values is not None else [t.value for t in trees]),
        roots=offsets[:-1],
    )
