"""Model inspection: permutation feature importance.

Model-agnostic importance: shuffle one feature column at a time and record
how much the model's score degrades.  Used by the interpretation experiment
to ask *which shared resources actually drive interference predictions* —
a question the paper's tree ensembles can answer but the paper leaves
implicit.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.ml.base import check_X_y

__all__ = ["permutation_importance"]


def permutation_importance(
    predict: Callable[[np.ndarray], np.ndarray],
    X: np.ndarray,
    y: np.ndarray,
    *,
    metric: Callable[[np.ndarray, np.ndarray], float],
    n_repeats: int = 5,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Mean increase of ``metric`` (a loss) when each feature is permuted.

    Parameters
    ----------
    predict:
        Fitted model's prediction function.
    X, y:
        Evaluation data (held-out, not training data).
    metric:
        Loss ``metric(y_true, y_pred)`` — *lower is better*; importances
        are ``loss(permuted) - loss(baseline)`` averaged over repeats.
    n_repeats:
        Shuffles per feature (averaging reduces permutation variance).

    Returns a ``(n_features,)`` array; values near zero mean the feature
    is unused (or redundant with others).
    """
    X, y = check_X_y(X, y)
    if n_repeats < 1:
        raise ValueError("n_repeats must be >= 1")
    rng = rng if rng is not None else np.random.default_rng()

    baseline = float(metric(y, predict(X)))
    importances = np.zeros(X.shape[1], dtype=float)
    work = X.copy()
    for j in range(X.shape[1]):
        column = X[:, j].copy()
        scores = []
        for _ in range(n_repeats):
            work[:, j] = rng.permutation(column)
            scores.append(float(metric(y, predict(work))))
        work[:, j] = column
        importances[j] = float(np.mean(scores)) - baseline
    return importances
