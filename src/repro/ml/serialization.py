"""Serialization of fitted estimators to JSON-compatible dicts.

GAugur's deployment story separates offline training from online
prediction (Section 3.5): models are trained once, then served at request
arrivals.  That requires persisting fitted estimators.  This module
round-trips every estimator in :mod:`repro.ml` through plain dicts, with a
type registry for dispatch; :func:`save_model` / :func:`load_model` add
file I/O.

Serialization is centralized here (rather than per-class methods) so the
estimator implementations stay free of persistence concerns.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.gbdt import GradientBoostingClassifier, GradientBoostingRegressor
from repro.ml.preprocessing import StandardScaler
from repro.ml.svm import SVC, SVR
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor, _Tree
from repro.utils.serialization import dump_json, load_json

__all__ = ["estimator_to_dict", "estimator_from_dict", "save_model", "load_model"]

_TREE_CLASSES = (DecisionTreeClassifier, DecisionTreeRegressor)
_FOREST_CLASSES = (RandomForestClassifier, RandomForestRegressor)
_BOOSTING_CLASSES = (GradientBoostingClassifier, GradientBoostingRegressor)
_KERNEL_CLASSES = (SVC, SVR)

_REGISTRY = {
    cls.__name__: cls
    for cls in (
        *_TREE_CLASSES,
        *_FOREST_CLASSES,
        *_BOOSTING_CLASSES,
        *_KERNEL_CLASSES,
        StandardScaler,
    )
}


def _classes_to_list(classes: np.ndarray) -> dict:
    return {"values": classes.tolist(), "dtype": classes.dtype.kind}


def _classes_from_list(data: dict) -> np.ndarray:
    values = data["values"]
    if data["dtype"] in "iu":
        return np.asarray(values, dtype=int)
    if data["dtype"] == "f":
        return np.asarray(values, dtype=float)
    return np.asarray(values)


def _tree_state(tree: _Tree) -> dict:
    return {
        "feature": tree.feature.tolist(),
        "threshold": [None if np.isnan(t) else float(t) for t in tree.threshold],
        "left": tree.left.tolist(),
        "right": tree.right.tolist(),
        "value": tree.value.tolist(),
        "n_node_samples": tree.n_node_samples.tolist(),
    }


def _tree_from_state(state: dict) -> _Tree:
    return _Tree(
        feature=np.asarray(state["feature"], dtype=np.int64),
        threshold=np.asarray(
            [np.nan if t is None else t for t in state["threshold"]], dtype=float
        ),
        left=np.asarray(state["left"], dtype=np.int64),
        right=np.asarray(state["right"], dtype=np.int64),
        value=np.asarray(state["value"], dtype=float),
        n_node_samples=np.asarray(state["n_node_samples"], dtype=np.int64),
    )


def estimator_to_dict(estimator) -> dict:
    """Serialize a fitted estimator (or scaler) to a plain dict."""
    name = type(estimator).__name__
    if name not in _REGISTRY:
        raise TypeError(f"cannot serialize estimator of type {name}")
    out: dict = {"type": name, "params": estimator.get_params()}

    if isinstance(estimator, _TREE_CLASSES):
        estimator._check_fitted("tree_")
        out["state"] = {
            "tree": _tree_state(estimator.tree_),
            "feature_importances": estimator.feature_importances_.tolist(),
            "n_features": estimator.n_features_,
        }
        if isinstance(estimator, DecisionTreeClassifier):
            out["state"]["classes"] = _classes_to_list(estimator.classes_)
    elif isinstance(estimator, _FOREST_CLASSES):
        estimator._check_fitted("estimators_")
        out["state"] = {
            "estimators": [estimator_to_dict(t) for t in estimator.estimators_],
            "feature_importances": estimator.feature_importances_.tolist(),
        }
        if isinstance(estimator, RandomForestClassifier):
            out["state"]["classes"] = _classes_to_list(estimator.classes_)
    elif isinstance(estimator, _BOOSTING_CLASSES):
        estimator._check_fitted("estimators_")
        out["state"] = {
            "init": estimator.init_,
            "estimators": [estimator_to_dict(t) for t in estimator.estimators_],
            "train_losses": list(estimator.train_losses_),
        }
        if isinstance(estimator, GradientBoostingClassifier):
            out["state"]["classes"] = _classes_to_list(estimator.classes_)
    elif isinstance(estimator, _KERNEL_CLASSES):
        estimator._check_fitted("beta_")
        out["state"] = {
            "beta": estimator.beta_.tolist(),
            "intercept": estimator.intercept_,
            "gamma": estimator.gamma_,
            "X_train": estimator.X_train_.tolist(),
        }
        if isinstance(estimator, SVC):
            out["state"]["classes"] = _classes_to_list(estimator.classes_)
    elif isinstance(estimator, StandardScaler):
        estimator._check_fitted("mean_")
        out["state"] = {
            "mean": estimator.mean_.tolist(),
            "scale": estimator.scale_.tolist(),
        }
    return out


def estimator_from_dict(data: dict):
    """Reconstruct a fitted estimator serialized by :func:`estimator_to_dict`."""
    name = data["type"]
    if name not in _REGISTRY:
        raise TypeError(f"unknown estimator type {name!r}")
    cls = _REGISTRY[name]
    params = dict(data["params"])
    # Tuples become lists in JSON; constructor params here are scalars, so
    # no coercion is needed beyond what the classes validate themselves.
    estimator = cls(**params)
    state = data["state"]

    if issubclass(cls, _TREE_CLASSES):
        estimator.tree_ = _tree_from_state(state["tree"])
        estimator.feature_importances_ = np.asarray(
            state["feature_importances"], dtype=float
        )
        estimator.n_features_ = int(state["n_features"])
        if "classes" in state:
            estimator.classes_ = _classes_from_list(state["classes"])
    elif issubclass(cls, _FOREST_CLASSES):
        estimator.estimators_ = [
            estimator_from_dict(t) for t in state["estimators"]
        ]
        estimator.feature_importances_ = np.asarray(
            state["feature_importances"], dtype=float
        )
        if "classes" in state:
            estimator.classes_ = _classes_from_list(state["classes"])
    elif issubclass(cls, _BOOSTING_CLASSES):
        estimator.init_ = float(state["init"])
        estimator.estimators_ = [
            estimator_from_dict(t) for t in state["estimators"]
        ]
        estimator.train_losses_ = list(state["train_losses"])
        if "classes" in state:
            estimator.classes_ = _classes_from_list(state["classes"])
    elif issubclass(cls, _KERNEL_CLASSES):
        estimator.beta_ = np.asarray(state["beta"], dtype=float)
        estimator.intercept_ = float(state["intercept"])
        estimator.gamma_ = float(state["gamma"])
        estimator.X_train_ = np.asarray(state["X_train"], dtype=float)
        if "classes" in state:
            estimator.classes_ = _classes_from_list(state["classes"])
    elif issubclass(cls, StandardScaler):
        estimator.mean_ = np.asarray(state["mean"], dtype=float)
        estimator.scale_ = np.asarray(state["scale"], dtype=float)
    return estimator


def save_model(estimator, path: str | Path) -> None:
    """Serialize a fitted estimator to a JSON file."""
    dump_json(estimator_to_dict(estimator), path)


def load_model(path: str | Path):
    """Load an estimator written by :func:`save_model`."""
    return estimator_from_dict(load_json(path))
