"""Dataset splitting and cross-validation."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.ml.base import check_X_y

__all__ = ["train_test_split", "KFold", "cross_val_score"]


def train_test_split(
    X, y, *, test_size: float = 0.25, rng: np.random.Generator | None = None
):
    """Random split into (X_train, X_test, y_train, y_test)."""
    X, y = check_X_y(X, y)
    if not (0.0 < test_size < 1.0):
        raise ValueError(f"test_size must lie in (0, 1), got {test_size}")
    rng = rng if rng is not None else np.random.default_rng()
    n = X.shape[0]
    n_test = max(1, int(round(n * test_size)))
    if n_test >= n:
        raise ValueError(f"test_size {test_size} leaves no training data for n={n}")
    perm = rng.permutation(n)
    test_idx, train_idx = perm[:n_test], perm[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


class KFold:
    """K-fold cross-validation index generator."""

    def __init__(self, n_splits: int = 5, *, shuffle: bool = True, seed: int = 0):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = int(n_splits)
        self.shuffle = bool(shuffle)
        self.seed = int(seed)

    def split(self, n_samples: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (train_idx, test_idx) pairs over ``n_samples`` rows."""
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        idx = np.arange(n_samples)
        if self.shuffle:
            np.random.default_rng(self.seed).shuffle(idx)
        for fold in np.array_split(idx, self.n_splits):
            train = np.setdiff1d(idx, fold, assume_unique=False)
            yield train, fold


def cross_val_score(estimator, X, y, *, metric, cv: KFold | None = None) -> np.ndarray:
    """Fit/evaluate ``estimator`` clones over folds; returns per-fold scores."""
    X, y = check_X_y(X, y)
    cv = cv if cv is not None else KFold()
    scores = []
    for train_idx, test_idx in cv.split(X.shape[0]):
        model = estimator.clone()
        model.fit(X[train_idx], y[train_idx])
        scores.append(metric(y[test_idx], model.predict(X[test_idx])))
    return np.asarray(scores, dtype=float)
