"""From-scratch machine-learning substrate.

The paper builds its CM/RM predictors with Decision Trees, Random Forests,
Gradient-Boosted Trees and Support Vector machines (Section 3.4).  This
environment has no scikit-learn, so this package implements the required
learners on NumPy: exact CART trees with O(n log n) split search, bagged
forests, gradient boosting with Newton leaf updates, and kernel machines
trained in the primal.  The API mirrors the familiar fit/predict convention
so the GAugur core can swap learners freely.
"""

from repro.ml.base import BaseEstimator, check_array, check_X_y
from repro.ml.factorization import ALSMatrixCompletion
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.gbdt import GradientBoostingClassifier, GradientBoostingRegressor
from repro.ml.inspection import permutation_importance
from repro.ml.metrics import (
    accuracy_score,
    confusion_counts,
    mean_absolute_error,
    mean_relative_error,
    precision_score,
    r2_score,
    recall_score,
    relative_errors,
)
from repro.ml.model_selection import KFold, cross_val_score, train_test_split
from repro.ml.packed import PackedTrees, pack_trees
from repro.ml.preprocessing import StandardScaler
from repro.ml.serialization import load_model, save_model
from repro.ml.svm import SVC, SVR
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "ALSMatrixCompletion",
    "BaseEstimator",
    "check_array",
    "check_X_y",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "GradientBoostingClassifier",
    "GradientBoostingRegressor",
    "SVC",
    "SVR",
    "StandardScaler",
    "train_test_split",
    "KFold",
    "cross_val_score",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "confusion_counts",
    "mean_relative_error",
    "relative_errors",
    "mean_absolute_error",
    "r2_score",
    "permutation_importance",
    "PackedTrees",
    "pack_trees",
    "save_model",
    "load_model",
]
