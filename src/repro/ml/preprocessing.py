"""Feature preprocessing."""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_array

__all__ = ["StandardScaler"]


class StandardScaler(BaseEstimator):
    """Standardize features to zero mean and unit variance.

    Constant features are left centered but unscaled (divisor 1), so
    transforming never produces NaN.  Required by the kernel machines;
    harmless for trees.
    """

    def fit(self, X) -> "StandardScaler":
        """Learn per-feature mean and standard deviation."""
        X = check_array(X)
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X) -> np.ndarray:
        """Apply the learned standardization."""
        self._check_fitted("mean_")
        X = check_array(X)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, scaler was fitted with "
                f"{self.mean_.shape[0]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        """Fit and transform in one pass."""
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        """Undo the standardization."""
        self._check_fitted("mean_")
        X = check_array(X)
        return X * self.scale_ + self.mean_
