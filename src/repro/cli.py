"""Command-line interface.

Wraps the library's offline/online workflow in seven subcommands::

    python -m repro catalog  [--genre moba-esports]
    python -m repro profile  --games "Dota2,H1Z1" --out db.json
    python -m repro train    --db db.json --pairs 80 --out predictor.json
    python -m repro predict  --predictor predictor.json \\
                             --colocation "Dota2@1920x1080,H1Z1@1280x720" --qos 60
    python -m repro serve    --predictor predictor.json --requests 500 \\
                             --policy cm-feasible [--trace-out trace.json] \\
                             [--shards 4 --rebalance-interval 2048] \\
                             [--shard-crash-rate 0.05 --shard-outage-window 10:5:1@2] \\
                             [--slo-fps 30 --qos-budget 0.05]
    python -m repro metrics  summary|diff|merge|export ...
    python -m repro slo      summary|diff ...
    python -m repro experiments [--extensions] [--out results.md]

Colocations are written ``Game@WxH`` entries joined with commas; the
resolution suffix is optional and defaults to 1080p.  ``serve`` replays a
synthetic arrival trace through the online serving broker and emits the
telemetry snapshot (JSON) — see :mod:`repro.serving`; ``--shards N``
routes the trace across N consistent-hash broker shards with optional
occupancy rebalancing and emits the shard-labeled merged snapshot — see
:mod:`repro.sharding`; the ``--shard-crash-rate`` / ``--shard-flake-rate``
/ ``--shard-outage-window`` chaos flags kill whole shards on a seeded
schedule and engage the shard supervisor (ring ejection, session
failover, half-open readmission); ``--trace-out`` additionally records a
per-request span trace (Chrome trace-event JSON by default,
Perfetto-loadable).  ``metrics`` post-processes snapshot and
trace files: human summaries, run-to-run regression diffs with
``--fail-on`` thresholds, bucket-wise snapshot merging, and exports to
Prometheus text exposition or Chrome trace format — see
:mod:`repro.obs`.

``serve --slo-fps TARGET`` attaches a :class:`repro.obs.qos.QoSLedger`
to every fleet: ground-truth FPS accounting per session (the simulator's
interference model re-measures each colocation group on every mutation),
prediction-calibration residuals, and SLO error-budget burn tracking —
surfaced as the ``qos`` report section and inspected with ``repro slo
summary`` / ``repro slo diff --fail-on fps_residual_mae:+10%``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.core import (
    ColocationSpec,
    GAugurClassifier,
    GAugurRegressor,
    InterferencePredictor,
    build_dataset,
    generate_colocations,
    measure_colocations,
)
from repro.games import REFERENCE_RESOLUTION, Resolution, build_catalog
from repro.games.genres import Genre
from repro.profiling import ContentionProfiler, ProfileDatabase

__all__ = ["main", "parse_colocation"]


def parse_colocation(text: str) -> ColocationSpec:
    """Parse ``"GameA@1920x1080,GameB"`` into a :class:`ColocationSpec`."""
    entries = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "@" in chunk:
            name, _, res_text = chunk.rpartition("@")
            try:
                width, height = res_text.lower().split("x")
                resolution = Resolution(int(width), int(height))
            except ValueError as exc:
                raise ValueError(
                    f"bad resolution {res_text!r} (expected WxH, e.g. 1920x1080)"
                ) from exc
        else:
            name, resolution = chunk, REFERENCE_RESOLUTION
        entries.append((name.strip(), resolution))
    if not entries:
        raise ValueError("colocation must name at least one game")
    return ColocationSpec(tuple(entries))


def _cmd_catalog(args) -> int:
    catalog = build_catalog(args.seed)
    games = catalog.games()
    if args.genre:
        games = [g for g in games if g.genre.value == args.genre]
        if not games:
            valid = ", ".join(sorted(g.value for g in Genre))
            print(f"no games of genre {args.genre!r}; genres: {valid}")
            return 1
    print(f"{'game':44s} {'genre':16s} {'solo FPS @1080p':>15s}")
    for game in games:
        print(
            f"{game.name:44s} {game.genre.value:16s} "
            f"{game.solo_fps_nominal(REFERENCE_RESOLUTION):15.0f}"
        )
    return 0


def _cmd_profile(args) -> int:
    catalog = build_catalog(args.seed)
    names = [n.strip() for n in args.games.split(",") if n.strip()]
    specs = [catalog.get(n) for n in names]
    profiler = ContentionProfiler()

    def progress(name: str, done: int, total: int) -> None:
        print(f"  [{done}/{total}] {name}")

    print(f"profiling {len(specs)} games...")
    db = profiler.profile_catalog(specs, progress=progress)
    db.save(args.out)
    print(f"wrote {args.out}")
    return 0


def _cmd_train(args) -> int:
    catalog = build_catalog(args.seed)
    db = ProfileDatabase.load(args.db)
    sizes = {2: args.pairs}
    if args.triples:
        sizes[3] = args.triples
    if args.quads:
        sizes[4] = args.quads
    print(f"measuring campaign {sizes} over {len(db)} games...")
    colocations = generate_colocations(db.names(), sizes=sizes, seed=args.seed)
    measured = measure_colocations(catalog, colocations)
    dataset = build_dataset(measured, db, qos_values=(args.qos,))
    print(f"training CM and RM on {len(dataset.rm)} samples...")
    predictor = InterferencePredictor(
        db,
        classifier=GAugurClassifier().fit(dataset.cm),
        regressor=GAugurRegressor().fit(dataset.rm),
    )
    predictor.save(args.out)
    print(f"wrote {args.out}")
    return 0


def _cmd_predict(args) -> int:
    predictor = InterferencePredictor.load(args.predictor)
    spec = parse_colocation(args.colocation)
    fps = predictor.predict_fps(spec)
    verdicts = predictor.predict_feasible(spec, args.qos)
    print(f"{'game':40s} {'predicted FPS':>13s} {'meets QoS':>10s}")
    for i, (name, resolution) in enumerate(spec.entries):
        print(
            f"{name + ' @ ' + str(resolution):40s} {fps[i]:13.1f} "
            f"{str(bool(verdicts[i])):>10s}"
        )
    feasible = bool(verdicts.all())
    print(f"\ncolocation {'FEASIBLE' if feasible else 'NOT feasible'} at {args.qos:.0f} FPS")
    return 0 if feasible else 2


def _parse_number(flag: str, text: str) -> float:
    """Parse a numeric flag kept as a string so malformed input exits 1.

    argparse's ``type=float`` rejects bad values with its own exit code 2
    and a usage dump; the serve QoS flags instead follow the repo's
    one-line ``error:`` convention for malformed user input.
    """
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"{flag} expects a number, got {text!r}") from None


def _parse_slo_flags(args) -> tuple[float | None, float]:
    """Validate ``--slo-fps`` / ``--qos-budget``; raises ValueError."""
    slo_fps = None
    if args.slo_fps is not None:
        slo_fps = _parse_number("--slo-fps", args.slo_fps)
        if not slo_fps > 0:
            raise ValueError(f"--slo-fps must be positive, got {slo_fps:g}")
    qos_budget = 0.05
    if args.qos_budget is not None:
        qos_budget = _parse_number("--qos-budget", args.qos_budget)
        if not 0.0 < qos_budget <= 1.0:
            raise ValueError(
                f"--qos-budget must be in (0, 1], got {qos_budget:g}"
            )
    return slo_fps, qos_budget


def _parse_degrade_flags(args):
    """Validate ``--degrade-ladder`` / ``--restore-interval``.

    Returns ``(ladder, restore_interval)``.  Malformed ladder text raises
    ValueError (one-line ``error:`` exit 1 via ``main``); ``--no-degrade``
    disarms the actuator even when a ladder string is present, which lets
    wrapper scripts pin the pre-actuator byte-identical behavior.
    """
    from repro.games import DegradeLadder

    ladder = None
    if args.degrade_ladder is not None and not args.no_degrade:
        ladder = DegradeLadder.from_str(args.degrade_ladder)
    restore_interval = None
    if ladder is not None:
        restore_interval = args.restore_interval
        if restore_interval is None:
            restore_interval = 256
        elif restore_interval < 1:
            raise ValueError(
                f"--restore-interval must be >= 1, got {restore_interval}"
            )
    return ladder, restore_interval


def _cmd_serve(args) -> int:
    from repro.obs import Telemetry, Tracer
    from repro.placement import BreakerConfig, PredictionCache, build_policy
    from repro.serving import (
        AdmissionController,
        FaultConfig,
        FaultInjector,
        RequestBroker,
        TraceConfig,
        generate_trace,
    )

    if args.shards is not None and args.shards < 1:
        raise ValueError(f"--shards must be >= 1, got {args.shards}")
    if args.rebalance_interval is not None and args.rebalance_interval < 1:
        raise ValueError(
            f"--rebalance-interval must be >= 1, got {args.rebalance_interval}"
        )
    for flag, rate in (
        ("--shard-crash-rate", args.shard_crash_rate),
        ("--shard-flake-rate", args.shard_flake_rate),
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"{flag} must be in [0, 1], got {rate}")
    if args.shard_outage_chunks < 1:
        raise ValueError(
            f"--shard-outage-chunks must be >= 1, got {args.shard_outage_chunks}"
        )
    if args.min_healthy_shards < 1:
        raise ValueError(
            f"--min-healthy-shards must be >= 1, got {args.min_healthy_shards}"
        )
    slo_fps, qos_budget = _parse_slo_flags(args)
    if args.qos_budget is not None and slo_fps is None:
        print("--qos-budget requires --slo-fps", file=sys.stderr)
        return 2
    if args.restore_interval is not None and args.degrade_ladder is None:
        print("--restore-interval requires --degrade-ladder", file=sys.stderr)
        return 2
    ladder, restore_interval = _parse_degrade_flags(args)
    if args.rebalance_interval and not args.shards:
        print("--rebalance-interval requires --shards", file=sys.stderr)
        return 2
    shard_chaos_requested = bool(
        args.shard_crash_rate or args.shard_flake_rate or args.shard_outage_window
    )
    if shard_chaos_requested and not args.shards:
        print("shard chaos flags require --shards", file=sys.stderr)
        return 2
    predictor = InterferencePredictor.load(args.predictor)
    if slo_fps is not None and predictor.regressor is None:
        raise ValueError(
            "--slo-fps needs a predictor bundle with a trained regression "
            "model (the FPS promise comes from the RM)"
        )
    trace_config = TraceConfig(
        n_requests=args.requests,
        arrival_rate=args.arrival_rate,
        mean_duration=args.mean_duration,
        mixed_resolutions=args.mixed_resolutions,
        seed=args.trace_seed,
    )
    sessions = generate_trace(predictor.db.names(), trace_config)
    if args.shards:
        return _serve_sharded(
            args, predictor, sessions, trace_config,
            slo_fps=slo_fps, qos_budget=qos_budget,
            ladder=ladder, restore_interval=restore_interval,
        )
    telemetry = Telemetry()
    fault_config = FaultConfig(error_rate=args.fault_rate, seed=args.trace_seed)
    injector = (
        FaultInjector(fault_config, telemetry=telemetry)
        if fault_config.active
        else None
    )
    cache = PredictionCache(args.cache_size)
    policy, fallback = build_policy(
        args.policy,
        predictor=predictor,
        qos=args.qos,
        cache=cache,
        max_colocation=args.max_colocation,
        injector=injector,
    )
    deadline_s = (
        args.decision_deadline_ms / 1000.0
        if args.decision_deadline_ms is not None
        else None
    )
    tracer = Tracer(enabled=args.trace_out is not None)
    controller = AdmissionController(
        policy,
        fallback=fallback,
        telemetry=telemetry,
        breaker=BreakerConfig(failure_threshold=args.breaker_threshold),
        decision_deadline_s=deadline_s,
        tracer=tracer,
        downscale_ladder=ladder,
    )
    ledger = None
    if slo_fps is not None:
        from repro.obs import QoSLedger

        ledger = QoSLedger(
            build_catalog(args.seed),
            predictor,
            slo_fps=slo_fps,
            budget_fraction=qos_budget,
        )
    broker = RequestBroker(
        controller,
        crash_rate=args.crash_rate,
        crash_seed=args.trace_seed,
        ledger=ledger,
        restore_interval=restore_interval,
    )
    report = broker.run(sessions)
    if args.trace_out:
        if args.trace_format == "chrome":
            tracer.export_chrome_trace(args.trace_out)
        else:
            tracer.export_jsonl(args.trace_out)
        print(f"wrote {args.trace_out} ({tracer.n_traces} request traces)")
    payload = report.to_dict()
    payload["config"] = {
        "policy": args.policy,
        "qos": args.qos,
        "cache_size": args.cache_size,
        "max_colocation": args.max_colocation,
        "fault_rate": args.fault_rate,
        "crash_rate": args.crash_rate,
        "decision_deadline_ms": args.decision_deadline_ms,
        "breaker_threshold": args.breaker_threshold,
        "trace": trace_config.to_dict(),
    }
    if slo_fps is not None:
        # QoS keys appear only when the ledger ran, so ledger-less
        # reports stay byte-identical to previous releases.
        payload["config"]["slo_fps"] = slo_fps
        payload["config"]["qos_budget"] = qos_budget
    if ladder is not None:
        # Degrade keys likewise appear only when the actuator is armed.
        payload["config"]["degrade_ladder"] = ladder.to_list()
        payload["config"]["restore_interval"] = restore_interval
    text = json.dumps(payload, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _shard_trace_path(base: str, shard_id: int) -> str:
    stem, ext = os.path.splitext(base)
    return f"{stem}.shard{shard_id}{ext}"


def _serve_sharded(
    args, predictor, sessions, trace_config, *, slo_fps=None, qos_budget=0.05,
    ladder=None, restore_interval=None,
) -> int:
    from repro.obs import Telemetry, Tracer
    from repro.sharding import (
        RebalanceConfig,
        Rebalancer,
        ShardChaos,
        ShardChaosConfig,
        ShardConfig,
        ShardedBroker,
        ShardSupervisor,
        SupervisorConfig,
        build_shard_brokers,
        parse_outage_window,
    )

    tracing = args.trace_out is not None
    telemetry = Telemetry()
    tracer = Tracer(enabled=tracing)
    deadline_s = (
        args.decision_deadline_ms / 1000.0
        if args.decision_deadline_ms is not None
        else None
    )
    config = ShardConfig(
        policy=args.policy,
        qos=args.qos,
        cache_size=args.cache_size,
        max_colocation=args.max_colocation,
        fault_rate=args.fault_rate,
        crash_rate=args.crash_rate,
        decision_deadline_s=deadline_s,
        breaker_threshold=args.breaker_threshold,
        seed=args.trace_seed,
        slo_fps=slo_fps,
        qos_budget=qos_budget,
        degrade_ladder=ladder,
    )
    shard_tracers = (
        [Tracer(enabled=True) for _ in range(args.shards)] if tracing else None
    )
    brokers = build_shard_brokers(
        predictor,
        args.shards,
        config,
        tracers=shard_tracers,
        catalog=build_catalog(args.seed) if slo_fps is not None else None,
    )
    rebalancer = (
        Rebalancer(
            RebalanceConfig(interval=args.rebalance_interval),
            telemetry=telemetry,
            tracer=tracer,
        )
        if args.rebalance_interval
        else None
    )
    chaos_config = ShardChaosConfig(
        outage_rate=args.shard_crash_rate,
        flake_rate=args.shard_flake_rate,
        outage_chunks=args.shard_outage_chunks,
        windows=tuple(
            parse_outage_window(text) for text in args.shard_outage_window
        ),
        seed=args.trace_seed,
    )
    supervisor = (
        ShardSupervisor(
            ShardChaos(chaos_config, args.shards),
            SupervisorConfig(min_healthy=args.min_healthy_shards),
        )
        if chaos_config.active
        else None
    )
    broker = ShardedBroker(
        brokers,
        rebalancer=rebalancer,
        supervisor=supervisor,
        telemetry=telemetry,
        tracer=tracer,
    )
    report = broker.run(sessions)
    if tracing:
        # Coordinator spans (route/migrate) go to the named file; each
        # shard's request spans to a .shardN sibling (span ids are only
        # unique within one tracer, so the files must not be merged).
        exports = [(args.trace_out, tracer)] + [
            (_shard_trace_path(args.trace_out, shard_id), shard_tracer)
            for shard_id, shard_tracer in enumerate(shard_tracers)
        ]
        for path, t in exports:
            if args.trace_format == "chrome":
                t.export_chrome_trace(path)
            else:
                t.export_jsonl(path)
        print(f"wrote {args.trace_out} (+{len(shard_tracers)} shard trace files)")
    payload = report.to_dict()
    payload["config"] = {
        "policy": args.policy,
        "qos": args.qos,
        "cache_size": args.cache_size,
        "max_colocation": args.max_colocation,
        "fault_rate": args.fault_rate,
        "crash_rate": args.crash_rate,
        "decision_deadline_ms": args.decision_deadline_ms,
        "breaker_threshold": args.breaker_threshold,
        "shards": args.shards,
        "rebalance_interval": args.rebalance_interval or 0,
        "trace": trace_config.to_dict(),
    }
    if supervisor is not None:
        # Chaos/supervision keys appear only when the supervisor ran, so
        # zero-chaos reports stay byte-identical to pre-supervision runs.
        payload["config"]["shard_chaos"] = chaos_config.to_dict()
        payload["config"]["min_healthy_shards"] = args.min_healthy_shards
    if slo_fps is not None:
        payload["config"]["slo_fps"] = slo_fps
        payload["config"]["qos_budget"] = qos_budget
    if ladder is not None:
        payload["config"]["degrade_ladder"] = ladder.to_list()
        payload["config"]["restore_interval"] = restore_interval
    _write_or_print(json.dumps(payload, indent=2), args.out)
    return 0


def _write_or_print(text: str, out: str | None) -> None:
    if out:
        with open(out, "w") as fh:
            fh.write(text if text.endswith("\n") else text + "\n")
        print(f"wrote {out}")
    else:
        print(text)


def _cmd_metrics_summary(args) -> int:
    from repro.obs import load_snapshot, summarize_snapshot

    for path in args.files:
        snapshot = load_snapshot(path)
        title = path if len(args.files) > 1 else ""
        print(summarize_snapshot(snapshot, title=title))
    return 0


def _cmd_metrics_diff(args) -> int:
    from repro.obs import (
        check_regressions,
        diff_snapshots,
        load_snapshot,
        parse_fail_spec,
        render_diff,
    )

    specs = [parse_fail_spec(s) for s in args.fail_on]
    rows = diff_snapshots(load_snapshot(args.old), load_snapshot(args.new))
    print(render_diff(rows, only_changed=not args.all))
    breaches = check_regressions(rows, specs)
    for breach in breaches:
        print(
            f"REGRESSION {breach['metric']}.{breach['stat']}: "
            f"{breach['old']:g} -> {breach['new']:g} "
            f"(breaches {breach['spec']})",
            file=sys.stderr,
        )
    return 3 if breaches else 0


def _cmd_metrics_merge(args) -> int:
    from repro.obs import load_snapshot, merge_snapshots

    if len(args.files) < 2:
        raise ValueError("merge needs at least two snapshot files")
    merged = load_snapshot(args.files[0])
    for path in args.files[1:]:
        merged = merge_snapshots(merged, load_snapshot(path))
    _write_or_print(json.dumps(merged, indent=2), args.out)
    return 0


def _cmd_metrics_export(args) -> int:
    from repro.obs import load_snapshot, snapshot_to_prometheus, spans_to_chrome

    if args.format == "prometheus":
        _write_or_print(snapshot_to_prometheus(load_snapshot(args.file)), args.out)
        return 0
    # chrome-trace: the input is a JSONL span trace (one span per line).
    spans = []
    with open(args.file) as fh:
        for lineno, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            try:
                spans.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{args.file}:{lineno}: not a JSONL span trace ({exc})"
                ) from exc
    if any(not isinstance(s, dict) or "span_id" not in s for s in spans):
        raise ValueError(
            f"{args.file}: not a span trace (expected objects with 'span_id'; "
            "was this written by repro serve --trace-format jsonl?)"
        )
    _write_or_print(json.dumps(spans_to_chrome(spans), indent=1), args.out)
    return 0


def _load_qos(path: str) -> dict:
    from repro.obs import extract_qos

    with open(path) as fh:
        payload = json.load(fh)
    return extract_qos(payload, source=path)


def _cmd_slo_summary(args) -> int:
    from repro.obs import summarize_qos

    for path in args.files:
        title = path if len(args.files) > 1 else "qos"
        print(summarize_qos(_load_qos(path), title=title))
    return 0


def _cmd_slo_diff(args) -> int:
    from repro.obs import check_regressions, diff_qos, parse_fail_spec, render_diff

    specs = [parse_fail_spec(s) for s in args.fail_on]
    rows = diff_qos(_load_qos(args.old), _load_qos(args.new))
    print(render_diff(rows, only_changed=not args.all))
    breaches = check_regressions(rows, specs)
    for breach in breaches:
        print(
            f"REGRESSION {breach['metric']}.{breach['stat']}: "
            f"{breach['old']:g} -> {breach['new']:g} "
            f"(breaches {breach['spec']})",
            file=sys.stderr,
        )
    return 3 if breaches else 0


def _cmd_experiments(args) -> int:
    from repro.experiments.runner import main as runner_main

    argv = []
    if args.extensions:
        argv.append("--extensions")
    if args.out:
        argv.append(args.out)
    return runner_main(argv)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="GAugur reproduction command-line interface"
    )
    parser.add_argument("--seed", type=int, default=20190622, help="catalog seed")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("catalog", help="list the game catalog")
    p.add_argument("--genre", help="filter by genre slug")
    p.set_defaults(fn=_cmd_catalog)

    p = sub.add_parser("profile", help="profile games into a database")
    p.add_argument("--games", required=True, help="comma-separated game names")
    p.add_argument("--out", default="profiles.json", help="output path")
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser("train", help="measure a campaign and train a predictor")
    p.add_argument("--db", required=True, help="profile database path")
    p.add_argument("--pairs", type=int, default=80, help="pair colocations")
    p.add_argument("--triples", type=int, default=30, help="triple colocations")
    p.add_argument("--quads", type=int, default=20, help="quadruple colocations")
    p.add_argument("--qos", type=float, default=60.0, help="QoS floor (FPS)")
    p.add_argument("--out", default="predictor.json", help="output path")
    p.set_defaults(fn=_cmd_train)

    p = sub.add_parser("predict", help="predict a colocation's outcome")
    p.add_argument("--predictor", required=True, help="predictor bundle path")
    p.add_argument("--colocation", required=True, help='e.g. "Dota2@1920x1080,H1Z1"')
    p.add_argument("--qos", type=float, default=60.0, help="QoS floor (FPS)")
    p.set_defaults(fn=_cmd_predict)

    p = sub.add_parser("serve", help="replay a trace through the serving broker")
    p.add_argument("--predictor", required=True, help="predictor bundle path")
    p.add_argument("--requests", type=int, default=500, help="trace length")
    p.add_argument(
        "--arrival-rate", type=float, default=2.0, help="arrivals per minute"
    )
    p.add_argument(
        "--mean-duration", type=float, default=30.0, help="mean session minutes"
    )
    p.add_argument(
        "--mixed-resolutions",
        action="store_true",
        help="draw resolutions from the preset list instead of fixed 1080p",
    )
    p.add_argument(
        "--policy",
        choices=["cm-feasible", "max-fps", "worst-fit", "dedicated"],
        default="cm-feasible",
        help="admission policy",
    )
    p.add_argument("--qos", type=float, default=60.0, help="QoS floor (FPS)")
    p.add_argument(
        "--cache-size", type=int, default=4096, help="prediction cache entries"
    )
    p.add_argument(
        "--max-colocation", type=int, default=4, help="games per server cap"
    )
    p.add_argument("--trace-seed", type=int, default=0, help="trace RNG seed")
    p.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="chaos: per-call probability of an injected predictor fault",
    )
    p.add_argument(
        "--crash-rate",
        type=float,
        default=0.0,
        help="chaos: per-arrival probability that an open server crashes",
    )
    p.add_argument(
        "--decision-deadline-ms",
        type=float,
        default=None,
        help="per-decision latency budget; overruns count as policy failures",
    )
    p.add_argument(
        "--breaker-threshold",
        type=float,
        default=0.5,
        help="failure fraction over the breaker window that trips DEGRADED mode",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=None,
        help="route arrivals by game signature across N independent broker "
        "shards (omit for the classic single-broker path; see repro.sharding)",
    )
    p.add_argument(
        "--rebalance-interval",
        type=int,
        default=None,
        help="with --shards: arrivals between occupancy rebalance checks; "
        "hot shards migrate sessions to cold ones (omit to disable migration)",
    )
    p.add_argument(
        "--shard-crash-rate",
        type=float,
        default=0.0,
        help="chaos: per-shard per-chunk probability that a whole shard "
        "drops out of the serving tier (with --shards; see repro.sharding)",
    )
    p.add_argument(
        "--shard-flake-rate",
        type=float,
        default=0.0,
        help="chaos: per-shard per-chunk probability of one failed health "
        "probe that the next probe survives (with --shards)",
    )
    p.add_argument(
        "--shard-outage-window",
        action="append",
        default=[],
        metavar="START:DURATION:RATE[@SHARD]",
        help="chaos: extra shard-outage probability while the window is "
        "open, in trace minutes (repeatable; with --shards)",
    )
    p.add_argument(
        "--shard-outage-chunks",
        type=int,
        default=4,
        help="chaos: chunk barriers a shard stays down once an outage fires",
    )
    p.add_argument(
        "--min-healthy-shards",
        type=int,
        default=1,
        help="healthy-shard floor below which routing falls back to "
        "least-loaded (degraded mode) instead of the hash ring",
    )
    p.add_argument(
        "--slo-fps",
        default=None,
        metavar="FPS",
        help="enable the QoS ledger: book ground-truth FPS per session "
        "against this SLO target and emit a qos report section "
        "(calibration, burn rate, per-game/per-shard breakdowns)",
    )
    p.add_argument(
        "--qos-budget",
        default=None,
        metavar="FRACTION",
        help="with --slo-fps: error budget as a fraction of each session's "
        "duration allowed below target before it counts as a breach "
        "(default 0.05)",
    )
    p.add_argument(
        "--degrade-ladder",
        default=None,
        metavar="RES[,RES...]",
        help="arm the resolution-downscale actuator: comma-separated rungs "
        "(named presets like 1080p,900p,720p or WxH) retried in order "
        "before a placement opens a new server",
    )
    p.add_argument(
        "--no-degrade",
        action="store_true",
        help="disarm the downscale actuator even when --degrade-ladder is "
        "present (pins the pre-actuator byte-identical behavior)",
    )
    p.add_argument(
        "--restore-interval",
        type=int,
        default=None,
        metavar="N",
        help="with --degrade-ladder: re-promote degraded sessions every N "
        "arrivals when freed capacity allows (default 256; sharded runs "
        "restore at chunk barriers instead)",
    )
    p.add_argument("--out", help="write the JSON report here instead of stdout")
    p.add_argument(
        "--trace-out",
        help="record per-request spans and write the trace file here "
        "(with --shards: plus one .shardN sibling file per shard)",
    )
    p.add_argument(
        "--trace-format",
        choices=["chrome", "jsonl"],
        default="chrome",
        help="trace file format: Chrome trace-event JSON (Perfetto-loadable) "
        "or one span per JSONL line",
    )
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "metrics", help="summarize, diff, merge and export snapshot/trace files"
    )
    msub = p.add_subparsers(dest="metrics_command", required=True)

    m = msub.add_parser("summary", help="human-readable snapshot summary")
    m.add_argument("files", nargs="+", help="snapshot/report JSON files")
    m.set_defaults(fn=_cmd_metrics_summary)

    m = msub.add_parser("diff", help="compare two runs, gate on regressions")
    m.add_argument("old", help="baseline snapshot/report JSON")
    m.add_argument("new", help="candidate snapshot/report JSON")
    m.add_argument(
        "--fail-on",
        action="append",
        default=[],
        metavar="[metric.]stat:+N%",
        help="exit nonzero when the stat grew by more than N%% "
        "(e.g. p99_s:+20%%; repeatable)",
    )
    m.add_argument(
        "--all", action="store_true", help="show unchanged metrics too"
    )
    m.set_defaults(fn=_cmd_metrics_diff)

    m = msub.add_parser("merge", help="combine snapshots bucket-wise")
    m.add_argument("files", nargs="+", help="snapshot/report JSON files")
    m.add_argument("--out", help="write merged snapshot here instead of stdout")
    m.set_defaults(fn=_cmd_metrics_merge)

    m = msub.add_parser("export", help="convert to exporter formats")
    m.add_argument("file", help="snapshot/report JSON, or a JSONL span trace")
    m.add_argument(
        "--format",
        required=True,
        choices=["prometheus", "chrome-trace"],
        help="prometheus text exposition (from a snapshot) or Chrome "
        "trace-event JSON (from a JSONL span trace)",
    )
    m.add_argument("--out", help="write here instead of stdout")
    m.set_defaults(fn=_cmd_metrics_export)

    p = sub.add_parser(
        "slo", help="summarize and diff QoS ledger sections from serve reports"
    )
    ssub = p.add_subparsers(dest="slo_command", required=True)

    s = ssub.add_parser("summary", help="human-readable qos section summary")
    s.add_argument(
        "files", nargs="+", help="serve reports (run with --slo-fps) or snapshots"
    )
    s.set_defaults(fn=_cmd_slo_summary)

    s = ssub.add_parser("diff", help="compare two qos sections, gate on drift")
    s.add_argument("old", help="baseline serve report/snapshot with a qos section")
    s.add_argument("new", help="candidate serve report/snapshot with a qos section")
    s.add_argument(
        "--fail-on",
        action="append",
        default=[],
        metavar="[metric.]stat:+N%",
        help="exit nonzero when the stat grew by more than N%% "
        "(e.g. fps_residual_mae:+10%%; repeatable)",
    )
    s.add_argument(
        "--all", action="store_true", help="show unchanged stats too"
    )
    s.set_defaults(fn=_cmd_slo_diff)

    p = sub.add_parser("experiments", help="run the evaluation harness")
    p.add_argument("--extensions", action="store_true", help="include extensions")
    p.add_argument("--out", help="write results markdown here")
    p.set_defaults(fn=_cmd_experiments)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point.

    All user-input failures — unknown games or policies, malformed
    colocations or trace configs, missing artifact files, corrupt or
    truncated JSON bundles — exit nonzero with a one-line message instead
    of a traceback.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (KeyError, ValueError, OSError) as exc:
        # ValueError covers SerializationError and json.JSONDecodeError;
        # OSError covers missing/unreadable artifact paths.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
