"""Session QoS ledger: ground-truth FPS accounting and SLO burn tracking.

GAugur's whole premise is that the interference model's FPS predictions
are trustworthy enough to pack sessions aggressively.  Everything the
serving stack reports, though, is *about the decision path* — latencies,
fallbacks, breaker trips — not about whether admitted sessions actually
received the FPS the predictor promised.  The :class:`QoSLedger` closes
that loop:

* it observes every fleet mutation (placements, departures, crash and
  migration evictions) through the :class:`repro.placement.FleetState`
  observer hooks,
* recomputes **ground-truth FPS** for every session in each affected
  colocation group with the simulator's interference model
  (:func:`repro.simulator.measurement.run_colocation` — the same oracle
  the offline simulator scores against), and
* fixes each session's **promise** at admission time: the FPS the
  predictor's regression model claimed the session would get in its
  post-placement group.

When a session's record closes (departure, eviction, or end-of-run
finalization) the ledger books exactly one calibration sample — the
residual between promise and the session's time-weighted mean actual
FPS — plus its SLO accounting: minutes spent below the FPS target, an
error-budget burn rate, and threshold events when the budget is
exhausted mid-flight.

Everything is recorded into merge-safe :class:`repro.obs.metrics`
primitives (histograms and counters, never derived gauges), labeled per
game and genre, so the sharded tier's existing ``label_snapshot`` +
``merge_snapshots`` machinery yields an exact fleet-wide calibration
picture: MAE, signed bias and p95 absolute error computed from *merged*
histograms equal what one giant ledger would have reported.
:func:`build_qos_section` is the pure snapshot→report half: it derives
the ``qos`` section of a :class:`~repro.serving.broker.ServingReport`
from any (possibly merged) telemetry snapshot.

The conservation invariant the CI smoke jobs gate on is structural:
every ``fleet_placed`` opens exactly one record and every close path
books exactly one sample, so ``qos_sessions_opened ==
qos_sessions_closed`` after :meth:`QoSLedger.finalize` — at any scale,
under any chaos.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs.metrics import LatencyHistogram, Telemetry
from repro.obs.tracing import NOOP_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.placement.fleet import Session

__all__ = [
    "FPS_RESIDUAL_BUCKETS",
    "QOS_MINUTES_BUCKETS",
    "BURN_RATE_BUCKETS",
    "QoSLedger",
    "build_qos_section",
    "extract_qos",
    "flatten_qos",
    "diff_qos",
    "summarize_qos",
]

#: Absolute FPS-residual bucket edges.  The default latency buckets top
#: out at 1.0 (seconds); residuals live on an FPS scale, so the edges
#: span sub-frame noise (0.25 FPS) up to a full solo-FPS worth of error.
FPS_RESIDUAL_BUCKETS: tuple[float, ...] = (
    0.25, 0.5, 1.0, 2.0, 3.0, 5.0, 8.0, 12.0, 20.0, 30.0, 50.0, 80.0, 120.0,
)

#: Bucket edges for per-session minutes (session time and violation
#: time).  Traces draw durations around a 30-minute mean.
QOS_MINUTES_BUCKETS: tuple[float, ...] = (
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 30.0, 45.0, 60.0, 90.0, 120.0, 180.0, 360.0,
)

#: Bucket edges for the per-session SLO burn rate
#: (violation fraction / budget fraction; 1.0 = budget exactly spent).
BURN_RATE_BUCKETS: tuple[float, ...] = (
    0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 5.0, 10.0, 20.0,
)


@dataclass
class _OpenRecord:
    """One session's stint on one server, from placement to close."""

    member_id: int
    server_id: int
    session: "Session"
    entry: tuple
    genre: str
    opened_at: float
    promised_fps: float = 0.0
    current_fps: float = 0.0
    last_time: float = 0.0
    minutes: float = 0.0
    fps_minutes: float = 0.0
    violation_minutes: float = 0.0
    burned: bool = field(default=False)
    # Resolution-actuator state: whether the session is *currently*
    # served below its request, whether it ever was during this stint,
    # and how long — the `qos_minutes_degraded` integrand.
    degraded: bool = False
    was_degraded: bool = False
    degraded_minutes: float = 0.0


class QoSLedger:
    """Ground-truth FPS accounting over live fleet mutations.

    Attach one ledger per fleet: pass it as ``FleetState(observer=...)``
    (the broker and the offline driver both wire this when given a
    ledger) and drive its clock with :meth:`advance` before each batch
    of mutations.  The ledger never mutates the fleet; it mirrors
    membership from the observer callbacks.

    ``slo_fps`` is the per-session FPS target; ``budget_fraction`` the
    tolerated fraction of a session's lifetime below it (the SLO error
    budget — 0.05 means 5% of the session may run degraded before the
    budget burns).  Ground truth uses ``server``/``config`` exactly as
    :func:`repro.placement.offline.simulate_sessions` does, so a ledger
    riding the offline simulator reproduces its violation-minutes
    accounting.
    """

    def __init__(
        self,
        catalog,
        predictor,
        *,
        slo_fps: float,
        budget_fraction: float = 0.05,
        server=None,
        config=None,
        telemetry: Telemetry | None = None,
        tracer: Tracer | None = None,
    ):
        if not slo_fps > 0:
            raise ValueError(f"slo_fps must be positive, got {slo_fps}")
        if not 0.0 < budget_fraction <= 1.0:
            raise ValueError(
                f"budget_fraction must be in (0, 1], got {budget_fraction}"
            )
        if server is None:
            from repro.hardware.server import DEFAULT_SERVER

            server = DEFAULT_SERVER
        if config is None:
            from repro.simulator.measurement import MeasurementConfig

            config = MeasurementConfig()
        self.catalog = catalog
        self.predictor = predictor
        self.slo_fps = float(slo_fps)
        self.budget_fraction = float(budget_fraction)
        self.server = server
        self.config = config
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self._measured: dict[tuple, tuple[float, ...]] = {}
        self._promised: dict[tuple, tuple[float, ...]] = {}
        self._genres: dict[str, str] = {}
        self.reset()

    # -- lifecycle ------------------------------------------------------

    def reset(self) -> "QoSLedger":
        """Clear per-run state (open records and the clock), keep caches."""
        self._servers: dict[int, dict[int, _OpenRecord]] = {}
        self._now = 0.0
        self._evict_reason = "evicted"
        self.opened = 0
        self.closed = 0
        return self

    def instrument(self, *, telemetry: Telemetry | None = None,
                   tracer: Tracer | None = None) -> None:
        """Redirect output to a caller's telemetry registry and tracer.

        The broker calls this so qos metrics land in the same snapshot
        as the serving metrics (and therefore in the same Prometheus
        exposition and the same sharded merge).
        """
        if telemetry is not None:
            self.telemetry = telemetry
        if tracer is not None:
            self.tracer = tracer

    def advance(self, now: float) -> None:
        """Move the ledger clock forward (monotonic; never rewinds)."""
        if now > self._now:
            self._now = now

    @property
    def open_records(self) -> int:
        """Records placed but not yet closed."""
        return self.opened - self.closed

    # -- FleetState observer hooks --------------------------------------

    def fleet_placed(self, server_id: int, member_id: int, session: "Session") -> None:
        """A session was placed (admission, readmission, or migration-in)."""
        now = self._now
        members = self._servers.setdefault(server_id, {})
        self._accrue(members.values(), now)
        degraded = bool(getattr(session, "degraded", False))
        record = _OpenRecord(
            member_id=member_id,
            server_id=server_id,
            session=session,
            entry=self._entry(session),
            genre=self._genre(session.game),
            opened_at=now,
            last_time=now,
            degraded=degraded,
            was_degraded=degraded,
        )
        members[member_id] = record
        self._recompute(server_id, members, op="place")
        record.promised_fps = self._promise_for(members, record)
        self.opened += 1
        t = self.telemetry
        t.counter("qos_sessions_opened").inc()
        t.gauge("qos_open_sessions").set(self.open_records)

    def fleet_departed(
        self, server_id: int, member_id: int, _session: "Session", when: float
    ) -> None:
        """A session departed normally at ``when``."""
        members = self._servers.get(server_id)
        if members is None or member_id not in members:
            return
        self._accrue(members.values(), when)
        record = members.pop(member_id)
        self._close(record, reason="departed")
        if members:
            self._recompute(server_id, members, op="depart")
        else:
            del self._servers[server_id]

    def fleet_evicted(self, server_id: int, members: list) -> None:
        """A whole server was evicted (crash or planned migration)."""
        open_members = self._servers.pop(server_id, None)
        if open_members is None:
            return
        now = self._now
        self._accrue(open_members.values(), now)
        reason = self._evict_reason
        self._evict_reason = "evicted"
        for member_id, _ in members:
            record = open_members.pop(member_id, None)
            if record is not None:
                self._close(record, reason=reason)
        # Anything the fleet did not report (should not happen) still
        # closes, so conservation cannot silently break.
        for member_id in sorted(open_members):
            self._close(open_members[member_id], reason=reason)

    def fleet_resolution_changed(
        self, server_id: int, member_id: int, _old: "Session", new: "Session"
    ) -> None:
        """A member's served resolution changed in place (restore loop).

        Time up to now accrues at the old resolution's measured FPS,
        then the whole group's ground truth is refreshed for the new
        composition.  The changed member gets a fresh promise — like a
        newly placed record, its promise reflects the resolution it is
        *now* served at (its neighbours' promises stay fixed at their own
        admission, exactly as on :meth:`fleet_placed`).  The change is
        logged as a ``resolution_change`` event: together with the
        placement records' degrade fields this is the per-session
        resolution timeline.
        """
        members = self._servers.get(server_id)
        if members is None or member_id not in members:
            return
        now = self._now
        self._accrue(members.values(), now)
        record = members[member_id]
        old_resolution = str(record.session.resolution)
        degraded = bool(getattr(new, "degraded", False))
        record.session = new
        record.entry = self._entry(new)
        record.degraded = degraded
        record.was_degraded = record.was_degraded or degraded
        self._recompute(server_id, members, op="restore")
        record.promised_fps = self._promise_for(members, record)
        self.telemetry.event(
            "resolution_change",
            time=now,
            server_id=server_id,
            game=new.game,
            old=old_resolution,
            new=str(new.resolution),
        )

    def mark_eviction(self, reason: str) -> None:
        """Label the *next* eviction's close reason (e.g. ``"migrated"``).

        Consumed by the following :meth:`fleet_evicted`; resets to the
        default ``"evicted"`` afterwards.
        """
        self._evict_reason = str(reason)

    def finalize(self) -> None:
        """Close every still-open record at its own departure time.

        Called when the trace ends: remaining sessions run to their
        scheduled departures, shrinking each group in departure order so
        late sessions are credited with the (faster) thinner groups,
        exactly as the fleet would have retired them.
        """
        pending = [
            (record.session.departure, record.member_id, server_id)
            for server_id, members in self._servers.items()
            for record in members.values()
        ]
        heapq.heapify(pending)
        while pending:
            when, member_id, server_id = heapq.heappop(pending)
            members = self._servers.get(server_id)
            if members is None or member_id not in members:
                continue
            self._accrue(members.values(), when)
            record = members.pop(member_id)
            self._close(record, reason="departed")
            if members:
                self._recompute(server_id, members, op="finalize")
            else:
                del self._servers[server_id]
        self.telemetry.gauge("qos_open_sessions").set(self.open_records)

    # -- report ---------------------------------------------------------

    def section(self, snapshot: dict | None = None) -> dict:
        """The ``qos`` report section for this ledger's telemetry."""
        if snapshot is None:
            snapshot = self.telemetry.snapshot()
        built = build_qos_section(
            snapshot, slo_fps=self.slo_fps, budget_fraction=self.budget_fraction
        )
        return built if built is not None else {}

    # -- internals ------------------------------------------------------

    def _entry(self, session: "Session") -> tuple:
        from repro.placement.signature import entry_of

        return entry_of(session)

    def _genre(self, game: str) -> str:
        genre = self._genres.get(game)
        if genre is None:
            spec = self.catalog.get(game)
            raw = getattr(spec, "genre", None)
            genre = str(getattr(raw, "value", raw)) if raw is not None else "unknown"
            self._genres[game] = genre
        return genre

    def _accrue(self, records, until: float) -> None:
        """Advance every record's integrals to ``until`` at current FPS."""
        for record in records:
            dt = until - record.last_time
            if dt <= 0:
                continue
            record.last_time = until
            record.minutes += dt
            record.fps_minutes += dt * record.current_fps
            if record.degraded:
                record.degraded_minutes += dt
            if record.current_fps < self.slo_fps:
                record.violation_minutes += dt
                if not record.burned:
                    budget = self.budget_fraction * record.session.duration
                    if record.violation_minutes > budget:
                        record.burned = True
                        self._burn_event(record, until)

    def _burn_event(self, record: _OpenRecord, when: float) -> None:
        t = self.telemetry
        t.counter("slo_burn_events").inc()
        t.counter("slo_burn_events", game=record.session.game).inc()
        t.counter("slo_burn_events", genre=record.genre).inc()
        t.event(
            "slo_burn",
            time=when,
            game=record.session.game,
            server_id=record.server_id,
            violation_minutes=record.violation_minutes,
            budget_minutes=self.budget_fraction * record.session.duration,
        )
        self.tracer.instant(
            "slo_burn", game=record.session.game, server_id=record.server_id
        )

    def _group_signature(self, members) -> tuple[tuple, ...]:
        """Canonical signature of a live group, slot-aligned with members.

        Members sort by (entry, member_id): identical entries (same game
        and resolution colocated twice) map onto the measurement's slots
        in admission order, so per-slot simulator noise lands on a
        deterministic session.
        """
        ordered = sorted(members, key=lambda r: (r.entry, r.member_id))
        return tuple(r.entry for r in ordered), ordered

    def _recompute(self, server_id: int, members: dict, *, op: str) -> None:
        """Refresh every member's current ground-truth FPS for the group."""
        sig, ordered = self._group_signature(members.values())
        cached = sig in self._measured
        with self.tracer.span(
            "qos", op=op, server_id=server_id, group=len(ordered), cached=cached
        ):
            fps = self._measure(sig)
        for record, value in zip(ordered, fps):
            record.current_fps = value

    def _measure(self, sig: tuple) -> tuple[float, ...]:
        fps = self._measured.get(sig)
        if fps is None:
            from repro.core.training import ColocationSpec
            from repro.simulator.measurement import run_colocation

            result = run_colocation(
                ColocationSpec(sig).instances(self.catalog),
                server=self.server,
                config=self.config,
            )
            fps = tuple(float(f) for f in result.fps)
            self._measured[sig] = fps
            self.telemetry.counter("qos_measurements").inc()
        return fps

    def _promise_for(self, members: dict, record: _OpenRecord) -> float:
        """The predictor's FPS claim for ``record`` in its current group."""
        sig, ordered = self._group_signature(members.values())
        promised = self._promised.get(sig)
        if promised is None:
            from repro.core.training import ColocationSpec

            predicted = self.predictor.predict_fps(ColocationSpec(sig))
            promised = tuple(float(f) for f in predicted)
            self._promised[sig] = promised
            self.telemetry.counter("qos_predictions").inc()
        slot = next(
            i for i, r in enumerate(ordered) if r.member_id == record.member_id
        )
        return promised[slot]

    def _close(self, record: _OpenRecord, *, reason: str) -> None:
        """Book the record's single calibration + SLO sample."""
        minutes = record.minutes
        actual = record.fps_minutes / minutes if minutes > 0 else record.current_fps
        residual = record.promised_fps - actual
        game = record.session.game
        genre = record.genre
        t = self.telemetry
        name = (
            "fps_residual_overpredict" if residual >= 0 else "fps_residual_underpredict"
        )
        for labels in ({}, {"game": game}, {"genre": genre}):
            t.histogram("fps_residual_abs", FPS_RESIDUAL_BUCKETS, **labels).observe(
                abs(residual)
            )
            t.histogram(name, FPS_RESIDUAL_BUCKETS, **labels).observe(abs(residual))
            t.histogram(
                "qos_session_minutes", QOS_MINUTES_BUCKETS, **labels
            ).observe(minutes)
            t.histogram(
                "qos_violation_minutes", QOS_MINUTES_BUCKETS, **labels
            ).observe(record.violation_minutes)
            if record.was_degraded:
                # Instrument is created lazily on first degraded close,
                # so degrade-disabled runs keep their snapshots
                # byte-identical.
                t.histogram(
                    "qos_minutes_degraded", QOS_MINUTES_BUCKETS, **labels
                ).observe(record.degraded_minutes)
        violation_fraction = record.violation_minutes / minutes if minutes > 0 else 0.0
        burn_rate = violation_fraction / self.budget_fraction
        t.histogram("slo_burn_rate", BURN_RATE_BUCKETS).observe(burn_rate)
        if violation_fraction > self.budget_fraction:
            t.counter("slo_breaches").inc()
            t.counter("slo_breaches", game=game).inc()
            t.counter("slo_breaches", genre=genre).inc()
        t.counter("qos_sessions_closed").inc()
        t.counter("qos_sessions_closed", reason=reason).inc()
        self.closed += 1
        t.gauge("qos_open_sessions").set(self.open_records)


# ----------------------------------------------------------------------
# Snapshot -> qos report section.  Pure functions over plain dicts, so
# they apply equally to live telemetry, loaded JSON files, and merged
# multi-shard snapshots.


_QOS_HISTOGRAMS = (
    "fps_residual_abs",
    "fps_residual_overpredict",
    "fps_residual_underpredict",
    "qos_session_minutes",
    "qos_violation_minutes",
    "qos_minutes_degraded",
)


def _hist(data: dict | None, name: str) -> LatencyHistogram | None:
    return LatencyHistogram.from_dict(name, data) if data else None


def _calibration_stats(abs_h, over_h, under_h) -> dict:
    n = abs_h.count if abs_h is not None else 0
    over_total = over_h.total if over_h is not None else 0.0
    under_total = under_h.total if under_h is not None else 0.0
    return {
        "samples": n,
        "fps_residual_mae": abs_h.mean if abs_h is not None else 0.0,
        "fps_residual_bias": (over_total - under_total) / n if n else 0.0,
        "fps_residual_p95": abs_h.quantile(0.95) if n else 0.0,
        "overpredictions": over_h.count if over_h is not None else 0,
        "underpredictions": under_h.count if under_h is not None else 0,
    }


def _slo_stats(sess_h, viol_h, breaches: int) -> dict:
    session_minutes = sess_h.total if sess_h is not None else 0.0
    violation_minutes = viol_h.total if viol_h is not None else 0.0
    return {
        "session_minutes": session_minutes,
        "violation_minutes": violation_minutes,
        "violation_fraction": (
            violation_minutes / session_minutes if session_minutes else 0.0
        ),
        "breaches": breaches,
    }


def _labeled_groups(snapshot: dict, label: str, *, forbid: tuple[str, ...]) -> dict:
    """Group labeled qos children by ``labels[label]``.

    Children carrying any ``forbid`` label are skipped (a per-shard
    group must not double-count the per-game children that also carry a
    ``shard`` label); extra bookkeeping labels like ``health`` are
    tolerated and merged across.
    """
    labeled = snapshot.get("labeled", {})
    groups: dict[str, dict] = {}

    def bucket(value: str) -> dict:
        return groups.setdefault(value, {"histograms": {}, "counters": {}})

    for name in _QOS_HISTOGRAMS:
        for entry in labeled.get("histograms", {}).get(name, ()):
            labels = entry.get("labels", {})
            if label not in labels or any(f in labels for f in forbid):
                continue
            slot = bucket(labels[label])["histograms"]
            hist = LatencyHistogram.from_dict(name, entry)
            if name in slot:
                slot[name].merge(hist)
            else:
                slot[name] = hist
    for name in ("slo_breaches", "qos_sessions_opened", "qos_sessions_closed",
                 "slo_burn_events"):
        for entry in labeled.get("counters", {}).get(name, ()):
            labels = entry.get("labels", {})
            if label not in labels or any(f in labels for f in forbid):
                continue
            counters = bucket(labels[label])["counters"]
            counters[name] = counters.get(name, 0) + entry.get("value", 0)
    return groups


def _group_section(groups: dict) -> dict:
    out = {}
    for value in sorted(groups):
        hists = groups[value]["histograms"]
        counters = groups[value]["counters"]
        abs_h = hists.get("fps_residual_abs")
        stats = _calibration_stats(
            abs_h,
            hists.get("fps_residual_overpredict"),
            hists.get("fps_residual_underpredict"),
        )
        stats.update(
            _slo_stats(
                hists.get("qos_session_minutes"),
                hists.get("qos_violation_minutes"),
                counters.get("slo_breaches", 0),
            )
        )
        stats["burn_events"] = counters.get("slo_burn_events", 0)
        degraded_h = hists.get("qos_minutes_degraded")
        if degraded_h is not None:
            # Present only when the downscale actuator degraded sessions
            # in this group — absent keys keep old reports byte-stable.
            stats["degraded_sessions"] = degraded_h.count
            stats["degraded_minutes"] = degraded_h.total
        if "qos_sessions_opened" in counters:
            # Only shard groups carry the ledger lifecycle counters (they
            # are unlabeled per broker and gain the shard label on merge);
            # surface per-shard conservation alongside the stats.
            stats["opened"] = counters.get("qos_sessions_opened", 0)
            stats["closed"] = counters.get("qos_sessions_closed", 0)
        out[value] = stats
    return out


def build_qos_section(
    snapshot: dict,
    *,
    slo_fps: float | None = None,
    budget_fraction: float | None = None,
) -> dict | None:
    """Derive the ``qos`` report section from a telemetry snapshot.

    Works on a single broker's snapshot or on the sharded tier's merged
    snapshot: fleet-wide stats come from the top-level histograms, and
    the per-game / per-genre / per-shard breakdowns from the labeled
    children (exact under ``merge_snapshots``, because every stat is
    derived from histogram totals and counts, never re-averaged).
    Returns ``None`` when the snapshot carries no qos instruments (the
    ledger was not enabled).
    """
    counters = snapshot.get("counters", {})
    hists = snapshot.get("histograms", {})
    if "qos_sessions_opened" not in counters and "fps_residual_abs" not in hists:
        return None
    opened = int(counters.get("qos_sessions_opened", 0))
    closed = int(counters.get("qos_sessions_closed", 0))
    calibration = _calibration_stats(
        _hist(hists.get("fps_residual_abs"), "fps_residual_abs"),
        _hist(hists.get("fps_residual_overpredict"), "fps_residual_overpredict"),
        _hist(hists.get("fps_residual_underpredict"), "fps_residual_underpredict"),
    )
    slo = {}
    if slo_fps is not None:
        slo["target_fps"] = float(slo_fps)
    if budget_fraction is not None:
        slo["budget_fraction"] = float(budget_fraction)
    slo.update(
        _slo_stats(
            _hist(hists.get("qos_session_minutes"), "qos_session_minutes"),
            _hist(hists.get("qos_violation_minutes"), "qos_violation_minutes"),
            int(counters.get("slo_breaches", 0)),
        )
    )
    slo["burn_events"] = int(counters.get("slo_burn_events", 0))
    burn_h = _hist(hists.get("slo_burn_rate"), "slo_burn_rate")
    slo["burn_rate_p50"] = burn_h.quantile(0.5) if burn_h is not None else 0.0
    slo["burn_rate_p99"] = burn_h.quantile(0.99) if burn_h is not None else 0.0
    close_reasons: dict[str, int] = {}
    for entry in snapshot.get("labeled", {}).get("counters", {}).get(
        "qos_sessions_closed", ()
    ):
        labels = entry.get("labels", {})
        reason = labels.get("reason")
        if reason is not None:
            close_reasons[reason] = close_reasons.get(reason, 0) + entry.get("value", 0)
    section = {
        "sessions": {
            "opened": opened,
            "closed": closed,
            "conservation_errors": abs(opened - closed),
            "close_reasons": {k: close_reasons[k] for k in sorted(close_reasons)},
            "measurements": int(counters.get("qos_measurements", 0)),
            "predictions": int(counters.get("qos_predictions", 0)),
        },
        "calibration": calibration,
        "slo": slo,
        "per_game": _group_section(
            _labeled_groups(snapshot, "game", forbid=("genre", "reason"))
        ),
        "per_genre": _group_section(
            _labeled_groups(snapshot, "genre", forbid=("game", "reason"))
        ),
        "per_shard": _group_section(
            _labeled_groups(snapshot, "shard", forbid=("game", "genre", "reason"))
        ),
    }
    degraded_h = _hist(hists.get("qos_minutes_degraded"), "qos_minutes_degraded")
    if degraded_h is not None:
        # Fleet-wide resolution-actuator accounting; the key exists only
        # when at least one session closed after a degraded stint, so
        # degrade-disabled reports stay byte-identical.
        session_h = _hist(hists.get("qos_session_minutes"), "qos_session_minutes")
        total_minutes = session_h.total if session_h is not None else 0.0
        section["degraded"] = {
            "sessions": degraded_h.count,
            "minutes": degraded_h.total,
            "mean_minutes": degraded_h.mean,
            "minutes_fraction": (
                degraded_h.total / total_minutes if total_minutes else 0.0
            ),
        }
    return section


def extract_qos(payload: dict, source: str = "payload") -> dict:
    """Find (or rebuild) the qos section inside a loaded JSON payload.

    Accepts a full serving report (``qos`` key), a bare qos section, a
    report with only telemetry, or a bare telemetry snapshot — the same
    flexibility ``repro metrics`` affords with :func:`load_snapshot`.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"{source}: expected a JSON object")
    qos = payload.get("qos")
    if isinstance(qos, dict) and qos:
        return qos
    if "calibration" in payload and "sessions" in payload:
        return payload
    snapshot = payload.get("telemetry", payload)
    built = build_qos_section(snapshot) if isinstance(snapshot, dict) else None
    if built is None:
        raise ValueError(
            f"{source}: no qos section found (was the run started with --slo-fps?)"
        )
    return built


# -- diffing ------------------------------------------------------------

_NUMERIC = (int, float)


def flatten_qos(section: dict) -> dict[tuple[str, str], float]:
    """Flatten a qos section into ``(metric, stat) -> value`` rows.

    ``metric`` is the dotted group path (``calibration``,
    ``per_game.Dota2``, ...), ``stat`` the leaf key — the same shape
    :func:`repro.obs.snapshots.check_regressions` consumes, so
    ``repro slo diff --fail-on fps_residual_mae:+10%`` reuses the
    metrics gate machinery unchanged.
    """
    rows: dict[tuple[str, str], float] = {}

    def emit(metric: str, stats: dict) -> None:
        for stat, value in stats.items():
            if isinstance(value, _NUMERIC) and not isinstance(value, bool):
                rows[(metric, stat)] = float(value)

    for group in ("sessions", "calibration", "slo", "degraded"):
        if isinstance(section.get(group), dict):
            emit(group, section[group])
    reasons = section.get("sessions", {}).get("close_reasons", {})
    if isinstance(reasons, dict):
        emit("sessions.close_reasons", reasons)
    for group in ("per_game", "per_genre", "per_shard"):
        for value, stats in section.get(group, {}).items():
            emit(f"{group}.{value}", stats)
    return rows


def diff_qos(old: dict, new: dict) -> list[dict]:
    """Row-wise diff of two qos sections (union of keys, old-first order)."""
    old_rows = flatten_qos(old)
    new_rows = flatten_qos(new)
    rows = []
    for metric, stat in sorted(set(old_rows) | set(new_rows)):
        old_value = old_rows.get((metric, stat), 0.0)
        new_value = new_rows.get((metric, stat), 0.0)
        if new_value == old_value:
            # Covers inf == inf (overflowed histogram quantiles), where
            # naive subtraction would yield nan and read as a change.
            delta, ratio = 0.0, 1.0
        elif old_value:
            delta = new_value - old_value
            ratio = new_value / old_value
        else:
            delta = new_value - old_value
            ratio = math.inf
        rows.append(
            {
                "metric": metric,
                "stat": stat,
                "old": old_value,
                "new": new_value,
                "delta": delta,
                "ratio": ratio,
            }
        )
    return rows


# -- rendering ----------------------------------------------------------


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def summarize_qos(section: dict, title: str = "qos") -> str:
    """Human-readable multi-line summary of a qos section."""
    lines = [f"== {title} =="]
    sessions = section.get("sessions", {})
    lines.append(
        "sessions: opened={opened} closed={closed} conservation_errors={err}".format(
            opened=sessions.get("opened", 0),
            closed=sessions.get("closed", 0),
            err=sessions.get("conservation_errors", 0),
        )
    )
    reasons = sessions.get("close_reasons", {})
    if reasons:
        pairs = " ".join(f"{k}={reasons[k]}" for k in sorted(reasons))
        lines.append(f"  close reasons: {pairs}")
    calibration = section.get("calibration", {})
    if calibration:
        lines.append(
            "calibration: n={n} mae={mae} bias={bias} p95={p95}".format(
                n=calibration.get("samples", 0),
                mae=_fmt(calibration.get("fps_residual_mae", 0.0)),
                bias=_fmt(calibration.get("fps_residual_bias", 0.0)),
                p95=_fmt(calibration.get("fps_residual_p95", 0.0)),
            )
        )
    slo = section.get("slo", {})
    if slo:
        target = slo.get("target_fps")
        head = f"slo (target {_fmt(target)} fps)" if target is not None else "slo"
        lines.append(
            "{head}: violation_minutes={viol}/{total} ({frac}) "
            "breaches={breaches} burn_events={burns}".format(
                head=head,
                viol=_fmt(slo.get("violation_minutes", 0.0)),
                total=_fmt(slo.get("session_minutes", 0.0)),
                frac=_fmt(slo.get("violation_fraction", 0.0)),
                breaches=slo.get("breaches", 0),
                burns=slo.get("burn_events", 0),
            )
        )
    degraded = section.get("degraded", {})
    if degraded:
        lines.append(
            "degraded: sessions={n} minutes={minutes} "
            "fraction={frac}".format(
                n=degraded.get("sessions", 0),
                minutes=_fmt(degraded.get("minutes", 0.0)),
                frac=_fmt(degraded.get("minutes_fraction", 0.0)),
            )
        )
    for group, header in (
        ("per_game", "per game"),
        ("per_genre", "per genre"),
        ("per_shard", "per shard"),
    ):
        entries = section.get(group, {})
        if not entries:
            continue
        lines.append(f"{header}:")
        for value in sorted(entries):
            stats = entries[value]
            lines.append(
                "  {value}: n={n} mae={mae} bias={bias} "
                "violation={viol} breaches={breaches}".format(
                    value=value,
                    n=stats.get("samples", 0),
                    mae=_fmt(stats.get("fps_residual_mae", 0.0)),
                    bias=_fmt(stats.get("fps_residual_bias", 0.0)),
                    viol=_fmt(stats.get("violation_fraction", 0.0)),
                    breaches=stats.get("breaches", 0),
                )
            )
    return "\n".join(lines)
