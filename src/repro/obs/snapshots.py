"""Snapshot file tooling behind the ``repro metrics`` CLI.

Loads telemetry snapshots (bare :meth:`Telemetry.snapshot` dicts, full
``repro serve`` reports, or benchmark result files — anything with a
recognizable snapshot inside), summarizes them for humans, merges them
(:func:`repro.obs.metrics.merge_snapshots`), and diffs two runs
with configurable regression thresholds so a perf gate is one CLI call.

Also home to :func:`validate_prometheus`, a tiny line-format checker for
the text exposition output — enough to keep the exporter parseable in CI
without depending on a real Prometheus client.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass

from repro.obs.metrics import merge_all, merge_snapshots, snapshot_to_prometheus

__all__ = [
    "load_snapshot",
    "summarize_snapshot",
    "diff_snapshots",
    "FailSpec",
    "parse_fail_spec",
    "check_regressions",
    "render_diff",
    "validate_prometheus",
    "merge_snapshots",
    "merge_all",
    "snapshot_to_prometheus",
]

#: Histogram stats a diff row reports and a fail spec may reference.
_HIST_STATS = ("count", "mean_s", "p50_s", "p99_s", "total_s")


def load_snapshot(path) -> dict:
    """Load a telemetry snapshot from ``path``, unwrapping known containers.

    Accepts a bare snapshot (has ``counters``/``histograms``), a ``repro
    serve`` report (snapshot under ``telemetry``), or a benchmark result
    file with the same layout.  Raises ``ValueError`` naming the path for
    anything else.
    """
    with open(path) as fh:
        try:
            data = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON ({exc})") from exc
    if isinstance(data, dict) and isinstance(data.get("telemetry"), dict):
        data = data["telemetry"]
    if not isinstance(data, dict) or (
        "counters" not in data and "histograms" not in data
    ):
        raise ValueError(
            f"{path}: no telemetry snapshot found (expected 'counters'/"
            "'histograms' keys, or a report with a 'telemetry' section)"
        )
    return data


def _fmt_seconds(value: float) -> str:
    if value == math.inf:
        return "inf"
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.0f}us"


def summarize_snapshot(snapshot: dict, title: str = "") -> str:
    """Human-readable table of one snapshot's counters/gauges/histograms."""
    lines: list[str] = []
    if title:
        lines.append(f"== {title}")
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name:32s} {value:>12}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name, value in sorted(gauges.items()):
            lines.append(f"  {name:32s} {value:>12g}")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append(
            f"  {'histogram':32s} {'count':>8s} {'mean':>10s} "
            f"{'p50':>10s} {'p99':>10s} {'overflow':>9s}"
        )
        for name, data in sorted(histograms.items()):
            lines.append(
                f"  {name:32s} {data['count']:>8} "
                f"{_fmt_seconds(data['mean_s']):>10s} "
                f"{_fmt_seconds(data['p50_s']):>10s} "
                f"{_fmt_seconds(data['p99_s']):>10s} "
                f"{data.get('overflow_count', 0):>9}"
            )
    dropped = snapshot.get("events_dropped", 0)
    events = snapshot.get("events", [])
    lines.append(f"events: {len(events)} retained, {dropped} dropped")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Diffing


def diff_snapshots(old: dict, new: dict) -> list[dict]:
    """Per-metric deltas between two snapshots.

    Returns rows ``{"metric", "stat", "old", "new", "delta", "ratio"}``
    — one per counter and one per (histogram, stat) pair, where ``ratio``
    is ``new / old`` (``inf`` for growth from zero, 1.0 for 0 -> 0).
    """
    rows: list[dict] = []

    def ratio(old_v: float, new_v: float) -> float:
        if old_v == 0:
            return 1.0 if new_v == 0 else math.inf
        return new_v / old_v

    old_counters = old.get("counters", {})
    new_counters = new.get("counters", {})
    for name in sorted(set(old_counters) | set(new_counters)):
        o, n = old_counters.get(name, 0), new_counters.get(name, 0)
        rows.append(
            {
                "metric": name,
                "stat": "value",
                "old": o,
                "new": n,
                "delta": n - o,
                "ratio": ratio(o, n),
            }
        )
    old_hists = old.get("histograms", {})
    new_hists = new.get("histograms", {})
    for name in sorted(set(old_hists) | set(new_hists)):
        o_hist, n_hist = old_hists.get(name, {}), new_hists.get(name, {})
        for stat in _HIST_STATS:
            o = float(o_hist.get(stat, 0.0))
            n = float(n_hist.get(stat, 0.0))
            rows.append(
                {
                    "metric": name,
                    "stat": stat,
                    "old": o,
                    "new": n,
                    "delta": n - o,
                    "ratio": ratio(o, n),
                }
            )
    return rows


@dataclass(frozen=True)
class FailSpec:
    """One ``--fail-on`` threshold: which stat may grow by how much.

    ``metric=None`` applies the spec to every metric exposing ``stat``
    (e.g. ``p99_s:+20%`` gates the p99 of every histogram); naming a
    metric (``decision_latency_s.p99_s:+20%``) narrows it to one.
    """

    stat: str
    max_increase: float  # fractional: 0.2 == +20%
    metric: str | None = None

    def describe(self) -> str:
        """The spec in its CLI syntax."""
        target = f"{self.metric}.{self.stat}" if self.metric else self.stat
        return f"{target}:+{self.max_increase * 100:g}%"


_FAIL_SPEC_RE = re.compile(
    r"^(?:(?P<metric>[\w.]+)\.)?(?P<stat>\w+):\+(?P<pct>\d+(?:\.\d+)?)%$"
)


def parse_fail_spec(text: str) -> FailSpec:
    """Parse ``[metric.]stat:+N%`` (e.g. ``p99_s:+20%``) into a spec."""
    match = _FAIL_SPEC_RE.match(text.strip())
    if not match:
        raise ValueError(
            f"bad --fail-on spec {text!r} (expected [metric.]stat:+N%, "
            "e.g. p99_s:+20% or decision_latency_s.p99_s:+10%)"
        )
    return FailSpec(
        stat=match.group("stat"),
        max_increase=float(match.group("pct")) / 100.0,
        metric=match.group("metric"),
    )


def check_regressions(rows: list[dict], specs: list[FailSpec]) -> list[dict]:
    """Diff rows breaching any spec's allowed increase.

    A row matches a spec when the stat names agree (and the metric name,
    when the spec has one); it breaches when ``new`` exceeds ``old`` by
    more than the allowed fraction.  Growth from a zero baseline only
    breaches when the new value is nonzero and the allowance is finite.
    """
    breaches = []
    for row in rows:
        for spec in specs:
            if spec.stat != row["stat"] and spec.stat != row["metric"]:
                continue
            if spec.metric is not None and spec.metric != row["metric"]:
                continue
            old, new = float(row["old"]), float(row["new"])
            limit = old * (1.0 + spec.max_increase)
            if (old == 0 and new > 0) or (old > 0 and new > limit):
                breaches.append({**row, "spec": spec.describe()})
    return breaches


def render_diff(rows: list[dict], *, only_changed: bool = True) -> str:
    """Diff rows as an aligned text table."""
    shown = [r for r in rows if not only_changed or r["delta"] != 0]
    if not shown:
        return "no differences"
    lines = [
        f"{'metric':32s} {'stat':8s} {'old':>12s} {'new':>12s} {'change':>9s}"
    ]
    for row in shown:
        ratio = row["ratio"]
        change = "new" if ratio == math.inf else f"{(ratio - 1.0) * 100:+.1f}%"
        lines.append(
            f"{row['metric']:32s} {row['stat']:8s} "
            f"{row['old']:>12.6g} {row['new']:>12.6g} {change:>9s}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Prometheus exposition checking

_PROM_COMMENT_RE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$")
_PROM_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"  # labels
    r" (?:[+-]?(?:\d+(?:\.\d+)?(?:e[+-]?\d+)?|Inf)|NaN)$"  # value
)


def validate_prometheus(text: str) -> list[str]:
    """Check ``text`` against the exposition line format.

    Returns a list of error strings (empty = valid): every non-empty line
    must be a ``# HELP``/``# TYPE`` comment or a ``name{labels} value``
    sample.  Intentionally small — a format tripwire, not a full parser.
    """
    errors = []
    for i, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if not _PROM_COMMENT_RE.match(line):
                errors.append(f"line {i}: malformed comment: {line!r}")
        elif not _PROM_SAMPLE_RE.match(line):
            errors.append(f"line {i}: malformed sample: {line!r}")
    if text and not text.endswith("\n"):
        errors.append("exposition must end with a newline")
    return errors
