"""Serving telemetry: counters, gauges and fixed-bucket latency histograms.

The broker and admission controller record everything an operator would
scrape from a real dispatcher — request/admission/fallback counts and
per-decision latency distributions — without any external dependency.
Histograms use fixed upper-bound buckets (Prometheus-style ``le`` edges)
so snapshots from different processes are mergeable by bucket-wise
addition: :func:`merge_snapshots` combines two snapshots into exactly the
snapshot one process observing both workloads would have produced.
:meth:`Telemetry.snapshot` returns plain dicts/lists/floats, directly
serializable with :func:`json.dumps`, and
:meth:`Telemetry.to_prometheus` renders the standard text exposition
format for scraping.

Metrics optionally carry **labels**: ``telemetry.counter("decisions",
policy="cm-feasible")`` returns a child counter keyed by the label set,
reported in the snapshot under the ``labeled`` key so the unlabeled
top-level keys stay byte-compatible with older snapshots.
"""

from __future__ import annotations

import math
import time
from collections import deque
from contextlib import contextmanager

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "Telemetry",
    "label_snapshot",
    "merge_snapshots",
    "merge_all",
    "snapshot_to_prometheus",
    "DEFAULT_LATENCY_BUCKETS",
    "MAX_EVENTS",
]

#: Cap on retained events: a misbehaving component (a flapping breaker, a
#: chaos run with extreme rates) must not grow the snapshot without bound.
MAX_EVENTS = 10_000

#: Default latency bucket upper bounds in seconds: 50us .. 1s, log-ish spaced.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    5e-5,
    1e-4,
    2.5e-4,
    5e-4,
    1e-3,
    2.5e-3,
    5e-3,
    1e-2,
    2.5e-2,
    5e-2,
    1e-1,
    2.5e-1,
    5e-1,
    1.0,
)


def _label_key(labels: dict) -> tuple:
    """Canonical hashable form of a label set (sorted, stringified)."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing integer counter."""

    def __init__(self, name: str, labels: dict | None = None):
        self.name = name
        self.labels = {str(k): str(v) for k, v in (labels or {}).items()}
        self._value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be >= 0 — counters never decrease)."""
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {n})")
        self._value += n

    @property
    def value(self) -> int:
        """Current count."""
        return self._value


class Gauge:
    """A value that can move both ways (pool size, live sessions, mode)."""

    def __init__(self, name: str, labels: dict | None = None):
        self.name = name
        self.labels = {str(k): str(v) for k, v in (labels or {}).items()}
        self._value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self._value = float(value)

    def inc(self, n: float = 1.0) -> None:
        """Move the gauge up by ``n``."""
        self._value += n

    def dec(self, n: float = 1.0) -> None:
        """Move the gauge down by ``n``."""
        self._value -= n

    @property
    def value(self) -> float:
        """Current value."""
        return self._value


class LatencyHistogram:
    """Fixed-bucket histogram of observed durations (seconds).

    Buckets are cumulative-style upper bounds; observations above the last
    edge land in an implicit +inf overflow bucket.  Tracks count and sum,
    so both mean and bucketed quantile estimates are available.
    """

    def __init__(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        labels: dict | None = None,
    ):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.labels = {str(k): str(v) for k, v in (labels or {}).items()}
        self.buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # + overflow
        self._count = 0
        self._total = 0.0

    def observe(self, seconds: float) -> None:
        """Record one duration."""
        if seconds < 0:
            raise ValueError(f"negative duration {seconds}")
        for i, edge in enumerate(self.buckets):
            if seconds <= edge:
                self._counts[i] += 1
                break
        else:
            self._counts[-1] += 1
        self._count += 1
        self._total += seconds

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def total(self) -> float:
        """Sum of observed durations (seconds)."""
        return self._total

    @property
    def mean(self) -> float:
        """Mean observed duration (0.0 before any observation)."""
        return self._total / self._count if self._count else 0.0

    @property
    def overflow_count(self) -> int:
        """Observations above the last finite bucket edge."""
        return self._counts[-1]

    def quantile(self, q: float) -> float:
        """Bucketed quantile estimate: the upper edge of the q-th bucket.

        A quantile that lands in the overflow bucket returns
        ``math.inf`` — the histogram only knows those observations
        exceeded the last edge, and reporting the edge itself would
        silently understate the tail.  Returns 0.0 before any
        observation.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        rank = math.ceil(q * self._count)
        running = 0
        for i, n in enumerate(self._counts[:-1]):
            running += n
            if running >= rank:
                return self.buckets[i]
        return math.inf

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s observations in (bucket edges must match)."""
        if other.buckets != self.buckets:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge mismatched bucket "
                f"edges {other.buckets} into {self.buckets}"
            )
        for i, n in enumerate(other._counts):
            self._counts[i] += n
        self._count += other._count
        self._total += other._total

    def to_dict(self) -> dict:
        """JSON-able snapshot: count, total, mean, p50/p99, bucket counts."""
        return {
            "count": self._count,
            "total_s": self._total,
            "mean_s": self.mean,
            "p50_s": self.quantile(0.5),
            "p99_s": self.quantile(0.99),
            "overflow_count": self._counts[-1],
            "buckets": [
                {"le_s": edge, "count": n}
                for edge, n in zip(self.buckets, self._counts)
            ]
            + [{"le_s": None, "count": self._counts[-1]}],
        }

    @classmethod
    def from_dict(cls, name: str, data: dict) -> "LatencyHistogram":
        """Rebuild a histogram from its :meth:`to_dict` form.

        Individual observations are gone, but bucket counts, count and
        total — everything mean/quantile estimation uses — survive, which
        is what makes snapshot merging exact.  A dict without buckets
        (a hand-built or truncated snapshot) degrades gracefully: the
        default edges with every observation in overflow, rather than a
        ``KeyError`` out of :func:`merge_snapshots`.
        """
        count = int(data.get("count", 0))
        total = float(data.get("total_s", 0.0))
        entries = data.get("buckets")
        if not entries:
            hist = cls(name)
            hist._counts[-1] = count  # all mass in overflow: edges unknown
            hist._count = count
            hist._total = total
            return hist
        edges = tuple(b["le_s"] for b in entries if b["le_s"] is not None)
        hist = cls(name, buckets=edges)
        hist._counts = [int(b["count"]) for b in entries]
        hist._count = count
        hist._total = total
        return hist


class Telemetry:
    """Registry of named counters, gauges and histograms with one snapshot.

    Metrics are created on first use, so instrumented code never has to
    pre-declare what it records.  Passing keyword labels returns a child
    metric dedicated to that label set.
    """

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, LatencyHistogram] = {}
        self._labeled_counters: dict[str, dict[tuple, Counter]] = {}
        self._labeled_gauges: dict[str, dict[tuple, Gauge]] = {}
        self._labeled_histograms: dict[str, dict[tuple, LatencyHistogram]] = {}
        self._events: deque[dict] = deque(maxlen=MAX_EVENTS)
        self._events_dropped = 0

    def counter(self, name: str, **labels) -> Counter:
        """The named counter (created at zero on first use).

        With labels, the child counter for that exact label set.
        """
        if labels:
            children = self._labeled_counters.setdefault(name, {})
            key = _label_key(labels)
            if key not in children:
                children[key] = Counter(name, labels)
            return children[key]
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str, **labels) -> Gauge:
        """The named gauge (created at zero on first use)."""
        if labels:
            children = self._labeled_gauges.setdefault(name, {})
            key = _label_key(labels)
            if key not in children:
                children[key] = Gauge(name, labels)
            return children[key]
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        **labels,
    ) -> LatencyHistogram:
        """The named histogram (created empty on first use)."""
        if labels:
            children = self._labeled_histograms.setdefault(name, {})
            key = _label_key(labels)
            if key not in children:
                children[key] = LatencyHistogram(name, buckets, labels)
            return children[key]
        if name not in self._histograms:
            self._histograms[name] = LatencyHistogram(name, buckets)
        return self._histograms[name]

    @contextmanager
    def time(self, name: str, **labels):
        """Context manager observing the block's wall time into ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.histogram(name, **labels).observe(time.perf_counter() - start)

    def event(self, name: str, **fields) -> None:
        """Append a structured event (breaker trip, mode change, crash...).

        Events form an ordered log next to the aggregate counters — the
        "what happened when" an operator needs after an incident.  At most
        :data:`MAX_EVENTS` are retained (a bounded deque, O(1) per
        append); older ones are dropped and the exact drop count is
        surfaced in the snapshot.
        """
        if len(self._events) == MAX_EVENTS:
            self._events_dropped += 1
        self._events.append({"event": name, **fields})

    @property
    def events(self) -> list[dict]:
        """The retained event log (oldest first)."""
        return list(self._events)

    def snapshot(self) -> dict:
        """All metrics as plain JSON-serializable types.

        The ``counters`` / ``histograms`` / ``events`` /
        ``events_dropped`` keys keep their original (unlabeled) shape;
        gauges and labeled child metrics are added under the new
        ``gauges`` and ``labeled`` keys.
        """
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.to_dict() for n, h in sorted(self._histograms.items())
            },
            "labeled": {
                "counters": {
                    name: [
                        {"labels": child.labels, "value": child.value}
                        for _, child in sorted(children.items())
                    ]
                    for name, children in sorted(self._labeled_counters.items())
                },
                "gauges": {
                    name: [
                        {"labels": child.labels, "value": child.value}
                        for _, child in sorted(children.items())
                    ]
                    for name, children in sorted(self._labeled_gauges.items())
                },
                "histograms": {
                    name: [
                        {"labels": child.labels, **child.to_dict()}
                        for _, child in sorted(children.items())
                    ]
                    for name, children in sorted(self._labeled_histograms.items())
                },
            },
            "events": list(self._events),
            "events_dropped": self._events_dropped,
        }

    def to_prometheus(self) -> str:
        """Current metrics in the Prometheus text exposition format."""
        return snapshot_to_prometheus(self.snapshot())


# ----------------------------------------------------------------------
# Snapshot-level operations: merging and Prometheus rendering work on the
# plain-dict snapshot form, so they apply equally to live Telemetry
# instances and to snapshots loaded back from JSON files.


def _merge_histogram_dicts(name: str, a: dict, b: dict) -> dict:
    merged = LatencyHistogram.from_dict(name, a)
    merged.merge(LatencyHistogram.from_dict(name, b))
    return merged.to_dict()


def _merge_labeled(kind: str, a: dict, b: dict) -> dict:
    """Merge the per-name lists of labeled children from two snapshots.

    Disjoint metric names pass through untouched; an entry missing its
    ``labels`` dict (hand-built snapshots) is treated as unlabeled
    rather than raising.
    """
    out: dict[str, list] = {}
    for name in sorted(set(a) | set(b)):
        by_labels: dict[tuple, dict] = {}
        for entry in list(a.get(name, ())) + list(b.get(name, ())):
            key = _label_key(entry.get("labels", {}))
            if key not in by_labels:
                by_labels[key] = dict(entry)
            elif kind == "histograms":
                labels = by_labels[key].get("labels", {})
                merged = _merge_histogram_dicts(name, by_labels[key], entry)
                by_labels[key] = {"labels": labels, **merged}
            else:
                by_labels[key]["value"] += entry["value"]
        out[name] = [by_labels[key] for key in sorted(by_labels)]
    return out


def label_snapshot(snapshot: dict, **labels) -> dict:
    """Return ``snapshot`` re-labeled with ``labels`` on every metric.

    The transformation the sharded serving tier applies before merging
    per-shard snapshots: every *unlabeled* counter/gauge/histogram stays
    at the top level (so :func:`merge_snapshots` still sums fleet-wide
    totals) **and** gains a labeled child carrying exactly ``labels``
    (e.g. ``shard="2"``); every existing labeled child gains the same
    labels on top of its own (the new labels win on collision).  Events
    gain the label fields verbatim.  Merging the labeled snapshots of N
    shards therefore yields fleet totals at the top level plus intact
    per-shard series under ``labeled`` — one snapshot, both views, and
    the Prometheus exposition renders the per-shard series with the
    ``shard`` label attached.

    Keys outside the snapshot schema (e.g. a broker report's folded-in
    ``caches``) are dropped, matching :func:`merge_snapshots`.
    """
    if not labels:
        raise ValueError("label_snapshot needs at least one label")
    clean = {str(k): str(v) for k, v in labels.items()}

    def relabel_children(children: list) -> list:
        out = []
        for entry in children:
            entry = dict(entry)
            entry["labels"] = {**entry["labels"], **clean}
            out.append(entry)
        return out

    labeled_in = snapshot.get("labeled", {})
    labeled = {
        kind: {
            name: relabel_children(children)
            for name, children in labeled_in.get(kind, {}).items()
        }
        for kind in ("counters", "gauges", "histograms")
    }
    for name, value in snapshot.get("counters", {}).items():
        labeled["counters"].setdefault(name, []).append(
            {"labels": dict(clean), "value": value}
        )
    for name, value in snapshot.get("gauges", {}).items():
        labeled["gauges"].setdefault(name, []).append(
            {"labels": dict(clean), "value": value}
        )
    for name, data in snapshot.get("histograms", {}).items():
        labeled["histograms"].setdefault(name, []).append(
            {"labels": dict(clean), **data}
        )
    return {
        "counters": dict(snapshot.get("counters", {})),
        "gauges": dict(snapshot.get("gauges", {})),
        "histograms": {
            name: dict(data) for name, data in snapshot.get("histograms", {}).items()
        },
        "labeled": labeled,
        "events": [{**event, **labels} for event in snapshot.get("events", ())],
        "events_dropped": int(snapshot.get("events_dropped", 0)),
    }


def merge_snapshots(a: dict, b: dict) -> dict:
    """Combine two :meth:`Telemetry.snapshot` dicts into one.

    Counters and gauges add; histograms add bucket-wise (matching edges
    required) with count/total/quantiles recomputed from the merged
    buckets, so merging snapshots from a split workload reproduces the
    single-run snapshot exactly.  Event logs concatenate (``a`` first)
    under the same :data:`MAX_EVENTS` cap.  Keys outside the snapshot
    schema (e.g. the broker's folded-in ``caches``) are dropped.
    """
    counters = {
        name: a.get("counters", {}).get(name, 0) + b.get("counters", {}).get(name, 0)
        for name in sorted(set(a.get("counters", {})) | set(b.get("counters", {})))
    }
    gauges = {
        name: a.get("gauges", {}).get(name, 0.0) + b.get("gauges", {}).get(name, 0.0)
        for name in sorted(set(a.get("gauges", {})) | set(b.get("gauges", {})))
    }
    histograms = {}
    hists_a, hists_b = a.get("histograms", {}), b.get("histograms", {})
    for name in sorted(set(hists_a) | set(hists_b)):
        if name in hists_a and name in hists_b:
            histograms[name] = _merge_histogram_dicts(name, hists_a[name], hists_b[name])
        else:
            source = hists_a.get(name, hists_b.get(name))
            # Round-trip through the class so derived fields are canonical.
            histograms[name] = LatencyHistogram.from_dict(name, source).to_dict()
    labeled_a, labeled_b = a.get("labeled", {}), b.get("labeled", {})
    labeled = {
        kind: _merge_labeled(kind, labeled_a.get(kind, {}), labeled_b.get(kind, {}))
        for kind in ("counters", "gauges", "histograms")
    }
    events = list(a.get("events", ())) + list(b.get("events", ()))
    dropped = int(a.get("events_dropped", 0)) + int(b.get("events_dropped", 0))
    if len(events) > MAX_EVENTS:
        dropped += len(events) - MAX_EVENTS
        events = events[-MAX_EVENTS:]
    return {
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
        "labeled": labeled,
        "events": events,
        "events_dropped": dropped,
    }


def merge_all(snapshots) -> dict:
    """Fold any iterable of snapshots through :func:`merge_snapshots`.

    The reduce-with-initial-value the sharded tier's reporting wants: an
    empty iterable yields a valid empty snapshot (the shape
    ``Telemetry().snapshot()`` produces) instead of raising, and one
    snapshot comes back normalized through a merge with the empty
    snapshot rather than passed through by reference.
    """
    merged = Telemetry().snapshot()
    for snapshot in snapshots:
        merged = merge_snapshots(merged, snapshot)
    return merged


def _prom_name(name: str) -> str:
    """Sanitize a metric name to the Prometheus charset."""
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _prom_labels(labels: dict, extra: list[tuple[str, str]] | None = None) -> str:
    items = [(str(k), str(v)) for k, v in sorted(labels.items())] + (extra or [])
    if not items:
        return ""
    rendered = ",".join(
        f'{_prom_name(k)}="{_escape_label(v)}"' for k, v in items
    )
    return "{" + rendered + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_number(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _prom_histogram_lines(name: str, labels: dict, data: dict) -> list[str]:
    lines = []
    cumulative = 0
    for bucket in data["buckets"]:
        cumulative += bucket["count"]
        le = "+Inf" if bucket["le_s"] is None else _prom_number(bucket["le_s"])
        lines.append(
            f"{name}_bucket{_prom_labels(labels, [('le', le)])} {cumulative}"
        )
    lines.append(f"{name}_sum{_prom_labels(labels)} {_prom_number(data['total_s'])}")
    lines.append(f"{name}_count{_prom_labels(labels)} {data['count']}")
    return lines


def snapshot_to_prometheus(snapshot: dict) -> str:
    """Render a snapshot dict in the Prometheus text exposition format.

    Counters get the conventional ``_total`` suffix, histograms emit
    cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``, and
    labels (both metric labels and the ``le`` edge) are rendered with
    standard escaping.  No external client library involved.
    """
    lines: list[str] = []
    labeled = snapshot.get("labeled", {})

    for name, value in sorted(snapshot.get("counters", {}).items()):
        prom = _prom_name(name) + "_total"
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {value}")
    for name, children in sorted(labeled.get("counters", {}).items()):
        prom = _prom_name(name) + "_total"
        lines.append(f"# TYPE {prom} counter")
        for child in children:
            lines.append(f"{prom}{_prom_labels(child['labels'])} {child['value']}")

    for name, value in sorted(snapshot.get("gauges", {}).items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_number(value)}")
    for name, children in sorted(labeled.get("gauges", {}).items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        for child in children:
            lines.append(
                f"{prom}{_prom_labels(child['labels'])} "
                f"{_prom_number(child['value'])}"
            )

    for name, data in sorted(snapshot.get("histograms", {}).items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        lines.extend(_prom_histogram_lines(prom, {}, data))
    for name, children in sorted(labeled.get("histograms", {}).items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        for child in children:
            lines.extend(_prom_histogram_lines(prom, child["labels"], child))

    dropped = snapshot.get("events_dropped")
    if dropped is not None:
        lines.append("# TYPE repro_events_dropped_total counter")
        lines.append(f"repro_events_dropped_total {dropped}")
    return "\n".join(lines) + "\n"
