"""Observability: request tracing, snapshot tooling, metric exporters.

The serving stack answers *what happened in aggregate* through
:class:`repro.serving.Telemetry`; this package answers *what happened to
this one request* and *how do two runs compare*:

* :class:`Tracer` / :class:`Span` — dependency-free nested span tracing
  with deterministic ids, an injectable clock (:class:`TickClock`), and
  exporters to JSONL and Chrome trace-event JSON (Perfetto-loadable);
* snapshot tools — load/summarize/merge/diff telemetry snapshots and
  render the Prometheus text exposition, powering the ``repro metrics``
  CLI subcommand;
* :func:`validate_prometheus` — a tiny exposition-format checker used in
  tests and CI so exporter output stays parseable.
"""

from repro.obs.snapshots import (
    FailSpec,
    check_regressions,
    diff_snapshots,
    load_snapshot,
    merge_snapshots,
    parse_fail_spec,
    render_diff,
    snapshot_to_prometheus,
    summarize_snapshot,
    validate_prometheus,
)
from repro.obs.tracing import NOOP_TRACER, Span, TickClock, Tracer, spans_to_chrome

__all__ = [
    "Span",
    "Tracer",
    "TickClock",
    "NOOP_TRACER",
    "spans_to_chrome",
    "load_snapshot",
    "summarize_snapshot",
    "merge_snapshots",
    "diff_snapshots",
    "render_diff",
    "FailSpec",
    "parse_fail_spec",
    "check_regressions",
    "snapshot_to_prometheus",
    "validate_prometheus",
]
