"""Observability: metrics, request tracing, snapshot tooling, exporters.

The bottom layer of the stack — everything here is dependency-free and
imported by the placement core and both frontends:

* :class:`Telemetry` (:mod:`repro.obs.metrics`) — counters, gauges and
  fixed-bucket latency histograms exposed as one JSON snapshot,
  answering *what happened in aggregate*;
* :class:`Tracer` / :class:`Span` — dependency-free nested span tracing
  with deterministic ids, an injectable clock (:class:`TickClock`), and
  exporters to JSONL and Chrome trace-event JSON (Perfetto-loadable),
  answering *what happened to this one request*;
* snapshot tools — load/summarize/merge/diff telemetry snapshots and
  render the Prometheus text exposition, powering the ``repro metrics``
  CLI subcommand;
* :func:`validate_prometheus` — a tiny exposition-format checker used in
  tests and CI so exporter output stays parseable;
* :class:`QoSLedger` (:mod:`repro.obs.qos`) — ground-truth FPS
  accounting over fleet mutations: prediction-calibration drift gauges
  (MAE / bias / p95 residual), SLO error budgets with burn-rate events,
  and the ``qos`` report section (:func:`build_qos_section`) behind the
  ``repro slo`` subcommand.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    LatencyHistogram,
    Telemetry,
    label_snapshot,
)
from repro.obs.qos import (
    BURN_RATE_BUCKETS,
    FPS_RESIDUAL_BUCKETS,
    QOS_MINUTES_BUCKETS,
    QoSLedger,
    build_qos_section,
    diff_qos,
    extract_qos,
    flatten_qos,
    summarize_qos,
)
from repro.obs.snapshots import (
    FailSpec,
    check_regressions,
    diff_snapshots,
    load_snapshot,
    merge_all,
    merge_snapshots,
    parse_fail_spec,
    render_diff,
    snapshot_to_prometheus,
    summarize_snapshot,
    validate_prometheus,
)
from repro.obs.tracing import NOOP_TRACER, Span, TickClock, Tracer, spans_to_chrome

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "Telemetry",
    "DEFAULT_LATENCY_BUCKETS",
    "Span",
    "Tracer",
    "TickClock",
    "NOOP_TRACER",
    "spans_to_chrome",
    "load_snapshot",
    "summarize_snapshot",
    "label_snapshot",
    "merge_snapshots",
    "merge_all",
    "diff_snapshots",
    "render_diff",
    "FailSpec",
    "parse_fail_spec",
    "check_regressions",
    "snapshot_to_prometheus",
    "validate_prometheus",
    "QoSLedger",
    "build_qos_section",
    "extract_qos",
    "flatten_qos",
    "diff_qos",
    "summarize_qos",
    "FPS_RESIDUAL_BUCKETS",
    "QOS_MINUTES_BUCKETS",
    "BURN_RATE_BUCKETS",
]
