"""Dependency-free span tracing for the serving hot path.

A :class:`Tracer` produces nested :class:`Span` records — name, trace id,
span id, parent id, start/end, attributes — through a context-manager
API.  Every top-level span opens a new trace (one per admitted request in
the serving broker), and spans opened while another span is active become
its children, so the hierarchy needs no explicit plumbing at call sites.

The clock is injectable: tests pass a :class:`TickClock` and get
byte-identical exports for the same workload, which is what makes trace
output assertable at all.  A disabled tracer hands out one shared no-op
span object and records nothing, keeping the hot path allocation-free
when tracing is off.

Finished spans export to two formats:

* **JSONL** — one span object per line, stable field order, greppable;
* **Chrome trace-event JSON** — loadable directly in ``chrome://tracing``
  or Perfetto (complete ``"X"`` events plus ``"i"`` instants).
"""

from __future__ import annotations

import json
import time

__all__ = [
    "Span",
    "Tracer",
    "TickClock",
    "NOOP_TRACER",
    "spans_to_chrome",
]


class TickClock:
    """Deterministic clock: each call advances by a fixed ``step`` seconds.

    Injected into a :class:`Tracer` for reproducible traces — the same
    sequence of span operations always yields the same timestamps.
    """

    def __init__(self, start: float = 0.0, step: float = 1e-6):
        if step <= 0:
            raise ValueError("step must be positive")
        self._now = float(start)
        self.step = float(step)

    def __call__(self) -> float:
        now = self._now
        self._now += self.step
        return now


class Span:
    """One traced operation: a named interval with attributes and a parent.

    Spans are context managers; entering starts the clock and registers
    the span with its tracer, exiting stops it.  Use :meth:`set` inside
    the block to attach attributes discovered mid-operation.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_s",
        "end_s",
        "attributes",
        "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, attributes: dict):
        self._tracer = tracer
        self.name = name
        self.attributes = attributes
        self.trace_id = 0
        self.span_id = 0
        self.parent_id: int | None = None
        self.start_s = 0.0
        self.end_s: float | None = None

    def set(self, **attributes) -> "Span":
        """Attach or overwrite attributes; returns the span for chaining."""
        self.attributes.update(attributes)
        return self

    @property
    def duration_s(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        return 0.0 if self.end_s is None else self.end_s - self.start_s

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._close(self)
        return False

    def to_dict(self) -> dict:
        """JSON-able record (stable key order for byte-stable exports)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "attributes": dict(sorted(self.attributes.items())),
        }


class _NoopSpan:
    """The shared do-nothing span a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, _exc_type, _exc, _tb) -> bool:
        return False

    def set(self, **_attributes) -> "_NoopSpan":
        return self


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects nested spans with deterministic ids and an injectable clock.

    ``enabled=False`` makes every :meth:`span`/:meth:`instant` call a
    no-op returning one shared sentinel object: no spans are recorded and
    nothing is retained, so instrumented code pays essentially nothing
    when tracing is off.
    """

    def __init__(self, *, enabled: bool = True, clock=None):
        self.enabled = bool(enabled)
        self._clock = clock if clock is not None else time.perf_counter
        self._finished: list[Span] = []
        self._stack: list[Span] = []
        self._next_span_id = 1
        self._next_trace_id = 1

    # ------------------------------------------------------------------

    def span(self, name: str, **attributes):
        """A context-managed child of the currently active span.

        With no active span, entering begins a new trace.  Returns the
        shared no-op span when the tracer is disabled.
        """
        if not self.enabled:
            return _NOOP_SPAN
        return Span(self, name, attributes)

    def instant(self, name: str, **attributes) -> None:
        """Record a zero-duration marker span (breaker trip, mode flip...)."""
        if not self.enabled:
            return
        span = Span(self, name, attributes)
        self._open(span)
        span.end_s = span.start_s  # zero-length: reuse the open timestamp
        self._stack.pop()
        self._finished.append(span)

    def _open(self, span: Span) -> None:
        span.span_id = self._next_span_id
        self._next_span_id += 1
        if self._stack:
            parent = self._stack[-1]
            span.parent_id = parent.span_id
            span.trace_id = parent.trace_id
        else:
            span.parent_id = None
            span.trace_id = self._next_trace_id
            self._next_trace_id += 1
        span.start_s = self._clock()
        self._stack.append(span)

    def _close(self, span: Span) -> None:
        span.end_s = self._clock()
        # Tolerate exits out of order (an exception unwinding several
        # levels): pop everything above and including this span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        self._finished.append(span)

    # ------------------------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        """Finished spans in completion order (children before parents)."""
        return list(self._finished)

    @property
    def n_traces(self) -> int:
        """Number of traces begun (top-level spans opened)."""
        return self._next_trace_id - 1

    def traces(self) -> dict[int, list[Span]]:
        """Finished spans grouped by trace id, each sorted by start time."""
        out: dict[int, list[Span]] = {}
        for span in self._finished:
            out.setdefault(span.trace_id, []).append(span)
        for spans in out.values():
            spans.sort(key=lambda s: (s.start_s, s.span_id))
        return out

    def clear(self) -> None:
        """Drop all finished spans (active spans are left alone)."""
        self._finished.clear()

    # ------------------------------------------------------------------
    # Exporters

    def _export_order(self) -> list[Span]:
        return sorted(self._finished, key=lambda s: (s.trace_id, s.start_s, s.span_id))

    def to_jsonl(self) -> str:
        """One JSON object per finished span, ordered by (trace, start)."""
        return "".join(
            json.dumps(span.to_dict(), sort_keys=False) + "\n"
            for span in self._export_order()
        )

    def to_chrome_trace(self) -> dict:
        """Chrome trace-event JSON (``chrome://tracing`` / Perfetto)."""
        return spans_to_chrome([span.to_dict() for span in self._export_order()])

    def export_jsonl(self, path) -> None:
        """Write :meth:`to_jsonl` output to ``path``."""
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())

    def export_chrome_trace(self, path) -> None:
        """Write :meth:`to_chrome_trace` output as JSON to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=1)
            fh.write("\n")


#: Shared disabled tracer: the default for un-instrumented components.
NOOP_TRACER = Tracer(enabled=False)


def spans_to_chrome(spans: list[dict]) -> dict:
    """Convert span dicts (:meth:`Span.to_dict` / JSONL lines) to Chrome format.

    Durations and timestamps become microseconds; each trace id maps to a
    ``tid`` so Perfetto renders one request per track.  Zero-duration
    spans become instant (``"i"``) events.
    """
    events = []
    for span in spans:
        start_us = span["start_s"] * 1e6
        args = dict(span.get("attributes") or {})
        args["span_id"] = span["span_id"]
        if span.get("parent_id") is not None:
            args["parent_id"] = span["parent_id"]
        common = {
            "name": span["name"],
            "pid": 1,
            "tid": span["trace_id"],
            "ts": start_us,
            "args": args,
        }
        duration_s = span.get("duration_s") or 0.0
        if duration_s <= 0.0:
            events.append({**common, "ph": "i", "s": "t"})
        else:
            events.append({**common, "ph": "X", "dur": duration_s * 1e6})
    return {"traceEvents": events, "displayTimeUnit": "ms"}
