"""Gaming request streams."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.games.resolution import REFERENCE_RESOLUTION, Resolution
from repro.utils.rng import spawn_rng

__all__ = ["GameRequest", "generate_requests"]


@dataclass(frozen=True)
class GameRequest:
    """One player's request: a game at a resolution."""

    game: str
    resolution: Resolution = REFERENCE_RESOLUTION


def generate_requests(
    names: Sequence[str],
    n_requests: int,
    *,
    resolutions: Sequence[Resolution] | None = None,
    seed: int = 0,
) -> list[GameRequest]:
    """Uniformly random requests over ``names`` (paper Section 5 workload).

    ``resolutions`` defaults to a single fixed resolution (1080p), matching
    the Section 5 experiments; pass the preset list to exercise mixed
    resolutions.
    """
    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    names = list(names)
    if not names:
        raise ValueError("names must be non-empty")
    pool = list(resolutions) if resolutions else [REFERENCE_RESOLUTION]
    rng = spawn_rng(seed, "requests")
    return [
        GameRequest(
            game=names[int(rng.integers(len(names)))],
            resolution=pool[int(rng.integers(len(pool)))],
        )
        for _ in range(n_requests)
    ]
