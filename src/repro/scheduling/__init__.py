"""Interference-aware request scheduling (paper Section 5).

Two problems are solved with GAugur's predictions:

* **Minimize servers under QoS** (Section 5.1): identify feasible
  colocations with the CM, then pack requests with the greedy set-cover
  Algorithm 1 (ln(k)-approximate).
* **Maximize average FPS on a fixed fleet** (Section 5.2): assign each
  arriving request to the server whose predicted post-assignment frame
  rates are best (RM), or worst-fit by remaining capacity for VBP.

Evaluation utilities measure the *actual* outcome of every placement by
running the resulting colocations on the simulator.
"""

from repro.placement.assignment import (
    AssignmentResult,
    assign_max_fps,
    assign_worst_fit,
    evaluate_assignment,
)
from repro.scheduling.dynamic import (
    DynamicMetrics,
    Session,
    cm_feasible_policy,
    dedicated_policy,
    generate_sessions,
    recording_policy,
    simulate_sessions,
    vbp_policy,
)
from repro.scheduling.feasible import (
    FeasibilityReport,
    actual_feasibility,
    enumerate_colocations,
    judge_feasibility,
    score_judgements,
)
from repro.scheduling.metrics import (
    FleetSummary,
    jain_fairness,
    qos_satisfaction,
    summarize_fleet,
)
from repro.scheduling.packing import PackingResult, pack_requests
from repro.scheduling.requests import GameRequest, generate_requests

__all__ = [
    "GameRequest",
    "generate_requests",
    "enumerate_colocations",
    "actual_feasibility",
    "judge_feasibility",
    "score_judgements",
    "FeasibilityReport",
    "pack_requests",
    "PackingResult",
    "assign_max_fps",
    "assign_worst_fit",
    "evaluate_assignment",
    "AssignmentResult",
    "Session",
    "generate_sessions",
    "simulate_sessions",
    "DynamicMetrics",
    "cm_feasible_policy",
    "vbp_policy",
    "dedicated_policy",
    "recording_policy",
    "FleetSummary",
    "jain_fairness",
    "qos_satisfaction",
    "summarize_fleet",
]
