"""Feasible-colocation enumeration and judgement scoring (Section 5.1).

The paper's complete verification takes 10 games and all their colocations
of size < 5 (385 including singletons), measures the ground truth on the
testbed, and scores each methodology's judgements as TP/FP/FN/TN with
accuracy, precision and recall.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.training import ColocationSpec
from repro.games.catalog import GameCatalog
from repro.games.resolution import REFERENCE_RESOLUTION, Resolution
from repro.hardware.server import DEFAULT_SERVER, ServerSpec
from repro.simulator.measurement import MeasurementConfig, run_colocation

__all__ = [
    "enumerate_colocations",
    "actual_feasibility",
    "judge_feasibility",
    "score_judgements",
    "FeasibilityReport",
]


def enumerate_colocations(
    names: Sequence[str],
    *,
    max_size: int = 4,
    resolution: Resolution = REFERENCE_RESOLUTION,
) -> list[ColocationSpec]:
    """All colocations of sizes 1..max_size over ``names`` (paper: 385 for 10)."""
    if max_size < 1:
        raise ValueError("max_size must be >= 1")
    names = list(names)
    colocations = []
    for size in range(1, max_size + 1):
        for combo in itertools.combinations(names, size):
            colocations.append(
                ColocationSpec(tuple((name, resolution) for name in combo))
            )
    return colocations


def actual_feasibility(
    catalog: GameCatalog,
    colocations: Sequence[ColocationSpec],
    qos: float,
    *,
    server: ServerSpec = DEFAULT_SERVER,
    config: MeasurementConfig | None = None,
) -> np.ndarray:
    """Ground-truth verdict per colocation: every game meets ``qos`` FPS."""
    verdicts = []
    for spec in colocations:
        result = run_colocation(spec.instances(catalog), server=server, config=config)
        verdicts.append(bool(np.all(np.asarray(result.fps) >= qos)))
    return np.asarray(verdicts, dtype=bool)


def judge_feasibility(
    judge: Callable[[ColocationSpec, float], bool] | object,
    colocations: Sequence[ColocationSpec],
    qos: float,
) -> np.ndarray:
    """Apply a methodology's ``colocation_feasible(spec, qos)`` to each colocation."""
    fn = judge if callable(judge) else judge.colocation_feasible
    return np.asarray([bool(fn(spec, qos)) for spec in colocations], dtype=bool)


@dataclass(frozen=True)
class FeasibilityReport:
    """Confusion counts and derived scores for one methodology."""

    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def total(self) -> int:
        """Number of judged colocations."""
        return self.tp + self.fp + self.fn + self.tn

    @property
    def accuracy(self) -> float:
        """Fraction of correct judgements."""
        return (self.tp + self.tn) / self.total if self.total else 0.0

    @property
    def precision(self) -> float:
        """Fraction of predicted-feasible that are actually feasible."""
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        """Fraction of actually feasible colocations identified."""
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0


def score_judgements(actual: np.ndarray, judged: np.ndarray) -> FeasibilityReport:
    """Confusion report of a methodology's verdicts against ground truth."""
    actual = np.asarray(actual, dtype=bool)
    judged = np.asarray(judged, dtype=bool)
    if actual.shape != judged.shape:
        raise ValueError("actual and judged verdicts must align")
    return FeasibilityReport(
        tp=int(np.sum(actual & judged)),
        fp=int(np.sum(~actual & judged)),
        fn=int(np.sum(actual & ~judged)),
        tn=int(np.sum(~actual & ~judged)),
    )
