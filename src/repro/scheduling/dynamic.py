"""Dynamic session scheduling: arrivals and departures over time.

The paper's predictor exists to serve an *online* dispatcher: requests
arrive continuously, sessions end, and migration is off the table once a
game is placed (Section 1, challenge 1).  This module simulates that
regime: Poisson arrivals with exponential session durations, a server pool
that grows on demand and shrinks when servers empty, and pluggable
placement policies.  Metrics separate the two costs the paper trades off —
server-hours (utilization) and QoS-violation session-time (experience).

Ground truth for violations comes from the simulator: every distinct
server composition is measured once (memoized by signature).
"""

from __future__ import annotations

import heapq
import time as _time
from collections.abc import Callable, Sequence
from dataclasses import dataclass


from repro.core.training import ColocationSpec
from repro.games.catalog import GameCatalog
from repro.games.resolution import REFERENCE_RESOLUTION, Resolution
from repro.hardware.server import DEFAULT_SERVER, ServerSpec
from repro.simulator.measurement import MeasurementConfig, run_colocation
from repro.utils.rng import spawn_rng

__all__ = [
    "Session",
    "generate_sessions",
    "DynamicMetrics",
    "simulate_sessions",
    "cm_feasible_policy",
    "vbp_policy",
    "dedicated_policy",
    "recording_policy",
]


@dataclass(frozen=True)
class Session:
    """One play session: a game at a resolution over [arrival, arrival+duration)."""

    game: str
    resolution: Resolution
    arrival: float
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.arrival < 0:
            raise ValueError("arrival must be >= 0")


def generate_sessions(
    names: Sequence[str],
    n_sessions: int,
    *,
    arrival_rate: float = 2.0,
    mean_duration: float = 30.0,
    resolutions: Sequence[Resolution] | None = None,
    seed: int = 0,
) -> list[Session]:
    """Poisson arrivals (rate per minute) with exponential durations (minutes)."""
    if n_sessions < 1:
        raise ValueError("n_sessions must be >= 1")
    if arrival_rate <= 0 or mean_duration <= 0:
        raise ValueError("arrival_rate and mean_duration must be positive")
    names = list(names)
    pool = list(resolutions) if resolutions else [REFERENCE_RESOLUTION]
    rng = spawn_rng(seed, "sessions")
    t = 0.0
    sessions = []
    for _ in range(n_sessions):
        t += float(rng.exponential(1.0 / arrival_rate))
        sessions.append(
            Session(
                game=names[int(rng.integers(len(names)))],
                resolution=pool[int(rng.integers(len(pool)))],
                arrival=t,
                duration=float(rng.exponential(mean_duration)),
            )
        )
    return sessions


# ----------------------------------------------------------------------
# Placement policies: (current server signatures, session) -> server index
# or None to open a fresh server.  A "signature" is the sorted entry tuple.

Signature = tuple[tuple[str, Resolution], ...]
Policy = Callable[[list[Signature], Session], int | None]


def cm_feasible_policy(
    predictor, qos: float, *, max_colocation: int = 4, margin: float = 1.0
) -> Policy:
    """Pack onto the fullest existing server the CM predicts stays feasible.

    ``margin`` scales the floor the CM is queried with: a value of 1.1
    demands 10% headroom above the player-facing QoS, trading some
    consolidation for fewer violations when the CM's boundary is noisy —
    the knob the Section 7 discussion implies for production deployments.
    """
    if margin < 1.0:
        raise ValueError("margin must be >= 1.0")
    verdict_cache: dict[Signature, bool] = {}

    def feasible(sig: Signature) -> bool:
        if sig not in verdict_cache:
            verdict_cache[sig] = predictor.colocation_feasible(
                ColocationSpec(sig), qos * margin
            )
        return verdict_cache[sig]

    def place(servers: list[Signature], session: Session) -> int | None:
        best, best_size = None, -1
        entry = (session.game, session.resolution)
        for idx, sig in enumerate(servers):
            if len(sig) >= max_colocation:
                continue
            candidate = tuple(sorted(sig + (entry,)))
            if feasible(candidate) and len(sig) > best_size:
                best, best_size = idx, len(sig)
        return best

    return place


def vbp_policy(vbp, *, max_colocation: int = 4) -> Policy:
    """First fit by summed demand vectors (the VBP baseline, Section 2.2)."""

    def place(servers: list[Signature], session: Session) -> int | None:
        for idx, sig in enumerate(servers):
            if len(sig) >= max_colocation:
                continue
            spec = ColocationSpec(sig) if sig else None
            if vbp.fits_after_adding(spec, session.game, session.resolution):
                return idx
        return None

    return place


def dedicated_policy() -> Policy:
    """No colocation: every session gets its own server."""

    def place(servers: list[Signature], session: Session) -> int | None:
        return None

    return place


def recording_policy(policy: Policy) -> tuple[Policy, list[int | None]]:
    """Wrap ``policy``, logging every decision it makes.

    Returns ``(wrapped, record)``: the wrapped policy behaves identically
    while appending each returned server index (or ``None``) to
    ``record``.  Used to compare placement trajectories between this
    offline simulator and the online serving broker
    (:mod:`repro.serving`), which share decision semantics.
    """
    record: list[int | None] = []

    def place(servers: list[Signature], session: Session) -> int | None:
        choice = policy(servers, session)
        record.append(choice)
        return choice

    return place, record


# ----------------------------------------------------------------------


@dataclass
class DynamicMetrics:
    """Outcome of a dynamic simulation."""

    n_sessions: int
    server_minutes: float
    dedicated_server_minutes: float
    peak_servers: int
    violation_minutes: float
    session_minutes: float

    @property
    def utilization_gain(self) -> float:
        """Server-time saved vs dedicated provisioning."""
        if self.dedicated_server_minutes == 0:
            return 0.0
        return 1.0 - self.server_minutes / self.dedicated_server_minutes

    @property
    def violation_fraction(self) -> float:
        """Fraction of total session-time spent below the QoS floor."""
        return (
            self.violation_minutes / self.session_minutes
            if self.session_minutes
            else 0.0
        )


def simulate_sessions(
    catalog: GameCatalog,
    sessions: Sequence[Session],
    policy: Policy,
    *,
    qos: float = 60.0,
    server: ServerSpec = DEFAULT_SERVER,
    config: MeasurementConfig | None = None,
    telemetry=None,
) -> DynamicMetrics:
    """Event-driven simulation of a placement policy over a session trace.

    Violation time is charged per session for every interval during which
    the *measured* frame rate of its server's composition is below ``qos``.

    ``telemetry`` (a :class:`repro.serving.Telemetry`, duck-typed) makes
    the simulator self-profiling: each arrival's full round is timed into
    the ``sim_round_s`` histogram and the policy decision alone into
    ``sim_decision_s``, with ``sim_arrivals``/``sim_measurements``
    counters — the same instruments the online broker records, so offline
    and serving runs are comparable in ``repro metrics diff``.
    """
    sessions = sorted(sessions, key=lambda s: s.arrival)
    fps_cache: dict[Signature, tuple[float, ...]] = {}

    def measured_fps(sig: Signature) -> tuple[float, ...]:
        if sig not in fps_cache:
            result = run_colocation(
                ColocationSpec(sig).instances(catalog), server=server, config=config
            )
            fps_cache[sig] = result.fps
            if telemetry is not None:
                telemetry.counter("sim_measurements").inc()
        return fps_cache[sig]

    servers: dict[int, list[Session]] = {}
    next_server_id = 0
    departures: list[tuple[float, int, int]] = []  # (time, seq, server_id)
    seq = 0

    server_minutes = 0.0
    violation_minutes = 0.0
    peak = 0
    last_time = 0.0

    def signature(members: list[Session]) -> Signature:
        return tuple(sorted((s.game, s.resolution) for s in members))

    def accrue(until: float) -> None:
        nonlocal server_minutes, violation_minutes, last_time
        dt = until - last_time
        if dt > 0:
            server_minutes += dt * len(servers)
            for members in servers.values():
                fps = measured_fps(signature(members))
                violation_minutes += dt * sum(1 for f in fps if f < qos)
        last_time = until

    def pop_departures(until: float) -> None:
        nonlocal peak
        while departures and departures[0][0] <= until:
            t, _, server_id = heapq.heappop(departures)
            accrue(t)
            members = servers.get(server_id)
            if members is None:
                continue
            members.pop(0)
            if not members:
                del servers[server_id]

    for session in sessions:
        round_start = _time.perf_counter()
        pop_departures(session.arrival)
        accrue(session.arrival)
        sigs = [signature(m) for m in servers.values()]
        ids = list(servers.keys())
        if telemetry is not None:
            decision_start = _time.perf_counter()
            choice = policy(sigs, session)
            telemetry.histogram("sim_decision_s").observe(
                _time.perf_counter() - decision_start
            )
            telemetry.counter("sim_arrivals").inc()
        else:
            choice = policy(sigs, session)
        if choice is None:
            server_id = next_server_id
            next_server_id += 1
            servers[server_id] = [session]
        else:
            server_id = ids[choice]
            servers[server_id].append(session)
            # Keep departure order: earliest-ending first.
            servers[server_id].sort(key=lambda s: s.arrival + s.duration)
        heapq.heappush(
            departures, (session.arrival + session.duration, seq, server_id)
        )
        seq += 1
        peak = max(peak, len(servers))
        if telemetry is not None:
            telemetry.histogram("sim_round_s").observe(
                _time.perf_counter() - round_start
            )

    end = max(s.arrival + s.duration for s in sessions)
    pop_departures(end)
    accrue(end)

    return DynamicMetrics(
        n_sessions=len(sessions),
        server_minutes=server_minutes,
        dedicated_server_minutes=sum(s.duration for s in sessions),
        peak_servers=peak,
        violation_minutes=violation_minutes,
        session_minutes=sum(s.duration for s in sessions),
    )
