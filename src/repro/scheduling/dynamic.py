"""Dynamic session scheduling: arrivals and departures over time.

The paper's predictor exists to serve an *online* dispatcher: requests
arrive continuously, sessions end, and migration is off the table once a
game is placed (Section 1, challenge 1).  This module is the offline
frontend over the shared placement core (:mod:`repro.placement`): it
generates Poisson arrival traces and exposes the batch-clocked simulator
(:func:`repro.placement.offline.simulate_sessions`) together with thin
policy factories over the canonical implementations in
:mod:`repro.placement.policies`.  The online serving broker
(:mod:`repro.serving`) drives the *same* core, so offline/online
placement parity holds by construction.

Metrics separate the two costs the paper trades off — server-hours
(utilization) and QoS-violation session-time (experience).  Ground truth
for violations comes from the simulator: every distinct server
composition is measured once (memoized by signature).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.games.resolution import REFERENCE_RESOLUTION, Resolution
from repro.placement.fleet import Session
from repro.placement.offline import DynamicMetrics, simulate_sessions
from repro.placement.policies import (
    CMFeasiblePolicy,
    DedicatedPolicy,
    VBPFirstFitPolicy,
)
from repro.placement.signature import Signature
from repro.utils.rng import spawn_rng

__all__ = [
    "Session",
    "generate_sessions",
    "DynamicMetrics",
    "simulate_sessions",
    "cm_feasible_policy",
    "vbp_policy",
    "dedicated_policy",
    "recording_policy",
]

#: Offline policy style: (current server signatures, session) -> server index
#: or None to open a fresh server.  A "signature" is the sorted entry tuple.
Policy = Callable[[list[Signature], Session], int | None]


def generate_sessions(
    names: Sequence[str],
    n_sessions: int,
    *,
    arrival_rate: float = 2.0,
    mean_duration: float = 30.0,
    resolutions: Sequence[Resolution] | None = None,
    seed: int = 0,
) -> list[Session]:
    """Poisson arrivals (rate per minute) with exponential durations (minutes)."""
    if n_sessions < 1:
        raise ValueError("n_sessions must be >= 1")
    if arrival_rate <= 0 or mean_duration <= 0:
        raise ValueError("arrival_rate and mean_duration must be positive")
    names = list(names)
    pool = list(resolutions) if resolutions else [REFERENCE_RESOLUTION]
    rng = spawn_rng(seed, "sessions")
    t = 0.0
    sessions = []
    for _ in range(n_sessions):
        t += float(rng.exponential(1.0 / arrival_rate))
        sessions.append(
            Session(
                game=names[int(rng.integers(len(names)))],
                resolution=pool[int(rng.integers(len(pool)))],
                arrival=t,
                duration=float(rng.exponential(mean_duration)),
            )
        )
    return sessions


# ----------------------------------------------------------------------
# Policy factories: thin wrappers over repro.placement.policies returning
# offline-style callables (the bound ``select`` method of the canonical
# policy object), so existing call sites keep working unchanged.


def cm_feasible_policy(
    predictor, qos: float, *, max_colocation: int = 4, margin: float = 1.0
) -> Policy:
    """Pack onto the fullest existing server the CM predicts stays feasible.

    ``margin`` scales the floor the CM is queried with: a value of 1.1
    demands 10% headroom above the player-facing QoS, trading some
    consolidation for fewer violations when the CM's boundary is noisy —
    the knob the Section 7 discussion implies for production deployments.
    """
    return CMFeasiblePolicy(
        predictor, qos, max_colocation=max_colocation, margin=margin
    ).select


def vbp_policy(vbp, *, max_colocation: int = 4) -> Policy:
    """First fit by summed demand vectors (the VBP baseline, Section 2.2)."""
    return VBPFirstFitPolicy(vbp, max_colocation=max_colocation).select


def dedicated_policy() -> Policy:
    """No colocation: every session gets its own server."""
    return DedicatedPolicy().select


def recording_policy(policy: Policy) -> tuple[Policy, list[int | None]]:
    """Wrap ``policy``, logging every decision it makes.

    Returns ``(wrapped, record)``: the wrapped policy behaves identically
    while appending each returned server index (or ``None``) to
    ``record``.  Used to compare placement trajectories between this
    offline simulator and the online serving broker
    (:mod:`repro.serving`), which drive the same placement core.
    """
    record: list[int | None] = []

    def place(servers: list[Signature], session: Session) -> int | None:
        choice = policy(servers, session)
        record.append(choice)
        return choice

    return place, record
