"""Algorithm 1: interference-aware request packing (Section 5.1).

Greedy set cover over the feasible colocations a methodology identified:
repeatedly take the largest remaining feasible colocation; while every one
of its games still has unassigned requests, dedicate a server to one
request of each; otherwise discard the colocation.  Requests whose games
appear in no remaining feasible colocation fall back to dedicated servers.
The paper notes this greedy is ln(k)-approximate versus optimal packing.

Only *actually* feasible colocations among those the methodology judged
feasible are used (the paper excludes false positives from packing, since
deploying them would violate QoS — their cost shows up instead in the
precision metric of Figure 9).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.training import ColocationSpec
from repro.scheduling.requests import GameRequest

__all__ = ["PackingResult", "pack_requests"]


@dataclass
class PackingResult:
    """Outcome of packing a request stream."""

    servers: list[ColocationSpec] = field(default_factory=list)

    @property
    def n_servers(self) -> int:
        """Number of servers allocated."""
        return len(self.servers)

    def size_histogram(self) -> dict[int, int]:
        """Count of servers per colocation size."""
        hist: Counter[int] = Counter(spec.size for spec in self.servers)
        return dict(sorted(hist.items()))


def pack_requests(
    requests: Sequence[GameRequest],
    feasible: Sequence[ColocationSpec],
) -> PackingResult:
    """Pack ``requests`` using Algorithm 1 over ``feasible`` colocations.

    All requests and feasible colocations must share one resolution per
    game name (the Section 5.1 setting); remaining requests run alone.
    """
    remaining = Counter((r.game, r.resolution) for r in requests)
    # Largest first; deterministic tie-break by the colocation's names.
    pool = sorted(feasible, key=lambda c: (-c.size, c.names))
    result = PackingResult()

    for spec in pool:
        keys = list(spec.entries)
        while all(remaining[key] > 0 for key in keys):
            for key in keys:
                remaining[key] -= 1
            result.servers.append(spec)

    for (game, resolution), count in sorted(remaining.items()):
        for _ in range(count):
            result.servers.append(ColocationSpec(((game, resolution),)))
    return result
