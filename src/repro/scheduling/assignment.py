"""Deprecated location: fixed-fleet assignment moved to :mod:`repro.placement.assignment`.

The Section 5.2 fixed-fleet assigners are placement logic and now live
in the shared placement core alongside the dynamic policies and the
:class:`repro.placement.DecisionEngine`.  This module re-exports the
public surface so existing imports keep working for one release —
update to ``from repro.placement.assignment import ...`` (or
:mod:`repro.placement`).
"""

from repro.placement.assignment import (
    AssignmentResult,
    assign_max_fps,
    assign_worst_fit,
    evaluate_assignment,
)

__all__ = [
    "AssignmentResult",
    "assign_max_fps",
    "assign_worst_fit",
    "evaluate_assignment",
]
