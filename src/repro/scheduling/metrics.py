"""Fleet-level outcome metrics for placement evaluations.

Summaries shared by the Section 5 experiments and anyone comparing
placement policies: QoS statistics over per-request frame rates, Jain's
fairness index (a skewed FPS distribution means some players subsidize
others), and a one-call summary bundle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FleetSummary", "jain_fairness", "qos_satisfaction", "summarize_fleet"]


def jain_fairness(values) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)`` in (0, 1].

    1.0 means perfectly equal allocations; ``1/n`` means one player gets
    everything.
    """
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        raise ValueError("jain_fairness requires non-empty values")
    if np.any(x < 0):
        raise ValueError("jain_fairness requires non-negative values")
    denom = x.size * float(np.sum(x * x))
    if denom == 0.0:
        return 1.0  # all-zero allocations are (degenerately) equal
    return float(np.sum(x)) ** 2 / denom


def qos_satisfaction(fps, qos: float) -> float:
    """Fraction of requests at or above the QoS floor."""
    fps = np.asarray(fps, dtype=float)
    if fps.size == 0:
        raise ValueError("qos_satisfaction requires non-empty fps")
    return float(np.mean(fps >= qos))


@dataclass(frozen=True)
class FleetSummary:
    """Outcome summary of one placement."""

    n_requests: int
    mean_fps: float
    p5_fps: float
    median_fps: float
    qos_satisfaction: float
    fairness: float

    def as_row(self) -> list:
        """Values in table order (for :mod:`repro.experiments.tables`)."""
        return [
            self.n_requests,
            self.mean_fps,
            self.p5_fps,
            self.median_fps,
            self.qos_satisfaction,
            self.fairness,
        ]


def summarize_fleet(fps, qos: float = 60.0) -> FleetSummary:
    """Summarize per-request frame rates of a placement."""
    fps = np.asarray(fps, dtype=float)
    if fps.size == 0:
        raise ValueError("summarize_fleet requires non-empty fps")
    return FleetSummary(
        n_requests=int(fps.size),
        mean_fps=float(fps.mean()),
        p5_fps=float(np.percentile(fps, 5)),
        median_fps=float(np.median(fps)),
        qos_satisfaction=qos_satisfaction(fps, qos),
        fairness=jain_fairness(fps),
    )
