"""GAugur reproduction: interference prediction for colocated cloud games.

Reproduces Li et al., *GAugur: Quantifying Performance Interference of
Colocated Games for Improving Resource Utilization in Cloud Gaming*
(HPDC 2019), on a simulated testbed.  See README.md for a tour, DESIGN.md
for the system inventory, EXPERIMENTS.md for paper-vs-measured results.

Most users want:

* :func:`repro.games.build_catalog` — the simulated game population;
* :class:`repro.profiling.ContentionProfiler` — the offline profiling pass;
* :mod:`repro.core` — training-sample generation, the CM/RM models, and
  the online :class:`~repro.core.InterferencePredictor`;
* :mod:`repro.scheduling` — the Section 5 request schedulers;
* :mod:`repro.serving` — the online dispatcher (broker, admission
  controller, prediction cache, telemetry) behind ``python -m repro serve``;
* :mod:`repro.experiments` — one module per paper figure.
"""

from repro.core import (
    ColocationSpec,
    GAugurClassifier,
    GAugurRegressor,
    InterferencePredictor,
)
from repro.games import REFERENCE_RESOLUTION, Resolution, build_catalog
from repro.hardware import DEFAULT_SERVER, Resource, ServerSpec
from repro.profiling import ContentionProfiler, ProfileDatabase
from repro.simulator import GameInstance, MeasurementConfig, run_colocation

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "build_catalog",
    "Resolution",
    "REFERENCE_RESOLUTION",
    "Resource",
    "ServerSpec",
    "DEFAULT_SERVER",
    "ContentionProfiler",
    "ProfileDatabase",
    "GameInstance",
    "MeasurementConfig",
    "run_colocation",
    "ColocationSpec",
    "GAugurClassifier",
    "GAugurRegressor",
    "InterferencePredictor",
]
