"""Shard supervision: health-checked ring ejection, failover, readmission.

The sharded tier's survival layer.  :class:`ShardSupervisor` runs at
every chunk barrier of the :class:`~repro.sharding.ShardedBroker` drain
— the only points where all shard workers are quiescent — and closes the
loop between the chaos layer's ground truth
(:class:`~repro.sharding.chaos.ShardChaos`) and the routing ring:

1. **Health probing.**  Every ring member is probed once per barrier.  A
   failed probe is retried up to ``max_retries`` times with
   deterministic exponential backoff (``backoff_base_s * 2**attempt``,
   recorded in the ``probe_backoff_s`` histogram whether or not it is
   actually slept), so transient flakes never touch the ring.
2. **Ejection + failover.**  A shard that stays unresponsive is ejected
   from the consistent-hash ring (``ring_ejections``; remapping is
   minimal by construction) and every live session it hosted is evicted
   through the existing migration primitive
   (:meth:`RequestBroker.evict_for_migration`) and re-admitted on its
   ring successor via :meth:`RequestBroker.admit_migrations` — counted
   ``sessions_failed_over`` and traced as a ``failover`` span.  Zero
   sessions are lost: every arrival is either admitted where it was
   routed or failed over, never dropped.
3. **Recovery.**  Each shard's health is tracked by a
   :class:`~repro.placement.breaker.CircuitBreaker` clocked in barriers:
   ejection trips it OPEN, ``cooldown_chunks`` barriers later it goes
   HALF_OPEN and probes the shard again, and ``probe_window`` consecutive
   healthy probes readmit the shard to the ring (``ring_readmissions``,
   with the outage length recorded in the ``shard_recovery_chunks``
   histogram).  A readmitted shard reclaims exactly its old ring arcs,
   so routing converges back to the pre-outage assignment.
4. **Degraded mode.**  When the healthy-shard count drops below
   ``min_healthy``, routing abandons signature affinity and sends every
   arrival to the least-loaded healthy shard (``shard_fallbacks``) until
   the fleet recovers.  Ejecting the *last* healthy shard is refused
   outright (``ejections_suppressed``): a serving tier with zero members
   cannot conserve sessions, so liveness wins over fidelity to the
   chaos schedule.

Everything is deterministic — probes, backoff values, ejections and
failover destinations are pure functions of the chaos seed and the trace
— so a same-seed chaos run is byte-identical in telemetry and traces,
and a supervisor whose chaos layer is inactive is a perfect pass-through.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass

from repro.obs.metrics import Telemetry
from repro.obs.tracing import NOOP_TRACER, Tracer
from repro.placement.breaker import BreakerConfig, BreakerState, CircuitBreaker
from repro.placement.fleet import Session
from repro.serving.broker import RequestBroker
from repro.sharding.chaos import ShardChaos
from repro.sharding.router import ShardRouter

__all__ = ["SupervisorConfig", "ShardSupervisor"]

#: Bucket edges for the ``shard_recovery_chunks`` histogram: recovery
#: times are counted in chunk barriers (small integers), not seconds.
RECOVERY_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128)


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision policy knobs.

    ``min_healthy`` is the healthy-shard floor below which routing
    enters degraded route-to-any-healthy mode; ``max_retries`` and
    ``backoff_base_s`` bound the probe retry loop (backoff doubles per
    attempt and is only slept when the base is nonzero — tests keep it
    at 0 so chaos suites stay fast); ``cooldown_chunks`` and
    ``probe_window`` parameterize the recovery breaker; and
    ``drain_deadline_s`` is an optional wall-clock guard on each chunk
    drain (overruns are counted, never acted on — a tripwire for stuck
    workers, not a determinism hazard).
    """

    min_healthy: int = 1
    max_retries: int = 2
    backoff_base_s: float = 0.0
    cooldown_chunks: int = 2
    probe_window: int = 1
    drain_deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.min_healthy < 1:
            raise ValueError(f"min_healthy must be >= 1, got {self.min_healthy}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s < 0:
            raise ValueError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.cooldown_chunks < 1:
            raise ValueError(
                f"cooldown_chunks must be >= 1, got {self.cooldown_chunks}"
            )
        if self.probe_window < 1:
            raise ValueError(f"probe_window must be >= 1, got {self.probe_window}")
        if self.drain_deadline_s is not None and self.drain_deadline_s <= 0:
            raise ValueError(
                f"drain_deadline_s must be > 0, got {self.drain_deadline_s}"
            )

    def to_dict(self) -> dict:
        """JSON-able form (embedded in the supervision report)."""
        return {
            "min_healthy": self.min_healthy,
            "max_retries": self.max_retries,
            "backoff_base_s": self.backoff_base_s,
            "cooldown_chunks": self.cooldown_chunks,
            "probe_window": self.probe_window,
            "drain_deadline_s": self.drain_deadline_s,
        }


class ShardSupervisor:
    """Barrier-clocked supervision loop over the shard brokers.

    Owns one :class:`CircuitBreaker` per shard (CLOSED = ring member,
    OPEN = ejected and cooling down, HALF_OPEN = probing for
    readmission) and writes its counters, events and spans to the
    *coordinator's* telemetry/tracer — shard-local telemetry only ever
    sees the migration primitives, so per-shard snapshots stay
    comparable with unsupervised runs.
    """

    def __init__(
        self,
        chaos: ShardChaos | None = None,
        config: SupervisorConfig | None = None,
        *,
        telemetry: Telemetry | None = None,
        tracer: Tracer | None = None,
    ):
        self.chaos = chaos
        self.config = config if config is not None else SupervisorConfig()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.degraded = False
        self._breakers: dict[int, CircuitBreaker] = {}
        self._ejected_at: dict[int, tuple[int, float]] = {}  # id -> (barrier, now)
        self._barrier = 0

    @property
    def active(self) -> bool:
        """Whether supervision can observably act (a live chaos schedule)."""
        return self.chaos is not None and self.chaos.config.active

    def bind(self, n_shards: int) -> None:
        """Attach to a tier of ``n_shards`` (one recovery breaker each)."""
        if self.chaos is not None and self.chaos.n_shards != n_shards:
            raise ValueError(
                f"chaos schedule covers {self.chaos.n_shards} shards, "
                f"got {n_shards} brokers"
            )
        self._breakers = {
            shard_id: CircuitBreaker(
                BreakerConfig(
                    failure_threshold=1.0,
                    window=1,
                    min_requests=1,
                    cooldown=self.config.cooldown_chunks,
                    probe_window=self.config.probe_window,
                ),
                name=f"shard-{shard_id}",
            )
            for shard_id in range(n_shards)
        }

    def health_of(self, shard_id: int) -> str:
        """``healthy`` / ``ejected`` / ``probing`` — the Prometheus label."""
        breaker = self._breakers.get(shard_id)
        if breaker is None or breaker.state is BreakerState.CLOSED:
            return "healthy"
        return "probing" if breaker.state is BreakerState.HALF_OPEN else "ejected"

    # -- the barrier loop ----------------------------------------------

    def tick(
        self,
        brokers: Sequence[RequestBroker],
        router: ShardRouter,
        *,
        now: float,
        index: int,
    ) -> None:
        """Run one supervision cycle; must be called between chunk drains."""
        self._barrier += 1
        if not self.active:
            return  # inactive chaos: byte-exact pass-through
        self.chaos.begin_barrier(now)
        ejected_before = sorted(self._ejected_at)
        healthy = set(router.shard_ids)
        with self.tracer.span(
            "supervise",
            barrier=self._barrier,
            arrival_index=index,
            healthy=len(healthy),
        ) as span:
            self.telemetry.counter("supervise_cycles").inc()
            for shard_id in sorted(healthy):
                if self._probe_with_retries(shard_id):
                    continue
                if len(healthy) <= 1:
                    # Refuse to empty the tier: the last shard serves on
                    # through its outage rather than stranding sessions.
                    self.telemetry.counter("ejections_suppressed").inc()
                    self.telemetry.event(
                        "ejection_suppressed",
                        shard=shard_id,
                        time=now,
                        arrival_index=index,
                    )
                    continue
                self._eject(shard_id, brokers, router, now=now, index=index)
                healthy.discard(shard_id)
            for shard_id in ejected_before:
                self._maybe_readmit(shard_id, router, now=now, index=index)
            healthy_now = len(router.ring)
            degraded = healthy_now < self.config.min_healthy
            if degraded != self.degraded:
                self.degraded = degraded
                self.telemetry.counter("degraded_transitions").inc()
                self.telemetry.event(
                    "degraded_mode",
                    active=degraded,
                    healthy=healthy_now,
                    time=now,
                    arrival_index=index,
                )
                self.tracer.instant(
                    "degraded_mode", active=degraded, healthy=healthy_now
                )
            self.telemetry.gauge("healthy_shards").set(healthy_now)
            span.set(ejected=len(self._ejected_at), degraded=self.degraded)

    def _probe_with_retries(self, shard_id: int) -> bool:
        ok = self.chaos.probe(shard_id)
        attempt = 0
        while not ok and attempt < self.config.max_retries:
            backoff = self.config.backoff_base_s * (2**attempt)
            self.telemetry.counter("probe_retries").inc()
            self.telemetry.histogram(
                "probe_backoff_s"
            ).observe(backoff)
            if backoff > 0:
                time.sleep(backoff)
            attempt += 1
            ok = self.chaos.probe(shard_id)
        if ok and attempt:
            self.telemetry.counter("shard_flakes_recovered").inc()
        return ok

    def _eject(
        self,
        shard_id: int,
        brokers: Sequence[RequestBroker],
        router: ShardRouter,
        *,
        now: float,
        index: int,
    ) -> None:
        self._breakers[shard_id].record(False)  # single failure trips OPEN
        router.remove_shard(shard_id)
        self._ejected_at[shard_id] = (self._barrier, now)
        self.telemetry.counter("shard_outages").inc()
        self.telemetry.counter("ring_ejections").inc()
        self.telemetry.event(
            "shard_outage", shard=shard_id, time=now, arrival_index=index
        )
        broker = brokers[shard_id]
        evicted: list[Session] = []
        for server_id in list(broker.fleet.server_ids()):
            evicted.extend(
                broker.evict_for_migration(
                    server_id, now=now, index=index, reason="failover"
                )
            )
        with self.tracer.span(
            "failover", shard=shard_id, sessions=len(evicted), arrival_index=index
        ) as span:
            per_dest: dict[int, list[Session]] = {}
            for session in evicted:
                dest = self._destination(session, router, brokers)
                per_dest.setdefault(dest, []).append(session)
            for dest in sorted(per_dest):
                brokers[dest].admit_migrations(per_dest[dest], index, now=now)
            self.telemetry.counter("sessions_failed_over").inc(len(evicted))
            span.set(destinations=sorted(per_dest))
        self.telemetry.event(
            "failover",
            shard=shard_id,
            sessions=len(evicted),
            time=now,
            arrival_index=index,
        )

    def _maybe_readmit(
        self, shard_id: int, router: ShardRouter, *, now: float, index: int
    ) -> None:
        breaker = self._breakers[shard_id]
        if not breaker.allow():  # OPEN: still inside the recovery backoff
            return
        breaker.record(self.chaos.probe(shard_id))
        if breaker.state is not BreakerState.CLOSED:
            return
        router.add_shard(shard_id)
        ejected_barrier, _ = self._ejected_at.pop(shard_id)
        self.telemetry.counter("ring_readmissions").inc()
        self.telemetry.histogram(
            "shard_recovery_chunks", buckets=RECOVERY_BUCKETS
        ).observe(self._barrier - ejected_barrier)
        self.telemetry.event(
            "shard_readmitted",
            shard=shard_id,
            time=now,
            arrival_index=index,
            down_chunks=self._barrier - ejected_barrier,
        )
        self.tracer.instant("shard_readmitted", shard=shard_id)

    # -- routing hooks --------------------------------------------------

    def route(
        self,
        session,
        index: int,
        router: ShardRouter,
        brokers: Sequence[RequestBroker],
    ) -> int:
        """Route one arrival, honoring degraded mode.

        Healthy fleets route by signature affinity exactly as an
        unsupervised tier would; below the ``min_healthy`` floor every
        arrival goes to the least-loaded healthy shard instead
        (``shard_fallbacks``), trading cache affinity for survival.
        """
        if not self.degraded:
            return router.route(session, index)
        self.telemetry.counter("shard_fallbacks").inc()
        shard = min(
            router.shard_ids, key=lambda i: (brokers[i].fleet.n_live, i)
        )
        return router.route_forced(session, index, shard)

    def _destination(
        self,
        session,
        router: ShardRouter,
        brokers: Sequence[RequestBroker],
    ) -> int:
        if len(router.ring) < self.config.min_healthy:
            self.telemetry.counter("shard_fallbacks").inc()
            return min(
                router.shard_ids, key=lambda i: (brokers[i].fleet.n_live, i)
            )
        return router.shard_of(session)

    # -- reporting ------------------------------------------------------

    def snapshot(self) -> dict:
        """The supervision section of the sharded report."""
        return {
            "config": self.config.to_dict(),
            "chaos": self.chaos.config.to_dict() if self.chaos else None,
            "degraded": self.degraded,
            "ejected": sorted(self._ejected_at),
            "health": {
                str(shard_id): self.health_of(shard_id)
                for shard_id in sorted(self._breakers)
            },
            "breakers": {
                str(shard_id): breaker.to_dict()
                for shard_id, breaker in sorted(self._breakers.items())
            },
        }
