"""Occupancy-driven session migration between fleet shards.

Consistent hashing balances *keys*, not *load*: a shard that owns a hot
game's arc can end up hosting far more live sessions than its peers.
The :class:`Rebalancer` is the corrective loop — at every barrier the
sharded broker exposes (once per routed chunk), it compares per-shard
live-session occupancy (the O(1) :attr:`FleetState.n_live`) and, when
the hottest shard exceeds ``hot_factor`` times the mean, moves one
server's worth of sessions from it to the coldest shard.

The transport is the crash→evict→readmit primitive the broker already
has — :meth:`RequestBroker.evict_for_migration` on the source,
:meth:`RequestBroker.admit_migrations` on the destination — so migrated
sessions re-enter admission through the same single decision path as
every other arrival.  The ledger is distinct (``migrations`` /
``sessions_migrated_*`` counters, ``migrated=True`` records), never
``server_crashes``: planned moves must not read as failures.

Every decision is a pure function of shard occupancies at the barrier,
so sharded runs stay deterministic with rebalancing enabled — same
seed, same migrations.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.obs.metrics import Telemetry
from repro.obs.tracing import NOOP_TRACER, Tracer
from repro.serving.broker import RequestBroker

__all__ = ["RebalanceConfig", "Rebalancer"]


@dataclass(frozen=True)
class RebalanceConfig:
    """Tuning for the occupancy rebalancer.

    ``interval`` is the number of routed arrivals between checks (the
    sharded broker also uses it as its chunk size so checks land on
    deterministic barriers); 0 disables rebalancing entirely.
    ``hot_factor`` is the occupancy multiple of the fleet mean beyond
    which a shard counts as hot; ``max_moves`` caps server migrations
    per cycle so one check never stalls the drain.
    """

    interval: int = 2048
    hot_factor: float = 1.5
    max_moves: int = 4

    def __post_init__(self) -> None:
        if self.interval < 0:
            raise ValueError(f"interval must be >= 0, got {self.interval}")
        if self.hot_factor < 1.0:
            raise ValueError(f"hot_factor must be >= 1, got {self.hot_factor}")
        if self.max_moves < 1:
            raise ValueError(f"max_moves must be >= 1, got {self.max_moves}")


class Rebalancer:
    """Moves sessions from hot shards to cold ones at drain barriers."""

    def __init__(
        self,
        config: RebalanceConfig | None = None,
        *,
        telemetry: Telemetry | None = None,
        tracer: Tracer | None = None,
    ):
        self.config = config if config is not None else RebalanceConfig()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.tracer = tracer if tracer is not None else NOOP_TRACER

    def rebalance(
        self,
        brokers: Sequence[RequestBroker],
        *,
        now: float,
        index: int,
        healthy: Sequence[int] | None = None,
    ) -> int:
        """Run one cycle against the shard brokers; returns sessions moved.

        ``now`` is the barrier's logical time (the last routed arrival)
        and ``index`` its global arrival index; both only label events
        and spans.  ``healthy`` restricts the cycle to a subset of shard
        ids (the supervisor passes the current ring members so sessions
        are never rebalanced *onto* an ejected shard); ``None`` means
        all shards, which is bit-for-bit the pre-supervision behaviour.
        Must be called while no shard worker is draining — the sharded
        broker guarantees this by rebalancing only between chunks.
        """
        self.telemetry.counter("rebalance_cycles").inc()
        ids = list(range(len(brokers))) if healthy is None else sorted(healthy)
        n = len(ids)
        if n < 2:
            return 0
        loads = {i: brokers[i].fleet.n_live for i in ids}
        total = sum(loads.values())
        if total == 0:
            return 0
        mean = total / n
        moved = 0
        for _ in range(self.config.max_moves):
            hot = max(ids, key=lambda i: (loads[i], -i))
            cold = min(ids, key=lambda i: (loads[i], i))
            if hot == cold or loads[hot] <= self.config.hot_factor * mean:
                break
            server_loads = brokers[hot].fleet.loads()
            if not server_loads:
                break
            # Smallest server first: least disruption per move, and the
            # gap guard keeps a move from overshooting past the mean
            # (which would just invert the imbalance and thrash).
            victim = min(server_loads, key=lambda sid: (server_loads[sid], sid))
            if server_loads[victim] > (loads[hot] - loads[cold]) / 2:
                break
            with self.tracer.span(
                "migrate",
                from_shard=hot,
                to_shard=cold,
                server_id=victim,
                arrival_index=index,
            ) as span:
                sessions = brokers[hot].evict_for_migration(
                    victim, now=now, index=index
                )
                brokers[cold].admit_migrations(sessions, index, now=now)
                span.set(sessions=len(sessions))
            self.telemetry.counter("rebalance_migrations").inc()
            self.telemetry.counter("rebalance_sessions_moved").inc(len(sessions))
            loads[hot] -= len(sessions)
            loads[cold] += len(sessions)
            moved += len(sessions)
        if moved:
            self.telemetry.event(
                "rebalance",
                time=now,
                arrival_index=index,
                sessions_moved=moved,
            )
        return moved
