"""Session → shard routing over the consistent-hash ring.

:class:`ShardRouter` keys each session by its canonical game signature
entry — the same ``(game, resolution)`` pair
:func:`repro.placement.signature.entry_of` feeds the placement stack —
so every session of the same game at the same resolution lands on the
same shard.  That affinity is what makes sharding *help* placement
rather than fragment it: a shard accumulates the servers hosting its own
games, so colocation candidates for an arriving session live on its own
shard and the per-shard prediction caches stay hot.

Routing is a pure function of the key and the ring layout, memoized per
``(game, resolution)`` entry, so steady-state routing is one dict hit —
cheap enough to sit in front of a million-session drain.  When a tracer
is active each routed session opens a ``route`` span (the layer above
the per-shard ``request`` spans), recording the key and chosen shard.
"""

from __future__ import annotations

from repro.obs.tracing import NOOP_TRACER, Tracer
from repro.placement.signature import entry_of
from repro.sharding.ring import HashRing

__all__ = ["routing_key", "ShardRouter"]


def routing_key(session) -> str:
    """Canonical routing key: the session's signature entry as text."""
    game, resolution = entry_of(session)
    return f"{game}@{resolution.width}x{resolution.height}"


class ShardRouter:
    """Route sessions onto shard ids ``0..n_shards-1`` by game signature.

    The ring is fixed for the life of a serve run — the rebalancer moves
    *sessions* between shards, never ring arcs — so the memo table only
    needs invalidating on explicit :meth:`add_shard` /
    :meth:`remove_shard` topology changes.
    """

    def __init__(
        self,
        n_shards: int,
        *,
        vnodes: int = 96,
        tracer: Tracer | None = None,
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.ring = HashRing(range(n_shards), vnodes=vnodes)
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self._memo: dict[tuple, int] = {}

    @property
    def n_shards(self) -> int:
        return len(self.ring)

    @property
    def shard_ids(self) -> list[int]:
        return self.ring.nodes

    def shard_of(self, session) -> int:
        """The shard owning ``session`` (memoized ring lookup)."""
        entry = entry_of(session)
        shard = self._memo.get(entry)
        if shard is None:
            shard = self.ring.lookup(routing_key(session))
            self._memo[entry] = shard
        return shard

    def route(self, session, index: int) -> int:
        """Route one arrival, opening a ``route`` span when tracing."""
        if not self.tracer.enabled:
            return self.shard_of(session)
        with self.tracer.span(
            "route",
            request=index,
            game=session.game,
            resolution=str(session.resolution),
        ) as span:
            shard = self.shard_of(session)
            span.set(shard=shard)
        return shard

    def route_forced(self, session, index: int, shard: int) -> int:
        """Route one arrival to a caller-chosen shard (degraded mode).

        The supervisor uses this below its healthy-shard floor: affinity
        is abandoned in favor of any shard still standing.  The span is
        marked ``fallback=True`` so traces distinguish forced routes
        from ring lookups.
        """
        if not self.tracer.enabled:
            return shard
        with self.tracer.span(
            "route",
            request=index,
            game=session.game,
            resolution=str(session.resolution),
        ) as span:
            span.set(shard=shard, fallback=True)
        return shard

    # -- topology -------------------------------------------------------

    def add_shard(self, shard_id: int) -> None:
        """Join a shard; only ~1/N of the key space re-routes to it."""
        self.ring.add(shard_id)
        self._memo.clear()

    def remove_shard(self, shard_id: int) -> None:
        """Drop a shard; its arcs fall to the surviving shards."""
        self.ring.remove(shard_id)
        self._memo.clear()
