"""Sharded multi-broker serving: route, drain, rebalance, supervise.

The scale-out tier above the single-fleet serving stack
(:mod:`repro.serving`).  A consistent-hash ring (:class:`HashRing`)
routes sessions by canonical game signature (:class:`ShardRouter`) onto
N independent broker shards (:class:`ShardedBroker` +
:func:`build_shard_brokers`), an occupancy-driven :class:`Rebalancer`
migrates sessions off hot shards between drain chunks, and a
:class:`ShardSupervisor` keeps the tier alive through whole-shard
outages — seeded chaos (:class:`ShardChaos`) kills shards, the
supervisor ejects them from the ring, fails their sessions over, and
readmits them after half-open probing.  Per-shard telemetry merges into
one shard-labeled snapshot; ``repro serve --shards N`` is the CLI
frontend and ``benchmarks/bench_sharded.py`` the scale proof.
"""

from repro.sharding.broker import (
    ShardConfig,
    ShardedBroker,
    ShardedReport,
    build_shard_brokers,
)
from repro.sharding.chaos import (
    OutageWindow,
    ShardChaos,
    ShardChaosConfig,
    parse_outage_window,
)
from repro.sharding.rebalance import RebalanceConfig, Rebalancer
from repro.sharding.ring import HashRing, stable_hash
from repro.sharding.router import ShardRouter, routing_key
from repro.sharding.supervisor import ShardSupervisor, SupervisorConfig

__all__ = [
    "HashRing",
    "stable_hash",
    "ShardRouter",
    "routing_key",
    "ShardConfig",
    "ShardedBroker",
    "ShardedReport",
    "build_shard_brokers",
    "RebalanceConfig",
    "Rebalancer",
    "OutageWindow",
    "ShardChaos",
    "ShardChaosConfig",
    "parse_outage_window",
    "ShardSupervisor",
    "SupervisorConfig",
]
