"""Sharded multi-broker serving: route, drain, rebalance, merge.

The scale-out tier above the single-fleet serving stack
(:mod:`repro.serving`).  A consistent-hash ring (:class:`HashRing`)
routes sessions by canonical game signature (:class:`ShardRouter`) onto
N independent broker shards (:class:`ShardedBroker` +
:func:`build_shard_brokers`), and an occupancy-driven
:class:`Rebalancer` migrates sessions off hot shards between drain
chunks.  Per-shard telemetry merges into one shard-labeled snapshot;
``repro serve --shards N`` is the CLI frontend and
``benchmarks/bench_sharded.py`` the scale proof.
"""

from repro.sharding.broker import (
    ShardConfig,
    ShardedBroker,
    ShardedReport,
    build_shard_brokers,
)
from repro.sharding.rebalance import RebalanceConfig, Rebalancer
from repro.sharding.ring import HashRing, stable_hash
from repro.sharding.router import ShardRouter, routing_key

__all__ = [
    "HashRing",
    "stable_hash",
    "ShardRouter",
    "routing_key",
    "ShardConfig",
    "ShardedBroker",
    "ShardedReport",
    "build_shard_brokers",
    "RebalanceConfig",
    "Rebalancer",
]
