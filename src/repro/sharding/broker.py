"""The sharded serving tier: N broker shards behind one router.

A single :class:`~repro.serving.RequestBroker` is an event loop over one
fleet; at millions of sessions its decision cost grows with the pool and
one Python thread caps throughput.  :class:`ShardedBroker` scales the
tier *out* instead: arrivals are routed by canonical game signature over
a consistent-hash ring (:class:`~repro.sharding.ShardRouter`) onto N
shard workers, each owning a full, independent serving stack — its own
:class:`~repro.placement.FleetState`, decision engine, prediction cache,
telemetry and tracer.  Shards share only immutable inputs (the profile
database and trained models, behind per-shard predictor facades), so
they drain concurrently without locks and every shard is a deterministic
function of its own arrival subsequence and seed
(``derive_seed(seed, "shard", shard_id)`` for chaos substreams).

The drain alternates routing and serving in chunks: the coordinator
routes a chunk of the arrival-ordered trace into per-shard batches, the
workers drain their batches in parallel, and the chunk boundary is a
barrier where the :class:`~repro.sharding.Rebalancer` (if configured)
may migrate sessions between quiescent shards — which is what keeps
rebalanced runs deterministic under a fixed seed.

Reporting merges the per-shard telemetry snapshots with
:func:`~repro.obs.label_snapshot` + :func:`~repro.obs.merge_snapshots`:
the merged snapshot carries fleet-wide totals at the top level and
intact per-shard series (``shard`` label) underneath, so one Prometheus
exposition shows both views.  With one shard the worker replays exactly
the unsharded broker's code path — ``--shards 1`` telemetry is
byte-identical to :meth:`RequestBroker.run` at the same seed (the
parity tests pin this).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as DrainTimeout
from dataclasses import dataclass, field
from itertools import islice

from repro.games.resolution import DegradeLadder
from repro.obs.metrics import Telemetry, label_snapshot, merge_all
from repro.obs.tracing import NOOP_TRACER, Tracer
from repro.placement.fleet import Session
from repro.serving.broker import RequestBroker, ServingReport
from repro.sharding.rebalance import Rebalancer
from repro.sharding.router import ShardRouter
from repro.sharding.supervisor import ShardSupervisor
from repro.utils.rng import derive_seed

__all__ = [
    "ShardConfig",
    "ShardedReport",
    "ShardedBroker",
    "build_shard_brokers",
]

#: Chunk size for the route → drain alternation when no rebalance
#: interval dictates one: large enough to amortize thread handoff,
#: small enough to keep per-chunk batch lists cache-friendly.
DEFAULT_CHUNK = 8192


@dataclass(frozen=True)
class ShardConfig:
    """Per-shard serving-stack knobs (mirrors ``repro serve``'s flags).

    One config builds every shard; the only per-shard variation is the
    seed-derived chaos substream (``derive_seed(seed, "shard", id)``), so
    adding a shard never perturbs another shard's randomness.
    """

    policy: str = "cm-feasible"
    qos: float = 60.0
    cache_size: int = 4096
    max_colocation: int = 4
    fault_rate: float = 0.0
    crash_rate: float = 0.0
    decision_deadline_s: float | None = None
    breaker_threshold: float = 0.5
    seed: int = 0
    keep_records: bool = True
    #: Per-session FPS target for the QoS ledger; ``None`` disables
    #: ground-truth accounting entirely (zero overhead, byte-identical
    #: reports to pre-ledger runs).
    slo_fps: float | None = None
    #: SLO error budget: tolerated fraction of a session's lifetime below
    #: ``slo_fps`` before its budget burns.
    qos_budget: float = 0.05
    #: Resolution ladder for the downscale actuator; ``None`` disables
    #: quality degradation entirely (byte-identical to pre-actuator runs).
    degrade_ladder: DegradeLadder | None = None


def build_shard_brokers(
    predictor,
    n_shards: int,
    config: ShardConfig | None = None,
    *,
    tracers: Sequence[Tracer] | None = None,
    catalog=None,
) -> list[RequestBroker]:
    """Build ``n_shards`` independent broker stacks over one predictor.

    Each shard gets its own telemetry, prediction cache, fault injector,
    policy chain, decision engine and (optionally) tracer; the expensive
    immutable inputs — profile database and trained models — are shared
    through a per-shard :class:`~repro.core.InterferencePredictor`
    facade, so instrumentation and caches never cross shard boundaries.

    With ``config.slo_fps`` set, each shard additionally carries its own
    :class:`~repro.obs.qos.QoSLedger` over ``catalog`` (required then):
    qos metrics stay shard-private like every other mutable piece and
    merge exactly through the labeled-snapshot machinery.
    """
    from repro.core.predictor import InterferencePredictor
    from repro.placement import BreakerConfig, PredictionCache, build_policy
    from repro.serving.admission import AdmissionController
    from repro.serving.faults import FaultConfig, FaultInjector

    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if tracers is not None and len(tracers) != n_shards:
        raise ValueError(f"need {n_shards} tracers, got {len(tracers)}")
    config = config if config is not None else ShardConfig()
    if config.slo_fps is not None and catalog is None:
        raise ValueError("slo_fps accounting needs a game catalog")
    brokers = []
    for shard_id in range(n_shards):
        telemetry = Telemetry()
        facade = InterferencePredictor(
            predictor.db,
            classifier=predictor.classifier,
            regressor=predictor.regressor,
        )
        fault_config = FaultConfig(
            error_rate=config.fault_rate,
            seed=derive_seed(config.seed, "shard", shard_id),
        )
        injector = (
            FaultInjector(fault_config, telemetry=telemetry)
            if fault_config.active
            else None
        )
        policy, fallback = build_policy(
            config.policy,
            predictor=facade,
            qos=config.qos,
            cache=PredictionCache(config.cache_size),
            max_colocation=config.max_colocation,
            injector=injector,
        )
        controller = AdmissionController(
            policy,
            fallback=fallback,
            telemetry=telemetry,
            breaker=BreakerConfig(failure_threshold=config.breaker_threshold),
            decision_deadline_s=config.decision_deadline_s,
            tracer=tracers[shard_id] if tracers is not None else None,
            downscale_ladder=config.degrade_ladder,
        )
        ledger = None
        if config.slo_fps is not None:
            from repro.obs.qos import QoSLedger

            ledger = QoSLedger(
                catalog,
                facade,
                slo_fps=config.slo_fps,
                budget_fraction=config.qos_budget,
            )
        brokers.append(
            RequestBroker(
                controller,
                crash_rate=config.crash_rate,
                crash_seed=derive_seed(config.seed, "shard", shard_id),
                keep_records=config.keep_records,
                ledger=ledger,
            )
        )
    return brokers


@dataclass
class ShardedReport:
    """Everything one sharded drain produced.

    ``telemetry`` is the shard-labeled merge of every shard's snapshot
    (fleet totals at the top level, per-shard series under ``labeled``);
    ``coordinator`` is the router/rebalancer's own snapshot (routing
    volume and latency, rebalance cycles).  ``peak_servers`` sums the
    per-shard peaks — the fleet's provisioning envelope when every shard
    is a separate capacity pool.
    """

    shard_reports: list[ServingReport]
    telemetry: dict = field(default_factory=dict)
    coordinator: dict = field(default_factory=dict)
    supervision: dict = field(default_factory=dict)
    qos: dict = field(default_factory=dict)

    @property
    def n_shards(self) -> int:
        return len(self.shard_reports)

    @property
    def n_sessions(self) -> int:
        """Original arrivals routed (not re-admissions or migrations)."""
        return sum(r.n_arrivals for r in self.shard_reports)

    @property
    def shard_sessions(self) -> list[int]:
        """Arrivals per shard, in shard-id order (balance at a glance)."""
        return [r.n_arrivals for r in self.shard_reports]

    @property
    def servers_opened(self) -> int:
        return sum(r.servers_opened for r in self.shard_reports)

    @property
    def peak_servers(self) -> int:
        return sum(r.peak_servers for r in self.shard_reports)

    @property
    def migrations(self) -> int:
        """Server migrations executed across all shards (source side)."""
        return sum(
            r.telemetry.get("counters", {}).get("migrations", 0)
            for r in self.shard_reports
        )

    @property
    def sessions_migrated(self) -> int:
        return sum(
            r.telemetry.get("counters", {}).get("sessions_migrated_out", 0)
            for r in self.shard_reports
        )

    @property
    def sessions_failed_over(self) -> int:
        """Sessions evicted off dead shards and re-admitted elsewhere."""
        return self.coordinator.get("counters", {}).get("sessions_failed_over", 0)

    def to_dict(self) -> dict:
        """JSON-able summary plus per-shard reports.

        ``supervision`` only appears when a supervisor actually ran —
        unsupervised (and zero-chaos) reports stay byte-identical to
        pre-supervision output.
        """
        out = {
            "n_sessions": self.n_sessions,
            "n_shards": self.n_shards,
            "shard_sessions": self.shard_sessions,
            "servers_opened": self.servers_opened,
            "peak_servers": self.peak_servers,
            "migrations": self.migrations,
            "sessions_migrated": self.sessions_migrated,
            "coordinator": self.coordinator,
            "telemetry": self.telemetry,
            "shards": [r.to_dict() for r in self.shard_reports],
        }
        if self.supervision:
            out["supervision"] = self.supervision
        if self.qos:
            out["qos"] = self.qos
        return out


class ShardedBroker:
    """Coordinator: route a trace across shard brokers and merge reports.

    ``brokers`` own all mutable serving state; the coordinator owns only
    the router, its own telemetry, and the drain loop.  ``parallel=False``
    drains shards sequentially on the calling thread (useful under
    profilers); results are identical either way because workers share
    nothing.
    """

    def __init__(
        self,
        brokers: Sequence[RequestBroker],
        *,
        router: ShardRouter | None = None,
        rebalancer: Rebalancer | None = None,
        supervisor: ShardSupervisor | None = None,
        telemetry: Telemetry | None = None,
        tracer: Tracer | None = None,
        parallel: bool = True,
        chunk_size: int | None = None,
    ):
        if not brokers:
            raise ValueError("need at least one shard broker")
        self.brokers = list(brokers)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.router = (
            router
            if router is not None
            else ShardRouter(len(self.brokers), tracer=self.tracer)
        )
        if self.router.n_shards != len(self.brokers):
            raise ValueError(
                f"router covers {self.router.n_shards} shards, "
                f"got {len(self.brokers)} brokers"
            )
        self.rebalancer = rebalancer
        self.supervisor = supervisor
        if supervisor is not None:
            # Adopt the supervisor: its counters, events and spans land in
            # the coordinator's telemetry/tracer, so one snapshot carries
            # routing volume and the resilience timeline side by side.
            supervisor.telemetry = self.telemetry
            supervisor.tracer = self.tracer
            supervisor.bind(len(self.brokers))
        # Supervision only observably acts when the chaos schedule can
        # fire; gating here keeps zero-chaos runs byte-exact pass-throughs.
        self._supervising = supervisor is not None and supervisor.active
        # Degraded-session promotion runs at chunk barriers only when at
        # least one shard carries an operable restore path; gating keeps
        # ladder-less runs byte-exact.
        self._restoring = any(
            getattr(b.controller, "can_restore", False) for b in self.brokers
        )
        self.parallel = bool(parallel)
        if chunk_size is None:
            interval = rebalancer.config.interval if rebalancer is not None else 0
            chunk_size = interval if interval > 0 else DEFAULT_CHUNK
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = int(chunk_size)

    def _drain(self, shard_id: int, batch: list[tuple[int, Session]]) -> None:
        broker = self.brokers[shard_id]
        for index, session in batch:
            broker.submit(session, index)

    def run(
        self, sessions: Iterable[Session], *, presorted: bool = False
    ) -> ShardedReport:
        """Route and drain ``sessions``; returns the merged report.

        ``presorted=True`` promises the iterable is already in
        nondecreasing arrival order (what the trace generators emit) and
        streams it without materializing — the memory valve that lets
        the scale benchmark push millions of sessions.
        """
        stream = (
            iter(sessions)
            if presorted
            else iter(sorted(sessions, key=lambda s: s.arrival))
        )
        for broker in self.brokers:
            broker.start()
        n_shards = len(self.brokers)
        pool = (
            ThreadPoolExecutor(
                max_workers=n_shards, thread_name_prefix="shard"
            )
            if self.parallel and n_shards > 1
            else None
        )
        deadline = (
            self.supervisor.config.drain_deadline_s if self._supervising else None
        )
        index = 0
        try:
            while True:
                chunk = list(islice(stream, self.chunk_size))
                if not chunk:
                    break
                # Supervision barrier first: outages fire and failover
                # completes *before* routing, so every arrival in this
                # chunk is routed against a ring of healthy shards and no
                # session can land on a shard that dies mid-chunk.
                if self._supervising:
                    self.supervisor.tick(
                        self.brokers,
                        self.router,
                        now=chunk[0].arrival,
                        index=index,
                    )
                batches: list[list[tuple[int, Session]]] = [
                    [] for _ in range(n_shards)
                ]
                with self.telemetry.time("route_batch_s"):
                    if self._supervising:
                        for session in chunk:
                            shard = self.supervisor.route(
                                session, index, self.router, self.brokers
                            )
                            batches[shard].append((index, session))
                            index += 1
                    else:
                        for session in chunk:
                            batches[self.router.route(session, index)].append(
                                (index, session)
                            )
                            index += 1
                self.telemetry.counter("routed").inc(len(chunk))
                if pool is not None:
                    futures = [
                        pool.submit(self._drain, shard_id, batch)
                        for shard_id, batch in enumerate(batches)
                        if batch
                    ]
                    for future in futures:
                        if deadline is None:
                            future.result()
                            continue
                        try:
                            future.result(timeout=deadline)
                        except DrainTimeout:
                            # Tripwire only: count the overrun, then wait
                            # it out — abandoning a drain mid-chunk would
                            # lose sessions, the one thing we must not do.
                            self.telemetry.counter(
                                "drain_deadline_exceeded"
                            ).inc()
                            future.result()
                else:
                    for shard_id, batch in enumerate(batches):
                        if batch:
                            self._drain(shard_id, batch)
                # Chunk boundary: every worker is quiescent, so shard
                # occupancies are stable and migration is deterministic.
                if self.rebalancer is not None:
                    self.rebalancer.rebalance(
                        self.brokers,
                        now=chunk[-1].arrival,
                        index=index - 1,
                        healthy=(
                            self.router.shard_ids if self._supervising else None
                        ),
                    )
                # Restore after any migration settled: each shard
                # re-promotes downscale-degraded sessions its freed (or
                # rebalanced) capacity now supports.  Sessions migrated
                # while degraded keep their state (the whole Session
                # object travels), so the destination shard promotes them.
                if self._restoring:
                    for broker in self.brokers:
                        broker.restore_degraded(
                            now=chunk[-1].arrival, index=index - 1
                        )
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
        reports = [broker.finish() for broker in self.brokers]
        if self._supervising:
            # The conservation invariant, as a metric: every routed
            # arrival was submitted to exactly one shard.  Nonzero here
            # means the tier dropped sessions — the bench guard and the
            # chaos-smoke CI job both fail on any growth from zero.
            routed = self.telemetry.counter("routed").value
            arrived = sum(r.n_arrivals for r in reports)
            self.telemetry.counter("sessions_lost").inc(max(0, routed - arrived))
        labeled = []
        for shard_id, report in enumerate(reports):
            if self._supervising:
                labels = {
                    "shard": shard_id,
                    "health": self.supervisor.health_of(shard_id),
                }
            else:
                labels = {"shard": shard_id}
            labeled.append(label_snapshot(report.telemetry, **labels))
        merged = merge_all(labeled)
        # Fleet-wide qos: derived from the *merged* snapshot, so the
        # calibration stats are exactly what one giant ledger would have
        # reported (every stat reduces to histogram totals/counts).
        qos: dict = {}
        ledgers = [b.ledger for b in self.brokers if b.ledger is not None]
        if ledgers:
            from repro.obs.qos import build_qos_section

            built = build_qos_section(
                merged,
                slo_fps=ledgers[0].slo_fps,
                budget_fraction=ledgers[0].budget_fraction,
            )
            qos = built if built is not None else {}
        return ShardedReport(
            shard_reports=reports,
            telemetry=merged,
            coordinator=self.telemetry.snapshot(),
            supervision=self.supervisor.snapshot() if self._supervising else {},
            qos=qos,
        )
