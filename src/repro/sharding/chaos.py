"""Shard-level chaos: seeded whole-shard outages and transient flakes.

PR 2's fault model stops at the component layer (a lying predictor, a
crashing server inside one fleet); this module models the failure domain
above it — an entire broker shard dropping out of the serving tier, the
way a rack loses power or a worker process is OOM-killed.  It is the
*generative* half of shard supervision: :class:`ShardChaos` decides,
deterministically, which shards are down when, and the
:class:`~repro.sharding.ShardSupervisor` only ever observes that world
through :meth:`ShardChaos.probe` — exactly the information a real health
checker would have.

Failures come in two severities:

- **outages** — the shard stops responding for ``outage_chunks``
  consecutive chunk barriers (probe retries cannot save it; the
  supervisor must eject it from the ring and fail its sessions over);
- **flakes** — one probe fails and the next succeeds (a dropped health
  check, a GC pause); the supervisor's bounded retry loop absorbs these
  without touching the ring.

Rates are per shard per chunk barrier.  The base ``outage_rate`` can be
shaped in time by :class:`~repro.serving.faults.InjectionWindow` outage
windows (start/duration/intensity, optionally targeting one shard), so a
test can script "kill shard 2 a third of the way into the trace" as
data.  Every draw comes from the shard's own substream
(``derive_seed(seed, "shard-chaos", shard_id)``), so adding a shard
never perturbs another shard's schedule, a zero-rate configuration never
touches an RNG, and the same seed replays the same outages byte for
byte.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serving.faults import InjectionWindow, windowed_rate
from repro.utils.rng import derive_seed, spawn_rng

__all__ = [
    "OutageWindow",
    "parse_outage_window",
    "ShardChaosConfig",
    "ShardChaos",
]

#: Shard-targeted alias of the generic time-varying injection window.
OutageWindow = InjectionWindow


def parse_outage_window(text: str) -> InjectionWindow:
    """Parse ``START:DURATION:RATE[@SHARD]`` into an outage window.

    Times are in the trace's logical units (arrival minutes); ``RATE``
    is the per-barrier outage probability while the window is open;
    ``@SHARD`` restricts the window to one shard id (all shards when
    omitted).  Raises ``ValueError`` with the offending text on any
    malformed input — the CLI surfaces that as a one-line error.
    """
    body, at, shard_text = text.partition("@")
    parts = body.split(":")
    if len(parts) != 3:
        raise ValueError(
            f"bad outage window {text!r} (expected START:DURATION:RATE[@SHARD])"
        )
    try:
        start, duration, rate = (float(p) for p in parts)
        target = int(shard_text) if at else None
    except ValueError as exc:
        raise ValueError(
            f"bad outage window {text!r} (expected START:DURATION:RATE[@SHARD])"
        ) from exc
    return InjectionWindow(start=start, duration=duration, rate=rate, target=target)


@dataclass(frozen=True)
class ShardChaosConfig:
    """Shard-outage schedule knobs and seed.

    ``outage_rate`` and ``flake_rate`` are per shard per chunk barrier;
    ``outage_chunks`` is how many barriers a shard stays down once an
    outage fires (its recovery is deterministic, so the supervisor's
    backoff/probe loop — not luck — decides when it rejoins the ring).
    ``windows`` add time-varying outage probability on top of the base
    rate.
    """

    outage_rate: float = 0.0
    flake_rate: float = 0.0
    outage_chunks: int = 4
    windows: tuple[InjectionWindow, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for field in ("outage_rate", "flake_rate"):
            rate = getattr(self, field)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{field} must be in [0, 1], got {rate}")
        if self.outage_chunks < 1:
            raise ValueError(
                f"outage_chunks must be >= 1, got {self.outage_chunks}"
            )

    @property
    def active(self) -> bool:
        """True when any outage source is configured."""
        return bool(self.outage_rate or self.flake_rate or self.windows)

    def to_dict(self) -> dict:
        """JSON-able form (embedded in the supervision report)."""
        return {
            "outage_rate": self.outage_rate,
            "flake_rate": self.flake_rate,
            "outage_chunks": self.outage_chunks,
            "windows": [w.to_dict() for w in self.windows],
            "seed": self.seed,
        }


class ShardChaos:
    """The ground truth of shard availability, advanced barrier by barrier.

    The sharded broker's coordinator calls :meth:`begin_barrier` once
    per chunk barrier (with the barrier's logical time, for the outage
    windows); the supervisor then issues :meth:`probe` calls against
    individual shards.  Event draws happen at most once per shard per
    barrier — on the first probe — so retry probes and half-open
    recovery probes observe a stable world instead of rerolling it.
    """

    def __init__(self, config: ShardChaosConfig, n_shards: int):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.config = config
        self.n_shards = int(n_shards)
        self._rngs = [
            spawn_rng(derive_seed(config.seed, "shard-chaos", shard_id))
            for shard_id in range(self.n_shards)
        ]
        self._down_until = [0] * self.n_shards  # exclusive barrier index
        self._flaky = [0] * self.n_shards  # failed probes left this barrier
        self._drawn = [False] * self.n_shards
        self._barrier = 0
        self._now = 0.0

    def begin_barrier(self, now: float) -> None:
        """Advance the barrier clock; flakes from the last barrier clear."""
        self._barrier += 1
        self._now = float(now)
        self._drawn = [False] * self.n_shards
        self._flaky = [0] * self.n_shards

    def is_down(self, shard_id: int) -> bool:
        """Whether ``shard_id`` is inside an outage at the current barrier."""
        return self._barrier < self._down_until[shard_id]

    def probe(self, shard_id: int) -> bool:
        """One health probe against ``shard_id``; ``False`` = no response.

        The first probe of a barrier draws the shard's events for that
        barrier (outage first, then flake; an already-down shard draws
        nothing, so its recovery date never depends on how often it was
        probed).  A flake fails exactly one probe, so a supervisor with
        at least one retry sees through it.
        """
        self._maybe_draw(shard_id)
        if self.is_down(shard_id):
            return False
        if self._flaky[shard_id] > 0:
            self._flaky[shard_id] -= 1
            return False
        return True

    def _maybe_draw(self, shard_id: int) -> None:
        if self._drawn[shard_id] or self.is_down(shard_id):
            return
        self._drawn[shard_id] = True
        rng = self._rngs[shard_id]
        outage = windowed_rate(
            self.config.outage_rate, self.config.windows, self._now, shard_id
        )
        # Zero rates short-circuit before the RNG, mirroring
        # FaultInjector.fire: a fully inactive config never draws.
        if outage > 0.0 and rng.random() < outage:
            self._down_until[shard_id] = self._barrier + self.config.outage_chunks
            return
        if self.config.flake_rate > 0.0 and rng.random() < self.config.flake_rate:
            self._flaky[shard_id] = 1
