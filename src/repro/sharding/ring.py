"""Consistent-hash ring with virtual nodes.

The routing substrate of the sharded serving tier: keys (canonical game
signatures) and shards both hash onto one 64-bit circle, each shard as
``vnodes`` virtual points, and a key belongs to the first shard point at
or after its own position (wrapping).  Two properties make this the
right structure for a fleet of broker shards:

* **Balance** — with enough virtual nodes per shard the arc owned by
  each shard concentrates around ``1/N`` of the circle, so no shard sees
  a pathological share of the key space (pinned by property tests:
  no shard above twice the mean at 10k keys).
* **Minimal remapping** — adding or removing one shard only moves the
  keys in the arcs its virtual points gain or lose: an expected ``1/N``
  fraction, never the wholesale reshuffle a ``hash(key) % N`` scheme
  suffers.

Hashing is SHA-256 truncated to 64 bits (the same stable-across-
processes construction as :mod:`repro.utils.rng`), so ring layouts are
identical on every machine and Python version — a requirement for
deterministic sharded replays, and something the builtin ``hash`` (salted
per process) cannot provide.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left, insort
from collections.abc import Iterable

__all__ = ["stable_hash", "HashRing"]

_HASH_BITS = 64


def stable_hash(*parts: object) -> int:
    """64-bit SHA-256 hash of the ``parts``' string forms (process-stable).

    Parts are joined with an unambiguous separator so ``("ab", "c")``
    and ``("a", "bc")`` hash differently.
    """
    h = hashlib.sha256()
    for part in parts:
        h.update(str(part).encode("utf-8"))
        h.update(b"\x1f")
    return int.from_bytes(h.digest()[:8], "little") & ((1 << _HASH_BITS) - 1)


class HashRing:
    """A consistent-hash ring mapping string-able keys onto member nodes.

    Nodes are any hashable, mutually comparable identifiers (the sharded
    broker uses shard ids ``0..N-1``).  ``vnodes`` virtual points per
    node trade a little memory and ``log`` lookup width for balance; the
    default keeps the max/mean key skew comfortably under 2x for any
    realistic shard count.
    """

    def __init__(self, nodes: Iterable = (), *, vnodes: int = 96):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self._nodes: set = set()
        self._points: list[tuple[int, object]] = []  # (position, node), sorted
        for node in nodes:
            self.add(node)

    # -- membership -----------------------------------------------------

    @property
    def nodes(self) -> list:
        """Current member nodes, sorted."""
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node) -> bool:
        return node in self._nodes

    def _positions_of(self, node) -> list[int]:
        return [stable_hash("vnode", node, replica) for replica in range(self.vnodes)]

    def add(self, node) -> None:
        """Join ``node`` to the ring (its ``vnodes`` points are inserted).

        Only keys in the arcs now ending at one of the new points move to
        ``node``; everything else keeps its owner.
        """
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.add(node)
        for position in self._positions_of(node):
            insort(self._points, (position, node))

    def remove(self, node) -> None:
        """Remove ``node``; its arcs fall to the next points on the circle."""
        if node not in self._nodes:
            raise KeyError(f"node {node!r} not on the ring")
        self._nodes.discard(node)
        self._points = [(pos, n) for pos, n in self._points if n != node]

    # -- lookup ---------------------------------------------------------

    def lookup(self, key: object):
        """The node owning ``key``: first ring point at or after its hash."""
        if not self._points:
            raise LookupError("lookup on an empty ring")
        position = stable_hash("key", key)
        index = bisect_left(self._points, position, key=lambda p: p[0])
        if index == len(self._points):
            index = 0  # wrap past the top of the circle
        return self._points[index][1]

    def assignments(self, keys: Iterable) -> dict:
        """Map each key to its owning node (convenience for tests/audits)."""
        return {key: self.lookup(key) for key in keys}
