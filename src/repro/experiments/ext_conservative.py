"""Extension: conservative (minimum-FPS) profiling (paper Section 7).

Mean-FPS profiling can admit colocations whose *transient* frame rate dips
below the floor when all games render complex scenes simultaneously.  The
paper suggests measuring the minimum frame rate instead.  This experiment
quantifies the trade on the Figure 9 study population:

* **transient violation rate** — among colocations feasible by the mean-FPS
  criterion, how many violate the floor on a low-percentile basis;
* **capacity cost** — how many feasible colocations the conservative
  criterion gives up.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.fig09_feasibility import select_games
from repro.experiments.lab import Lab
from repro.experiments.tables import format_table
from repro.scheduling import actual_feasibility, enumerate_colocations
from repro.simulator.measurement import MeasurementConfig

__all__ = ["run", "render"]


def run(lab: Lab, *, qos: float = 60.0) -> dict:
    """Compare mean-FPS vs minimum-FPS feasibility over the 10-game study."""
    games = select_games(lab)
    colocations = enumerate_colocations(games, max_size=4)

    mean_cfg = MeasurementConfig()
    min_cfg = MeasurementConfig(min_fps_mode=True)

    by_mean = actual_feasibility(
        lab.catalog, colocations, qos, server=lab.server, config=mean_cfg
    )
    by_min = actual_feasibility(
        lab.catalog, colocations, qos, server=lab.server, config=min_cfg
    )

    n_mean = int(by_mean.sum())
    n_min = int(by_min.sum())
    transient_violations = int(np.sum(by_mean & ~by_min))
    return {
        "qos": qos,
        "n_colocations": len(colocations),
        "feasible_mean": n_mean,
        "feasible_min": n_min,
        "transient_violations": transient_violations,
        "violation_rate": transient_violations / n_mean if n_mean else 0.0,
        "capacity_given_up": (n_mean - n_min) / n_mean if n_mean else 0.0,
        "conservative_is_subset": bool(np.all(by_mean[by_min])),
    }


def render(result: dict) -> str:
    """Conservative-profiling trade-off table."""
    rows = [
        ["colocations judged", result["n_colocations"]],
        ["feasible by mean FPS", result["feasible_mean"]],
        ["feasible by min FPS (p5)", result["feasible_min"]],
        ["transient violations among mean-feasible", result["transient_violations"]],
        ["transient violation rate", f"{result['violation_rate']:.1%}"],
        ["capacity given up by conservative mode", f"{result['capacity_given_up']:.1%}"],
    ]
    return format_table(
        ["quantity", "value"],
        rows,
        title=(
            "Extension — mean-FPS vs minimum-FPS profiling "
            f"(QoS {result['qos']:.0f} FPS)"
        ),
    )
