"""The shared experimental setup ("lab") behind all figures.

Builds, memoizes (in-process) and caches (on disk, JSON) the expensive
offline artifacts exactly once per configuration:

* the 100-game catalog,
* the profiled :class:`ProfileDatabase` (the paper's offline O(N) pass),
* the 700-colocation measurement campaign (500 pairs + 100 triples +
  100 quadruples) with its fixed 400/300 train/test split by colocation,
* trained GAugur models and fitted baselines.

Set ``REPRO_SCALE=small`` for a reduced configuration (quick tests) or
``REPRO_CACHE_DIR`` to relocate the disk cache.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from functools import cached_property
from pathlib import Path

import numpy as np

from repro.baselines import SigmoidPredictor, SMiTePredictor, VBPJudge
from repro.core import (
    GAugurClassifier,
    GAugurRegressor,
    InterferencePredictor,
    MeasuredColocation,
    TrainingDataset,
    build_dataset,
    generate_colocations,
    measure_colocations,
)
from repro.core.training import ColocationSpec, SampleSet
from repro.games import GameCatalog, Resolution, build_catalog
from repro.games.catalog import DEFAULT_CATALOG_SEED, REPRESENTATIVE_GAMES
from repro.hardware.server import DEFAULT_SERVER, ServerSpec
from repro.obs.metrics import Telemetry
from repro.profiling import ContentionProfiler, ProfileDatabase, ProfilerConfig
from repro.utils.rng import spawn_rng
from repro.utils.serialization import dump_json, load_json

__all__ = ["LabConfig", "Lab", "get_lab"]


@dataclass(frozen=True)
class LabConfig:
    """Reproducibility-complete description of the experimental setup."""

    seed: int = 7
    catalog_seed: int = DEFAULT_CATALOG_SEED
    n_games: int = 100
    colocation_sizes: tuple[tuple[int, int], ...] = ((2, 500), (3, 100), (4, 100))
    n_train_colocations: int = 400
    qos_values: tuple[float, ...] = (50.0, 60.0)

    @classmethod
    def small(cls) -> "LabConfig":
        """Reduced setup for fast tests (same pipeline, smaller campaign)."""
        return cls(
            n_games=20,
            colocation_sizes=((2, 100), (3, 30), (4, 30)),
            n_train_colocations=100,
        )

    @classmethod
    def from_env(cls) -> "LabConfig":
        """Full setup unless ``REPRO_SCALE=small``."""
        return cls.small() if os.environ.get("REPRO_SCALE") == "small" else cls()

    def sizes_dict(self) -> dict[int, int]:
        """Colocation-size campaign as a dict."""
        return dict(self.colocation_sizes)

    def cache_key(self) -> str:
        """Stable hash identifying the offline artifacts this config builds."""
        payload = json.dumps(
            {
                "seed": self.seed,
                "catalog_seed": self.catalog_seed,
                "n_games": self.n_games,
                "sizes": list(self.colocation_sizes),
                "n_train": self.n_train_colocations,
                "version": 2,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _cache_dir() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


def _measured_to_jsonable(measured: list[MeasuredColocation]) -> list:
    return [
        {
            "entries": [
                {"game": name, "resolution": res.to_dict()}
                for name, res in m.spec.entries
            ],
            "fps": list(m.fps),
        }
        for m in measured
    ]


def _measured_from_jsonable(data: list) -> list[MeasuredColocation]:
    out = []
    for entry in data:
        spec = ColocationSpec(
            tuple(
                (e["game"], Resolution.from_dict(e["resolution"]))
                for e in entry["entries"]
            )
        )
        out.append(MeasuredColocation(spec=spec, fps=tuple(entry["fps"])))
    return out


class Lab:
    """Holds all shared artifacts for one :class:`LabConfig` (lazily built)."""

    def __init__(self, config: LabConfig | None = None, server: ServerSpec = DEFAULT_SERVER):
        self.config = config if config is not None else LabConfig.from_env()
        self.server = server
        #: Build-phase profiling: every expensive artifact construction is
        #: timed into one Telemetry instance (``lab_*_s`` histograms), so
        #: ``repro metrics`` can attribute setup cost the same way the
        #: serving layer attributes decision cost.
        self.telemetry = Telemetry()

    # ------------------------------------------------------------------
    # Offline artifacts

    @cached_property
    def catalog(self) -> GameCatalog:
        """The synthetic game catalog."""
        return build_catalog(self.config.catalog_seed)

    @cached_property
    def names(self) -> list[str]:
        """The game names in play.

        The games the paper's figures single out (the six representative
        profiling subjects, the Figure 1 pairs, the Figure 6 additivity
        pair) are always included; the rest of the catalog fills up to
        ``n_games`` in catalog order.
        """
        special = list(REPRESENTATIVE_GAMES) + [
            "Ancestors Legacy",
            "Borderland",
            "H1Z1",
            "ARK Survival Evolved",
            "AirMech Strike",
            "Hobo Tough Life",
        ]
        names = [n for n in special if n in self.catalog]
        for name in self.catalog.names():
            if len(names) >= self.config.n_games:
                break
            if name not in names:
                names.append(name)
        return names[: self.config.n_games]

    @cached_property
    def profiler_config(self) -> ProfilerConfig:
        """Profiling procedure parameters."""
        return ProfilerConfig()

    @cached_property
    def db(self) -> ProfileDatabase:
        """The profiled contention-feature database (disk-cached)."""
        path = _cache_dir() / f"profiles-{self.config.cache_key()}.json"
        if path.exists():
            db = ProfileDatabase.load(path)
            if set(db.names()) >= set(self.names):
                return db.subset(self.names)
        with self.telemetry.time("lab_profile_db_s"):
            profiler = ContentionProfiler(
                server=self.server, config=self.profiler_config
            )
            db = profiler.profile_catalog([self.catalog.get(n) for n in self.names])
        db.save(path)
        return db

    @cached_property
    def colocations(self) -> list[ColocationSpec]:
        """The measurement campaign's colocation specs."""
        return generate_colocations(
            self.names, sizes=self.config.sizes_dict(), seed=self.config.seed
        )

    @cached_property
    def measured(self) -> list[MeasuredColocation]:
        """Measured frame rates of the campaign (disk-cached)."""
        path = _cache_dir() / f"measured-{self.config.cache_key()}.json"
        if path.exists():
            return _measured_from_jsonable(load_json(path))
        with self.telemetry.time("lab_measure_campaign_s"):
            measured = measure_colocations(
                self.catalog, self.colocations, server=self.server
            )
        dump_json(_measured_to_jsonable(measured), path)
        return measured

    # ------------------------------------------------------------------
    # Train / test split (by colocation, as in the paper)

    @cached_property
    def train_colocation_ids(self) -> np.ndarray:
        """IDs of the randomly selected training colocations."""
        rng = spawn_rng(self.config.seed, "train-split")
        perm = rng.permutation(len(self.colocations))
        return np.sort(perm[: self.config.n_train_colocations])

    @cached_property
    def measured_train(self) -> list[MeasuredColocation]:
        """Training-side measurements (for baseline fitting)."""
        ids = set(int(i) for i in self.train_colocation_ids)
        return [m for i, m in enumerate(self.measured) if i in ids]

    @cached_property
    def measured_test(self) -> list[MeasuredColocation]:
        """Held-out measurements (for evaluating all methodologies)."""
        ids = set(int(i) for i in self.train_colocation_ids)
        return [m for i, m in enumerate(self.measured) if i not in ids]

    def dataset(self, qos: float = 60.0) -> TrainingDataset:
        """CM/RM sample sets labelled at one QoS floor."""
        key = float(qos)
        cache = self.__dict__.setdefault("_datasets", {})
        if key not in cache:
            cache[key] = build_dataset(self.measured, self.db, qos_values=(key,))
        return cache[key]

    def split(self, qos: float = 60.0) -> tuple[SampleSet, SampleSet, SampleSet, SampleSet]:
        """(cm_train, cm_test, rm_train, rm_test) at one QoS floor."""
        ds = self.dataset(qos)
        cm_tr, cm_te = ds.cm.split_by_colocation(self.train_colocation_ids)
        rm_tr, rm_te = ds.rm.split_by_colocation(self.train_colocation_ids)
        return cm_tr, cm_te, rm_tr, rm_te

    def training_subset(self, samples: SampleSet, n: int, label: str = "") -> SampleSet:
        """Random ``n``-sample subset of a training set (Figures 7a/8a/8b)."""
        rng = spawn_rng(self.config.seed, "train-subset", label, n)
        return samples.subsample(min(n, len(samples)), rng)

    # ------------------------------------------------------------------
    # Trained models and baselines

    @cached_property
    def rm_model(self) -> GAugurRegressor:
        """GAugur(RM): the paper's GBRT trained on the full training pool."""
        _, _, rm_tr, _ = self.split(60.0)
        with self.telemetry.time("lab_train_s", model="rm"):
            return GAugurRegressor().fit(rm_tr)

    def _augmented_cm_train(self, qos: float) -> SampleSet:
        """CM training samples labelled at a spread of floors around ``qos``.

        QoS is an *input* of the CM (Eq. 3), so one measured colocation can
        be labelled at any floor for free (Section 3.5's sample generation).
        Training with a spread of floors teaches the decision boundary far
        better than a single floor and costs no extra measurements.
        """
        floors = tuple(qos + delta for delta in (-15.0, -7.5, 0.0, 7.5, 15.0))
        ds = build_dataset(self.measured, self.db, qos_values=floors)
        train, _ = ds.cm.split_by_colocation(self.train_colocation_ids)
        return train

    @cached_property
    def cm_model(self) -> GAugurClassifier:
        """GAugur(CM) at QoS 60 FPS (QoS-augmented training)."""
        with self.telemetry.time("lab_train_s", model="cm"):
            return GAugurClassifier().fit(self._augmented_cm_train(60.0))

    def cm_model_at(self, qos: float) -> GAugurClassifier:
        """GAugur(CM) trained for an arbitrary QoS floor."""
        if qos == 60.0:
            return self.cm_model
        cache = self.__dict__.setdefault("_cm_models", {})
        if qos not in cache:
            cache[qos] = GAugurClassifier().fit(self._augmented_cm_train(qos))
        return cache[qos]

    @cached_property
    def predictor(self) -> InterferencePredictor:
        """Online predictor bundling the trained CM and RM."""
        return InterferencePredictor(
            self.db, classifier=self.cm_model, regressor=self.rm_model
        )

    @cached_property
    def sigmoid(self) -> SigmoidPredictor:
        """Fitted Sigmoid baseline."""
        return SigmoidPredictor(self.db).fit(self.measured_train)

    @cached_property
    def smite(self) -> SMiTePredictor:
        """Fitted SMiTe baseline."""
        return SMiTePredictor(self.db).fit(self.measured_train)

    @cached_property
    def vbp(self) -> VBPJudge:
        """VBP demand-vector judge."""
        return VBPJudge(self.db, server=self.server)


_LABS: dict[tuple, Lab] = {}


def get_lab(config: LabConfig | None = None) -> Lab:
    """Process-wide memoized :class:`Lab` for ``config``."""
    config = config if config is not None else LabConfig.from_env()
    key = (config.cache_key(), config.qos_values)
    if key not in _LABS:
        _LABS[key] = Lab(config)
    return _LABS[key]
