"""Plain-text rendering of experiment results (series and tables).

The harness prints the same rows/series the paper's figures plot; these
helpers keep every figure module's output consistent.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

__all__ = ["format_table", "format_series", "cdf_points"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    title: str = "",
    float_fmt: str = "{:.3f}",
) -> str:
    """Render an aligned ASCII table."""
    def fmt(cell) -> str:
        if isinstance(cell, float) or isinstance(cell, np.floating):
            return float_fmt.format(float(cell))
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows)) if str_rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence,
    series: Mapping[str, Sequence[float]],
    *,
    title: str = "",
    float_fmt: str = "{:.3f}",
) -> str:
    """Render named series against a shared x-axis as a table."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [s[i] for s in series.values()])
    return format_table(headers, rows, title=title, float_fmt=float_fmt)


def cdf_points(values, *, n_points: int = 21) -> tuple[np.ndarray, np.ndarray]:
    """(quantile levels, values) summarizing a distribution's CDF."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cdf_points requires non-empty values")
    q = np.linspace(0.0, 1.0, n_points)
    return q, np.quantile(values, q)
