"""Figure 10: maximizing overall performance on a fixed fleet.

Assigns 5000 requests (over the same 10 games as Figure 9) to fleets of
1500-3000 servers: GAugur(RM), Sigmoid and SMiTe place each request on the
server with the best predicted post-assignment frame rates; VBP places
worst-fit by remaining demand capacity.  (a) actual average FPS per fleet
size; (b) the FPS distribution at 2000 servers.

Shape criteria: larger fleets help everyone; GAugur(RM) achieves the
highest average FPS at every fleet size and its FPS CDF dominates.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.fig09_feasibility import select_games
from repro.experiments.lab import Lab
from repro.experiments.tables import format_series, format_table
from repro.placement import assign_max_fps, assign_worst_fit, evaluate_assignment
from repro.scheduling import generate_requests

__all__ = ["SERVER_COUNTS", "N_REQUESTS", "run", "render"]

SERVER_COUNTS = (1500, 2000, 2500, 3000)
N_REQUESTS = 5000
CDF_FLEET = 2000


def run(
    lab: Lab,
    *,
    n_requests: int = N_REQUESTS,
    server_counts: tuple[int, ...] = SERVER_COUNTS,
    cdf_fleet: int = CDF_FLEET,
) -> dict:
    """Run every policy at every fleet size; measure actual frame rates."""
    games = select_games(lab)
    requests = generate_requests(games, n_requests, seed=lab.config.seed)

    policies = {
        "GAugur(RM)": lambda n: assign_max_fps(requests, lab.predictor, n),
        "Sigmoid": lambda n: assign_max_fps(requests, lab.sigmoid, n),
        "SMiTe": lambda n: assign_max_fps(requests, lab.smite, n),
        "VBP": lambda n: assign_worst_fit(requests, lab.vbp, n),
    }

    average_fps: dict[str, list[float]] = {label: [] for label in policies}
    cdf_values: dict[str, np.ndarray] = {}
    for n_servers in server_counts:
        for label, policy in policies.items():
            placement = policy(n_servers)
            fps = evaluate_assignment(lab.catalog, placement, server=lab.server)
            average_fps[label].append(float(fps.mean()))
            if n_servers == cdf_fleet:
                cdf_values[label] = fps

    return {
        "games": games,
        "server_counts": list(server_counts),
        "average_fps": average_fps,
        "cdf_fleet": cdf_fleet,
        "cdf_values": cdf_values,
    }


def render(result: dict) -> str:
    """Figures 10a-10b as text tables."""
    part_a = format_series(
        "servers",
        result["server_counts"],
        result["average_fps"],
        title="Figure 10a — actual average FPS vs fleet size",
        float_fmt="{:.1f}",
    )
    quantiles = (0.05, 0.25, 0.5, 0.75, 0.95)
    rows = [
        [label] + [float(np.quantile(v, q)) for q in quantiles]
        for label, v in result["cdf_values"].items()
    ]
    part_b = format_table(
        ["methodology"] + [f"p{int(q*100)}" for q in quantiles],
        rows,
        title=f"Figure 10b — FPS quantiles at {result['cdf_fleet']} servers",
        float_fmt="{:.1f}",
    )
    return "\n\n".join([part_a, part_b])
