"""Extension: dynamic session scheduling (arrivals + departures).

Compares placement policies under the online regime the paper targets —
requests must be placed at arrival and never migrate — measuring both
server-time saved and QoS-violation session-time.  GAugur's CM enables
aggressive consolidation with few violations; VBP consolidates blindly;
dedicated servers never violate but waste the most capacity.
"""

from __future__ import annotations

from repro.experiments.fig09_feasibility import select_games
from repro.experiments.lab import Lab
from repro.experiments.tables import format_table
from repro.placement import (
    CMFeasiblePolicy,
    DedicatedPolicy,
    VBPFirstFitPolicy,
    simulate_sessions,
)
from repro.scheduling.dynamic import generate_sessions

__all__ = ["run", "render"]


def run(lab: Lab, *, n_sessions: int = 800, qos: float = 60.0) -> dict:
    """Simulate all three policies over one session trace."""
    games = select_games(lab)
    sessions = generate_sessions(
        games,
        n_sessions,
        arrival_rate=3.0,
        mean_duration=25.0,
        seed=lab.config.seed,
    )
    # Policy objects from the shared placement core, passed straight to
    # the simulator (which dispatches them through its DecisionEngine).
    policies = {
        "GAugur(CM)": CMFeasiblePolicy(lab.predictor, qos),
        "GAugur(CM) +10% margin": CMFeasiblePolicy(lab.predictor, qos, margin=1.1),
        "VBP": VBPFirstFitPolicy(lab.vbp),
        "Dedicated": DedicatedPolicy(),
    }
    metrics = {
        label: simulate_sessions(
            lab.catalog, sessions, policy, qos=qos, server=lab.server
        )
        for label, policy in policies.items()
    }
    return {"qos": qos, "n_sessions": n_sessions, "metrics": metrics}


def render(result: dict) -> str:
    """Dynamic-scheduling comparison table."""
    rows = []
    for label, m in result["metrics"].items():
        rows.append(
            [
                label,
                f"{m.server_minutes:.0f}",
                f"{m.utilization_gain:.1%}",
                m.peak_servers,
                f"{m.violation_fraction:.1%}",
            ]
        )
    return format_table(
        [
            "policy",
            "server-minutes",
            "saved vs dedicated",
            "peak servers",
            "QoS-violation time",
        ],
        rows,
        title=(
            f"Extension — dynamic sessions ({result['n_sessions']} sessions, "
            f"QoS {result['qos']:.0f} FPS)"
        ),
    )
