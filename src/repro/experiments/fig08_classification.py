"""Figure 8: classification (CM) prediction accuracy.

(a)/(b) accuracy vs number of training samples for DTC / GBDT / RF / SVC at
QoS floors of 60 and 50 FPS; (c) accuracy breakdown by colocation size for
GAugur(CM) vs GAugur(RM)-as-classifier vs Sigmoid vs SMiTe.

Shape criteria: CM accuracy ~95% with the full training set; direct
classification beats thresholding the RM; both beat the ~80% baselines.
"""

from __future__ import annotations

import numpy as np

from repro.core.classification import GAugurClassifier
from repro.core.regression import GAugurRegressor
from repro.experiments.evalutils import (
    baseline_sample_predictions,
    breakdown_by_size,
)
from repro.experiments.lab import Lab
from repro.experiments.tables import format_series, format_table
from repro.ml import (
    SVC,
    DecisionTreeClassifier,
    GradientBoostingClassifier,
    RandomForestClassifier,
)

__all__ = ["TRAINING_SIZES", "cm_estimators", "run", "render"]

TRAINING_SIZES = (400, 600, 800, 1000)


def cm_estimators() -> dict:
    """The four learners of Figures 8a/8b."""
    return {
        "DTC": DecisionTreeClassifier(max_depth=12, min_samples_leaf=3),
        "GBDT": GradientBoostingClassifier(n_estimators=300, learning_rate=0.06),
        "RF": RandomForestClassifier(n_estimators=80, max_depth=14, min_samples_leaf=2),
        "SVC": SVC(C=10.0),
    }


def _accuracy_curves(lab: Lab, qos: float) -> tuple[list[int], dict[str, list[float]]]:
    cm_tr, cm_te, _, _ = lab.split(qos)
    sizes = [n for n in TRAINING_SIZES if n <= len(cm_tr)]
    if not sizes or sizes[-1] < len(cm_tr):
        sizes.append(len(cm_tr))
    curves: dict[str, list[float]] = {}
    for label, estimator in cm_estimators().items():
        accs = []
        for n in sizes:
            subset = lab.training_subset(cm_tr, n, label=f"cm-{label}-{qos}")
            model = GAugurClassifier(estimator=estimator.clone()).fit(subset)
            pred = model.predict_from_features(cm_te.X)
            accs.append(float(np.mean(pred == cm_te.y)))
        curves[label] = accs
    return sizes, curves


def run(lab: Lab) -> dict:
    """Train/evaluate all Figure 8 models."""
    sizes60, curves60 = _accuracy_curves(lab, 60.0)
    sizes50, curves50 = _accuracy_curves(lab, 50.0)

    # (c) methodology breakdown at QoS 60, using the production (QoS-
    # augmented) CM.
    _, cm_te, rm_tr, rm_te = lab.split(60.0)
    qos = 60.0
    cm = lab.cm_model_at(qos)
    cm_correct = (cm.predict_from_features(cm_te.X) == cm_te.y).astype(float)

    # The RM-as-classifier path: predict degradation, convert to FPS via the
    # solo-FPS law, threshold at the floor (solo FPS is not an RM feature,
    # so evaluation goes through the test colocations).
    rm = GAugurRegressor().fit(lab.training_subset(rm_tr, sizes60[-1], label="rm-cls"))
    rm_samples = baseline_sample_predictions(lab, _RMAdapter(lab, rm))
    rm_actual, rm_pred = rm_samples.qos_labels(qos)
    rm_correct = (rm_actual == rm_pred).astype(float)

    sigmoid = baseline_sample_predictions(lab, lab.sigmoid)
    sg_actual, sg_pred = sigmoid.qos_labels(qos)
    smite = baseline_sample_predictions(lab, lab.smite)
    sm_actual, sm_pred = smite.qos_labels(qos)

    breakdown = {
        "GAugur(CM)": breakdown_by_size(cm_correct, cm_te.sizes),
        "GAugur(RM)": breakdown_by_size(rm_correct, rm_samples.sizes),
        "Sigmoid": breakdown_by_size(
            (sg_actual == sg_pred).astype(float), sigmoid.sizes
        ),
        "SMiTe": breakdown_by_size((sm_actual == sm_pred).astype(float), smite.sizes),
    }

    return {
        "training_sizes_60": sizes60,
        "accuracy_vs_samples_60": curves60,
        "training_sizes_50": sizes50,
        "accuracy_vs_samples_50": curves50,
        "breakdown": breakdown,
    }


class _RMAdapter:
    """Expose a fitted RM as a per-colocation degradation predictor."""

    def __init__(self, lab: Lab, rm: GAugurRegressor):
        self.lab = lab
        self.rm = rm

    def predict_degradations(self, spec) -> np.ndarray:
        from repro.core.features import rm_feature_vector

        profiles = [self.lab.db.get(name) for name, _ in spec.entries]
        intensities = [
            profiles[i].intensity_at(res).values
            for i, (_, res) in enumerate(spec.entries)
        ]
        rows = []
        for i in range(spec.size):
            co = [intensities[j] for j in range(spec.size) if j != i]
            rows.append(rm_feature_vector(profiles[i].sensitivity_vector(), co))
        return self.rm.predict_from_features(np.vstack(rows))


def render(result: dict) -> str:
    """Figures 8a-8c as text tables."""
    part_a = format_series(
        "n_train",
        result["training_sizes_60"],
        result["accuracy_vs_samples_60"],
        title="Figure 8a — CM accuracy vs training samples (QoS 60 FPS)",
    )
    part_b = format_series(
        "n_train",
        result["training_sizes_50"],
        result["accuracy_vs_samples_50"],
        title="Figure 8b — CM accuracy vs training samples (QoS 50 FPS)",
    )
    groups = ["overall"] + sorted(
        k for k in next(iter(result["breakdown"].values())) if k != "overall"
    )
    rows = [
        [label] + [result["breakdown"][label].get(g, float("nan")) for g in groups]
        for label in result["breakdown"]
    ]
    part_c = format_table(
        ["methodology"] + [f"{g}-games" if g != "overall" else g for g in groups],
        rows,
        title="Figure 8c — classification accuracy by colocation size (QoS 60)",
    )
    return "\n\n".join([part_a, part_b, part_c])
