"""Figure 4: sensitivity curves of six representative games.

Plots (as data series) the degradation each representative game suffers at
k=10 pressure levels on each of the seven shared resources, reproducing
Observations 1, 3 and 4: multi-resource sensitivity, per-game diversity,
and nonlinearity.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.lab import Lab
from repro.experiments.tables import format_series
from repro.games.catalog import REPRESENTATIVE_GAMES
from repro.hardware.resources import Resource

__all__ = ["run", "render"]


def run(lab: Lab) -> dict:
    """Pull the profiled curves of the representative games."""
    games = [n for n in REPRESENTATIVE_GAMES if n in set(lab.names)]
    curves: dict[str, dict[str, dict]] = {}
    for name in games:
        profile = lab.db.get(name)
        curves[name] = {
            res.label: {
                "pressures": list(profile.sensitivity[res].pressures),
                "degradations": list(profile.sensitivity[res].degradations),
            }
            for res in Resource
        }
    return {"games": games, "curves": curves}


def render(result: dict) -> str:
    """One series table per representative game."""
    blocks = []
    for name in result["games"]:
        per_resource = result["curves"][name]
        first = next(iter(per_resource.values()))
        pressures = first["pressures"]
        series = {
            label: data["degradations"] for label, data in per_resource.items()
        }
        blocks.append(
            format_series(
                "pressure",
                [f"{p:.1f}" for p in pressures],
                series,
                title=f"Figure 4 — sensitivity curves: {name} (FPS ratio vs pressure)",
                float_fmt="{:.2f}",
            )
        )
    return "\n\n".join(blocks)


def nonlinearity_score(curve: dict) -> float:
    """Max deviation of a curve from the straight line between its endpoints.

    Used to verify Observation 4 (nonlinear sensitivity) quantitatively.
    """
    p = np.asarray(curve["pressures"], dtype=float)
    d = np.asarray(curve["degradations"], dtype=float)
    line = d[0] + (d[-1] - d[0]) * (p - p[0]) / (p[-1] - p[0])
    return float(np.max(np.abs(d - line)))
