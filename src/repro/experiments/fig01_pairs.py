"""Figure 1: frame rates of colocated game pairs.

The paper motivates colocation with six pairs of four games (Ancestors
Legacy, Borderland, H1Z1, ARK Survival Evolved): some pairs keep both games
above 60 FPS, others do not, and the same game's frame rate varies widely
with its partner.
"""

from __future__ import annotations

import itertools

from repro.experiments.lab import Lab
from repro.experiments.tables import format_table
from repro.simulator import GameInstance, measure_solo_fps, run_colocation

__all__ = ["PAIR_GAMES", "run", "render"]

PAIR_GAMES = ("Ancestors Legacy", "Borderland", "H1Z1", "ARK Survival Evolved")


def run(lab: Lab) -> dict:
    """Measure all six pairs of the four motivating games."""
    solo = {}
    for name in PAIR_GAMES:
        instance = GameInstance(lab.catalog.get(name))
        solo[name] = measure_solo_fps(instance, server=lab.server)

    pairs = []
    for a, b in itertools.combinations(PAIR_GAMES, 2):
        result = run_colocation(
            [GameInstance(lab.catalog.get(a)), GameInstance(lab.catalog.get(b))],
            server=lab.server,
        )
        pairs.append(
            {"games": (a, b), "fps": (result.fps[0], result.fps[1])}
        )
    return {"solo": solo, "pairs": pairs}


def render(result: dict) -> str:
    """Text rendering of the Figure 1 bars."""
    rows = []
    for entry in result["pairs"]:
        a, b = entry["games"]
        fa, fb = entry["fps"]
        rows.append([f"{a} + {b}", fa, fb])
    table = format_table(
        ["pair", "FPS(first)", "FPS(second)"],
        rows,
        title="Figure 1 — frame rates of colocated pairs",
        float_fmt="{:.1f}",
    )
    solo = ", ".join(f"{k}={v:.0f}" for k, v in result["solo"].items())
    return f"{table}\nsolo: {solo}"
