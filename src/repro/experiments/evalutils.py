"""Shared evaluation plumbing for the accuracy figures (7 and 8).

Both GAugur and the baselines are scored per *sample* — one sample per
member game of each held-out test colocation — so their error arrays align
and can be broken down by colocation size identically.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.training import MeasuredColocation
from repro.experiments.lab import Lab

__all__ = ["PerSamplePredictions", "baseline_sample_predictions", "breakdown_by_size"]


@dataclass
class PerSamplePredictions:
    """Aligned per-sample arrays over the test colocations."""

    predicted_degradation: np.ndarray
    actual_degradation: np.ndarray
    sizes: np.ndarray
    solo_fps: np.ndarray
    actual_fps: np.ndarray

    @property
    def relative_errors(self) -> np.ndarray:
        """The paper's |pred - actual| / actual per sample."""
        return (
            np.abs(self.predicted_degradation - self.actual_degradation)
            / self.actual_degradation
        )

    def qos_labels(self, qos: float) -> tuple[np.ndarray, np.ndarray]:
        """(actual, predicted) 0/1 QoS outcomes at a floor."""
        actual = (self.actual_fps >= qos).astype(int)
        predicted = (self.predicted_degradation * self.solo_fps >= qos).astype(int)
        return actual, predicted


def baseline_sample_predictions(
    lab: Lab,
    predictor,
    measured: Sequence[MeasuredColocation] | None = None,
) -> PerSamplePredictions:
    """Score a degradation predictor per member game of each colocation.

    ``predictor`` must expose ``predict_degradations(ColocationSpec)``.
    """
    measured = measured if measured is not None else lab.measured_test
    pred, actual, sizes, solo_list, fps_list = [], [], [], [], []
    for m in measured:
        if m.spec.size < 2:
            continue
        degr = predictor.predict_degradations(m.spec)
        for i, (name, resolution) in enumerate(m.spec.entries):
            solo = lab.db.get(name).solo_fps_at(resolution)
            pred.append(float(degr[i]))
            actual.append(m.fps[i] / solo)
            sizes.append(m.spec.size)
            solo_list.append(solo)
            fps_list.append(m.fps[i])
    return PerSamplePredictions(
        predicted_degradation=np.asarray(pred),
        actual_degradation=np.asarray(actual),
        sizes=np.asarray(sizes, dtype=int),
        solo_fps=np.asarray(solo_list),
        actual_fps=np.asarray(fps_list),
    )


def breakdown_by_size(
    values: np.ndarray, sizes: np.ndarray, *, reducer=np.mean
) -> dict[str, float]:
    """{'overall': ..., '2': ..., '3': ..., '4': ...} reduction of ``values``."""
    out = {"overall": float(reducer(values))}
    for size in sorted(np.unique(sizes)):
        mask = sizes == size
        out[str(int(size))] = float(reducer(values[mask]))
    return out
