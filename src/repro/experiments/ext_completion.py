"""Extension: collaborative-filtering profile completion (paper §6).

Half the catalog is profiled against only two of the seven benchmarks; the
missing five-sevenths of those games' profiles are recovered by low-rank
completion over the population.  Reported: reconstruction error of the
recovered curves, and the downstream RM accuracy with completed profiles
versus fully profiled ones — quantifying how much offline profiling cost
the technique saves and at what accuracy price.
"""

from __future__ import annotations

import numpy as np

from repro.core import GAugurRegressor, build_dataset
from repro.experiments.lab import Lab
from repro.experiments.tables import format_table
from repro.hardware.resources import Resource
from repro.profiling.completion import complete_profiles
from repro.utils.rng import spawn_rng

__all__ = ["run", "render"]

#: The cheap sweep: one CPU-side and one GPU-side benchmark.
OBSERVED = (Resource.CPU_CE, Resource.GPU_CE)


def run(lab: Lab, *, partial_fraction: float = 0.5, rank: int = 8) -> dict:
    """Complete partial profiles and measure the accuracy impact."""
    rng = spawn_rng(lab.config.seed, "completion")
    names = list(lab.names)
    n_partial = int(len(names) * partial_fraction)
    partial = sorted(rng.choice(names, size=n_partial, replace=False).tolist())

    completed_db = complete_profiles(
        lab.db, {name: OBSERVED for name in partial}, rank=rank, seed=lab.config.seed
    )

    # Reconstruction error on the hidden sensitivity samples.
    diffs = []
    for name in partial:
        truth = lab.db.get(name)
        recon = completed_db.get(name)
        for res in Resource:
            if res in OBSERVED:
                continue
            t = np.asarray(truth.sensitivity[res].degradations)
            r = np.asarray(recon.sensitivity[res].degradations)
            diffs.append(np.abs(t - r))
    reconstruction_mae = float(np.mean(np.concatenate(diffs)))

    # Downstream RM accuracy: same measurements, two different databases.
    def rm_error(db) -> float:
        dataset = build_dataset(lab.measured, db, qos_values=(60.0,))
        train, test = dataset.rm.split_by_colocation(lab.train_colocation_ids)
        model = GAugurRegressor().fit(train)
        pred = model.predict_from_features(test.X)
        return float(np.mean(np.abs(pred - test.y) / test.y))

    full_error = rm_error(lab.db)
    completed_error = rm_error(completed_db)

    sweeps_saved = n_partial * (len(Resource) - len(OBSERVED)) / (
        len(names) * len(Resource)
    )
    return {
        "n_partial": n_partial,
        "rank": rank,
        "reconstruction_mae": reconstruction_mae,
        "rm_error_full": full_error,
        "rm_error_completed": completed_error,
        "profiling_cost_saved": sweeps_saved,
    }


def render(result: dict) -> str:
    """Completion trade-off table."""
    rows = [
        ["partially profiled games", result["n_partial"]],
        ["completion rank", result["rank"]],
        ["hidden-curve reconstruction MAE", f"{result['reconstruction_mae']:.3f}"],
        ["RM error, full profiles", f"{result['rm_error_full']:.3f}"],
        ["RM error, completed profiles", f"{result['rm_error_completed']:.3f}"],
        ["offline sweep cost saved", f"{result['profiling_cost_saved']:.1%}"],
    ]
    return format_table(
        ["quantity", "value"],
        rows,
        title="Extension — collaborative-filtering profile completion",
    )
