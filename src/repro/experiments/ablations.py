"""Ablations of GAugur's design choices.

Four studies, each isolating one decision the paper makes:

1. **Aggregate-intensity transform** (Eq. 5) vs the naive alternatives the
   paper rejects: summing co-runner intensities (Paragon's assumption,
   contradicted by Observation 5) and using only the colocation size (the
   Sigmoid assumption).  Note the expected outcome: per-resource *sums*
   carry nearly the same information as Eq. 5 for a flexible learner
   (``sum = |G| * mean`` and both are features), so they score similarly —
   the paper's real target is SMiTe's *linear additive model*, and the
   size-only variant shows what discarding per-resource structure costs.
2. **Feature knockouts**: how much of the RM's accuracy comes from the
   sensitivity curves vs the intensity block, and from CPU-side vs
   GPU-side resources.
3. **Pressure sampling granularity** ``k`` (the paper uses k=10): accuracy
   of the downstream RM when sensitivity curves carry 3, 6 or 11 samples.
4. **Measurement noise**: how label/profile noise propagates to RM error —
   the robustness argument behind "a few hundred colocations suffice".

Studies 3-4 re-profile / re-measure, so they run on a 30-game subset with
a dedicated colocation campaign.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.core import GAugurRegressor, build_dataset, generate_colocations
from repro.core.features import aggregate_intensity
from repro.core.training import MeasuredColocation, SampleSet, measure_colocations
from repro.experiments.lab import Lab
from repro.experiments.tables import format_table
from repro.hardware.resources import CPU_RESOURCES, GPU_RESOURCES, Resource
from repro.profiling import ContentionProfiler, ProfilerConfig
from repro.simulator.measurement import MeasurementConfig
from repro.utils.rng import spawn_rng

__all__ = [
    "run_aggregate_transform",
    "run_feature_knockout",
    "run_granularity",
    "run_noise",
    "run",
    "render",
]

# ----------------------------------------------------------------------
# Generic plumbing: rebuild RM features with a custom builder.

FeatureBuilder = Callable[[np.ndarray, list[np.ndarray]], np.ndarray]


def _build_rm_samples(
    measured: Sequence[MeasuredColocation], db, builder: FeatureBuilder
) -> SampleSet:
    rows, y, cids, sizes, games = [], [], [], [], []
    for cid, m in enumerate(measured):
        if m.spec.size < 2:
            continue
        profiles = [db.get(name) for name, _ in m.spec.entries]
        intensities = [
            profiles[i].intensity_at(res).values
            for i, (_, res) in enumerate(m.spec.entries)
        ]
        solos = [
            profiles[i].solo_fps_at(res) for i, (_, res) in enumerate(m.spec.entries)
        ]
        for i in range(m.spec.size):
            co = [intensities[j] for j in range(m.spec.size) if j != i]
            rows.append(builder(profiles[i].sensitivity_vector(), co))
            y.append(m.fps[i] / solos[i])
            cids.append(cid)
            sizes.append(m.spec.size)
            games.append(m.spec.entries[i][0])
    return SampleSet(
        X=np.vstack(rows),
        y=np.asarray(y),
        colocation_ids=np.asarray(cids, dtype=int),
        sizes=np.asarray(sizes, dtype=int),
        games=games,
    )


def _rm_error_for_builder(lab: Lab, builder: FeatureBuilder) -> float:
    samples = _build_rm_samples(lab.measured, lab.db, builder)
    train, test = samples.split_by_colocation(lab.train_colocation_ids)
    model = GAugurRegressor().fit(train)
    pred = model.predict_from_features(test.X)
    return float(np.mean(np.abs(pred - test.y) / test.y))


# ----------------------------------------------------------------------
# Study 1: the Eq. 5 transform vs naive aggregations.


def run_aggregate_transform(lab: Lab) -> dict:
    """RM error with Eq. 5 vs summed intensities vs size-only features."""
    builders: dict[str, FeatureBuilder] = {
        "Eq.5 (mean/var per resource)": lambda s, co: np.concatenate(
            [s, aggregate_intensity(co)]
        ),
        "summed intensities": lambda s, co: np.concatenate(
            [s, np.sum(np.vstack(co), axis=0)]
        ),
        "colocation size only": lambda s, co: np.concatenate([s, [float(len(co))]]),
    }
    return {label: _rm_error_for_builder(lab, b) for label, b in builders.items()}


# ----------------------------------------------------------------------
# Study 2: feature knockouts.

_SAMPLES_PER_CURVE = 11


def _curve_slice(resources) -> np.ndarray:
    idx = []
    for res in resources:
        start = int(res) * _SAMPLES_PER_CURVE
        idx.extend(range(start, start + _SAMPLES_PER_CURVE))
    return np.asarray(idx, dtype=int)


def _agg_slice(resources, co: list[np.ndarray]) -> np.ndarray:
    agg = aggregate_intensity(co)
    keep = [0]  # |G|
    for res in resources:
        keep.append(1 + 2 * int(res))
        keep.append(2 + 2 * int(res))
    return agg[np.asarray(keep, dtype=int)]


def run_feature_knockout(lab: Lab) -> dict:
    """RM error with groups of features removed."""
    all_res = list(Resource)
    builders: dict[str, FeatureBuilder] = {
        "full": lambda s, co: np.concatenate([s, aggregate_intensity(co)]),
        "no sensitivity curves": lambda _s, co: aggregate_intensity(co),
        "no co-runner intensity": lambda s, co: np.concatenate(
            [s, [float(len(co))]]
        ),
        "CPU-side resources only": lambda s, co: np.concatenate(
            [s[_curve_slice(CPU_RESOURCES)], _agg_slice(CPU_RESOURCES, co)]
        ),
        "GPU-side resources only": lambda s, co: np.concatenate(
            [s[_curve_slice(GPU_RESOURCES)], _agg_slice(GPU_RESOURCES, co)]
        ),
    }
    return {label: _rm_error_for_builder(lab, b) for label, b in builders.items()}


# ----------------------------------------------------------------------
# Studies 3-4: re-profiled / re-measured subset campaigns.


def _subset_campaign(lab: Lab, n_games: int = 30):
    names = lab.names[:n_games]
    specs = [lab.catalog.get(n) for n in names]
    colocations = generate_colocations(
        names,
        sizes={2: 160, 3: 50, 4: 50},
        seed=lab.config.seed + 17,
    )
    rng = spawn_rng(lab.config.seed, "ablation-split")
    perm = rng.permutation(len(colocations))
    train_ids = perm[: int(0.6 * len(colocations))]
    return names, specs, colocations, train_ids


def run_granularity(lab: Lab, levels: Sequence[int] = (2, 5, 10)) -> dict:
    """RM error vs sensitivity-curve sampling granularity k."""
    _, specs, colocations, train_ids = _subset_campaign(lab)
    measured = measure_colocations(lab.catalog, colocations, server=lab.server)
    out = {}
    for k in levels:
        config = ProfilerConfig(pressure_levels=k)
        db = ContentionProfiler(server=lab.server, config=config).profile_catalog(specs)
        dataset = build_dataset(measured, db, qos_values=(60.0,))
        train, test = dataset.rm.split_by_colocation(train_ids)
        model = GAugurRegressor().fit(train)
        pred = model.predict_from_features(test.X)
        out[int(k)] = float(np.mean(np.abs(pred - test.y) / test.y))
    return out


def run_noise(lab: Lab, sigmas: Sequence[float] = (0.0, 0.02, 0.05, 0.10)) -> dict:
    """RM error vs measurement noise level (profiling and labels alike)."""
    _, specs, colocations, train_ids = _subset_campaign(lab)
    out = {}
    for sigma in sigmas:
        mcfg = MeasurementConfig(noise_sigma=float(sigma))
        config = ProfilerConfig(measurement=mcfg)
        db = ContentionProfiler(server=lab.server, config=config).profile_catalog(specs)
        measured = measure_colocations(
            lab.catalog, colocations, server=lab.server, config=mcfg
        )
        dataset = build_dataset(measured, db, qos_values=(60.0,))
        train, test = dataset.rm.split_by_colocation(train_ids)
        model = GAugurRegressor().fit(train)
        pred = model.predict_from_features(test.X)
        out[float(sigma)] = float(np.mean(np.abs(pred - test.y) / test.y))
    return out


# ----------------------------------------------------------------------


def run(lab: Lab) -> dict:
    """All four ablation studies."""
    return {
        "aggregate_transform": run_aggregate_transform(lab),
        "feature_knockout": run_feature_knockout(lab),
        "granularity": run_granularity(lab),
        "noise": run_noise(lab),
    }


def render(result: dict) -> str:
    """All ablations as tables."""
    blocks = []
    blocks.append(
        format_table(
            ["co-runner aggregation", "RM error"],
            list(result["aggregate_transform"].items()),
            title="Ablation 1 — Eq. 5 transform vs naive aggregation",
        )
    )
    blocks.append(
        format_table(
            ["feature set", "RM error"],
            list(result["feature_knockout"].items()),
            title="Ablation 2 — feature knockouts",
        )
    )
    blocks.append(
        format_table(
            ["pressure levels k", "RM error"],
            list(result["granularity"].items()),
            title="Ablation 3 — sensitivity sampling granularity (30-game subset)",
        )
    )
    blocks.append(
        format_table(
            ["measurement noise sigma", "RM error"],
            list(result["noise"].items()),
            title="Ablation 4 — measurement-noise robustness (30-game subset)",
        )
    )
    return "\n\n".join(blocks)
