"""Extension: heterogeneous server types (paper Section 8, future work 1).

The paper profiles and evaluates on a single server type and leaves other
types to future work.  This experiment quantifies what happens when the
models trained from reference-server measurements are applied to other
hardware:

* **transfer error** — reference-trained RM predicting colocations running
  on a midrange / high-end server (profiles and labels both shift);
* **retrained error** — the same pipeline re-run natively on that server,
  showing the O(N) per-server-type cost buys back the accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.core import GAugurRegressor, build_dataset, generate_colocations
from repro.core.training import measure_colocations
from repro.experiments.lab import Lab
from repro.experiments.tables import format_table
from repro.hardware.server import server_catalog
from repro.profiling import ContentionProfiler, ProfilerConfig
from repro.utils.rng import spawn_rng

__all__ = ["run", "render"]


def _rm_error(model: GAugurRegressor, samples) -> float:
    pred = model.predict_from_features(samples.X)
    return float(np.mean(np.abs(pred - samples.y) / samples.y))


def run(lab: Lab, *, n_games: int = 20, n_colocations: int = 150) -> dict:
    """Evaluate RM transfer vs native retraining across server types."""
    names = lab.names[:n_games]
    specs = [lab.catalog.get(n) for n in names]
    colocations = generate_colocations(
        names, sizes={2: n_colocations, 3: n_colocations // 3}, seed=lab.config.seed + 1
    )
    rng = spawn_rng(lab.config.seed, "hetero-split")
    perm = rng.permutation(len(colocations))
    train_ids = perm[: int(0.6 * len(colocations))]

    results = {}
    reference_model = None
    for server_name, server in server_catalog().items():
        profiler = ContentionProfiler(server=server, config=ProfilerConfig())
        db = profiler.profile_catalog(specs)
        measured = measure_colocations(lab.catalog, colocations, server=server)
        dataset = build_dataset(measured, db, qos_values=(60.0,))
        train, test = dataset.rm.split_by_colocation(train_ids)

        native = GAugurRegressor().fit(train)
        native_error = _rm_error(native, test)
        entry = {"native_error": native_error, "mean_degradation": float(test.y.mean())}

        if server_name == lab.server.name:
            reference_model = native
        else:
            # Transfer: reference-trained model, foreign-server features/labels.
            entry["transfer_error"] = (
                _rm_error(reference_model, test) if reference_model else float("nan")
            )
        results[server_name] = entry

    return {"servers": results, "n_colocations": len(colocations)}


def render(result: dict) -> str:
    """Transfer vs native accuracy table."""
    rows = []
    for server_name, entry in result["servers"].items():
        rows.append(
            [
                server_name,
                entry["mean_degradation"],
                entry["native_error"],
                entry.get("transfer_error", float("nan")),
            ]
        )
    return format_table(
        ["server type", "mean degradation", "native RM error", "transfer RM error"],
        rows,
        title="Extension — heterogeneous server types (RM accuracy)",
    )
