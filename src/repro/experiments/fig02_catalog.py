"""Figure 2: solo resource demand and frame rate of the 100 games.

(a) CPU/GPU demand scatter (bubble size = memory demand), each normalized
to the maximum across games; (b) solo frame rates, showing the headroom
above a 60 FPS QoS floor that dedicated-server provisioning wastes.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.lab import Lab
from repro.experiments.tables import format_table
from repro.games.resolution import REFERENCE_RESOLUTION
from repro.hardware.resources import Resource

__all__ = ["run", "render"]


def run(lab: Lab) -> dict:
    """Collect per-game demand vectors and solo FPS from the profiles."""
    db = lab.db
    names = lab.names
    cpu, gpu, mem, fps = [], [], [], []
    for name in names:
        profile = db.get(name)
        demand = profile.demand_at(REFERENCE_RESOLUTION)
        cpu.append(demand[Resource.CPU_CE])
        gpu.append(demand[Resource.GPU_CE])
        mem.append(profile.cpu_mem_gb + profile.gpu_mem_gb)
        fps.append(profile.solo_fps_at(REFERENCE_RESOLUTION))
    cpu, gpu, mem, fps = map(np.asarray, (cpu, gpu, mem, fps))
    return {
        "names": names,
        "cpu_demand": cpu / cpu.max(),
        "gpu_demand": gpu / gpu.max(),
        "memory_demand": mem / mem.max(),
        "solo_fps": fps,
    }


def render(result: dict) -> str:
    """Summary statistics of the Figure 2 scatter/series."""
    fps = np.asarray(result["solo_fps"])
    rows = [
        ["CPU demand (normalized)", result["cpu_demand"].min(), np.median(result["cpu_demand"]), result["cpu_demand"].max()],
        ["GPU demand (normalized)", result["gpu_demand"].min(), np.median(result["gpu_demand"]), result["gpu_demand"].max()],
        ["memory demand (normalized)", result["memory_demand"].min(), np.median(result["memory_demand"]), result["memory_demand"].max()],
        ["solo FPS", fps.min(), np.median(fps), fps.max()],
    ]
    table = format_table(
        ["quantity", "min", "median", "max"],
        rows,
        title="Figure 2 — solo demand and frame rate across the catalog",
    )
    above = float(np.mean(fps >= 60.0))
    return f"{table}\ngames at/above 60 FPS solo: {above:.0%}"
