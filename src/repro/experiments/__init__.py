"""Experiment harness: one module per figure of the paper's evaluation.

:mod:`repro.experiments.lab` builds and caches the shared artifacts
(catalog, profile database, measured colocations, trained models);
``figNN_*`` modules each regenerate one figure's data and render it as
text.  ``python -m repro.experiments.runner`` runs everything and writes
the results tables.
"""

from repro.experiments.lab import Lab, LabConfig, get_lab

__all__ = ["Lab", "LabConfig", "get_lab"]
