"""Figure 9: feasible-colocation identification and server minimization.

Takes 10 randomly selected games, enumerates all 385 colocations of size
<= 4, measures ground-truth feasibility at the QoS floor, and scores each
methodology's judgements (9a: confusion counts, 9b: accuracy / precision /
recall).  9c packs 5000 requests with Algorithm 1 over each methodology's
correctly identified feasible colocations and compares server counts (the
no-colocation policy needs one server per request).

Shape criteria: GAugur(CM) has the best accuracy/precision/recall and
packs with the fewest servers; every colocation-aware policy beats 5000
dedicated servers by a wide margin.
"""

from __future__ import annotations


from repro.core import InterferencePredictor
from repro.experiments.lab import Lab
from repro.experiments.tables import format_table
from repro.scheduling import (
    actual_feasibility,
    enumerate_colocations,
    generate_requests,
    judge_feasibility,
    pack_requests,
    score_judgements,
)
from repro.utils.rng import spawn_rng

__all__ = ["QOS_LEVELS", "N_REQUESTS", "select_games", "run", "render"]

QOS_LEVELS = (60.0, 50.0)
N_REQUESTS = 5000


def select_games(lab: Lab, n: int = 10) -> list[str]:
    """Deterministic random selection of the study's games.

    Capped at the lab's population (reduced configurations may have fewer
    than 10 games).
    """
    n = min(n, len(lab.names))
    rng = spawn_rng(lab.config.seed, "fig9-games")
    idx = sorted(rng.choice(len(lab.names), size=n, replace=False))
    return [lab.names[int(i)] for i in idx]


def _judges(lab: Lab, qos: float) -> dict:
    cm_predictor = InterferencePredictor(
        lab.db, classifier=lab.cm_model_at(qos), regressor=lab.rm_model
    )
    return {
        "GAugur(CM)": cm_predictor.colocation_feasible,
        "GAugur(RM)": lab.predictor.colocation_feasible_rm,
        "Sigmoid": lab.sigmoid.colocation_feasible,
        "SMiTe": lab.smite.colocation_feasible,
        "VBP": lab.vbp.colocation_feasible,
    }


def run(lab: Lab, *, n_requests: int = N_REQUESTS) -> dict:
    """Score all methodologies and pack requests at both QoS levels."""
    games = select_games(lab)
    colocations = enumerate_colocations(games, max_size=4)
    requests = generate_requests(games, n_requests, seed=lab.config.seed)

    per_qos: dict[float, dict] = {}
    for qos in QOS_LEVELS:
        actual = actual_feasibility(lab.catalog, colocations, qos, server=lab.server)
        reports, servers_used = {}, {}
        for label, judge in _judges(lab, qos).items():
            judged = judge_feasibility(judge, colocations, qos)
            reports[label] = score_judgements(actual, judged)
            usable = [
                spec
                for spec, a, j in zip(colocations, actual, judged)
                if a and j
            ]
            servers_used[label] = pack_requests(requests, usable).n_servers
        per_qos[qos] = {
            "actual_feasible": int(actual.sum()),
            "reports": reports,
            "servers_used": servers_used,
        }

    return {
        "games": games,
        "n_colocations": len(colocations),
        "n_requests": n_requests,
        "per_qos": per_qos,
    }


def render(result: dict) -> str:
    """Figures 9a-9c as text tables."""
    blocks = [
        f"10 selected games: {', '.join(result['games'])} "
        f"({result['n_colocations']} colocations judged)"
    ]
    for qos, data in result["per_qos"].items():
        rows_a = [
            [label, r.tp, r.fp, r.fn, r.tn]
            for label, r in data["reports"].items()
        ]
        blocks.append(
            format_table(
                ["methodology", "TP", "FP", "FN", "TN"],
                rows_a,
                title=(
                    f"Figure 9a — judgement confusion at QoS {qos:.0f} FPS "
                    f"({data['actual_feasible']} actually feasible)"
                ),
            )
        )
        rows_b = [
            [label, r.accuracy, r.precision, r.recall]
            for label, r in data["reports"].items()
        ]
        blocks.append(
            format_table(
                ["methodology", "accuracy", "precision", "recall"],
                rows_b,
                title=f"Figure 9b — judgement quality at QoS {qos:.0f} FPS",
            )
        )
        rows_c = [[label, n] for label, n in data["servers_used"].items()]
        rows_c.append(["No colocation", result["n_requests"]])
        blocks.append(
            format_table(
                ["methodology", "servers used"],
                rows_c,
                title=(
                    f"Figure 9c — servers to pack {result['n_requests']} requests "
                    f"at QoS {qos:.0f} FPS"
                ),
            )
        )
    return "\n\n".join(blocks)
