"""Extension: resolution downscaling as a QoS actuator (fig. 10 style).

Replays one high-load fixed-1080p serving trace through the online
broker under three configurations — the plain admission chain, the
resolution-downscale actuator armed on a ``1080p > 900p > 720p`` ladder
plus the periodic restore loop, and the actuator combined with a 10% CM
margin — and compares capacity cost against QoS cost.  Per the paper's
Eq. 2 laws a game's GPU load scales with pixel count while its CPU load
and sensitivity do not, so serving a session one rung lower is a
strictly cheaper colocation candidate: the actuator converts
would-be-dedicated placements into degraded colocations and cuts
``servers_opened`` sharply.

The densified fleet exercises the CM closer to its feasibility boundary,
where its rare false-feasible verdicts live — so the plain actuator buys
capacity at the price of some extra SLO breaches.  The margin variant
(the Section 7 headroom knob) compensates exactly that: demanding 10%
FPS headroom from every CM verdict, it lands *below* the baseline on
both axes — fewer servers opened *and* fewer breaches — which is the
configuration the experiment recommends.
"""

from __future__ import annotations

from repro.experiments.lab import Lab
from repro.experiments.tables import format_table
from repro.games import DegradeLadder
from repro.obs import QoSLedger, Telemetry
from repro.placement import CMFeasiblePolicy
from repro.serving import AdmissionController, RequestBroker, TraceConfig, generate_trace

__all__ = ["run", "render"]

#: Rungs tried in order before the chain opens a new server.
LADDER = DegradeLadder.from_str("1080p,900p,720p")


def _serve(lab: Lab, sessions, *, qos: float, ladder, restore_interval, margin=1.0):
    telemetry = Telemetry()
    controller = AdmissionController(
        CMFeasiblePolicy(lab.predictor, qos, margin=margin),
        telemetry=telemetry,
        downscale_ladder=ladder,
    )
    ledger = QoSLedger(
        lab.catalog,
        lab.predictor,
        slo_fps=qos,
        server=lab.server,
    )
    broker = RequestBroker(
        controller,
        ledger=ledger,
        restore_interval=restore_interval,
    )
    report = broker.run(list(sessions))
    # downscales/restores are per-resolution labeled counters; sum the rungs.
    labeled = report.telemetry.get("labeled", {}).get("counters", {})

    def total(name: str) -> int:
        return int(sum(entry["value"] for entry in labeled.get(name, ())))

    qos_section = report.qos
    degraded = qos_section.get("degraded", {})
    return {
        "servers_opened": report.servers_opened,
        "peak_servers": report.peak_servers,
        "downscales": total("downscales"),
        "restores": total("restores"),
        "degraded_sessions": int(degraded.get("sessions", 0)),
        "degraded_minutes": float(degraded.get("minutes", 0.0)),
        "slo_breaches": int(qos_section.get("slo", {}).get("breaches", 0)),
    }


def run(
    lab: Lab,
    *,
    n_requests: int = 600,
    arrival_rate: float = 8.0,
    qos: float = 50.0,
    restore_interval: int = 64,
) -> dict:
    """Serve the same trace with and without the downscale actuator.

    ``qos`` must be one of the lab's trained CM thresholds (the CM takes
    the floor as a feature; querying outside the trained set
    extrapolates and its boundary goes soft).
    """
    trace = TraceConfig(
        n_requests=n_requests,
        arrival_rate=arrival_rate,
        mean_duration=25.0,
        seed=lab.config.seed,
    )
    sessions = generate_trace(lab.predictor.db.names(), trace)
    variants = {
        "baseline (1080p only)": _serve(
            lab, sessions, qos=qos, ladder=None, restore_interval=None
        ),
        "downscale + restore": _serve(
            lab, sessions, qos=qos, ladder=LADDER, restore_interval=restore_interval
        ),
        "downscale + 10% margin": _serve(
            lab,
            sessions,
            qos=qos,
            ladder=LADDER,
            restore_interval=restore_interval,
            margin=1.1,
        ),
    }
    base = variants["baseline (1080p only)"]
    best = variants["downscale + 10% margin"]
    return {
        "qos": qos,
        "n_requests": n_requests,
        "arrival_rate": arrival_rate,
        "ladder": LADDER.to_list(),
        "restore_interval": restore_interval,
        "variants": variants,
        "servers_saved": base["servers_opened"] - best["servers_opened"],
        "breaches_saved": base["slo_breaches"] - best["slo_breaches"],
    }


def render(result: dict) -> str:
    """Capacity-vs-quality comparison table."""
    rows = []
    for label, m in result["variants"].items():
        rows.append(
            [
                label,
                m["servers_opened"],
                m["peak_servers"],
                m["downscales"],
                m["restores"],
                m["degraded_sessions"],
                f"{m['degraded_minutes']:.0f}",
                m["slo_breaches"],
            ]
        )
    return format_table(
        [
            "variant",
            "servers opened",
            "peak",
            "downscales",
            "restores",
            "degraded sessions",
            "degraded minutes",
            "SLO breaches",
        ],
        rows,
        title=(
            "Extension — resolution-downscale actuator "
            f"({result['n_requests']} sessions @ {result['arrival_rate']:.0f}/min, "
            f"QoS {result['qos']:.0f} FPS, "
            f"ladder {' > '.join(result['ladder'])}; margin variant saves "
            f"{result['servers_saved']} servers and "
            f"{result['breaches_saved']} breaches vs baseline)"
        ),
    )
