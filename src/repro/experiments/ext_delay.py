"""Extension: processing-delay prediction (paper Section 7).

Trains a delay model with the same features and pipeline as the RM and
reports its accuracy — demonstrating the paper's claim that interaction
(processing) delay "can be predicted in a similar way".
"""

from __future__ import annotations

import numpy as np

from repro.core.delay import (
    GAugurDelayRegressor,
    build_delay_dataset,
    measure_delay_colocations,
)
from repro.experiments.lab import Lab
from repro.experiments.tables import format_table

__all__ = ["run", "render"]


def run(lab: Lab) -> dict:
    """Measure delays for the campaign, train and evaluate the delay model."""
    measured = measure_delay_colocations(
        lab.catalog, lab.colocations, server=lab.server
    )
    samples = build_delay_dataset(measured, lab.db)
    train, test = samples.split_by_colocation(lab.train_colocation_ids)

    model = GAugurDelayRegressor().fit(train)
    pred = model.predict_from_features(test.X)
    errors = np.abs(pred - test.y) / test.y

    by_size = {}
    for size in sorted(np.unique(test.sizes)):
        mask = test.sizes == size
        by_size[int(size)] = float(np.mean(errors[mask]))

    return {
        "n_samples": len(samples),
        "overall_error": float(np.mean(errors)),
        "by_size": by_size,
        "delay_ratio_range": (float(samples.y.min()), float(samples.y.max())),
        "p90_error": float(np.quantile(errors, 0.9)),
    }


def render(result: dict) -> str:
    """Delay-model accuracy table."""
    rows = [["overall", result["overall_error"]]]
    rows += [[f"{k}-games", v] for k, v in result["by_size"].items()]
    rows.append(["p90", result["p90_error"]])
    lo, hi = result["delay_ratio_range"]
    table = format_table(
        ["group", "relative error"],
        rows,
        title="Extension — processing-delay prediction error",
    )
    return (
        f"{table}\n"
        f"delay inflation ratios span {lo:.2f} .. {hi:.2f} "
        f"({result['n_samples']} samples)"
    )
