"""Figure 6: aggregate intensity vs sum of individual intensities.

The paper colocates AirMech Strike and Hobo Tough Life *together* with each
benchmark and compares the benchmark's slowdown (the holistic aggregate
intensity of the pair) against the sum of the two games' individually
profiled intensities — they differ substantially on several resources,
establishing Observation 5 (intensity is not additive) and invalidating
Paragon-style additive models for games.
"""

from __future__ import annotations

import numpy as np

from repro.bench.suite import make_benchmark
from repro.experiments.lab import Lab
from repro.experiments.tables import format_table
from repro.games.resolution import REFERENCE_RESOLUTION
from repro.hardware.resources import Resource
from repro.simulator import BenchmarkInstance, GameInstance, run_colocation

__all__ = ["PAIR", "run", "render"]

PAIR = ("AirMech Strike", "Hobo Tough Life")


def run(lab: Lab) -> dict:
    """Measure holistic pair intensity per resource and compare to the sum."""
    dials = lab.profiler_config.dials
    instances = [GameInstance(lab.catalog.get(name)) for name in PAIR]

    holistic = {}
    for res in Resource:
        slowdowns = []
        for dial in dials:
            bench = BenchmarkInstance(make_benchmark(res, float(dial)))
            result = run_colocation(instances + [bench], server=lab.server)
            slowdowns.append(result.slowdowns[-1])
        holistic[res.label] = max(0.0, float(np.mean(slowdowns)) - 1.0)

    summed = {}
    for res in Resource:
        total = sum(
            lab.db.get(name).intensity_at(REFERENCE_RESOLUTION)[res] for name in PAIR
        )
        summed[res.label] = float(total)

    return {"pair": PAIR, "sum": summed, "holistic": holistic}


def render(result: dict) -> str:
    """Figure 6 bars as a resource x {sum, holistic} table."""
    rows = []
    for res in Resource:
        s = result["sum"][res.label]
        h = result["holistic"][res.label]
        ratio = h / s if s > 0 else float("nan")
        rows.append([res.label, s, h, ratio])
    return format_table(
        ["resource", "sum of intensities", "holistic aggregate", "ratio"],
        rows,
        title=(
            "Figure 6 — aggregate vs summed intensity "
            f"({result['pair'][0]} + {result['pair'][1]})"
        ),
        float_fmt="{:.2f}",
    )
