"""Figure 7: regression (RM) prediction accuracy.

(a) mean relative error vs number of training samples for DTR / GBRT / RF /
SVR; (b) error breakdown by colocation size for GAugur(RM) vs Sigmoid vs
SMiTe; (c) CDF of per-sample errors for the three methodologies.

Shape criteria: more data helps every learner; GBRT is the best of the
four; GAugur(RM) beats both baselines overall and at every size, with the
baselines degrading sharply on larger colocations (additivity and
size-only assumptions failing).
"""

from __future__ import annotations

import numpy as np

from repro.core.regression import GAugurRegressor
from repro.experiments.evalutils import (
    baseline_sample_predictions,
    breakdown_by_size,
)
from repro.experiments.lab import Lab
from repro.experiments.tables import format_series, format_table
from repro.ml import (
    SVR,
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    RandomForestRegressor,
)

__all__ = ["TRAINING_SIZES", "rm_estimators", "run", "render"]

TRAINING_SIZES = (400, 600, 800, 1000)


def rm_estimators() -> dict:
    """The four learners of Figure 7a."""
    return {
        "DTR": DecisionTreeRegressor(max_depth=12, min_samples_leaf=3),
        "GBRT": GradientBoostingRegressor(
            n_estimators=300, learning_rate=0.06, max_depth=4
        ),
        "RF": RandomForestRegressor(n_estimators=80, max_depth=14, min_samples_leaf=2),
        "SVR": SVR(C=10.0, epsilon=0.02),
    }


def run(lab: Lab) -> dict:
    """Train/evaluate all Figure 7 models and collect error arrays."""
    _, _, rm_tr, rm_te = lab.split(60.0)
    # The 400 training colocations yield slightly under 1000 samples; the
    # last point of the paper's x-axis is the full training pool.
    sizes = [n for n in TRAINING_SIZES if n <= len(rm_tr)]
    if not sizes or sizes[-1] < len(rm_tr):
        sizes.append(len(rm_tr))

    # (a) learner x training-size error matrix.
    curve_errors: dict[str, list[float]] = {}
    for label, estimator in rm_estimators().items():
        errors = []
        for n in sizes:
            subset = lab.training_subset(rm_tr, n, label=f"rm-{label}")
            model = GAugurRegressor(estimator=estimator.clone()).fit(subset)
            pred = model.predict_from_features(rm_te.X)
            errors.append(float(np.mean(np.abs(pred - rm_te.y) / rm_te.y)))
        curve_errors[label] = errors

    # (b)+(c): per-sample errors of GAugur(RM) vs the baselines.
    best = GAugurRegressor(
        estimator=rm_estimators()["GBRT"]
    ).fit(lab.training_subset(rm_tr, sizes[-1], label="rm-final"))
    gaugur_pred = best.predict_from_features(rm_te.X)
    gaugur_errors = np.abs(gaugur_pred - rm_te.y) / rm_te.y

    sigmoid = baseline_sample_predictions(lab, lab.sigmoid)
    smite = baseline_sample_predictions(lab, lab.smite)

    per_sample_errors = {
        "GAugur(RM)": (gaugur_errors, rm_te.sizes),
        "Sigmoid": (sigmoid.relative_errors, sigmoid.sizes),
        "SMiTe": (smite.relative_errors, smite.sizes),
    }
    breakdown = {
        label: breakdown_by_size(errors, sizes_)
        for label, (errors, sizes_) in per_sample_errors.items()
    }

    return {
        "training_sizes": sizes,
        "error_vs_samples": curve_errors,
        "breakdown": breakdown,
        "errors": {k: v[0] for k, v in per_sample_errors.items()},
        "sizes": {k: v[1] for k, v in per_sample_errors.items()},
    }


def render(result: dict) -> str:
    """Figures 7a-7c as text tables."""
    part_a = format_series(
        "n_train",
        result["training_sizes"],
        result["error_vs_samples"],
        title="Figure 7a — RM prediction error vs training samples",
    )

    groups = ["overall"] + sorted(
        k for k in next(iter(result["breakdown"].values())) if k != "overall"
    )
    rows = [
        [label] + [result["breakdown"][label].get(g, float("nan")) for g in groups]
        for label in result["breakdown"]
    ]
    part_b = format_table(
        ["methodology"] + [f"{g}-games" if g != "overall" else g for g in groups],
        rows,
        title="Figure 7b — prediction error by colocation size",
    )

    cdf_rows = []
    quantiles = (0.5, 0.8, 0.9, 0.95)
    for label, errors in result["errors"].items():
        cdf_rows.append([label] + [float(np.quantile(errors, q)) for q in quantiles])
    part_c = format_table(
        ["methodology"] + [f"p{int(q*100)}" for q in quantiles],
        cdf_rows,
        title="Figure 7c — prediction-error quantiles (CDF summary)",
    )
    return "\n\n".join([part_a, part_b, part_c])
