"""Run every figure experiment and print/write the results.

Usage::

    python -m repro.experiments.runner [output.md]

``REPRO_SCALE=small`` runs the reduced configuration; the default is the
paper-scale setup (100 games, 700 measured colocations, 5000 requests).
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.experiments import (
    ablations,
    ext_completion,
    ext_conservative,
    ext_degrade,
    ext_delay,
    ext_dynamic,
    ext_hetero,
    ext_importance,
    fig01_pairs,
    fig02_catalog,
    fig04_sensitivity,
    fig05_intensity,
    fig06_additivity,
    fig07_regression,
    fig08_classification,
    fig09_feasibility,
    fig10_scheduling,
)
from repro.experiments.lab import get_lab

__all__ = ["EXPERIMENTS", "EXTENSIONS", "run_all", "main"]

EXPERIMENTS = (
    ("fig01", fig01_pairs),
    ("fig02", fig02_catalog),
    ("fig04", fig04_sensitivity),
    ("fig05", fig05_intensity),
    ("fig06", fig06_additivity),
    ("fig07", fig07_regression),
    ("fig08", fig08_classification),
    ("fig09", fig09_feasibility),
    ("fig10", fig10_scheduling),
)

#: Extension experiments (paper Sections 6-8 items); run with --extensions.
EXTENSIONS = (
    ("ext_delay", ext_delay),
    ("ext_conservative", ext_conservative),
    ("ext_dynamic", ext_dynamic),
    ("ext_completion", ext_completion),
    ("ext_hetero", ext_hetero),
    ("ext_importance", ext_importance),
    ("ext_degrade", ext_degrade),
    ("ablations", ablations),
)


def run_all(
    lab=None, *, echo: bool = True, include_extensions: bool = False
) -> dict[str, str]:
    """Run every experiment; returns {figure id: rendered text}."""
    lab = lab if lab is not None else get_lab()
    suite = EXPERIMENTS + (EXTENSIONS if include_extensions else ())
    rendered: dict[str, str] = {}
    for name, module in suite:
        start = time.time()
        result = module.run(lab)
        text = module.render(result)
        rendered[name] = text
        if echo:
            print(f"\n===== {name} ({time.time() - start:.1f}s) =====")
            print(text)
    return rendered


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: ``runner [--extensions] [output.md]``."""
    argv = list(argv) if argv is not None else sys.argv[1:]
    include_extensions = "--extensions" in argv
    argv = [a for a in argv if a != "--extensions"]
    rendered = run_all(include_extensions=include_extensions)
    if argv:
        out = Path(argv[0])
        body = "\n\n".join(
            f"## {name}\n\n```\n{text}\n```" for name, text in rendered.items()
        )
        out.write_text(f"# GAugur reproduction results\n\n{body}\n")
        print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
