"""Extension: which shared resources drive interference predictions?

Permutation importance of the RM's inputs, grouped per shared resource
(a resource's sensitivity-curve samples + its aggregate intensity mean and
variance).  The paper motivates GAugur by arguing that contention on *all
seven* resources matters; this experiment quantifies each resource's
contribution to the trained predictor, plus the split between the
sensitivity block and the co-runner intensity block.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.lab import Lab
from repro.experiments.tables import format_table
from repro.hardware.resources import NUM_RESOURCES, Resource
from repro.ml.inspection import permutation_importance
from repro.utils.rng import spawn_rng

__all__ = ["run", "render"]

_SAMPLES_PER_CURVE = 11


def _group_indices() -> dict[str, np.ndarray]:
    groups: dict[str, np.ndarray] = {}
    sens_len = NUM_RESOURCES * _SAMPLES_PER_CURVE
    for res in Resource:
        idx = list(
            range(int(res) * _SAMPLES_PER_CURVE, (int(res) + 1) * _SAMPLES_PER_CURVE)
        )
        idx.append(sens_len + 1 + 2 * int(res))  # intensity mean
        idx.append(sens_len + 2 + 2 * int(res))  # intensity var
        groups[res.label] = np.asarray(idx, dtype=int)
    groups["n_corunners"] = np.asarray([sens_len], dtype=int)
    return groups


def run(lab: Lab) -> dict:
    """Permutation importance of the trained RM on held-out samples."""
    _, _, _, rm_te = lab.split(60.0)
    model = lab.rm_model
    rng = spawn_rng(lab.config.seed, "importance")

    def loss(y_true, y_pred) -> float:
        return float(np.mean(np.abs(y_pred - y_true) / y_true))

    per_feature = permutation_importance(
        model.predict_from_features, rm_te.X, rm_te.y, metric=loss, n_repeats=3, rng=rng
    )

    grouped = {
        label: float(np.sum(per_feature[idx]))
        for label, idx in _group_indices().items()
    }
    sens_len = NUM_RESOURCES * _SAMPLES_PER_CURVE
    blocks = {
        "sensitivity curves": float(np.sum(per_feature[:sens_len])),
        "aggregate intensity": float(np.sum(per_feature[sens_len:])),
    }
    return {"per_resource": grouped, "per_block": blocks}


def render(result: dict) -> str:
    """Importance tables (per resource and per feature block)."""
    resource_rows = sorted(
        result["per_resource"].items(), key=lambda kv: -kv[1]
    )
    part_a = format_table(
        ["feature group", "importance (added error when permuted)"],
        resource_rows,
        title="Extension — RM permutation importance per shared resource",
        float_fmt="{:.4f}",
    )
    part_b = format_table(
        ["feature block", "importance"],
        list(result["per_block"].items()),
        title="Sensitivity vs intensity blocks",
        float_fmt="{:.4f}",
    )
    return f"{part_a}\n\n{part_b}"
