"""Figure 5: intensity of six representative games on each shared resource.

Reproduces Observation 2 (sensitivity and intensity are uncorrelated — e.g.
Granado Espada is very sensitive to GPU-CE but exerts little GPU-CE
pressure) and Observation 3 (per-game diversity).
"""

from __future__ import annotations

from repro.experiments.lab import Lab
from repro.experiments.tables import format_table
from repro.games.catalog import REPRESENTATIVE_GAMES
from repro.games.resolution import REFERENCE_RESOLUTION
from repro.hardware.resources import Resource

__all__ = ["run", "render"]


def run(lab: Lab) -> dict:
    """Pull the profiled intensities of the representative games."""
    games = [n for n in REPRESENTATIVE_GAMES if n in set(lab.names)]
    intensity = {}
    for name in games:
        vec = lab.db.get(name).intensity_at(REFERENCE_RESOLUTION)
        intensity[name] = {res.label: vec[res] for res in Resource}
    return {"games": games, "intensity": intensity}


def render(result: dict) -> str:
    """Figure 5 bars as a game x resource table."""
    headers = ["game"] + [res.label for res in Resource]
    rows = [
        [name] + [result["intensity"][name][res.label] for res in Resource]
        for name in result["games"]
    ]
    return format_table(
        headers,
        rows,
        title="Figure 5 — intensity of representative games (benchmark slowdown)",
        float_fmt="{:.2f}",
    )
