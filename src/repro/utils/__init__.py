"""Shared utilities: deterministic RNG streams, validation, serialization."""

from repro.utils.rng import derive_seed, spawn_rng
from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_positive,
    check_probability_vector,
)

__all__ = [
    "derive_seed",
    "spawn_rng",
    "check_fraction",
    "check_in_range",
    "check_positive",
    "check_probability_vector",
]
