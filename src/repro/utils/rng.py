"""Deterministic random-number stream management.

Every stochastic component in the reproduction (catalog generation, frame-loop
noise, workload sampling, ML randomness) draws from a named substream derived
from a single experiment seed.  Substreams are derived by hashing the parent
seed together with a string label, so adding a new consumer never perturbs the
streams of existing consumers — a property plain sequential ``rng.integers``
seeding would not have.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "spawn_rng"]

_SEED_MASK = (1 << 63) - 1


def derive_seed(seed: int, *labels: object) -> int:
    """Derive a child seed from ``seed`` and a sequence of labels.

    The derivation is a SHA-256 hash of the parent seed and the labels'
    string representations, truncated to 63 bits.  It is stable across
    processes and Python versions (unlike ``hash``).

    Parameters
    ----------
    seed:
        Parent seed (any Python int).
    labels:
        Arbitrary hashable/str-able labels naming the substream, e.g.
        ``derive_seed(7, "catalog", "Dota2")``.
    """
    h = hashlib.sha256()
    h.update(str(int(seed)).encode("utf-8"))
    for label in labels:
        h.update(b"\x1f")
        h.update(str(label).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "little") & _SEED_MASK


def spawn_rng(seed: int, *labels: object) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the named substream."""
    return np.random.default_rng(derive_seed(seed, *labels))
