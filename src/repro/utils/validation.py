"""Lightweight argument-validation helpers used across the package."""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_fraction",
    "check_in_range",
    "check_positive",
    "check_probability_vector",
]


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is finite and strictly positive."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not np.isfinite(value) or value < 0.0 or value > 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_in_range(
    value: float, low: float, high: float, name: str, *, inclusive: bool = True
) -> float:
    """Validate that ``value`` lies in ``[low, high]`` (or ``(low, high)``)."""
    value = float(value)
    ok = (low <= value <= high) if inclusive else (low < value < high)
    if not np.isfinite(value) or not ok:
        bracket = "[]" if inclusive else "()"
        raise ValueError(
            f"{name} must lie in {bracket[0]}{low}, {high}{bracket[1]}, got {value!r}"
        )
    return value


def check_probability_vector(values, name: str) -> np.ndarray:
    """Validate a non-negative vector summing to 1 (within tolerance)."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError(f"{name} must be a non-empty 1-D array")
    if np.any(arr < 0) or not np.isfinite(arr).all():
        raise ValueError(f"{name} must be non-negative and finite")
    total = float(arr.sum())
    if abs(total - 1.0) > 1e-8:
        raise ValueError(f"{name} must sum to 1, got {total}")
    return arr
