"""JSON serialization helpers for profile databases and trained models.

NumPy scalars/arrays are converted to plain Python types so that the output
is portable JSON; loading reconstructs arrays where the schema expects them.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["SerializationError", "to_jsonable", "dump_json", "load_json"]


class SerializationError(ValueError):
    """A file on disk could not be parsed as the expected JSON artifact.

    Subclasses :class:`ValueError` so existing ``except ValueError``
    error handling (e.g. the CLI's top-level handler) keeps working, but
    the message always names the offending path — a truncated profile
    database or predictor bundle must never surface as a bare
    ``JSONDecodeError`` with no hint of *which* file is corrupt.
    """


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-serializable primitives."""
    if isinstance(obj, np.ndarray):
        return [to_jsonable(v) for v in obj.tolist()]
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        return obj.item()
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if hasattr(obj, "to_dict"):
        return to_jsonable(obj.to_dict())
    raise TypeError(f"cannot serialize object of type {type(obj).__name__}")


def dump_json(obj: Any, path: str | Path, *, indent: int = 2) -> None:
    """Serialize ``obj`` to JSON at ``path`` (parent dirs created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_jsonable(obj), indent=indent, sort_keys=True))


def load_json(path: str | Path) -> Any:
    """Load JSON from ``path``.

    A truncated or otherwise corrupt file raises
    :class:`SerializationError` naming the path instead of a bare
    :class:`json.JSONDecodeError`.
    """
    path = Path(path)
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"{path}: invalid or truncated JSON ({exc})") from exc
