"""The Sigmoid baseline [6, 21].

Models a game's colocated frame rate as a logistic function of *how many*
games it shares the server with — ignoring entirely *which* games they are:

``FPS_A(n) = alpha_1 / (1 + exp(-alpha_2 * n + alpha_3))``.

We fit the three per-game parameters on the degradation ratio (frame rate
normalized by the game's solo rate at its resolution) rather than raw FPS,
which makes the fit resolution-robust; predictions are mapped back to FPS
through the profile's solo-FPS law.  Games with too few training
colocations fall back to the population-level fit.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np
from scipy.optimize import curve_fit

from repro.core.training import ColocationSpec, MeasuredColocation

if TYPE_CHECKING:
    from repro.profiling.database import ProfileDatabase

__all__ = ["SigmoidPredictor"]


def _sigmoid_model(n, a1, a2, a3):
    return a1 / (1.0 + np.exp(-a2 * n + a3))


def _fit_params(n_values: np.ndarray, ratios: np.ndarray) -> tuple | None:
    """Least-squares logistic fit; None when the optimizer cannot fit."""
    if n_values.size < 3 or np.unique(n_values).size < 2:
        return None
    try:
        params, _ = curve_fit(
            _sigmoid_model,
            n_values,
            ratios,
            p0=(float(ratios.max()), -0.8, -1.0),
            maxfev=5000,
        )
    except (RuntimeError, ValueError):
        return None
    return tuple(float(p) for p in params)


class SigmoidPredictor:
    """Per-game logistic degradation-vs-colocation-size model."""

    def __init__(self, db: "ProfileDatabase"):
        self.db = db
        self._params: dict[str, tuple] = {}
        self._fallback: tuple | None = None

    def fit(self, measured: Sequence[MeasuredColocation]) -> "SigmoidPredictor":
        """Fit per-game parameters from measured training colocations."""
        per_game: dict[str, list[tuple[int, float]]] = {}
        for m in measured:
            k = m.spec.size
            if k < 2:
                continue
            for i, (name, resolution) in enumerate(m.spec.entries):
                solo = self.db.get(name).solo_fps_at(resolution)
                per_game.setdefault(name, []).append((k - 1, m.fps[i] / solo))

        all_n, all_r = [], []
        for name, points in per_game.items():
            n_values = np.array([p[0] for p in points], dtype=float)
            ratios = np.array([p[1] for p in points], dtype=float)
            all_n.append(n_values)
            all_r.append(ratios)
            params = _fit_params(n_values, ratios)
            if params is not None:
                self._params[name] = params
        if all_n:
            self._fallback = _fit_params(np.concatenate(all_n), np.concatenate(all_r))
        if self._fallback is None:
            self._fallback = (1.0, -0.8, -1.0)
        return self

    # ------------------------------------------------------------------

    def _degradation(self, name: str, n_corunners: int) -> float:
        params = self._params.get(name, self._fallback)
        value = _sigmoid_model(float(n_corunners), *params)
        return float(np.clip(value, 0.01, 1.5))

    def predict_degradations(self, spec: ColocationSpec) -> np.ndarray:
        """Degradation ratio per entry (depends only on colocation size)."""
        n = spec.size - 1
        return np.array(
            [self._degradation(name, n) for name, _ in spec.entries], dtype=float
        )

    def predict_fps(self, spec: ColocationSpec) -> np.ndarray:
        """Predicted FPS per entry."""
        solo = np.array(
            [self.db.get(name).solo_fps_at(res) for name, res in spec.entries]
        )
        return self.predict_degradations(spec) * solo

    def predict_feasible(self, spec: ColocationSpec, qos: float) -> np.ndarray:
        """Per-entry QoS verdicts by thresholding predicted FPS."""
        return self.predict_fps(spec) >= qos

    def colocation_feasible(self, spec: ColocationSpec, qos: float) -> bool:
        """True iff every entry is predicted to meet QoS."""
        return bool(np.all(self.predict_feasible(spec, qos)))
