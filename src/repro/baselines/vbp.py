"""The Vector Bin Packing baseline (Section 2.2 / 5.1).

VBP describes each game by its solo-run resource-demand vector and allows a
colocation whenever the summed demands fit within server capacity on every
dimension.  Following the paper, the checked dimensions are the five
utilization-style shared resources (caches are excluded — capacity
occupancy is not a utilization) plus CPU and GPU memory.  VBP has no
interference model at all: it neither predicts frame rates nor accounts
for contention below the capacity ceiling, which is why it both
over-admits (QoS violations) and under-admits (demand measured at solo
speed overstates need).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.training import ColocationSpec
from repro.hardware.resources import Resource, ResourceKind
from repro.hardware.server import DEFAULT_SERVER, ServerSpec

if TYPE_CHECKING:
    from repro.profiling.database import ProfileDatabase

__all__ = ["VBPJudge"]

#: Shared-resource dimensions VBP checks (caches excluded, per the paper).
VBP_RESOURCES: tuple[Resource, ...] = tuple(
    r for r in Resource if r.kind is not ResourceKind.CACHE
)


class VBPJudge:
    """Demand-vector feasibility judge and worst-fit capacity tracker."""

    def __init__(self, db: "ProfileDatabase", server: ServerSpec = DEFAULT_SERVER):
        self.db = db
        self.server = server

    # ------------------------------------------------------------------

    def demand_vector(self, name: str, resolution) -> np.ndarray:
        """Demand on the checked dimensions: 5 shared resources + 2 memories.

        Shared-resource entries are fractions of server capacity; memory
        entries are normalized by the server's memory sizes.
        """
        profile = self.db.get(name)
        shared = profile.demand_at(resolution)
        demand = [
            shared[res] / self.server.domain_scale(res) for res in VBP_RESOURCES
        ]
        demand.append(profile.cpu_mem_gb / self.server.cpu_mem_gb)
        demand.append(profile.gpu_mem_gb / self.server.gpu_mem_gb)
        return np.asarray(demand, dtype=float)

    def total_demand(self, spec: ColocationSpec) -> np.ndarray:
        """Summed demand vector of a colocation."""
        return np.sum(
            [self.demand_vector(name, res) for name, res in spec.entries], axis=0
        )

    def colocation_feasible(self, spec: ColocationSpec, qos: float = 0.0) -> bool:  # noqa: ARG002 — predictor interface
        """Feasible iff summed demand fits capacity on every dimension.

        ``qos`` is accepted for interface compatibility; VBP cannot reason
        about frame rates.
        """
        return bool(np.all(self.total_demand(spec) <= 1.0 + 1e-9))

    def predict_feasible(self, spec: ColocationSpec, qos: float = 0.0) -> np.ndarray:
        """Per-entry verdicts (VBP judges the colocation as a whole)."""
        verdict = self.colocation_feasible(spec, qos)
        return np.full(spec.size, verdict, dtype=bool)

    def remaining_capacity(self, spec: ColocationSpec | None) -> float:
        """Total slack across dimensions — the worst-fit assignment score."""
        if spec is None or spec.size == 0:
            return float(len(VBP_RESOURCES) + 2)
        slack = 1.0 - self.total_demand(spec)
        return float(np.sum(slack))

    def fits_after_adding(
        self, spec: ColocationSpec | None, name: str, resolution
    ) -> bool:
        """Would the colocation still fit with one more game added?"""
        extra = self.demand_vector(name, resolution)
        base = self.total_demand(spec) if spec is not None and spec.size else 0.0
        return bool(np.all(base + extra <= 1.0 + 1e-9))
