"""Baseline interference predictors the paper compares against (Section 4.1).

* :class:`SigmoidPredictor` — per-game logistic model in the *number* of
  co-located games only (prior cloud-gaming work [6, 21]).
* :class:`SMiTePredictor` — linear model over (sensitivity-score x
  intensity) products per resource, extended to >2 games with Paragon's
  additive-intensity assumption (Eqs. 8-9).
* :class:`VBPJudge` — vector bin packing feasibility: colocate while summed
  demand vectors fit the server (Section 2.2), no interference model.

All predictors consume only profiled/observable quantities, and expose the
same colocation-level API as :class:`repro.core.InterferencePredictor`.
"""

from repro.baselines.sigmoid import SigmoidPredictor
from repro.baselines.smite import SMiTePredictor
from repro.baselines.vbp import VBPJudge

__all__ = ["SigmoidPredictor", "SMiTePredictor", "VBPJudge"]
