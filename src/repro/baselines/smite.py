"""The SMiTe baseline [39] with Paragon's additive extension [13].

SMiTe predicts the degradation of application A colocated with B as a
linear combination of per-resource (sensitivity-score x intensity)
products (Eq. 8).  Its sensitivity score is a single scalar per resource —
the degradation suffered under *maximum* pressure — so nonlinear curves
collapse to their endpoint.  SMiTe only handles pairs; following the paper,
colocations of more than two games substitute the *sum* of co-runner
intensities (Eq. 9), i.e. Paragon's additive-intensity assumption, which
Observation 5 shows is wrong for games — this is exactly where the baseline
loses accuracy on larger colocations.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.core.training import ColocationSpec, MeasuredColocation
from repro.hardware.resources import NUM_RESOURCES, Resource

if TYPE_CHECKING:
    from repro.profiling.database import ProfileDatabase

__all__ = ["SMiTePredictor"]


class SMiTePredictor:
    """Linear sensitivity-x-intensity interference model (Eqs. 8-9)."""

    def __init__(self, db: "ProfileDatabase"):
        self.db = db

    # ------------------------------------------------------------------

    def _sensitivity_scores(self, name: str) -> np.ndarray:
        """Per-resource scalar scores: degradation suffered at max pressure."""
        profile = self.db.get(name)
        return np.array(
            [1.0 - profile.sensitivity[res].at_full_pressure for res in Resource]
        )

    def _feature_row(self, spec: ColocationSpec, target_index: int) -> np.ndarray:
        """(7,) row: score_r * sum of co-runner intensities on r."""
        scores = self._sensitivity_scores(spec.entries[target_index][0])
        summed = np.zeros(NUM_RESOURCES, dtype=float)
        for j, (name, resolution) in enumerate(spec.entries):
            if j == target_index:
                continue
            summed += self.db.get(name).intensity_at(resolution).values
        return scores * summed

    def fit(self, measured: Sequence[MeasuredColocation]) -> "SMiTePredictor":
        """Derive the coefficients c_0..c_7 by least squares on training data."""
        rows, targets = [], []
        for m in measured:
            if m.spec.size < 2:
                continue
            for i, (name, resolution) in enumerate(m.spec.entries):
                solo = self.db.get(name).solo_fps_at(resolution)
                rows.append(self._feature_row(m.spec, i))
                targets.append(m.fps[i] / solo)
        if not rows:
            raise ValueError("SMiTe needs at least one multi-game measurement")
        X = np.column_stack([np.vstack(rows), np.ones(len(rows))])
        solution, *_ = np.linalg.lstsq(X, np.asarray(targets), rcond=None)
        self.coef_ = solution[:NUM_RESOURCES]
        self.intercept_ = float(solution[NUM_RESOURCES])
        return self

    # ------------------------------------------------------------------

    def predict_degradations(self, spec: ColocationSpec) -> np.ndarray:
        """Degradation ratio per entry via the linear model."""
        self._check_fitted()
        values = [
            float(self._feature_row(spec, i) @ self.coef_) + self.intercept_
            for i in range(spec.size)
        ]
        return np.clip(np.asarray(values), 0.01, 1.5)

    def predict_fps(self, spec: ColocationSpec) -> np.ndarray:
        """Predicted FPS per entry."""
        solo = np.array(
            [self.db.get(name).solo_fps_at(res) for name, res in spec.entries]
        )
        return self.predict_degradations(spec) * solo

    def predict_feasible(self, spec: ColocationSpec, qos: float) -> np.ndarray:
        """Per-entry QoS verdicts by thresholding predicted FPS."""
        return self.predict_fps(spec) >= qos

    def colocation_feasible(self, spec: ColocationSpec, qos: float) -> bool:
        """True iff every entry is predicted to meet QoS."""
        return bool(np.all(self.predict_feasible(spec, qos)))

    def _check_fitted(self) -> None:
        if not hasattr(self, "coef_"):
            raise RuntimeError("SMiTePredictor is not fitted; call fit() first")
