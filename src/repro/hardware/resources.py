"""The seven shared resources GAugur models, and vectors indexed by them.

The paper (Section 3.2) identifies seven shared resources that matter for
game performance: CPU cores (CPU-CE), last-level cache (LLC), memory
bandwidth (MEM-BW), GPU cores (GPU-CE), GPU memory bandwidth (GPU-BW),
GPU L2 cache (GPU-L2) and PCIe bandwidth (PCIe-BW).  CPU and GPU memory
*capacity* are excluded from the contention features because they only
matter when oversubscribed (the simulator still enforces that constraint,
see :mod:`repro.simulator.engine`).
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Mapping

import numpy as np

__all__ = [
    "Resource",
    "ResourceDomain",
    "ResourceKind",
    "ResourceVector",
    "NUM_RESOURCES",
    "CPU_RESOURCES",
    "GPU_RESOURCES",
]


class ResourceDomain(enum.Enum):
    """Which pipeline stage a resource's contention inflates."""

    CPU = "cpu"
    GPU = "gpu"
    LINK = "link"


class ResourceKind(enum.Enum):
    """Contention behaviour class, selecting the aggregation combinator."""

    COMPUTE = "compute"
    BANDWIDTH = "bandwidth"
    CACHE = "cache"


class Resource(enum.IntEnum):
    """The seven contended resources, ordered as in the paper's figures."""

    CPU_CE = 0
    MEM_BW = 1
    LLC = 2
    GPU_CE = 3
    GPU_BW = 4
    GPU_L2 = 5
    PCIE_BW = 6

    @property
    def label(self) -> str:
        """Paper-style display label, e.g. ``"CPU-CE"``."""
        return _LABELS[self]

    @property
    def domain(self) -> ResourceDomain:
        """Pipeline stage this resource belongs to."""
        return _DOMAINS[self]

    @property
    def kind(self) -> ResourceKind:
        """Contention class of the resource."""
        return _KINDS[self]

    @classmethod
    def from_label(cls, label: str) -> "Resource":
        """Inverse of :attr:`label`."""
        for res, text in _LABELS.items():
            if text == label:
                return res
        raise KeyError(f"unknown resource label {label!r}")


_LABELS: dict[Resource, str] = {
    Resource.CPU_CE: "CPU-CE",
    Resource.MEM_BW: "MEM-BW",
    Resource.LLC: "LLC",
    Resource.GPU_CE: "GPU-CE",
    Resource.GPU_BW: "GPU-BW",
    Resource.GPU_L2: "GPU-L2",
    Resource.PCIE_BW: "PCIe-BW",
}

_DOMAINS: dict[Resource, ResourceDomain] = {
    Resource.CPU_CE: ResourceDomain.CPU,
    Resource.MEM_BW: ResourceDomain.CPU,
    Resource.LLC: ResourceDomain.CPU,
    Resource.GPU_CE: ResourceDomain.GPU,
    Resource.GPU_BW: ResourceDomain.GPU,
    Resource.GPU_L2: ResourceDomain.GPU,
    Resource.PCIE_BW: ResourceDomain.LINK,
}

_KINDS: dict[Resource, ResourceKind] = {
    Resource.CPU_CE: ResourceKind.COMPUTE,
    Resource.MEM_BW: ResourceKind.BANDWIDTH,
    Resource.LLC: ResourceKind.CACHE,
    Resource.GPU_CE: ResourceKind.COMPUTE,
    Resource.GPU_BW: ResourceKind.BANDWIDTH,
    Resource.GPU_L2: ResourceKind.CACHE,
    Resource.PCIE_BW: ResourceKind.BANDWIDTH,
}

NUM_RESOURCES: int = len(Resource)

CPU_RESOURCES: tuple[Resource, ...] = tuple(
    r for r in Resource if r.domain is ResourceDomain.CPU
)
GPU_RESOURCES: tuple[Resource, ...] = tuple(
    r for r in Resource if r.domain is ResourceDomain.GPU
)


class ResourceVector:
    """A dense float vector with one entry per :class:`Resource`.

    Thin, immutable-by-convention wrapper around a ``(7,)`` ndarray that adds
    resource-name indexing, arithmetic and dict round-trips.  Used for
    utilizations, intensities and demands.
    """

    __slots__ = ("_values",)

    def __init__(self, values: Iterable[float] | Mapping[Resource, float] | None = None):
        if values is None:
            self._values = np.zeros(NUM_RESOURCES, dtype=float)
        elif isinstance(values, Mapping):
            self._values = np.zeros(NUM_RESOURCES, dtype=float)
            for res, val in values.items():
                self._values[int(Resource(res))] = float(val)
        else:
            arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                             dtype=float)
            if arr.shape != (NUM_RESOURCES,):
                raise ValueError(
                    f"ResourceVector requires {NUM_RESOURCES} values, got shape {arr.shape}"
                )
            self._values = arr.copy()
        if not np.isfinite(self._values).all():
            raise ValueError("ResourceVector entries must be finite")

    @property
    def values(self) -> np.ndarray:
        """Read-only view of the underlying array."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    def __getitem__(self, res: Resource) -> float:
        return float(self._values[int(Resource(res))])

    def __iter__(self):
        return iter(self._values.tolist())

    def __len__(self) -> int:
        return NUM_RESOURCES

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(self._values + other._values)

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(self._values - other._values)

    def __mul__(self, scalar: float) -> "ResourceVector":
        return ResourceVector(self._values * float(scalar))

    __rmul__ = __mul__

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceVector):
            return NotImplemented
        return bool(np.array_equal(self._values, other._values))

    def __hash__(self):  # pragma: no cover - explicit unhashability
        raise TypeError("ResourceVector is unhashable")

    def __repr__(self) -> str:
        parts = ", ".join(f"{r.label}={self._values[int(r)]:.3f}" for r in Resource)
        return f"ResourceVector({parts})"

    def clip(self, low: float = 0.0, high: float = np.inf) -> "ResourceVector":
        """Return a copy with entries clipped to ``[low, high]``."""
        return ResourceVector(np.clip(self._values, low, high))

    def scale(self, factors: Mapping[Resource, float]) -> "ResourceVector":
        """Return a copy with selected entries multiplied by per-resource factors."""
        out = self._values.copy()
        for res, f in factors.items():
            out[int(Resource(res))] *= float(f)
        return ResourceVector(out)

    def max(self) -> float:
        """Largest entry."""
        return float(self._values.max())

    def dominates(self, other: "ResourceVector") -> bool:
        """True if every entry is >= the corresponding entry of ``other``."""
        return bool(np.all(self._values >= other._values))

    def to_dict(self) -> dict[str, float]:
        """Serialize to ``{label: value}``."""
        return {r.label: float(self._values[int(r)]) for r in Resource}

    @classmethod
    def from_dict(cls, data: Mapping[str, float]) -> "ResourceVector":
        """Inverse of :meth:`to_dict`."""
        return cls({Resource.from_label(k): v for k, v in data.items()})
