"""Per-resource contention aggregation.

The central empirical fact the paper leans on (Observation 5) is that the
aggregate contention intensity of several colocated workloads is **not** the
sum of their individual intensities.  We reproduce that by giving each
resource class a distinct aggregation combinator:

* **Compute** resources (CPU-CE, GPU-CE) aggregate *sub-additively*: a core
  slot is contended only when two runnable tasks coincide, so aggregate
  pressure is ``1 - prod(1 - u_i)`` — the classic independent-occupancy
  model.
* **Bandwidth** resources (MEM-BW, GPU-BW, PCIe-BW) aggregate roughly
  additively at low load but *super-additively* near saturation, because
  interleaved request streams destroy row-buffer/burst locality.  We model
  this with a saturation overshoot term.
* **Cache** resources (LLC, GPU-L2) show a working-set *cliff*: little
  interference while combined footprints fit, rapidly escalating eviction
  pressure past capacity.  We model this with a smooth convex ramp.

All combinators map a vector of per-workload utilizations ``u_i ∈ [0, 1]``
to an aggregate pressure in ``[0, 1]``, are symmetric and monotone in each
argument, and reduce to ``0`` for an empty set.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.hardware.resources import Resource, ResourceKind

__all__ = [
    "compute_pressure",
    "bandwidth_pressure",
    "cache_pressure",
    "aggregate_pressure",
    "ContentionModel",
]


def _as_util_array(utils: Iterable[float]) -> np.ndarray:
    arr = np.asarray(list(utils) if not isinstance(utils, np.ndarray) else utils,
                     dtype=float)
    if arr.ndim != 1:
        raise ValueError("utilizations must be a 1-D sequence")
    if arr.size and (not np.isfinite(arr).all() or (arr < 0).any()):
        raise ValueError("utilizations must be finite and non-negative")
    return np.clip(arr, 0.0, 1.0)


def compute_pressure(utils: Iterable[float]) -> float:
    """Sub-additive occupancy pressure for compute resources.

    ``1 - prod(1 - u_i)``: the probability that at least one co-runner
    occupies a given execution slot, assuming independent duty cycles.
    """
    arr = _as_util_array(utils)
    if arr.size == 0:
        return 0.0
    return float(1.0 - np.prod(1.0 - arr))


def bandwidth_pressure(
    utils: Iterable[float], *, overshoot: float = 0.35, knee: float = 0.65
) -> float:
    """Bandwidth pressure: additive at low load, super-additive past ``knee``.

    The overshoot term models the loss of access locality when multiple
    request streams interleave: once the summed demand exceeds ``knee`` of
    peak bandwidth, effective pressure grows faster than the sum.
    """
    arr = _as_util_array(utils)
    if arr.size == 0:
        return 0.0
    total = float(arr.sum())
    excess = max(0.0, total - knee)
    pressured = total + overshoot * excess * excess / max(knee, 1e-9)
    return float(min(1.0, pressured))


def cache_pressure(
    utils: Iterable[float], *, capacity_knee: float = 0.55, sharpness: float = 2.6
) -> float:
    """Cache pressure: a smooth working-set cliff.

    ``1 - exp(-(F / knee)^sharpness)`` of the combined footprint ``F``:
    negligible below the knee, convex through it, saturating at 1.  With
    ``sharpness > 1`` this is super-additive for small footprints, which —
    combined with the sub-additive compute combinator — yields the mixed
    behaviour of the paper's Figure 6.
    """
    arr = _as_util_array(utils)
    if arr.size == 0:
        return 0.0
    footprint = float(arr.sum())
    return float(1.0 - np.exp(-((footprint / capacity_knee) ** sharpness)))


def aggregate_pressure(resource: Resource, utils: Iterable[float]) -> float:
    """Aggregate co-runner utilizations into pressure for ``resource``."""
    kind = Resource(resource).kind
    if kind is ResourceKind.COMPUTE:
        return compute_pressure(utils)
    if kind is ResourceKind.BANDWIDTH:
        return bandwidth_pressure(utils)
    return cache_pressure(utils)


@dataclass(frozen=True)
class ContentionModel:
    """Configurable contention model bundling all combinator parameters.

    The default parameters were chosen so that profiling the synthetic game
    catalog reproduces the qualitative shape of the paper's Figures 4–6;
    tests pin the invariants (symmetry, monotonicity, non-additivity).
    """

    bandwidth_overshoot: float = 0.35
    bandwidth_knee: float = 0.65
    cache_knee: float = 0.55
    cache_sharpness: float = 2.6

    def __post_init__(self) -> None:
        for name in ("bandwidth_overshoot", "bandwidth_knee", "cache_knee", "cache_sharpness"):
            value = getattr(self, name)
            if not np.isfinite(value) or value <= 0:
                raise ValueError(f"{name} must be positive and finite, got {value!r}")

    def pressure(self, resource: Resource, utils: Iterable[float]) -> float:
        """Aggregate pressure on ``resource`` from co-runner utilizations."""
        kind = Resource(resource).kind
        if kind is ResourceKind.COMPUTE:
            return compute_pressure(utils)
        if kind is ResourceKind.BANDWIDTH:
            return bandwidth_pressure(
                utils, overshoot=self.bandwidth_overshoot, knee=self.bandwidth_knee
            )
        return cache_pressure(
            utils, capacity_knee=self.cache_knee, sharpness=self.cache_sharpness
        )

    def pressures_leave_one_out(self, util_rows: np.ndarray) -> np.ndarray:
        """Pressure each workload *suffers* from all the others.

        Given a ``(n, 7)`` utilization matrix, returns a ``(n, 7)`` matrix
        whose row ``i`` is the aggregate pressure over rows ``!= i``.
        Computed from column aggregates in O(n * 7) instead of the naive
        O(n^2 * 7): compute columns use a product trick, bandwidth/cache
        columns a sum trick.  This is the simulator's hot path.
        """
        u = np.clip(np.asarray(util_rows, dtype=float), 0.0, 1.0)
        if u.ndim != 2 or u.shape[1] != len(Resource):
            raise ValueError(f"expected shape (n, {len(Resource)}), got {u.shape}")
        n = u.shape[0]
        out = np.zeros_like(u)
        if n <= 1:
            return out

        for res in Resource:
            col = u[:, int(res)]
            kind = res.kind
            if kind is ResourceKind.COMPUTE:
                one_minus = 1.0 - col
                if np.any(one_minus <= 1e-12):
                    # A saturated co-runner: fall back to exact per-row products.
                    loo_prod = np.array(
                        [np.prod(np.delete(one_minus, i)) for i in range(n)]
                    )
                else:
                    loo_prod = np.prod(one_minus) / one_minus
                out[:, int(res)] = 1.0 - loo_prod
            elif kind is ResourceKind.BANDWIDTH:
                loo_sum = col.sum() - col
                excess = np.maximum(0.0, loo_sum - self.bandwidth_knee)
                pressured = loo_sum + self.bandwidth_overshoot * excess * excess / max(
                    self.bandwidth_knee, 1e-9
                )
                out[:, int(res)] = np.minimum(1.0, pressured)
            else:  # CACHE
                loo_sum = col.sum() - col
                out[:, int(res)] = 1.0 - np.exp(
                    -((loo_sum / self.cache_knee) ** self.cache_sharpness)
                )
        return out

    def pressure_vector(self, util_rows: np.ndarray) -> np.ndarray:
        """Aggregate a ``(n_workloads, 7)`` utilization matrix column-wise.

        Returns a ``(7,)`` pressure vector; an empty matrix yields zeros.
        """
        util_rows = np.asarray(util_rows, dtype=float)
        if util_rows.size == 0:
            return np.zeros(len(Resource), dtype=float)
        if util_rows.ndim != 2 or util_rows.shape[1] != len(Resource):
            raise ValueError(
                f"expected shape (n, {len(Resource)}), got {util_rows.shape}"
            )
        return np.array(
            [self.pressure(res, util_rows[:, int(res)]) for res in Resource],
            dtype=float,
        )


DEFAULT_CONTENTION = ContentionModel()
