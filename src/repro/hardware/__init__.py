"""Simulated cloud-gaming server hardware.

This package models the shared-resource substrate that the paper's physical
testbed (Intel i7-7700 + NVIDIA GTX 1060) provides: the seven contended
resources GAugur profiles (Section 3.2), server capacity specs, and the
per-resource contention combinators that make aggregate interference
non-additive (Observation 5).
"""

from repro.hardware.contention import (
    ContentionModel,
    aggregate_pressure,
    bandwidth_pressure,
    cache_pressure,
    compute_pressure,
)
from repro.hardware.resources import (
    CPU_RESOURCES,
    GPU_RESOURCES,
    NUM_RESOURCES,
    Resource,
    ResourceDomain,
    ResourceKind,
    ResourceVector,
)
from repro.hardware.server import DEFAULT_SERVER, ServerSpec, server_catalog

__all__ = [
    "Resource",
    "ResourceDomain",
    "ResourceKind",
    "ResourceVector",
    "NUM_RESOURCES",
    "CPU_RESOURCES",
    "GPU_RESOURCES",
    "ServerSpec",
    "DEFAULT_SERVER",
    "server_catalog",
    "ContentionModel",
    "aggregate_pressure",
    "compute_pressure",
    "bandwidth_pressure",
    "cache_pressure",
]
