"""Server capacity specifications.

The paper's testbed is a single fixed server (4-core i7-7700, 8 GB RAM,
GTX 1060 6 GB).  Shared-resource capacities are normalized to 1.0 — workload
utilizations are expressed as fractions of this server's capacity — while
memory capacities are kept in GB because memory only matters as a hard
constraint (Section 3.2: "memories have almost no impact on the frame rate
... as long as the total memory demand does not exceed the server capacity").

A small catalog of alternative specs supports the paper's future-work item
of testing on more server types: capacities are expressed *relative to* the
reference server, so a spec with ``gpu_scale=2.0`` halves every GPU-side
utilization fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.resources import Resource, ResourceDomain, ResourceVector
from repro.utils.validation import check_positive

__all__ = ["ServerSpec", "DEFAULT_SERVER", "server_catalog"]


@dataclass(frozen=True)
class ServerSpec:
    """A cloud-gaming server type.

    Parameters
    ----------
    name:
        Human-readable identifier.
    cpu_scale, gpu_scale, link_scale:
        Shared-resource capacity relative to the reference (i7-7700 /
        GTX 1060) server.  A game that uses 0.6 of the reference GPU uses
        ``0.6 / gpu_scale`` of this server's GPU.
    cpu_mem_gb, gpu_mem_gb:
        Hard memory capacities.
    """

    name: str = "reference-i7700-gtx1060"
    cpu_scale: float = 1.0
    gpu_scale: float = 1.0
    link_scale: float = 1.0
    cpu_mem_gb: float = 8.0
    gpu_mem_gb: float = 6.0

    def __post_init__(self) -> None:
        check_positive(self.cpu_scale, "cpu_scale")
        check_positive(self.gpu_scale, "gpu_scale")
        check_positive(self.link_scale, "link_scale")
        check_positive(self.cpu_mem_gb, "cpu_mem_gb")
        check_positive(self.gpu_mem_gb, "gpu_mem_gb")

    def domain_scale(self, resource: Resource) -> float:
        """Capacity scale applying to ``resource``."""
        domain = Resource(resource).domain
        if domain is ResourceDomain.CPU:
            return self.cpu_scale
        if domain is ResourceDomain.GPU:
            return self.gpu_scale
        return self.link_scale

    def normalize_utilization(self, util: ResourceVector) -> ResourceVector:
        """Rescale a reference-server utilization vector to this server."""
        scaled = np.array(
            [util[res] / self.domain_scale(res) for res in Resource], dtype=float
        )
        return ResourceVector(scaled)

    def to_dict(self) -> dict:
        """Serialize to plain types."""
        return {
            "name": self.name,
            "cpu_scale": self.cpu_scale,
            "gpu_scale": self.gpu_scale,
            "link_scale": self.link_scale,
            "cpu_mem_gb": self.cpu_mem_gb,
            "gpu_mem_gb": self.gpu_mem_gb,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServerSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


DEFAULT_SERVER = ServerSpec()


def server_catalog() -> dict[str, ServerSpec]:
    """Alternative server types (paper Section 8, future work item 1)."""
    return {
        spec.name: spec
        for spec in (
            DEFAULT_SERVER,
            ServerSpec(
                name="midrange-i5-gtx1050",
                cpu_scale=0.75,
                gpu_scale=0.6,
                link_scale=1.0,
                cpu_mem_gb=8.0,
                gpu_mem_gb=4.0,
            ),
            ServerSpec(
                name="highend-i9-rtx2080",
                cpu_scale=1.8,
                gpu_scale=2.2,
                link_scale=1.5,
                cpu_mem_gb=32.0,
                gpu_mem_gb=8.0,
            ),
        )
    }
