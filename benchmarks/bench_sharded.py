#!/usr/bin/env python
"""Fleet-scale benchmark: drain a million-session trace across broker shards.

Sweeps the sharded serving tier over shard counts (default 1, 2, 4) on
one deterministic trace and reports, per count: drain throughput
(sessions/s), routing overhead (coordinator time spent in the ring),
migration volume from the occupancy rebalancer, and the summed per-shard
peak-server envelope.  The merged telemetry of the largest configuration
is embedded so ``repro metrics summary``/``diff`` can consume the file —
CI diffs it against ``benchmarks/baselines/BENCH_sharded.json``
(warn-only: wall-clock throughput on shared runners is informative, not
a gate).

Usage::

    PYTHONPATH=src python benchmarks/bench_sharded.py \
        --predictor predictor.json --sessions 1000000

Without ``--predictor`` the session-cached lab predictor is built
(respects ``REPRO_SCALE``).  The committed baseline was produced at the
full 1,000,000 sessions; pass a smaller ``--sessions`` for smoke runs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.obs.metrics import Telemetry
from repro.serving import TraceConfig, generate_trace
from repro.sharding import (
    RebalanceConfig,
    Rebalancer,
    ShardConfig,
    ShardedBroker,
    build_shard_brokers,
)


def _load_predictor(path: str | None):
    if path:
        from repro.core.predictor import InterferencePredictor

        return InterferencePredictor.load(path)
    from repro.experiments.lab import get_lab

    return get_lab().predictor


def _run_shard_count(predictor, sessions, n_shards: int, args) -> dict:
    """Drain the trace once through ``n_shards`` shards; returns the row."""
    config = ShardConfig(
        policy=args.policy,
        qos=args.qos,
        cache_size=args.cache_size,
        seed=args.seed,
        keep_records=False,  # records for 1M sessions would dwarf the fleets
    )
    brokers = build_shard_brokers(predictor, n_shards, config)
    coordinator = Telemetry()
    rebalancer = (
        Rebalancer(
            RebalanceConfig(
                interval=args.rebalance_interval, hot_factor=args.hot_factor
            ),
            telemetry=coordinator,
        )
        if args.rebalance_interval and n_shards > 1
        else None
    )
    broker = ShardedBroker(brokers, rebalancer=rebalancer, telemetry=coordinator)
    start = time.perf_counter()
    report = broker.run(sessions, presorted=True)
    wall_s = time.perf_counter() - start
    routing_s = (
        report.coordinator["histograms"].get("route_batch_s", {}).get("total_s", 0.0)
    )
    row = {
        "shards": n_shards,
        "n_sessions": report.n_sessions,
        "wall_s": round(wall_s, 3),
        "sessions_per_s": round(report.n_sessions / wall_s, 1),
        "routing_s": round(routing_s, 3),
        "routing_share": round(routing_s / wall_s, 4),
        "migrations": report.migrations,
        "sessions_migrated": report.sessions_migrated,
        "rebalance_cycles": report.coordinator["counters"].get("rebalance_cycles", 0),
        "servers_opened": report.servers_opened,
        "peak_servers": report.peak_servers,
        "shard_sessions": report.shard_sessions,
        # The conservation invariant: routed minus submitted must be 0.
        # The bench guard fails on any growth (sessions_lost:+0%).
        "sessions_lost": report.coordinator["counters"].get("routed", 0)
        - report.n_sessions,
    }
    # The largest sweep point's merged snapshot rides along for
    # `repro metrics diff` (fleet totals + per-shard labeled series).
    row["_telemetry"] = report.telemetry
    row["_coordinator"] = report.coordinator
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--predictor", help="trained predictor bundle (JSON)")
    parser.add_argument("--sessions", type=int, default=1_000_000)
    parser.add_argument("--shards", default="1,2,4", help="comma-separated sweep")
    parser.add_argument("--policy", default="cm-feasible")
    parser.add_argument("--qos", type=float, default=60.0)
    # Fleet-scale occupancy: 20 arrivals/s x 30 s mean duration keeps
    # ~600 sessions live, so the single broker's per-decision candidate
    # scan runs over hundreds of servers — the cost sharding amortizes.
    parser.add_argument("--arrival-rate", type=float, default=20.0)
    parser.add_argument("--mean-duration", type=float, default=30.0)
    parser.add_argument("--rebalance-interval", type=int, default=8192)
    parser.add_argument("--hot-factor", type=float, default=1.2)
    # The fleet-scale working set is much larger than the serving
    # default (4096): at ~50 open servers the candidate-signature space
    # churns past a small LRU and misses (model calls) dominate the
    # drain.  64k entries keeps the hit rate >0.97 at 1M sessions.
    parser.add_argument("--cache-size", type=int, default=65536)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", help="output path (default bench_results/)")
    args = parser.parse_args(argv)
    shard_counts = [int(s) for s in args.shards.split(",") if s.strip()]

    predictor = _load_predictor(args.predictor)
    trace_config = TraceConfig(
        n_requests=args.sessions,
        arrival_rate=args.arrival_rate,
        mean_duration=args.mean_duration,
        mixed_resolutions=True,
        seed=args.seed,
    )
    print(f"generating {args.sessions} sessions ...", flush=True)
    sessions = generate_trace(predictor.db.names(), trace_config)

    results = []
    for n_shards in shard_counts:
        print(f"draining {len(sessions)} sessions across {n_shards} shard(s) ...",
              flush=True)
        results.append(_run_shard_count(predictor, sessions, n_shards, args))
        row = results[-1]
        print(
            f"  {row['sessions_per_s']:>10.1f} sessions/s  "
            f"wall {row['wall_s']:.1f}s  routing {row['routing_share']:.1%}  "
            f"migrations {row['migrations']}  peak {row['peak_servers']}",
            flush=True,
        )

    largest = max(results, key=lambda r: r["shards"])
    payload = {
        "bench": "sharded",
        "n_sessions": args.sessions,
        "policy": args.policy,
        "qos": args.qos,
        "rebalance_interval": args.rebalance_interval,
        "hot_factor": args.hot_factor,
        "trace": trace_config.to_dict(),
        "results": [
            {k: v for k, v in row.items() if not k.startswith("_")}
            for row in results
        ],
        "coordinator": largest["_coordinator"],
        "telemetry": largest["_telemetry"],
    }
    # Surface the invariant where `repro metrics diff --fail-on` reads
    # counters from: the merged telemetry of the largest sweep point.
    payload["telemetry"].setdefault("counters", {})["sessions_lost"] = largest[
        "sessions_lost"
    ]
    if args.out:
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
    else:
        out_dir = Path(os.environ.get("REPRO_BENCH_OUT", "bench_results"))
        out_dir.mkdir(parents=True, exist_ok=True)
        out_path = out_dir / "BENCH_sharded.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")

    rates = [row["sessions_per_s"] for row in results]
    if rates != sorted(rates):
        print("warning: sessions/s did not increase monotonically with shards",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
