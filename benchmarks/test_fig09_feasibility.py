"""Figure 9 bench: feasible-colocation identification and server packing."""

from benchmarks.conftest import emit, run_once
from repro.experiments import fig09_feasibility


def test_fig09_feasibility(lab, benchmark):
    result = run_once(benchmark, fig09_feasibility.run, lab)
    emit("fig09_feasibility", fig09_feasibility.render(result))

    for qos, data in result["per_qos"].items():
        reports = data["reports"]
        servers = data["servers_used"]

        # GAugur's models judge feasibility most accurately; VBP's recall
        # collapses because solo-speed demand vectors over-provision.
        gaugur_best = max(
            reports["GAugur(CM)"].accuracy, reports["GAugur(RM)"].accuracy
        )
        assert gaugur_best >= reports["SMiTe"].accuracy - 0.005
        assert gaugur_best > reports["VBP"].accuracy
        assert reports["VBP"].recall < 0.5
        assert reports["GAugur(CM)"].recall > 2 * reports["VBP"].recall

        # Packing: every interference-aware methodology crushes dedicated
        # servers and VBP; GAugur packs within a whisker of the best
        # alternative (in our simulator all ML methods identify the key
        # large colocations, so the packing spread is narrower than the
        # paper's — see EXPERIMENTS.md).
        assert servers["GAugur(CM)"] < 0.8 * result["n_requests"]
        assert servers["GAugur(CM)"] < 0.8 * servers["VBP"]
        best = min(v for v in servers.values())
        assert servers["GAugur(CM)"] <= 1.02 * best
