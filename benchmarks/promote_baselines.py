"""Promote fresh local benchmark results to the committed baselines.

``bench_results/`` is the single canonical *write* location — every
bench run (``pytest benchmarks/ --benchmark-only``,
``python benchmarks/bench_sharded.py``) lands its ``BENCH_*.json``
there, and the directory is gitignored.  ``benchmarks/baselines/`` is
the single canonical *committed* location CI diffs against.  This script
is the only sanctioned path between the two::

    python benchmarks/promote_baselines.py            # promote everything
    python benchmarks/promote_baselines.py BENCH_serving.json

Promote deliberately, on a quiet machine, and commit the result — the
CI bench-guard job gates every later run against whatever is promoted
here (`repro metrics diff` for throughput, `repro slo diff` for
prediction-calibration drift).
"""

from __future__ import annotations

import argparse
import shutil
import sys
from pathlib import Path

RESULTS = Path(__file__).resolve().parent.parent / "bench_results"
BASELINES = Path(__file__).resolve().parent / "baselines"


def promote(names: list[str] | None = None) -> list[str]:
    """Copy ``bench_results/BENCH_*.json`` into ``benchmarks/baselines/``.

    ``names`` restricts promotion to specific files; ``None`` promotes
    every ``BENCH_*.json`` present.  Returns the promoted file names.
    """
    if not RESULTS.is_dir():
        raise FileNotFoundError(
            f"{RESULTS} does not exist — run the benchmarks first"
        )
    candidates = (
        [RESULTS / name for name in names]
        if names
        else sorted(RESULTS.glob("BENCH_*.json"))
    )
    promoted = []
    for path in candidates:
        if not path.is_file():
            raise FileNotFoundError(f"{path} not found in bench_results/")
        if not (path.name.startswith("BENCH_") and path.suffix == ".json"):
            raise ValueError(f"{path.name}: only BENCH_*.json files are baselines")
        BASELINES.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(path, BASELINES / path.name)
        promoted.append(path.name)
    return promoted


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "names",
        nargs="*",
        help="BENCH_*.json files to promote (default: all in bench_results/)",
    )
    args = parser.parse_args(argv)
    try:
        promoted = promote(args.names or None)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not promoted:
        print("error: no BENCH_*.json files in bench_results/", file=sys.stderr)
        return 1
    for name in promoted:
        print(f"promoted {name} -> benchmarks/baselines/{name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
