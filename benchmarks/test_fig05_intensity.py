"""Figure 5 bench: intensity of representative games."""

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.experiments import fig05_intensity
from repro.hardware.resources import Resource


def test_fig05_intensity(lab, benchmark):
    result = run_once(benchmark, fig05_intensity.run, lab)
    emit("fig05_intensity", fig05_intensity.render(result))

    games = result["games"]
    matrix = np.array(
        [[result["intensity"][n][r.label] for r in Resource] for n in games]
    )
    # Intensities span the paper's 0 .. ~1.5 range with real diversity.
    assert matrix.min() >= 0.0
    assert matrix.max() < 2.5
    assert matrix.max() > 0.3
    # Observation 3: per-resource spread across games.
    spread = matrix.max(axis=0) - matrix.min(axis=0)
    assert spread.max() > 0.2

    # Observation 2 anecdote: Granado Espada exerts little GPU-CE pressure
    # despite being very sensitive to it (checked in Figure 4).
    if "Granado Espada" in games:
        ge = result["intensity"]["Granado Espada"]["GPU-CE"]
        others = [
            result["intensity"][n]["GPU-CE"] for n in games if n != "Granado Espada"
        ]
        assert ge <= np.median(others)
