"""Figure 2 bench: solo demand diversity and frame-rate headroom."""

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.experiments import fig02_catalog


def test_fig02_catalog(lab, benchmark):
    result = run_once(benchmark, fig02_catalog.run, lab)
    emit("fig02_catalog", fig02_catalog.render(result))

    # Shape: demands vary greatly across games and resource types (2a)...
    assert result["cpu_demand"].min() < 0.5
    assert result["gpu_demand"].min() < 0.5
    # ...and most games exceed the 60 FPS floor when running alone (2b),
    # i.e. dedicated provisioning wastes resources.
    fps = np.asarray(result["solo_fps"])
    assert np.mean(fps >= 60.0) > 0.8
    assert fps.max() / fps.min() > 3.0
