"""Figure 8 bench: CM prediction accuracy vs baselines."""

from benchmarks.conftest import emit, run_once
from repro.experiments import fig08_classification


def test_fig08_classification(lab, benchmark):
    result = run_once(benchmark, fig08_classification.run, lab)
    emit("fig08_classification", fig08_classification.render(result))

    # (a)/(b): more data helps, and GBDT is the best learner at full data.
    for key in ("accuracy_vs_samples_60", "accuracy_vs_samples_50"):
        curves = result[key]
        for label, accs in curves.items():
            assert accs[-1] >= accs[0] - 0.02, (key, label)
        finals = {label: accs[-1] for label, accs in curves.items()}
        assert finals["GBDT"] >= max(finals.values()) - 0.01

    breakdown = result["breakdown"]
    # GAugur's models classify at ~95%, clearly above the baselines.
    assert breakdown["GAugur(CM)"]["overall"] > 0.90
    assert breakdown["GAugur(CM)"]["overall"] > breakdown["Sigmoid"]["overall"]
    assert breakdown["GAugur(CM)"]["overall"] > breakdown["SMiTe"]["overall"]
    assert breakdown["GAugur(RM)"]["overall"] > breakdown["Sigmoid"]["overall"]
