"""Benches for the extension experiments (paper Sections 6-8 items).

Not figures of the paper, but quantified versions of its discussion items:
processing-delay prediction (§7), conservative profiling (§7), dynamic
sessions (§1's online regime), profile completion (§6), heterogeneous
servers (§8), and the design-choice ablations from DESIGN.md.
"""

import os

from benchmarks.conftest import emit, run_once
from repro.experiments import (
    ablations,
    ext_completion,
    ext_conservative,
    ext_delay,
    ext_dynamic,
    ext_hetero,
)


def _small() -> bool:
    return os.environ.get("REPRO_SCALE") == "small"


def test_ext_delay(lab, benchmark):
    result = run_once(benchmark, ext_delay.run, lab)
    emit("ext_delay", ext_delay.render(result))
    # The methodology extends to processing delay with similar accuracy.
    assert result["overall_error"] < (0.25 if _small() else 0.15)
    assert result["delay_ratio_range"][1] > 1.2  # contention visibly inflates delay


def test_ext_conservative(lab, benchmark):
    result = run_once(benchmark, ext_conservative.run, lab)
    emit("ext_conservative", ext_conservative.render(result))
    # Conservative profiling only removes colocations (never adds)...
    assert result["conservative_is_subset"]
    assert result["feasible_min"] <= result["feasible_mean"]
    # ...and mean-FPS profiling does admit transient violators (the
    # Section 7 concern is real in this world).
    if result["feasible_mean"]:
        assert result["transient_violations"] >= 0


def test_ext_dynamic(lab, benchmark):
    n_sessions = 200 if _small() else 800
    result = run_once(
        benchmark, lambda: ext_dynamic.run(lab, n_sessions=n_sessions)
    )
    emit("ext_dynamic", ext_dynamic.render(result))
    metrics = result["metrics"]
    # CM-driven consolidation saves substantial server time vs dedicated...
    assert metrics["GAugur(CM)"].utilization_gain > 0.10
    # ...and uses no more server time than blind VBP packing.
    assert (
        metrics["GAugur(CM)"].server_minutes
        <= 1.1 * metrics["VBP"].server_minutes
    )
    # Dedicated provisioning is the no-consolidation reference.
    assert metrics["Dedicated"].utilization_gain == 0.0


def test_ext_completion(lab, benchmark):
    result = run_once(benchmark, ext_completion.run, lab)
    emit("ext_completion", ext_completion.render(result))
    # Five-sevenths of the sweeps for half the games are saved...
    assert result["profiling_cost_saved"] > 0.3
    # ...reconstruction is far better than uninformed (curves live in
    # [0, 1.1-ish]; guessing the mean would sit near 0.2 MAE)...
    assert result["reconstruction_mae"] < 0.2
    # ...and the downstream RM pays only a modest accuracy price.
    assert result["rm_error_completed"] < result["rm_error_full"] + 0.05


def test_ext_hetero(lab, benchmark):
    result = run_once(benchmark, ext_hetero.run, lab)
    emit("ext_hetero", ext_hetero.render(result))
    servers = result["servers"]
    for name, entry in servers.items():
        # Native retraining keeps the RM accurate on every server type.
        assert entry["native_error"] < 0.25, name
        # Transferring the reference model to different hardware is worse
        # than retraining natively (the reason the paper defers this).
        if "transfer_error" in entry:
            assert entry["transfer_error"] >= entry["native_error"] - 0.02


def test_ext_importance(lab, benchmark):
    from repro.experiments import ext_importance

    result = run_once(benchmark, ext_importance.run, lab)
    emit("ext_importance", ext_importance.render(result))
    per_resource = result["per_resource"]
    # Several resources carry real predictive weight (Observation 1 echoed
    # in the trained model), and both feature blocks matter.
    informative = sum(1 for v in per_resource.values() if v > 0.002)
    assert informative >= 3
    assert result["per_block"]["sensitivity curves"] > 0.0
    assert result["per_block"]["aggregate intensity"] > 0.0


def test_ablations(lab, benchmark):
    result = run_once(benchmark, ablations.run, lab)
    emit("ablations", ablations.render(result))

    agg = result["aggregate_transform"]
    # Per-resource sums are informationally close to Eq. 5 for a tree
    # learner (sum = |G| * mean), so those two score similarly; discarding
    # per-resource structure entirely (size only) is what really hurts.
    assert agg["Eq.5 (mean/var per resource)"] <= agg["summed intensities"] + 0.01
    assert agg["Eq.5 (mean/var per resource)"] < agg["colocation size only"]

    knockout = result["feature_knockout"]
    for label, error in knockout.items():
        if label != "full":
            assert error >= knockout["full"] - 0.01, label

    granularity = result["granularity"]
    # Finer pressure sweeps never hurt; k=10 is at least as good as k=2.
    assert granularity[10] <= granularity[2] + 0.01

    noise = result["noise"]
    # More measurement noise means higher RM error (allowing small wiggle).
    sigmas = sorted(noise)
    assert noise[sigmas[-1]] >= noise[sigmas[0]] - 0.01
