"""Figure 7 bench: RM prediction accuracy vs baselines."""

import os

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.experiments import fig07_regression


def test_fig07_regression(lab, benchmark):
    small = os.environ.get("REPRO_SCALE") == "small"
    result = run_once(benchmark, fig07_regression.run, lab)
    emit("fig07_regression", fig07_regression.render(result))

    curves = result["error_vs_samples"]
    # (a) more training data helps every learner (first vs last point).
    for label, errors in curves.items():
        assert errors[-1] <= errors[0] + 0.02, label
    # GBRT is the best (or tied-best) of the four learners at full data.
    finals = {label: errors[-1] for label, errors in curves.items()}
    assert finals["GBRT"] <= min(finals.values()) + 0.005

    breakdown = result["breakdown"]
    # (b) GAugur(RM) beats both baselines overall and per size.
    for group in breakdown["GAugur(RM)"]:
        assert breakdown["GAugur(RM)"][group] < breakdown["Sigmoid"][group]
        assert breakdown["GAugur(RM)"][group] < breakdown["SMiTe"][group]
    # Headline: GAugur(RM) overall error in the paper's sub-~12% range
    # (looser at reduced scale) while the baselines sit materially higher.
    assert breakdown["GAugur(RM)"]["overall"] < (0.16 if small else 0.12)
    assert breakdown["Sigmoid"]["overall"] > 1.4 * breakdown["GAugur(RM)"]["overall"]
    assert breakdown["SMiTe"]["overall"] > 1.4 * breakdown["GAugur(RM)"]["overall"]

    # (c) GAugur's error CDF dominates at the median and the tail.
    for q in (0.5, 0.9):
        g = np.quantile(result["errors"]["GAugur(RM)"], q)
        assert g < np.quantile(result["errors"]["Sigmoid"], q)
        assert g < np.quantile(result["errors"]["SMiTe"], q)
