"""Figure 1 bench: frame rates of colocated game pairs."""

from benchmarks.conftest import emit, run_once
from repro.experiments import fig01_pairs


def test_fig01_pairs(lab, benchmark):
    result = run_once(benchmark, fig01_pairs.run, lab)
    emit("fig01_pairs", fig01_pairs.render(result))

    # Shape: pair outcomes vary widely with the partner (the paper's
    # motivating observation), and include both >60 FPS and <60 FPS cases.
    fps = [f for entry in result["pairs"] for f in entry["fps"]]
    assert max(fps) > 60.0
    assert min(fps) < 60.0
    # The same game's FPS depends on its partner.
    ancestors = [
        entry["fps"][entry["games"].index("Ancestors Legacy")]
        for entry in result["pairs"]
        if "Ancestors Legacy" in entry["games"]
    ]
    assert max(ancestors) / min(ancestors) > 1.1
