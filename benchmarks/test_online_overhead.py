"""Overhead bench: GAugur's online prediction latency (Section 3.6).

The paper's deployability argument rests on online prediction being
effectively free ("negligible overhead"), so requests can be dispatched
the moment they arrive.  This is a true timing benchmark (many rounds),
unlike the figure benches which time one full experiment.
"""

from repro.core.training import ColocationSpec
from repro.games.resolution import REFERENCE_RESOLUTION


def _spec(lab, k=4):
    return ColocationSpec(
        tuple((name, REFERENCE_RESOLUTION) for name in lab.names[:k])
    )


def test_online_rm_prediction_latency(lab, benchmark):
    spec = _spec(lab)
    lab.rm_model  # train outside the timed region
    fps = benchmark(lab.predictor.predict_fps, spec)
    assert len(fps) == 4
    # "Instantaneous" dispatch: well under 50 ms per colocation query.
    assert benchmark.stats.stats.mean < 0.05


def test_online_cm_prediction_latency(lab, benchmark):
    spec = _spec(lab)
    lab.cm_model
    verdict = benchmark(lab.predictor.colocation_feasible, spec, 60.0)
    assert isinstance(verdict, bool)
    assert benchmark.stats.stats.mean < 0.05
