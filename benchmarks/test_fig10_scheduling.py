"""Figure 10 bench: average FPS on fixed fleets."""

import os

from benchmarks.conftest import emit, run_once
from repro.experiments import fig10_scheduling


def test_fig10_scheduling(lab, benchmark):
    small = os.environ.get("REPRO_SCALE") == "small"
    kwargs = (
        {"n_requests": 1200, "server_counts": (400, 600), "cdf_fleet": 400}
        if small
        else {}
    )
    result = run_once(
        benchmark, lambda: fig10_scheduling.run(lab, **kwargs)
    )
    emit("fig10_scheduling", fig10_scheduling.render(result))

    avg = result["average_fps"]
    # Larger fleets help every policy.
    for label, series in avg.items():
        assert series[-1] > series[0], label
    # GAugur(RM) always beats VBP; at paper scale it is the best policy at
    # every fleet size (the dominance claim needs the full training
    # campaign, so it is not asserted at reduced scale).
    for i in range(len(result["server_counts"])):
        assert avg["GAugur(RM)"][i] > avg["VBP"][i]
        if not small:
            best = max(avg[label][i] for label in avg)
            assert avg["GAugur(RM)"][i] >= best - 0.5
