"""Figure 4 bench: sensitivity curves of representative games."""


from benchmarks.conftest import emit, run_once
from repro.experiments import fig04_sensitivity
from repro.experiments.fig04_sensitivity import nonlinearity_score


def test_fig04_sensitivity(lab, benchmark):
    result = run_once(benchmark, fig04_sensitivity.run, lab)
    emit("fig04_sensitivity", fig04_sensitivity.render(result))

    games = result["games"]
    assert len(games) >= 4

    # Observation 1: games are sensitive to several resources.
    for name in games:
        drops = [
            curve["degradations"][0] - curve["degradations"][-1]
            for curve in result["curves"][name].values()
        ]
        assert sum(d > 0.1 for d in drops) >= 2, name

    # Observation 3: different games have different sensitivity to the
    # same resource (CPU-CE endpoint spread across games).
    cpu_end = [result["curves"][n]["CPU-CE"]["degradations"][-1] for n in games]
    assert max(cpu_end) - min(cpu_end) > 0.2

    # Observation 4: at least some curves are markedly nonlinear.
    scores = [
        nonlinearity_score(curve)
        for name in games
        for curve in result["curves"][name].values()
    ]
    assert max(scores) > 0.12
