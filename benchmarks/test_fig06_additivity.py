"""Figure 6 bench: aggregate intensity vs sum of individual intensities."""


from benchmarks.conftest import emit, run_once
from repro.experiments import fig06_additivity
from repro.hardware.resources import Resource


def test_fig06_additivity(lab, benchmark):
    result = run_once(benchmark, fig06_additivity.run, lab)
    emit("fig06_additivity", fig06_additivity.render(result))

    ratios = []
    for res in Resource:
        s = result["sum"][res.label]
        h = result["holistic"][res.label]
        if s > 0.05:
            ratios.append(h / s)
    # Observation 5: on several resources the holistic aggregate deviates
    # substantially from the sum — in both directions.
    assert sum(abs(r - 1.0) > 0.15 for r in ratios) >= 3
    assert min(ratios) < 0.95
    assert max(ratios) > 1.05
