"""Throughput bench: broker admission decisions/sec, cold vs. warm cache.

The serving hot path is one CM evaluation per candidate server per
arrival; the prediction cache plus the batched CM call are what keep it
dispatch-rate capable.  This bench replays one seeded trace twice — once
against a cold cache, then against the now-warm cache — and reports
decisions per second for both, so the perf trajectory tracks the serving
loop and not just the figure pipelines.
"""

import time

from benchmarks.conftest import emit, emit_json

from repro.games import DegradeLadder
from repro.obs import QoSLedger
from repro.scheduling.dynamic import generate_sessions
from repro.serving import (
    AdmissionController,
    CMFeasiblePolicy,
    PredictionCache,
    RequestBroker,
)

N_REQUESTS = 400
SLO_FPS = 30.0
DEGRADE_LADDER = DegradeLadder.from_str("1080p,900p,720p")


def _sessions(lab):
    return generate_sessions(
        lab.names[:8], N_REQUESTS, arrival_rate=4.0, seed=17
    )


def _replay(lab, sessions, cache, *, ledger=None):
    policy = CMFeasiblePolicy(lab.predictor, 60.0, cache=cache)
    return RequestBroker(AdmissionController(policy), ledger=ledger).run(sessions)


def test_serving_throughput_cold_vs_warm(lab, benchmark):
    sessions = _sessions(lab)
    # Materialize the full predictor (CM *and* RM training) outside any
    # timed region: touching only cm_model used to leave the RM's lazy
    # fit inside the cold timing, dwarfing the decisions being measured.
    lab.predictor

    cold_cache = PredictionCache(8192)
    start = time.perf_counter()
    cold_report = _replay(lab, sessions, cold_cache)
    cold_seconds = time.perf_counter() - start

    warm_cache = PredictionCache(8192)
    _replay(lab, sessions, warm_cache)  # warm every signature the trace visits
    warm_report = benchmark.pedantic(
        _replay, args=(lab, sessions, warm_cache), rounds=3, iterations=1
    )
    warm_seconds = benchmark.stats.stats.mean

    assert cold_report.choices() == warm_report.choices()
    assert warm_cache.hit_rate > cold_cache.hit_rate

    cold_rate = N_REQUESTS / cold_seconds
    warm_rate = N_REQUESTS / warm_seconds
    # Per-decision latency distribution of the cold replay, straight from
    # the engine's decision_latency_s histogram.  Re-keyed into the warm
    # telemetry emitted below so `repro metrics diff` gates the cold path
    # (p50/p99 ceilings; total_s is the inverse of cold decisions/s at
    # the fixed request count) alongside the existing warm-path gates.
    cold_latency = cold_report.telemetry["histograms"]["decision_latency_s"]
    emit(
        "serving_throughput",
        "\n".join(
            [
                "Serving broker throughput (cm-feasible, 8 games, "
                f"{N_REQUESTS} requests)",
                f"{'cache':8s} {'decisions/s':>12s} {'hit rate':>9s}",
                f"{'cold':8s} {cold_rate:12.0f} {cold_cache.hit_rate:9.2%}",
                f"{'warm':8s} {warm_rate:12.0f} {warm_cache.hit_rate:9.2%}",
                "cold decision latency: "
                f"p50<={cold_latency['p50_s']:.4f}s "
                f"p99<={cold_latency['p99_s']:.4f}s "
                f"mean={cold_latency['mean_s'] * 1e3:.2f}ms",
            ]
        ),
    )
    # Ground-truth calibration replay, deliberately outside every timed
    # region: the ledger recomputes measured FPS per mutation, which
    # would otherwise pollute the throughput numbers above.  Its qos
    # section is seeded-deterministic, so the CI calibration gate
    # (`repro slo diff ... --fail-on fps_residual_mae:+10%`) compares
    # it bit-for-bit meaningfully across runs.
    ledger = QoSLedger(lab.catalog, lab.predictor, slo_fps=SLO_FPS)
    qos_report = _replay(lab, sessions, PredictionCache(8192), ledger=ledger)
    assert qos_report.qos["sessions"]["conservation_errors"] == 0

    # Machine-readable twin of the table above: consumed by the CI
    # regression guard via `repro metrics diff` (throughput) and
    # `repro slo diff` (calibration) against the committed baseline in
    # benchmarks/baselines/BENCH_serving.json — promote a fresh local
    # run with `python benchmarks/promote_baselines.py`.
    telemetry = dict(warm_report.telemetry)
    telemetry["histograms"] = dict(telemetry["histograms"])
    telemetry["histograms"]["cold_decision_latency_s"] = cold_latency
    emit_json(
        "BENCH_serving",
        {
            "bench": "serving_throughput",
            "n_requests": N_REQUESTS,
            "slo_fps": SLO_FPS,
            "cold_decisions_per_s": round(cold_rate, 1),
            "warm_decisions_per_s": round(warm_rate, 1),
            "cold_decision_latency_s": {
                "p50_s": cold_latency["p50_s"],
                "p99_s": cold_latency["p99_s"],
                "mean_s": cold_latency["mean_s"],
            },
            "cold_hit_rate": round(cold_cache.hit_rate, 4),
            "warm_hit_rate": round(warm_cache.hit_rate, 4),
            "telemetry": telemetry,
            "qos": qos_report.qos,
        },
    )
    # The warm path must at least keep dispatch-rate viability.
    assert warm_rate > 50


def test_serving_degrade_capacity(lab, benchmark):
    """Capacity bench for the resolution-downscale actuator.

    Replays one dense seeded trace twice — plain chain vs. the actuator
    armed on the 1080p > 900p > 720p ladder with the restore loop — and
    reports servers opened for both.  The decisions are a pure function
    of the seeds (no wall clocks anywhere in placement), so the emitted
    ``servers_opened`` counter is machine-stable and CI gates it hard at
    +0%: a regression that stops the actuator from downscaling shows up
    as a servers_opened jump, not a silent capacity loss.
    """
    lab.predictor
    sessions = generate_sessions(
        lab.names[:8], N_REQUESTS, arrival_rate=9.0, seed=17
    )

    def replay(ladder, restore_interval):
        policy = CMFeasiblePolicy(lab.predictor, 60.0, cache=PredictionCache(8192))
        controller = AdmissionController(policy, downscale_ladder=ladder)
        ledger = QoSLedger(lab.catalog, lab.predictor, slo_fps=SLO_FPS)
        broker = RequestBroker(
            controller, ledger=ledger, restore_interval=restore_interval
        )
        return broker.run(sessions)

    baseline = replay(None, None)
    report = benchmark.pedantic(
        replay, args=(DEGRADE_LADDER, 64), rounds=1, iterations=1
    )
    assert report.qos["sessions"]["conservation_errors"] == 0
    labeled = report.telemetry.get("labeled", {}).get("counters", {})
    downscales = sum(e["value"] for e in labeled.get("downscales", ()))
    degraded = report.qos.get("degraded", {})
    emit(
        "serving_degrade",
        "\n".join(
            [
                "Serving degrade capacity (cm-feasible, 8 games, "
                f"{N_REQUESTS} requests @ 9/min)",
                f"{'chain':22s} {'servers opened':>14s} {'downscales':>10s}",
                f"{'baseline':22s} {baseline.servers_opened:14d} {0:10d}",
                f"{'downscale + restore':22s} {report.servers_opened:14d} "
                f"{downscales:10d}",
            ]
        ),
    )
    emit_json(
        "BENCH_degrade",
        {
            "bench": "serving_degrade",
            "n_requests": N_REQUESTS,
            "slo_fps": SLO_FPS,
            "ladder": DEGRADE_LADDER.to_list(),
            "restore_interval": 64,
            "servers_opened": report.servers_opened,
            "servers_opened_baseline": baseline.servers_opened,
            "downscales": downscales,
            "degraded_sessions": int(degraded.get("sessions", 0)),
            "degraded_minutes": round(float(degraded.get("minutes", 0.0)), 3),
            "telemetry": report.telemetry,
            "qos": report.qos,
        },
    )
    # The actuator must never cost capacity on the pinned trace.
    assert report.servers_opened <= baseline.servers_opened
