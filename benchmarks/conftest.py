"""Benchmark harness fixtures.

``pytest benchmarks/ --benchmark-only`` regenerates every figure of the
paper's evaluation and prints the corresponding data tables.  The shared
lab is built once per session; its offline artifacts (profiles, measured
colocations) are disk-cached under ``.repro_cache``.

Set ``REPRO_SCALE=small`` for a fast reduced run; the default is the
paper-scale configuration (100 games, 700 measured colocations, 5000
requests), which takes tens of minutes on first run.
"""

import os
from pathlib import Path

import pytest

from repro.experiments.lab import get_lab


@pytest.fixture(scope="session")
def lab():
    """The session-wide experimental setup."""
    return get_lab()


def run_once(benchmark, fn, *args):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1)


def emit(name: str, text: str) -> None:
    """Publish a figure's rendered data table.

    Printed (visible under ``pytest -s``) and persisted under
    ``bench_results/`` (override with ``REPRO_BENCH_OUT``) so the tables
    survive pytest's output capture on passing runs.
    """
    print()
    print(text)
    out_dir = Path(os.environ.get("REPRO_BENCH_OUT", "bench_results"))
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / f"{name}.txt").write_text(text + "\n")


def emit_json(name: str, payload: dict) -> None:
    """Persist a machine-readable benchmark result.

    Written as ``bench_results/{name}.json``.  Payloads that include a
    ``telemetry`` snapshot are directly consumable by ``repro metrics
    summary``/``diff``, which is how the CI regression guard compares a
    run against the committed baseline in ``benchmarks/baselines/``.
    """
    import json

    out_dir = Path(os.environ.get("REPRO_BENCH_OUT", "bench_results"))
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / f"{name}.json").write_text(json.dumps(payload, indent=2) + "\n")
