"""Package metadata.

Kept in setup.py (rather than a PEP 621 [project] table) so that
``pip install -e .`` works offline via the legacy editable-install path —
this environment has no network and no ``wheel`` package, which PEP 517
builds require.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "GAugur reproduction: performance-interference prediction for "
        "colocated cloud games (HPDC'19)"
    ),
    long_description=open("README.md").read() if __import__("os").path.exists("README.md") else "",
    long_description_content_type="text/markdown",
    license="MIT",
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
