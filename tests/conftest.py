"""Shared fixtures: a session-scoped miniature lab and catalog.

The "minilab" runs the full pipeline (profiling -> measurement -> training)
at reduced scale so integration-level tests stay fast; its expensive
artifacts are built lazily and shared across the whole session.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.lab import Lab, LabConfig
from repro.games import build_catalog


@pytest.fixture(scope="session")
def catalog():
    """The deterministic 100-game catalog."""
    return build_catalog()


@pytest.fixture(scope="session")
def minilab(tmp_path_factory):
    """A small but complete experimental lab (8 games, 64 colocations)."""
    cache = tmp_path_factory.mktemp("repro-cache")
    os.environ["REPRO_CACHE_DIR"] = str(cache)
    config = LabConfig(
        n_games=8,
        colocation_sizes=((2, 40), (3, 12), (4, 12)),
        n_train_colocations=40,
    )
    return Lab(config)
