"""Tests for deterministic RNG stream derivation."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import derive_seed, spawn_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_different_labels_differ(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_different_parents_differ(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(42, "a", "b") != derive_seed(42, "b", "a")

    def test_no_concatenation_collision(self):
        # ("ab",) must not collide with ("a", "b").
        assert derive_seed(0, "ab") != derive_seed(0, "a", "b")

    def test_accepts_non_string_labels(self):
        assert derive_seed(0, 1, (2, 3)) == derive_seed(0, 1, (2, 3))

    @given(st.integers(min_value=0, max_value=2**62), st.text(max_size=30))
    def test_result_in_63_bit_range(self, seed, label):
        value = derive_seed(seed, label)
        assert 0 <= value < 2**63


class TestSpawnRng:
    def test_same_stream_same_values(self):
        a = spawn_rng(7, "x").random(5)
        b = spawn_rng(7, "x").random(5)
        assert np.array_equal(a, b)

    def test_different_streams_diverge(self):
        a = spawn_rng(7, "x").random(5)
        b = spawn_rng(7, "y").random(5)
        assert not np.array_equal(a, b)

    def test_returns_generator(self):
        assert isinstance(spawn_rng(0), np.random.Generator)
