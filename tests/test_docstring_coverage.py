"""Quality gate: every public module, class and function is documented."""

import importlib
import inspect
import pkgutil

import pytest

import repro

SKIP_MODULES = {"repro.__main__"}


def _walk_modules():
    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name not in SKIP_MODULES:
            yield info.name


MODULES = sorted(_walk_modules())


@pytest.mark.parametrize("module_name", MODULES)
def test_module_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_public_members_documented(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; documented at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            missing.append(name)
        if inspect.isclass(obj):
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr) and not (
                    attr.__doc__ and attr.__doc__.strip()
                ):
                    missing.append(f"{name}.{attr_name}")
    assert not missing, f"{module_name}: undocumented public members {missing}"
