"""Unit tests for extension-module render functions (pure formatting)."""


from repro.experiments import (
    ablations,
    ext_completion,
    ext_degrade,
    ext_delay,
    ext_dynamic,
    ext_hetero,
    ext_importance,
)
from repro.scheduling.dynamic import DynamicMetrics


class TestRenders:
    def test_ext_delay_render(self):
        text = ext_delay.render(
            {
                "n_samples": 100,
                "overall_error": 0.08,
                "by_size": {2: 0.07, 3: 0.09},
                "delay_ratio_range": (1.0, 4.2),
                "p90_error": 0.2,
            }
        )
        assert "processing-delay" in text
        assert "2-games" in text
        assert "1.00 .. 4.20" in text

    def test_ext_completion_render(self):
        text = ext_completion.render(
            {
                "n_partial": 50,
                "rank": 8,
                "reconstruction_mae": 0.08,
                "rm_error_full": 0.10,
                "rm_error_completed": 0.12,
                "profiling_cost_saved": 0.357,
            }
        )
        assert "35.7%" in text
        assert "0.080" in text

    def test_ext_dynamic_render(self):
        metrics = DynamicMetrics(
            n_sessions=10,
            server_minutes=100.0,
            dedicated_server_minutes=200.0,
            peak_servers=5,
            violation_minutes=10.0,
            session_minutes=200.0,
        )
        text = ext_dynamic.render(
            {"qos": 60.0, "n_sessions": 10, "metrics": {"P": metrics}}
        )
        assert "50.0%" in text  # utilization gain
        assert "5.0%" in text  # violation fraction

    def test_ext_hetero_render(self):
        text = ext_hetero.render(
            {
                "servers": {
                    "ref": {"native_error": 0.1, "mean_degradation": 0.6},
                    "big": {
                        "native_error": 0.08,
                        "mean_degradation": 0.8,
                        "transfer_error": 0.15,
                    },
                },
                "n_colocations": 100,
            }
        )
        assert "ref" in text and "big" in text

    def test_ext_importance_render(self):
        text = ext_importance.render(
            {
                "per_resource": {"CPU-CE": 0.01, "GPU-CE": 0.03, "n_corunners": 0.0},
                "per_block": {"sensitivity curves": 0.05, "aggregate intensity": 0.02},
            }
        )
        # Sorted descending: GPU-CE leads.
        assert text.index("GPU-CE") < text.index("CPU-CE")

    def test_ext_degrade_render(self):
        metrics = {
            "servers_opened": 175,
            "peak_servers": 106,
            "downscales": 0,
            "restores": 0,
            "degraded_sessions": 0,
            "degraded_minutes": 0.0,
            "slo_breaches": 110,
        }
        text = ext_degrade.render(
            {
                "qos": 60.0,
                "n_requests": 600,
                "arrival_rate": 8.0,
                "ladder": ["1920x1080", "1600x900", "1280x720"],
                "restore_interval": 64,
                "variants": {
                    "baseline (1080p only)": metrics,
                    "downscale + restore": dict(metrics, servers_opened=108),
                    "downscale + 10% margin": dict(metrics, servers_opened=135),
                },
                "servers_saved": 40,
                "breaches_saved": 25,
            }
        )
        assert "resolution-downscale" in text
        assert "1920x1080 > 1600x900 > 1280x720" in text
        assert "saves 40 servers and 25 breaches" in text
        assert "baseline (1080p only)" in text

    def test_ablations_render(self):
        text = ablations.render(
            {
                "aggregate_transform": {"Eq.5 (mean/var per resource)": 0.1},
                "feature_knockout": {"full": 0.1},
                "granularity": {2: 0.11, 10: 0.10},
                "noise": {0.0: 0.1, 0.1: 0.16},
            }
        )
        assert "Ablation 1" in text
        assert "Ablation 4" in text


class TestDynamicMetricsProperties:
    def test_utilization_gain_zero_division_guard(self):
        metrics = DynamicMetrics(
            n_sessions=0,
            server_minutes=0.0,
            dedicated_server_minutes=0.0,
            peak_servers=0,
            violation_minutes=0.0,
            session_minutes=0.0,
        )
        assert metrics.utilization_gain == 0.0
        assert metrics.violation_fraction == 0.0
