"""Tests for colocation generation, measurement and dataset construction."""

import numpy as np
import pytest

from repro.core.training import (
    ColocationSpec,
    MeasuredColocation,
    SampleSet,
    build_dataset,
    generate_colocations,
    measure_colocations,
)
from repro.games.resolution import PRESET_RESOLUTIONS, Resolution

R1080 = Resolution(1920, 1080)


class TestColocationSpec:
    def test_properties(self):
        spec = ColocationSpec((("A", R1080), ("B", R1080)))
        assert spec.size == 2
        assert spec.names == ("A", "B")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ColocationSpec(())

    def test_duplicates_allowed(self):
        spec = ColocationSpec((("A", R1080), ("A", R1080)))
        assert spec.size == 2

    def test_instances(self, catalog):
        spec = ColocationSpec((("Dota2", R1080), ("H1Z1", R1080)))
        instances = spec.instances(catalog)
        assert [i.spec.name for i in instances] == ["Dota2", "H1Z1"]


class TestGenerateColocations:
    def test_default_paper_campaign(self):
        names = [f"g{i}" for i in range(20)]
        colocations = generate_colocations(names, seed=0)
        sizes = [c.size for c in colocations]
        assert sizes.count(2) == 500
        assert sizes.count(3) == 100
        assert sizes.count(4) == 100

    def test_games_distinct_within_colocation(self):
        colocations = generate_colocations(
            [f"g{i}" for i in range(10)], sizes={4: 50}, seed=1
        )
        for c in colocations:
            assert len(set(c.names)) == c.size

    def test_resolutions_from_presets(self):
        colocations = generate_colocations(
            [f"g{i}" for i in range(5)], sizes={2: 30}, seed=2
        )
        used = {res for c in colocations for _, res in c.entries}
        assert used <= set(PRESET_RESOLUTIONS)

    def test_deterministic(self):
        names = [f"g{i}" for i in range(8)]
        a = generate_colocations(names, sizes={2: 10}, seed=3)
        b = generate_colocations(names, sizes={2: 10}, seed=3)
        assert a == b

    def test_impossible_size_rejected(self):
        with pytest.raises(ValueError):
            generate_colocations(["a", "b"], sizes={3: 1})


class TestMeasureColocations:
    def test_fps_aligned_with_entries(self, catalog):
        specs = generate_colocations(
            ["Dota2", "H1Z1", "Stardew Valley"], sizes={2: 3}, seed=0
        )
        measured = measure_colocations(catalog, specs)
        assert len(measured) == 3
        for m in measured:
            assert len(m.fps) == m.spec.size
            assert all(f > 0 for f in m.fps)

    def test_misaligned_fps_rejected(self):
        spec = ColocationSpec((("A", R1080), ("B", R1080)))
        with pytest.raises(ValueError):
            MeasuredColocation(spec=spec, fps=(60.0,))


class TestBuildDataset(object):
    @pytest.fixture(scope="class")
    def dataset(self, minilab):
        return minilab.dataset(60.0)

    def test_sample_counts_match_campaign(self, minilab, dataset):
        expected = sum(c.size for c in minilab.colocations)
        assert len(dataset.rm) == expected
        assert len(dataset.cm) == expected

    def test_rm_labels_are_ratios(self, dataset):
        assert dataset.rm.y.min() > 0.0
        assert dataset.rm.y.max() < 1.3

    def test_cm_labels_binary(self, dataset):
        assert set(np.unique(dataset.cm.y)) <= {0, 1}

    def test_sizes_recorded(self, dataset):
        assert set(np.unique(dataset.rm.sizes)) == {2, 3, 4}

    def test_qos_feature_constant(self, dataset):
        assert np.all(dataset.cm.X[:, 0] == 60.0)

    def test_empty_measurements_rejected(self, minilab):
        with pytest.raises(ValueError):
            build_dataset([], minilab.db)


class TestSampleSet:
    def _sample_set(self, n=10):
        return SampleSet(
            X=np.arange(n * 2, dtype=float).reshape(n, 2),
            y=np.arange(n, dtype=float),
            colocation_ids=np.repeat(np.arange(n // 2), 2),
            sizes=np.full(n, 2),
            games=[f"g{i}" for i in range(n)],
        )

    def test_split_by_colocation_no_leakage(self):
        samples = self._sample_set()
        train, test = samples.split_by_colocation([0, 1])
        assert set(train.colocation_ids) == {0, 1}
        assert set(test.colocation_ids) == {2, 3, 4}
        assert len(train) + len(test) == len(samples)

    def test_select_bool_mask(self):
        samples = self._sample_set()
        picked = samples.select(samples.y > 6)
        assert len(picked) == 3
        assert picked.games == ["g7", "g8", "g9"]

    def test_subsample(self):
        samples = self._sample_set()
        sub = samples.subsample(4, np.random.default_rng(0))
        assert len(sub) == 4

    def test_subsample_too_many(self):
        with pytest.raises(ValueError):
            self._sample_set().subsample(100, np.random.default_rng(0))

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ValueError):
            SampleSet(
                X=np.zeros((3, 2)),
                y=np.zeros(2),
                colocation_ids=np.zeros(3, dtype=int),
                sizes=np.zeros(3, dtype=int),
                games=["a", "b", "c"],
            )
