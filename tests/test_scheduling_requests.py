"""Tests for request-stream generation."""

import collections

import pytest

from repro.games.resolution import PRESET_RESOLUTIONS, REFERENCE_RESOLUTION
from repro.scheduling import generate_requests


class TestGenerateRequests:
    def test_count_and_membership(self):
        names = ["a", "b", "c"]
        requests = generate_requests(names, 100, seed=0)
        assert len(requests) == 100
        assert {r.game for r in requests} <= set(names)

    def test_default_single_resolution(self):
        requests = generate_requests(["a"], 10, seed=0)
        assert all(r.resolution == REFERENCE_RESOLUTION for r in requests)

    def test_mixed_resolutions(self):
        requests = generate_requests(
            ["a"], 200, resolutions=PRESET_RESOLUTIONS, seed=0
        )
        used = {r.resolution for r in requests}
        assert used == set(PRESET_RESOLUTIONS)

    def test_roughly_uniform(self):
        names = [f"g{i}" for i in range(10)]
        requests = generate_requests(names, 5000, seed=1)
        counts = collections.Counter(r.game for r in requests)
        assert min(counts.values()) > 350
        assert max(counts.values()) < 650

    def test_deterministic(self):
        a = generate_requests(["x", "y"], 20, seed=5)
        b = generate_requests(["x", "y"], 20, seed=5)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_requests([], 10)
        with pytest.raises(ValueError):
            generate_requests(["a"], 0)
