"""Unit tests for the actuator pipeline: structure, the downscale
actuator, the restore loop, and the fleet's degraded-session bookkeeping."""

import pytest

from repro.games.resolution import DegradeLadder, Resolution
from repro.placement.engine import (
    Actuator,
    DecisionEngine,
    PolicyActuator,
    ResolutionDownscaleActuator,
)
from repro.placement.fleet import FleetState, Session, degraded_to, promoted_to
from repro.placement.signature import entry_of

R1080 = Resolution(1920, 1080)
R900 = Resolution(1600, 900)
R720 = Resolution(1280, 720)
LADDER = DegradeLadder.from_str("1080p,900p,720p")


class StubPolicy:
    """Scripted policy: ``fn(signatures, session) -> index | None``."""

    name = "stub"

    def __init__(self, fn, group_feasible=None):
        self._fn = fn
        self._group_feasible = group_feasible

    def select(self, signatures, session):
        return self._fn(signatures, session)

    def __getattr__(self, attr):
        if attr == "group_feasible" and self._group_feasible is not None:
            return self._group_feasible
        raise AttributeError(attr)


def fits_only_at(resolution):
    """A policy that colocates (server 0) only sessions at ``resolution``."""

    def fn(signatures, session):
        if signatures and session.resolution == resolution:
            return 0
        return None

    return fn


def session(game="g", resolution=R1080, arrival=0.0, duration=10.0, **kw):
    return Session(game, resolution, arrival, duration, **kw)


class TestPipelineStructure:
    def test_actuator_protocol(self):
        engine = DecisionEngine(StubPolicy(lambda s, x: None))
        for step in engine.actuators():
            assert isinstance(step, Actuator)
        assert isinstance(ResolutionDownscaleActuator(LADDER), Actuator)

    def test_default_chain_shape(self):
        engine = DecisionEngine(
            StubPolicy(lambda s, x: None), fallback=StubPolicy(lambda s, x: None)
        )
        assert len(engine.pipeline) == 2
        assert [a.kind for a in engine.actuators()] == ["policy", "policy"]
        assert not engine.pipeline[0].is_fallback
        assert engine.pipeline[1].is_fallback

    def test_ladder_appends_transform_step(self):
        engine = DecisionEngine(
            StubPolicy(lambda s, x: None), downscale_ladder=LADDER
        )
        kinds = [a.kind for a in engine.actuators()]
        assert kinds == ["policy", "transform"]
        assert engine.actuators()[-1].name == "resolution-downscale"

    def test_historical_accessors(self):
        primary = StubPolicy(lambda s, x: None)
        fb = StubPolicy(lambda s, x: None)
        engine = DecisionEngine(primary, fallback=fb)
        assert engine.policy is primary
        assert engine.fallback is fb


class TestDownscaleDecision:
    def test_downscale_hit_places_degraded_session(self):
        engine = DecisionEngine(
            StubPolicy(fits_only_at(R720)), downscale_ladder=LADDER
        )
        fleet = FleetState()
        fleet.place(None, session("a"))  # one open server to colocate onto
        outcome = engine.admit(fleet, session("b"))
        assert outcome.choice == 0
        assert outcome.session.resolution == R720
        assert outcome.session.requested == R1080
        assert outcome.session.degraded
        assert fleet.n_degraded == 1
        counters = engine.telemetry.snapshot()["labeled"]["counters"]
        downs = {
            e["labels"]["resolution"]: e["value"] for e in counters["downscales"]
        }
        assert downs == {"1280x720": 1}
        queries = {
            e["labels"]["resolution"]: e["value"]
            for e in counters["downscale_queries"]
        }
        # 900p was tried (and refused) before 720p hit.
        assert queries == {"1600x900": 1, "1280x720": 1}

    def test_best_rung_wins(self):
        engine = DecisionEngine(
            StubPolicy(lambda s, x: 0 if s and x.resolution != R1080 else None),
            downscale_ladder=LADDER,
        )
        fleet = FleetState()
        fleet.place(None, session("a"))
        outcome = engine.admit(fleet, session("b"))
        assert outcome.session.resolution == R900  # first rung below 1080p

    def test_miss_opens_dedicated_server(self):
        engine = DecisionEngine(
            StubPolicy(lambda s, x: None), downscale_ladder=LADDER
        )
        fleet = FleetState()
        fleet.place(None, session("a"))
        outcome = engine.admit(fleet, session("b"))
        assert outcome.choice is None
        assert outcome.session.resolution == R1080
        assert not outcome.session.degraded
        assert fleet.n_degraded == 0

    def test_no_ladder_means_no_transform(self):
        engine = DecisionEngine(StubPolicy(lambda s, x: None))
        decision = engine.decide([], session())
        assert decision.session is None
        snapshot = engine.telemetry.snapshot()
        assert "downscale_queries" not in snapshot.get("labeled", {}).get(
            "counters", {}
        )

    def test_session_already_at_bottom_rung(self):
        engine = DecisionEngine(
            StubPolicy(lambda s, x: None), downscale_ladder=LADDER
        )
        decision = engine.decide([(("a", R1080),)], session(resolution=R720))
        assert decision.server is None
        assert decision.session is None

    def test_downscale_skipped_when_chain_fully_failed(self):
        def boom(signatures, x):
            raise RuntimeError("policy down")

        engine = DecisionEngine(StubPolicy(boom), downscale_ladder=LADDER)
        decision = engine.decide([(("a", R720),)], session())
        # No deciding policy survived, so the quality lever is never
        # pulled — the arrival opens a dedicated server at full quality.
        assert decision.server is None
        assert decision.session is None
        snapshot = engine.telemetry.snapshot()
        assert "downscale_queries" not in snapshot.get("labeled", {}).get(
            "counters", {}
        )

    def test_strict_raises_on_invalid_downscale_index(self):
        engine = DecisionEngine(
            StubPolicy(lambda s, x: 99 if x.resolution != R1080 else None),
            strict=True,
            downscale_ladder=LADDER,
        )
        with pytest.raises(IndexError):
            engine.decide([(("a", R720),)], session())

    def test_nonstrict_absorbs_invalid_downscale_index(self):
        engine = DecisionEngine(
            StubPolicy(lambda s, x: 99 if x.resolution != R1080 else None),
            downscale_ladder=LADDER,
        )
        decision = engine.decide([(("a", R720),)], session())
        assert decision.server is None
        counters = engine.telemetry.snapshot()["counters"]
        assert counters["downscale_errors"] == 1
        assert counters["invalid_choices"] == 1


class TestRestore:
    def make_degraded_fleet(self):
        fleet = FleetState()
        fleet.place(None, session("a"))
        degraded = degraded_to(session("b", duration=20.0), R720)
        fleet.place(0, degraded)
        return fleet

    def test_can_restore_requires_ladder_and_group_feasible(self):
        no_ladder = DecisionEngine(StubPolicy(lambda s, x: None, lambda sig: True))
        assert not no_ladder.can_restore
        no_cm = DecisionEngine(
            StubPolicy(lambda s, x: None), downscale_ladder=LADDER
        )
        assert not no_cm.can_restore
        both = DecisionEngine(
            StubPolicy(lambda s, x: None, lambda sig: True),
            downscale_ladder=LADDER,
        )
        assert both.can_restore

    def test_restore_promotes_to_request(self):
        engine = DecisionEngine(
            StubPolicy(lambda s, x: None, lambda sig: True),
            downscale_ladder=LADDER,
        )
        fleet = self.make_degraded_fleet()
        assert engine.restore(fleet) == 1
        assert fleet.n_degraded == 0
        promoted = [s for s in fleet.members(0) if s.game == "b"][0]
        assert promoted.resolution == R1080
        assert promoted.requested == R1080  # kept for QoS accounting
        counters = engine.telemetry.snapshot()["labeled"]["counters"]
        assert counters["restores"][0]["labels"]["resolution"] == "1920x1080"

    def test_restore_settles_on_intermediate_rung(self):
        def feasible(sig):
            # Full promotion (any 1080p entry for game b) is refused.
            return ("b", R1080) not in sig

        engine = DecisionEngine(
            StubPolicy(lambda s, x: None, feasible), downscale_ladder=LADDER
        )
        fleet = self.make_degraded_fleet()
        assert engine.restore(fleet) == 1
        still = [s for s in fleet.members(0) if s.game == "b"][0]
        assert still.resolution == R900
        assert still.degraded  # partially restored, still below request
        assert fleet.n_degraded == 1

    def test_restore_noop_when_nothing_feasible(self):
        engine = DecisionEngine(
            StubPolicy(lambda s, x: None, lambda sig: False),
            downscale_ladder=LADDER,
        )
        fleet = self.make_degraded_fleet()
        assert engine.restore(fleet) == 0
        assert fleet.n_degraded == 1

    def test_restore_without_capability_returns_zero(self):
        engine = DecisionEngine(StubPolicy(lambda s, x: None))
        fleet = self.make_degraded_fleet()
        assert engine.restore(fleet) == 0


class TestFleetDegradedBookkeeping:
    def test_degraded_to_pins_original_request(self):
        s = session()
        once = degraded_to(s, R900)
        twice = degraded_to(once, R720)
        assert twice.requested == R1080
        assert promoted_to(twice, R1080).degraded is False

    def test_degraded_to_rejects_promotion_disguise(self):
        with pytest.raises(ValueError):
            Session("g", R1080, 0.0, 1.0, requested=R720)

    def test_counts_follow_departures_and_crashes(self):
        fleet = FleetState()
        fleet.place(None, degraded_to(session("a", duration=5.0), R720))
        fleet.place(None, degraded_to(session("b", duration=50.0), R720))
        assert fleet.n_degraded == 2
        fleet.pop_departures(10.0)
        assert fleet.n_degraded == 1
        server_id = fleet.server_ids()[0]
        evicted = fleet.crash(server_id)
        assert [s.game for s in evicted] == ["b"]
        assert fleet.n_degraded == 0

    def test_degraded_members_sorted_by_member_id(self):
        fleet = FleetState()
        fleet.place(None, degraded_to(session("b"), R720))
        fleet.place(None, degraded_to(session("a"), R900))
        members = fleet.degraded_members()
        assert [s.game for _, _, s in members] == ["b", "a"]

    def test_update_resolution_rewrites_signature(self):
        fleet = FleetState()
        degraded = degraded_to(session("a"), R720)
        fleet.place(None, degraded)
        (server_id, member_id, live) = fleet.degraded_members()[0]
        fleet.update_resolution(server_id, member_id, promoted_to(live, R1080))
        assert fleet.server_signature(server_id) == (("a", R1080),)
        assert fleet.n_degraded == 0

    def test_update_resolution_rejects_unknown_member(self):
        fleet = FleetState()
        fleet.place(None, session("a"))
        with pytest.raises(KeyError):
            fleet.update_resolution(0, 999, session("a"))

    def test_update_resolution_rejects_identity_change(self):
        fleet = FleetState()
        fleet.place(None, session("a"))
        (server_id, member_id) = 0, 0
        with pytest.raises(ValueError):
            fleet.update_resolution(server_id, member_id, session("other"))

    def test_observer_sees_resolution_change(self):
        seen = []

        class Observer:
            def fleet_placed(self, *a):
                pass

            def fleet_departed(self, *a):
                pass

            def fleet_evicted(self, *a):
                pass

            def fleet_resolution_changed(self, server_id, member_id, old, new):
                seen.append((server_id, member_id, old.resolution, new.resolution))

        fleet = FleetState(observer=Observer())
        fleet.place(None, degraded_to(session("a"), R720))
        server_id, member_id, live = fleet.degraded_members()[0]
        fleet.update_resolution(server_id, member_id, promoted_to(live, R1080))
        assert seen == [(server_id, member_id, R720, R1080)]

    def test_entry_of_uses_served_resolution(self):
        degraded = degraded_to(session("a"), R720)
        assert entry_of(degraded) == ("a", R720)
