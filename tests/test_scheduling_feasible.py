"""Tests for feasibility enumeration and judgement scoring."""

import math

import numpy as np
import pytest

from repro.scheduling import (
    FeasibilityReport,
    actual_feasibility,
    enumerate_colocations,
    judge_feasibility,
    score_judgements,
)


class TestEnumerateColocations:
    def test_paper_count_for_ten_games(self):
        names = [f"g{i}" for i in range(10)]
        colocations = enumerate_colocations(names, max_size=4)
        expected = sum(math.comb(10, k) for k in range(1, 5))
        assert len(colocations) == expected == 385

    def test_sizes_bounded(self):
        colocations = enumerate_colocations(["a", "b", "c"], max_size=2)
        assert {c.size for c in colocations} == {1, 2}

    def test_entries_distinct(self):
        colocations = enumerate_colocations(["a", "b", "c"], max_size=3)
        for c in colocations:
            assert len(set(c.names)) == c.size

    def test_invalid_max_size(self):
        with pytest.raises(ValueError):
            enumerate_colocations(["a"], max_size=0)


class TestActualFeasibility:
    def test_monotone_in_qos(self, minilab):
        names = minilab.names[:5]
        colocations = enumerate_colocations(names, max_size=3)
        lax = actual_feasibility(minilab.catalog, colocations, qos=20.0)
        strict = actual_feasibility(minilab.catalog, colocations, qos=90.0)
        # Anything feasible at the strict floor is feasible at the lax one.
        assert np.all(lax[strict])

    def test_supersets_never_more_feasible(self, minilab):
        names = minilab.names[:4]
        colocations = enumerate_colocations(names, max_size=4)
        feasible = actual_feasibility(minilab.catalog, colocations, qos=60.0)
        by_names = {c.names: bool(f) for c, f in zip(colocations, feasible)}
        quad = tuple(sorted(names))
        if by_names.get(quad, False):
            for drop in range(4):
                sub = tuple(n for i, n in enumerate(quad) if i != drop)
                assert by_names[sub]


class TestJudgeFeasibility:
    def test_accepts_callable_and_object(self, minilab):
        colocations = enumerate_colocations(minilab.names[:3], max_size=2)
        always = judge_feasibility(lambda spec, qos: True, colocations, 60.0)
        assert np.all(always)

        class Judge:
            def colocation_feasible(self, spec, qos):
                return spec.size == 1

        singles = judge_feasibility(Judge(), colocations, 60.0)
        assert np.array_equal(singles, np.array([c.size == 1 for c in colocations]))


class TestScoreJudgements:
    def test_confusion_counts(self):
        actual = np.array([True, True, False, False])
        judged = np.array([True, False, True, False])
        report = score_judgements(actual, judged)
        assert (report.tp, report.fn, report.fp, report.tn) == (1, 1, 1, 1)
        assert report.accuracy == 0.5
        assert report.precision == 0.5
        assert report.recall == 0.5

    def test_perfect_judgement(self):
        actual = np.array([True, False, True])
        report = score_judgements(actual, actual)
        assert report.accuracy == 1.0
        assert report.precision == 1.0
        assert report.recall == 1.0

    def test_degenerate_scores(self):
        report = FeasibilityReport(tp=0, fp=0, fn=0, tn=5)
        assert report.precision == 0.0
        assert report.recall == 0.0
        assert report.accuracy == 1.0

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            score_judgements(np.array([True]), np.array([True, False]))
