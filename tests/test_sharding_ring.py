"""Property tests for the consistent-hash ring and the shard router.

The two load-bearing guarantees of the routing substrate, pinned as
properties rather than examples:

* **Balance** — at 10k keys no shard owns more than twice the mean.
* **Minimal remapping** — adding or removing one shard moves fewer than
  ``2/N`` of the keys, and every moved key moves *because of* the
  topology change (to the new node, or off the removed one) — never a
  gratuitous reshuffle of bystanders.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.games.resolution import Resolution
from repro.placement.fleet import Session
from repro.sharding import HashRing, ShardRouter, routing_key, stable_hash

KEYS_10K = [f"key-{i}" for i in range(10_000)]


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", "b", 3) == stable_hash("a", "b", 3)

    def test_64_bit_range(self):
        for key in ("", "x", 12345, ("t", "u")):
            assert 0 <= stable_hash(key) < 2**64

    def test_separator_is_unambiguous(self):
        # Without a separator these two would collide byte-for-byte.
        assert stable_hash("ab", "c") != stable_hash("a", "bc")
        assert stable_hash("a", "") != stable_hash("a")

    def test_part_order_matters(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")


class TestRingMembership:
    def test_nodes_sorted(self):
        ring = HashRing([3, 1, 2])
        assert ring.nodes == [1, 2, 3]
        assert len(ring) == 3
        assert 2 in ring
        assert 7 not in ring

    def test_add_duplicate_rejected(self):
        ring = HashRing([0, 1])
        with pytest.raises(ValueError, match="already"):
            ring.add(1)

    def test_remove_missing_rejected(self):
        ring = HashRing([0, 1])
        with pytest.raises(KeyError, match="not on the ring"):
            ring.remove(9)

    def test_empty_lookup_rejected(self):
        with pytest.raises(LookupError, match="empty"):
            HashRing().lookup("key")

    def test_vnodes_validated(self):
        with pytest.raises(ValueError, match="vnodes"):
            HashRing([0], vnodes=0)

    def test_layout_is_process_stable(self):
        # Two independently built rings agree on every assignment —
        # the property that makes sharded replays machine-portable.
        a = HashRing(range(5)).assignments(KEYS_10K[:500])
        b = HashRing(range(5)).assignments(KEYS_10K[:500])
        assert a == b


class TestBalance:
    @pytest.mark.parametrize("n_shards", [2, 4, 8])
    def test_no_shard_above_twice_the_mean(self, n_shards):
        ring = HashRing(range(n_shards))
        counts = Counter(ring.assignments(KEYS_10K).values())
        assert set(counts) <= set(range(n_shards))
        mean = len(KEYS_10K) / n_shards
        assert max(counts.values()) <= 2 * mean

    def test_every_shard_owns_keys(self):
        ring = HashRing(range(8))
        counts = Counter(ring.assignments(KEYS_10K).values())
        assert len(counts) == 8


class TestMinimalRemapping:
    @pytest.mark.parametrize("n_before", [2, 4, 8])
    def test_add_moves_under_2_over_n(self, n_before):
        ring = HashRing(range(n_before))
        before = ring.assignments(KEYS_10K)
        ring.add(n_before)
        after = ring.assignments(KEYS_10K)
        moved = {k for k in KEYS_10K if before[k] != after[k]}
        # Expected move fraction is 1/(N+1); assert under the 2/(N+1)
        # ceiling, and that every move lands on the new node.
        assert len(moved) / len(KEYS_10K) < 2 / (n_before + 1)
        assert all(after[k] == n_before for k in moved)

    @pytest.mark.parametrize("n_before", [3, 5, 8])
    def test_remove_moves_only_the_lost_arcs(self, n_before):
        ring = HashRing(range(n_before))
        before = ring.assignments(KEYS_10K)
        removed = n_before // 2
        ring.remove(removed)
        after = ring.assignments(KEYS_10K)
        moved = {k for k in KEYS_10K if before[k] != after[k]}
        # Exactly the removed node's keys move — no bystander churn.
        assert moved == {k for k in KEYS_10K if before[k] == removed}
        assert len(moved) / len(KEYS_10K) < 2 / n_before

    def test_add_then_remove_round_trips(self):
        ring = HashRing(range(4))
        before = ring.assignments(KEYS_10K[:1000])
        ring.add(4)
        ring.remove(4)
        assert ring.assignments(KEYS_10K[:1000]) == before


@settings(max_examples=30, deadline=None)
@given(
    keys=st.lists(st.text(min_size=1, max_size=12), min_size=1, max_size=60),
    n_shards=st.integers(2, 8),
)
def test_property_add_only_moves_keys_to_the_new_node(keys, n_shards):
    ring = HashRing(range(n_shards))
    before = ring.assignments(keys)
    ring.add(n_shards)
    after = ring.assignments(keys)
    for key in keys:
        assert after[key] == before[key] or after[key] == n_shards


@settings(max_examples=30, deadline=None)
@given(
    keys=st.lists(st.text(min_size=1, max_size=12), min_size=1, max_size=60),
    n_shards=st.integers(2, 8),
)
def test_property_lookup_always_lands_on_a_member(keys, n_shards):
    ring = HashRing(range(n_shards))
    for key in keys:
        assert ring.lookup(key) in ring


def _session(game: str, width: int = 1920, height: int = 1080) -> Session:
    return Session(
        game=game, resolution=Resolution(width, height), arrival=0.0, duration=1.0
    )


class TestShardRouter:
    def test_routing_key_is_the_signature_entry(self):
        assert routing_key(_session("Dota2")) == "Dota2@1920x1080"
        assert routing_key(_session("Dota2", 1280, 720)) == "Dota2@1280x720"

    def test_same_entry_same_shard(self):
        router = ShardRouter(4)
        assert router.shard_of(_session("Dota2")) == router.shard_of(
            _session("Dota2")
        )
        assert router.n_shards == 4
        assert router.shard_ids == [0, 1, 2, 3]

    def test_resolution_is_part_of_the_key(self):
        router = ShardRouter(4)
        # Different resolutions are independent keys; they *may* share a
        # shard, but the memo must hold distinct entries.
        router.shard_of(_session("Dota2"))
        router.shard_of(_session("Dota2", 1280, 720))
        assert len(router._memo) == 2

    def test_router_matches_ring(self):
        router = ShardRouter(4)
        session = _session("H1Z1")
        assert router.shard_of(session) == router.ring.lookup(routing_key(session))

    def test_topology_change_clears_memo(self):
        router = ShardRouter(2)
        router.shard_of(_session("Dota2"))
        assert router._memo
        router.add_shard(2)
        assert not router._memo
        assert router.n_shards == 3
        router.shard_of(_session("Dota2"))
        router.remove_shard(2)
        assert not router._memo

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError, match="n_shards"):
            ShardRouter(0)

    def test_route_span_records_key_and_shard(self):
        from repro.obs.tracing import Tracer

        tracer = Tracer(enabled=True)
        router = ShardRouter(4, tracer=tracer)
        session = _session("Dota2")
        shard = router.route(session, index=7)
        (span,) = tracer.spans
        assert span.name == "route"
        assert span.attributes["request"] == 7
        assert span.attributes["game"] == "Dota2"
        assert span.attributes["resolution"] == "1920x1080"
        assert span.attributes["shard"] == shard

    def test_route_without_tracer_opens_no_span(self):
        from repro.obs.tracing import Tracer

        tracer = Tracer(enabled=False)
        router = ShardRouter(4, tracer=tracer)
        router.route(_session("Dota2"), index=0)
        assert tracer.spans == []


class TestEjectReadmit:
    """The supervision substrate: ejection is perfectly reversible.

    A readmitted shard re-inserts the exact vnode positions it had
    before (vnode hashes depend only on the shard id), so the ring —
    and therefore every routing decision — is restored byte-identically.
    """

    @settings(max_examples=25, deadline=None)
    @given(
        n_shards=st.integers(min_value=2, max_value=8),
        ejected=st.integers(min_value=0, max_value=7),
        keys=st.lists(st.text(min_size=1, max_size=12), min_size=1, max_size=50),
    )
    def test_eject_then_readmit_restores_routing(self, n_shards, ejected, keys):
        ejected %= n_shards
        ring = HashRing(range(n_shards))
        before = [ring.lookup(key) for key in keys]
        ring.remove(ejected)
        ring.add(ejected)
        assert ring.nodes == list(range(n_shards))
        assert [ring.lookup(key) for key in keys] == before

    @settings(max_examples=25, deadline=None)
    @given(
        n_shards=st.integers(min_value=2, max_value=8),
        data=st.data(),
        keys=st.lists(st.text(min_size=1, max_size=12), min_size=1, max_size=50),
    )
    def test_routing_never_returns_an_ejected_shard(self, n_shards, data, keys):
        k = data.draw(st.integers(min_value=1, max_value=n_shards - 1))
        down = set(
            data.draw(
                st.lists(
                    st.sampled_from(range(n_shards)),
                    min_size=k,
                    max_size=k,
                    unique=True,
                )
            )
        )
        ring = HashRing(range(n_shards))
        for shard in down:
            ring.remove(shard)
        for key in keys:
            assert ring.lookup(key) not in down

    def test_router_survives_full_eject_readmit_cycle(self):
        router = ShardRouter(4)
        session = _session("Dota2")
        home = router.shard_of(session)
        router.remove_shard(home)
        rerouted = router.shard_of(session)
        assert rerouted != home
        router.add_shard(home)
        assert router.shard_of(session) == home
