"""End-to-end integration tests over the miniature lab.

These check the paper's headline *shape* claims hold on the full pipeline:
profiling -> training -> prediction -> scheduling, at reduced scale.
"""

import numpy as np
import pytest

from repro.experiments.evalutils import baseline_sample_predictions
from repro.scheduling import (
    actual_feasibility,
    enumerate_colocations,
    generate_requests,
    judge_feasibility,
    pack_requests,
    score_judgements,
)


@pytest.fixture(scope="module")
def rm_eval(minilab):
    _, _, rm_tr, rm_te = minilab.split(60.0)
    pred = minilab.rm_model.predict_from_features(rm_te.X)
    return rm_te, pred


class TestRegressionQuality:
    def test_rm_error_in_paper_ballpark(self, rm_eval):
        rm_te, pred = rm_eval
        error = float(np.mean(np.abs(pred - rm_te.y) / rm_te.y))
        assert error < 0.20  # paper: 7.9% at full scale; minilab is tiny

    def test_rm_beats_sigmoid(self, minilab, rm_eval):
        rm_te, pred = rm_eval
        gaugur = float(np.mean(np.abs(pred - rm_te.y) / rm_te.y))
        sigmoid = baseline_sample_predictions(lab=minilab, predictor=minilab.sigmoid)
        assert gaugur < float(np.mean(sigmoid.relative_errors))

    def test_rm_beats_smite(self, minilab, rm_eval):
        rm_te, pred = rm_eval
        gaugur = float(np.mean(np.abs(pred - rm_te.y) / rm_te.y))
        smite = baseline_sample_predictions(lab=minilab, predictor=minilab.smite)
        assert gaugur < float(np.mean(smite.relative_errors))


class TestClassificationQuality:
    def test_cm_accuracy_high(self, minilab):
        _, cm_te, _, _ = minilab.split(60.0)
        pred = minilab.cm_model.predict_from_features(cm_te.X)
        assert float(np.mean(pred == cm_te.y)) > 0.85


class TestFeasibilityStudy:
    @pytest.fixture(scope="class")
    def study(self, minilab):
        names = minilab.names[:6]
        colocations = enumerate_colocations(names, max_size=3)
        actual = actual_feasibility(minilab.catalog, colocations, qos=60.0)
        return names, colocations, actual

    def test_cm_judgement_quality(self, minilab, study):
        _, colocations, actual = study
        judged = judge_feasibility(minilab.predictor, colocations, 60.0)
        report = score_judgements(actual, judged)
        assert report.accuracy > 0.8

    def test_cm_beats_vbp_recall(self, minilab, study):
        _, colocations, actual = study
        if actual.sum() == 0:
            pytest.skip("no feasible colocations at this scale")
        cm = score_judgements(
            actual, judge_feasibility(minilab.predictor, colocations, 60.0)
        )
        vbp = score_judgements(
            actual, judge_feasibility(minilab.vbp, colocations, 60.0)
        )
        assert cm.recall >= vbp.recall

    def test_packing_beats_dedicated(self, minilab, study):
        names, colocations, actual = study
        judged = judge_feasibility(minilab.predictor, colocations, 60.0)
        usable = [c for c, a, j in zip(colocations, actual, judged) if a and j]
        requests = generate_requests(names, 300, seed=0)
        result = pack_requests(requests, usable)
        assert result.n_servers <= 300
        if usable:
            assert result.n_servers < 300
