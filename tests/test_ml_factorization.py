"""Tests for ALS matrix completion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import ALSMatrixCompletion


def _low_rank(n, m, rank, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    U = rng.normal(size=(n, rank))
    V = rng.normal(size=(m, rank))
    M = U @ V.T
    if noise:
        M = M + rng.normal(0.0, noise, size=M.shape)
    return M


class TestALS:
    def test_recovers_low_rank_matrix(self):
        M = _low_rank(40, 30, rank=3)
        rng = np.random.default_rng(1)
        mask = rng.random(M.shape) < 0.6
        model = ALSMatrixCompletion(rank=3, reg=0.01, n_iters=60, seed=0).fit(M, mask)
        recon = model.reconstruct()
        hidden = ~mask
        rmse = np.sqrt(np.mean((recon[hidden] - M[hidden]) ** 2))
        scale = np.std(M)
        assert rmse < 0.15 * scale

    def test_training_error_decreases(self):
        M = _low_rank(20, 15, rank=2, noise=0.05)
        mask = np.random.default_rng(2).random(M.shape) < 0.7
        model = ALSMatrixCompletion(rank=2, n_iters=20).fit(M, mask)
        assert model.train_errors_[-1] <= model.train_errors_[0]

    def test_full_observation_near_exact(self):
        M = _low_rank(15, 12, rank=2)
        mask = np.ones(M.shape, dtype=bool)
        model = ALSMatrixCompletion(rank=2, reg=1e-4, n_iters=50).fit(M, mask)
        assert np.allclose(model.reconstruct(), M, atol=0.05 * np.std(M) + 0.05)

    def test_unobserved_row_gets_mean(self):
        M = _low_rank(10, 8, rank=2)
        mask = np.ones(M.shape, dtype=bool)
        mask[3, :] = False
        model = ALSMatrixCompletion(rank=2, n_iters=10).fit(M, mask)
        recon = model.reconstruct()
        # A fully hidden row has zero factors -> reconstructed as the mean.
        assert np.allclose(recon[3], model.mean_)

    def test_validation(self):
        M = np.zeros((3, 3))
        with pytest.raises(ValueError):
            ALSMatrixCompletion(rank=0)
        with pytest.raises(ValueError):
            ALSMatrixCompletion().fit(M, np.zeros((3, 3), dtype=bool))
        with pytest.raises(ValueError):
            ALSMatrixCompletion().fit(M, np.ones((2, 2), dtype=bool))
        bad = M.copy()
        bad[0, 0] = np.nan
        with pytest.raises(ValueError):
            ALSMatrixCompletion().fit(bad, np.ones((3, 3), dtype=bool))

    def test_reconstruct_before_fit(self):
        with pytest.raises(RuntimeError):
            ALSMatrixCompletion().reconstruct()

    @given(st.integers(1, 4))
    @settings(max_examples=5, deadline=None)
    def test_rank_parameter_respected(self, rank):
        M = _low_rank(12, 10, rank=4)
        mask = np.ones(M.shape, dtype=bool)
        model = ALSMatrixCompletion(rank=rank, n_iters=5).fit(M, mask)
        assert model.U_.shape == (12, rank)
        assert model.V_.shape == (10, rank)
