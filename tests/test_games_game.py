"""Tests for GameSpec: stage times, utilization scaling, resolution laws."""

import numpy as np
import pytest

from repro.games import REFERENCE_RESOLUTION, Resolution, build_catalog
from repro.games.curves import CurveShape, SensitivityShape
from repro.games.game import PIXEL_SCALED_RESOURCES, GameSpec
from repro.games.genres import Genre
from repro.hardware.resources import Resource, ResourceVector


@pytest.fixture(scope="module")
def spec():
    return build_catalog().get("H1Z1")


R720 = Resolution(1280, 720)
R1080 = Resolution(1920, 1080)


class TestStageTimes:
    def test_gpu_time_grows_with_pixels(self, spec):
        assert spec.gpu_time_ms(R1080) > spec.gpu_time_ms(R720)

    def test_gpu_time_affine_in_pixels(self, spec):
        r900 = Resolution(1600, 900)
        expected = spec.gpu_fixed_ms + spec.gpu_per_mpix_ms * r900.megapixels
        assert spec.gpu_time_ms(r900) == pytest.approx(expected)

    def test_solo_frame_time_is_pipeline(self, spec):
        expected = max(spec.cpu_time_ms, spec.gpu_time_ms(R1080)) + spec.xfer_time_ms(
            R1080
        )
        assert spec.solo_frame_time_ms(R1080) == pytest.approx(expected)

    def test_solo_fps_decreases_with_resolution(self, spec):
        assert spec.solo_fps_nominal(R720) >= spec.solo_fps_nominal(R1080)


class TestUtilizationResolutionLaws:
    def test_observation7_cpu_side_constant(self, spec):
        u720 = spec.utilization(R720)
        u1080 = spec.utilization(R1080)
        for res in (Resource.CPU_CE, Resource.MEM_BW, Resource.LLC):
            assert u720[res] == pytest.approx(u1080[res])

    def test_observation8_gpu_side_affine(self, spec):
        resolutions = [R720, Resolution(1600, 900), R1080]
        mpix = np.array([r.megapixels for r in resolutions])
        for res in PIXEL_SCALED_RESOURCES:
            values = np.array([spec.utilization(r)[res] for r in resolutions])
            if np.any(values >= 1.0):  # clamped at capacity, skip
                continue
            fitted = np.polyfit(mpix, values, 1)
            residual = values - np.polyval(fitted, mpix)
            assert np.max(np.abs(residual)) < 1e-9

    def test_gpu_side_monotone_in_pixels(self, spec):
        u720 = spec.utilization(R720)
        u1080 = spec.utilization(R1080)
        for res in PIXEL_SCALED_RESOURCES:
            assert u1080[res] >= u720[res]

    def test_default_resolution_is_reference(self, spec):
        assert spec.utilization() == spec.utilization(REFERENCE_RESOLUTION)


class TestMemoryDemand:
    def test_gpu_memory_grows_beyond_reference(self, spec):
        _, gpu_ref = spec.memory_demand(REFERENCE_RESOLUTION)
        _, gpu_big = spec.memory_demand(Resolution(3840, 2160))
        assert gpu_big > gpu_ref

    def test_cpu_memory_resolution_independent(self, spec):
        cpu_720, _ = spec.memory_demand(R720)
        cpu_1080, _ = spec.memory_demand(R1080)
        assert cpu_720 == cpu_1080


class TestStageInflations:
    def test_no_pressure_no_inflation(self, spec):
        cpu, gpu, link = spec.stage_inflations(np.zeros(7))
        assert (cpu, gpu, link) == (1.0, 1.0, 1.0)

    def test_additive_within_stage(self, spec):
        pressures = np.zeros(7)
        pressures[int(Resource.GPU_CE)] = 1.0
        _, gpu_one, _ = spec.stage_inflations(pressures)
        pressures[int(Resource.GPU_BW)] = 1.0
        _, gpu_two, _ = spec.stage_inflations(pressures)
        gain_ce = spec.sensitivity[Resource.GPU_CE].magnitude
        gain_bw = spec.sensitivity[Resource.GPU_BW].magnitude
        assert gpu_one == pytest.approx(1.0 + gain_ce)
        assert gpu_two == pytest.approx(1.0 + gain_ce + gain_bw)

    def test_domain_separation(self, spec):
        pressures = np.zeros(7)
        pressures[int(Resource.CPU_CE)] = 1.0
        cpu, gpu, link = spec.stage_inflations(pressures)
        assert cpu > 1.0
        assert gpu == 1.0
        assert link == 1.0

    def test_link_stage(self, spec):
        pressures = np.zeros(7)
        pressures[int(Resource.PCIE_BW)] = 1.0
        _, _, link = spec.stage_inflations(pressures)
        assert link == pytest.approx(
            spec.sensitivity[Resource.PCIE_BW].inflation(1.0)
        )


class TestValidation:
    def _kwargs(self):
        return dict(
            name="t",
            genre=Genre.INDIE,
            cpu_time_ms=2.0,
            gpu_fixed_ms=0.5,
            gpu_per_mpix_ms=1.0,
            xfer_fixed_ms=0.2,
            xfer_per_mpix_ms=0.1,
            base_util=ResourceVector([0.1] * 7),
            sensitivity={r: SensitivityShape(0.5, CurveShape.LINEAR) for r in Resource},
            cpu_mem_gb=1.0,
            gpu_mem_gb=0.5,
        )

    def test_valid_constructs(self):
        GameSpec(**self._kwargs())

    def test_missing_sensitivity_rejected(self):
        kwargs = self._kwargs()
        del kwargs["sensitivity"][Resource.GPU_L2]
        with pytest.raises(ValueError, match="GPU-L2"):
            GameSpec(**kwargs)

    def test_non_positive_cpu_time_rejected(self):
        kwargs = self._kwargs()
        kwargs["cpu_time_ms"] = 0.0
        with pytest.raises(ValueError):
            GameSpec(**kwargs)

    def test_dict_round_trip(self):
        spec = GameSpec(**self._kwargs())
        restored = GameSpec.from_dict(spec.to_dict())
        assert restored == spec
