"""Tests for the GAugur CM/RM wrappers and online predictor."""

import numpy as np
import pytest

from repro.core import GAugurClassifier, GAugurRegressor, InterferencePredictor
from repro.core.training import ColocationSpec
from repro.games.resolution import Resolution
from repro.ml import DecisionTreeClassifier, DecisionTreeRegressor

R1080 = Resolution(1920, 1080)
R720 = Resolution(1280, 720)


@pytest.fixture(scope="module")
def split(minilab):
    return minilab.split(60.0)


@pytest.fixture(scope="module")
def rm(split):
    # A fast estimator keeps this module quick; accuracy is tested at the
    # lab level elsewhere.
    _, _, rm_tr, _ = split
    return GAugurRegressor(DecisionTreeRegressor(max_depth=8)).fit(rm_tr)


@pytest.fixture(scope="module")
def cm(split):
    cm_tr, _, _, _ = split
    return GAugurClassifier(DecisionTreeClassifier(max_depth=8)).fit(cm_tr)


@pytest.fixture(scope="module")
def predictor(minilab, cm, rm):
    return InterferencePredictor(minilab.db, classifier=cm, regressor=rm)


class TestGAugurRegressor:
    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GAugurRegressor().predict_from_features(np.zeros((1, 92)))

    def test_predictions_positive(self, rm, split):
        _, _, _, rm_te = split
        pred = rm.predict_from_features(rm_te.X)
        assert np.all(pred >= 0.01)

    def test_predicts_better_than_mean(self, rm, split):
        _, _, rm_tr, rm_te = split
        pred = rm.predict_from_features(rm_te.X)
        mse_model = np.mean((pred - rm_te.y) ** 2)
        mse_mean = np.mean((rm_tr.y.mean() - rm_te.y) ** 2)
        assert mse_model < mse_mean

    def test_high_level_predict(self, minilab, rm):
        names = minilab.names
        target = minilab.db.get(names[0])
        co = [(minilab.db.get(names[1]), R1080)]
        degr = rm.predict(target, co)
        assert 0.0 < degr <= 1.5

    def test_predict_requires_corunner(self, minilab, rm):
        with pytest.raises(ValueError):
            rm.predict(minilab.db.get(minilab.names[0]), [])

    def test_predict_fps_uses_solo_law(self, minilab, rm):
        target = minilab.db.get(minilab.names[0])
        co = [(minilab.db.get(minilab.names[1]), R1080)]
        fps = rm.predict_fps(target, R720, co)
        assert fps == pytest.approx(rm.predict(target, co) * target.solo_fps_at(R720))


class TestGAugurClassifier:
    def test_rejects_non_binary_labels(self, split):
        cm_tr, _, _, _ = split
        bad = cm_tr.select(np.arange(len(cm_tr)))
        bad.y = bad.y.copy()
        bad.y[0] = 3
        with pytest.raises(ValueError, match="binary"):
            GAugurClassifier(DecisionTreeClassifier()).fit(bad)

    def test_accuracy_above_majority(self, cm, split):
        _, cm_te, _, _ = split
        pred = cm.predict_from_features(cm_te.X)
        majority = max(np.mean(cm_te.y), 1 - np.mean(cm_te.y))
        assert np.mean(pred == cm_te.y) > majority

    def test_high_level_predict(self, minilab, cm):
        names = minilab.names
        target = minilab.db.get(names[0])
        co = [(minilab.db.get(names[1]), R1080)]
        verdict = cm.predict(target, R1080, co, qos=60.0)
        assert isinstance(verdict, bool)

    def test_trivial_qos_always_feasible(self, minilab, cm):
        names = minilab.names
        target = minilab.db.get(names[0])
        co = [(minilab.db.get(names[1]), R1080)]
        assert cm.predict(target, R1080, co, qos=0.5)


class TestInterferencePredictor:
    def test_requires_some_model(self, minilab):
        with pytest.raises(ValueError):
            InterferencePredictor(minilab.db)

    def test_predict_degradations_shape(self, minilab, predictor):
        spec = ColocationSpec(tuple((n, R1080) for n in minilab.names[:3]))
        degr = predictor.predict_degradations(spec)
        assert degr.shape == (3,)

    def test_singleton_no_degradation(self, minilab, predictor):
        spec = ColocationSpec(((minilab.names[0], R1080),))
        assert predictor.predict_degradations(spec)[0] == 1.0

    def test_singleton_feasibility_is_solo_check(self, minilab, predictor):
        name = minilab.names[0]
        solo = minilab.db.get(name).solo_fps_at(R1080)
        spec = ColocationSpec(((name, R1080),))
        assert predictor.predict_feasible(spec, solo - 1.0)[0]
        assert not predictor.predict_feasible(spec, solo + 10.0)[0]

    def test_predict_fps_composition(self, minilab, predictor):
        spec = ColocationSpec(tuple((n, R1080) for n in minilab.names[:2]))
        fps = predictor.predict_fps(spec)
        degr = predictor.predict_degradations(spec)
        solos = np.array(
            [minilab.db.get(n).solo_fps_at(R1080) for n in minilab.names[:2]]
        )
        assert np.allclose(fps, degr * solos)

    def test_rm_feasibility_consistent(self, minilab, predictor):
        spec = ColocationSpec(tuple((n, R1080) for n in minilab.names[:2]))
        fps = predictor.predict_fps(spec)
        verdicts = predictor.predict_feasible_rm(spec, 60.0)
        assert np.array_equal(verdicts, fps >= 60.0)
        assert predictor.colocation_feasible_rm(spec, 60.0) == bool(np.all(verdicts))

    def test_missing_model_errors(self, minilab, cm, rm):
        spec = ColocationSpec(tuple((n, R1080) for n in minilab.names[:2]))
        only_cm = InterferencePredictor(minilab.db, classifier=cm)
        with pytest.raises(RuntimeError, match="regression"):
            only_cm.predict_degradations(spec)
        only_rm = InterferencePredictor(minilab.db, regressor=rm)
        with pytest.raises(RuntimeError, match="classification"):
            only_rm.predict_feasible(spec, 60.0)
