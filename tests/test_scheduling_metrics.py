"""Tests for fleet-level metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling.metrics import (
    jain_fairness,
    qos_satisfaction,
    summarize_fleet,
)


class TestJainFairness:
    def test_equal_allocations(self):
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_one_winner(self):
        assert jain_fairness([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_degenerate(self):
        assert jain_fairness([0.0, 0.0]) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            jain_fairness([])
        with pytest.raises(ValueError):
            jain_fairness([-1.0, 2.0])

    @given(st.lists(st.floats(0.1, 1000.0), min_size=1, max_size=40))
    @settings(max_examples=40)
    def test_bounds(self, values):
        index = jain_fairness(values)
        assert 1.0 / len(values) - 1e-12 <= index <= 1.0 + 1e-12

    @given(st.lists(st.floats(0.1, 1000.0), min_size=1, max_size=20), st.floats(0.1, 10.0))
    @settings(max_examples=30)
    def test_scale_invariant(self, values, scale):
        assert jain_fairness(values) == pytest.approx(
            jain_fairness([v * scale for v in values])
        )


class TestQosSatisfaction:
    def test_fraction(self):
        assert qos_satisfaction([30, 60, 90, 120], 60.0) == 0.75

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            qos_satisfaction([], 60.0)


class TestSummarizeFleet:
    def test_summary_fields(self):
        fps = np.array([30.0, 60.0, 90.0, 120.0])
        summary = summarize_fleet(fps, qos=60.0)
        assert summary.n_requests == 4
        assert summary.mean_fps == pytest.approx(75.0)
        assert summary.median_fps == pytest.approx(75.0)
        assert summary.qos_satisfaction == 0.75
        assert 0 < summary.fairness <= 1.0

    def test_as_row_order(self):
        summary = summarize_fleet([60.0, 60.0])
        row = summary.as_row()
        assert row[0] == 2
        assert row[1] == pytest.approx(60.0)
        assert len(row) == 6

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_fleet([])
