"""Tests for named resolutions and the degrade ladder (satellite of the
actuator-pipeline PR): parsing, ordering, rung queries, validation."""

import pytest

from repro.games.resolution import (
    DEFAULT_DEGRADE_LADDER,
    NAMED_RESOLUTIONS,
    PRESET_RESOLUTIONS,
    REFERENCE_RESOLUTION,
    DegradeLadder,
    Resolution,
)


class TestFromStr:
    def test_named_presets(self):
        assert Resolution.from_str("1080p") == Resolution(1920, 1080)
        assert Resolution.from_str("900p") == Resolution(1600, 900)
        assert Resolution.from_str("720p") == Resolution(1280, 720)
        assert Resolution.from_str("4k") == Resolution(3840, 2160)

    def test_case_insensitive(self):
        assert Resolution.from_str("1080P") == Resolution(1920, 1080)
        assert Resolution.from_str("4K") == Resolution(3840, 2160)

    def test_explicit_wxh(self):
        assert Resolution.from_str("1600x900") == Resolution(1600, 900)
        assert Resolution.from_str("800X600") == Resolution(800, 600)

    def test_whitespace_tolerated(self):
        assert Resolution.from_str(" 720p ") == Resolution(1280, 720)

    @pytest.mark.parametrize("text", ["bogus", "1920x", "x1080", "0x100", "axb"])
    def test_malformed_rejected(self, text):
        with pytest.raises(ValueError, match="bad resolution"):
            Resolution.from_str(text)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty resolution"):
            Resolution.from_str("")

    def test_error_lists_known_presets(self):
        with pytest.raises(ValueError, match="1080p"):
            Resolution.from_str("wat")

    def test_named_table_consistent_with_presets(self):
        assert set(PRESET_RESOLUTIONS) <= set(NAMED_RESOLUTIONS.values())


class TestPixelRatioValidation:
    def test_rejects_bad_reference(self):
        with pytest.raises(ValueError):
            Resolution(1920, 1080).pixel_ratio("1080p")

    def test_rejects_none_pixels(self):
        class Fake:
            pixels = 0

        with pytest.raises(ValueError):
            Resolution(1920, 1080).pixel_ratio(Fake())

    def test_valid_reference_still_works(self):
        assert Resolution(1920, 1080).pixel_ratio(REFERENCE_RESOLUTION) == 1.0


class TestDegradeLadder:
    def test_sorted_descending_by_pixels(self):
        ladder = DegradeLadder(
            (Resolution(1280, 720), Resolution(1920, 1080), Resolution(1600, 900))
        )
        assert [r.pixels for r in ladder.rungs] == sorted(
            (r.pixels for r in ladder.rungs), reverse=True
        )

    def test_from_str_round_trip(self):
        ladder = DegradeLadder.from_str("1080p,900p,720p")
        assert ladder.to_list() == ["1920x1080", "1600x900", "1280x720"]

    def test_from_str_malformed_rung(self):
        with pytest.raises(ValueError, match="bad resolution"):
            DegradeLadder.from_str("1080p,nope")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DegradeLadder(())

    def test_rejects_duplicate_pixel_counts(self):
        with pytest.raises(ValueError):
            DegradeLadder.from_str("1080p,1080p")

    def test_len_and_iter(self):
        ladder = DegradeLadder.from_str("1080p,720p")
        assert len(ladder) == 2
        assert list(ladder) == [Resolution(1920, 1080), Resolution(1280, 720)]

    def test_rungs_below_strict(self):
        ladder = DegradeLadder.from_str("1080p,900p,720p")
        below = ladder.rungs_below(Resolution(1920, 1080))
        assert below == (Resolution(1600, 900), Resolution(1280, 720))
        assert ladder.rungs_below(Resolution(1280, 720)) == ()

    def test_rungs_below_off_ladder_resolution(self):
        ladder = DegradeLadder.from_str("1080p,900p,720p")
        assert ladder.rungs_below(Resolution(1700, 1000)) == (
            Resolution(1600, 900),
            Resolution(1280, 720),
        )

    def test_rungs_between_exclusive(self):
        ladder = DegradeLadder.from_str("1080p,900p,720p")
        between = ladder.rungs_between(Resolution(1280, 720), Resolution(1920, 1080))
        assert between == (Resolution(1600, 900),)

    def test_default_ladder_covers_presets(self):
        assert tuple(DEFAULT_DEGRADE_LADDER) == tuple(
            sorted(PRESET_RESOLUTIONS, key=lambda r: r.pixels, reverse=True)
        )
