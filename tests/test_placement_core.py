"""Tests for the shared placement core (:mod:`repro.placement`).

Covers the fleet bookkeeping verbs, the strict engine mode the offline
frontend runs with, the canonical signature helpers, and the
same-seed determinism contract: a chaos serving run (faults + breaker +
crashes) replayed under a fixed seed produces byte-identical telemetry
once wall-clock histograms are stripped.
"""

import json

import pytest

from repro.games.resolution import Resolution
from repro.placement import (
    CMFeasiblePolicy,
    DecisionEngine,
    DedicatedPolicy,
    FleetState,
    Session,
    build_policy,
    entry_of,
    signature_add,
    signature_of,
    simulate_sessions,
)
from repro.scheduling.dynamic import cm_feasible_policy, generate_sessions
from repro.serving import (
    AdmissionController,
    BreakerConfig,
    FaultConfig,
    FaultInjector,
    PredictionCache,
    RequestBroker,
)

R1080 = Resolution(1920, 1080)
R720 = Resolution(1280, 720)


def _session(game="a", resolution=R1080, arrival=0.0, duration=10.0):
    return Session(game=game, resolution=resolution, arrival=arrival, duration=duration)


class TestSignatureHelpers:
    def test_entry_of(self):
        assert entry_of(_session("x", R720)) == ("x", R720)

    def test_signature_of_sorts(self):
        sessions = [_session("b"), _session("a", R720), _session("a")]
        assert signature_of(sessions) == (("a", R720), ("a", R1080), ("b", R1080))

    def test_signature_add_keeps_canonical_order(self):
        sig = signature_of([_session("c")])
        grown = signature_add(sig, ("a", R1080))
        assert grown == (("a", R1080), ("c", R1080))
        assert signature_add(grown, ("b", R720)) == tuple(
            sorted(grown + (("b", R720),))
        )


class TestFleetState:
    def test_place_on_fresh_and_existing(self):
        fleet = FleetState()
        s0 = fleet.place(None, _session("a"))
        s1 = fleet.place(None, _session("b"))
        assert (s0, s1) == (0, 1)
        assert fleet.place(0, _session("c")) == 0
        assert fleet.n_open == 2
        assert fleet.servers_opened == 2
        assert fleet.peak == 2
        assert fleet.signatures() == [
            (("a", R1080), ("c", R1080)),
            (("b", R1080),),
        ]

    def test_members_departure_ordered(self):
        fleet = FleetState()
        fleet.place(None, _session("a", duration=30.0))
        fleet.place(0, _session("b", duration=10.0))
        fleet.place(0, _session("c", duration=20.0))
        assert [s.game for s in fleet.members(0)] == ["b", "c", "a"]

    def test_pop_departures_retires_and_closes(self):
        fleet = FleetState()
        fleet.place(None, _session("a", duration=5.0))
        fleet.place(0, _session("b", duration=15.0))
        fleet.place(None, _session("c", duration=8.0))
        seen = []
        removed = fleet.pop_departures(10.0, before_each=seen.append)
        assert removed == 2
        assert seen == [5.0, 8.0]
        assert fleet.server_ids() == [0]
        assert fleet.members(0)[0].game == "b"
        assert fleet.pop_departures(20.0) == 1
        assert fleet.n_open == 0
        assert fleet.peak == 2  # peak survives the drain

    def test_crash_returns_admission_order(self):
        # Host in an order where departure order differs from admission
        # order; crash eviction must follow admission order (member id).
        fleet = FleetState()
        fleet.place(None, _session("first", duration=30.0))
        fleet.place(0, _session("second", duration=5.0))
        fleet.place(0, _session("third", duration=15.0))
        assert [s.game for s in fleet.members(0)] == ["second", "third", "first"]
        evicted = fleet.crash(0)
        assert [s.game for s in evicted] == ["first", "second", "third"]
        assert fleet.n_open == 0
        # Stale heap entries for the crashed server are skipped silently.
        assert fleet.pop_departures(100.0) == 0

    def test_choice_indexes_current_pool(self):
        fleet = FleetState()
        fleet.place(None, _session("a", duration=1.0))
        fleet.place(None, _session("b", duration=50.0))
        fleet.pop_departures(2.0)
        # Index 0 now refers to server id 1 (the only open server).
        assert fleet.place(0, _session("c", arrival=2.0)) == 1


class TestStrictEngine:
    class _Raises:
        name = "boom"

        def select(self, signatures, session):
            raise RuntimeError("broken policy")

    class _OutOfRange:
        name = "liar"

        def select(self, signatures, session):
            return len(signatures) + 3

    def test_strict_propagates_policy_errors(self):
        engine = DecisionEngine(self._Raises(), strict=True)
        with pytest.raises(RuntimeError, match="broken policy"):
            engine.decide([], _session())

    def test_strict_raises_on_invalid_index(self):
        engine = DecisionEngine(self._OutOfRange(), strict=True)
        with pytest.raises(IndexError, match="liar"):
            engine.decide([()], _session())

    def test_non_strict_absorbs_both(self):
        for policy in (self._Raises(), self._OutOfRange()):
            engine = DecisionEngine(policy)
            decision = engine.decide([()], _session())
            assert decision.server is None
            assert decision.fallback

    def test_admit_applies_decision_to_fleet(self):
        engine = DecisionEngine(DedicatedPolicy())
        fleet = FleetState()
        a = engine.admit(fleet, _session("a"))
        b = engine.admit(fleet, _session("b"))
        assert (a.choice, b.choice) == (None, None)
        assert (a.server_id, b.server_id) == (0, 1)
        assert a.policy == "dedicated" and not a.fallback
        assert fleet.n_open == 2


class TestOfflineFrontend:
    def test_policy_object_and_callable_agree(self, minilab):
        sessions = generate_sessions(minilab.names[:4], 60, seed=11)
        as_object = simulate_sessions(
            minilab.catalog,
            sessions,
            CMFeasiblePolicy(minilab.predictor, 60.0),
            server=minilab.server,
        )
        as_callable = simulate_sessions(
            minilab.catalog,
            sessions,
            cm_feasible_policy(minilab.predictor, 60.0),
            server=minilab.server,
        )
        assert as_object == as_callable

    def test_broken_policy_fails_loudly(self, minilab):
        sessions = generate_sessions(minilab.names[:2], 5, seed=12)
        with pytest.raises(RuntimeError, match="broken policy"):
            simulate_sessions(
                minilab.catalog,
                sessions,
                TestStrictEngine._Raises(),
                server=minilab.server,
            )


def _strip_wall_clock(snapshot: dict) -> dict:
    """Drop the wall-clock histogram sections from a telemetry snapshot."""
    out = dict(snapshot)
    out.pop("histograms", None)
    if isinstance(out.get("labeled"), dict):
        labeled = dict(out["labeled"])
        labeled.pop("histograms", None)
        out["labeled"] = labeled
    return out


class TestSameSeedDeterminism:
    """Satellite: crash -> evict -> readmission is a pure function of the seed."""

    def _chaos_run(self, minilab):
        sessions = generate_sessions(minilab.names, 150, arrival_rate=4.0, seed=77)
        injector = FaultInjector(
            FaultConfig(error_rate=0.25, corrupt_rate=0.1, stale_rate=0.1, seed=77)
        )
        policy, fallback = build_policy(
            "cm-feasible",
            predictor=minilab.predictor,
            qos=60.0,
            cache=PredictionCache(512),
            injector=injector,
        )
        controller = AdmissionController(
            injector.wrap_policy(policy),
            fallback=fallback,
            telemetry=injector.telemetry,
            breaker=BreakerConfig(
                failure_threshold=0.3,
                window=10,
                min_requests=5,
                cooldown=10,
                probe_window=2,
            ),
        )
        broker = RequestBroker(controller, crash_rate=0.1, crash_seed=77)
        return broker.run(sessions)

    def test_telemetry_byte_identical_across_runs(self, minilab):
        first, second = self._chaos_run(minilab), self._chaos_run(minilab)
        assert first.telemetry["counters"].get("server_crashes", 0) > 0
        assert first.telemetry["counters"].get("readmissions", 0) > 0
        for a, b in ((first, second),):
            assert a.to_dict()["placements"] == b.to_dict()["placements"]
            assert a.to_dict()["readmissions"] == b.to_dict()["readmissions"]
            assert a.resilience == b.resilience
        blob_a = json.dumps(_strip_wall_clock(first.telemetry), sort_keys=True)
        blob_b = json.dumps(_strip_wall_clock(second.telemetry), sort_keys=True)
        assert blob_a == blob_b
