"""Tests for the circuit breaker driving the serving degraded modes.

The breaker is clocked in decisions, not wall time, so every scenario
here is exactly deterministic: trip on sustained failures, deny while
OPEN, probe after the cooldown, recover on enough successful probes, and
re-open instantly on a failed probe.
"""

import pytest

from repro.serving import BreakerConfig, BreakerState, CircuitBreaker


def _breaker(**overrides):
    defaults = dict(
        failure_threshold=0.5,
        window=4,
        min_requests=2,
        cooldown=3,
        probe_window=2,
    )
    defaults.update(overrides)
    return CircuitBreaker(BreakerConfig(**defaults), name="test")


class TestConfigValidation:
    def test_threshold_bounds(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            BreakerConfig(failure_threshold=0.0)
        with pytest.raises(ValueError, match="failure_threshold"):
            BreakerConfig(failure_threshold=1.5)

    def test_window_bounds(self):
        with pytest.raises(ValueError, match="window"):
            BreakerConfig(window=0)
        with pytest.raises(ValueError, match="min_requests"):
            BreakerConfig(window=4, min_requests=5)

    def test_cooldown_and_probe(self):
        with pytest.raises(ValueError, match="cooldown"):
            BreakerConfig(cooldown=0)
        with pytest.raises(ValueError, match="cooldown"):
            BreakerConfig(probe_window=0)

    def test_to_dict_round_trips_through_json(self):
        import json

        config = BreakerConfig()
        assert json.loads(json.dumps(config.to_dict())) == config.to_dict()


class TestTripAndDeny:
    def test_starts_closed_and_allows(self):
        breaker = _breaker()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()
        assert breaker.trips == 0

    def test_trips_on_sustained_failures(self):
        breaker = _breaker()
        for _ in range(2):
            assert breaker.allow()
            breaker.record(False)
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1
        assert breaker.transitions[-1]["reason"] == "failure threshold exceeded"

    def test_one_early_failure_cannot_trip(self):
        breaker = _breaker(min_requests=2)
        breaker.allow()
        breaker.record(False)  # 100% failure rate but only 1 sample
        assert breaker.state is BreakerState.CLOSED

    def test_successes_keep_it_closed(self):
        breaker = _breaker()
        for _ in range(20):
            assert breaker.allow()
            breaker.record(True)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.failure_rate == 0.0

    def test_open_denies_until_cooldown(self):
        breaker = _breaker(cooldown=3)
        for _ in range(2):
            breaker.allow()
            breaker.record(False)
        # Two denials, then the cooldown elapses and a probe flows.
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.allow()
        assert breaker.state is BreakerState.HALF_OPEN


class TestRecovery:
    def _trip(self, breaker):
        for _ in range(2):
            breaker.allow()
            breaker.record(False)
        assert breaker.state is BreakerState.OPEN
        while not breaker.allow():
            pass
        assert breaker.state is BreakerState.HALF_OPEN

    def test_probe_successes_close(self):
        breaker = _breaker(probe_window=2)
        self._trip(breaker)
        breaker.record(True)
        assert breaker.state is BreakerState.HALF_OPEN  # one probe is not enough
        assert breaker.allow()
        breaker.record(True)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.recoveries == 1
        # Recovery cleared the failure window: one new failure cannot trip.
        breaker.allow()
        breaker.record(False)
        assert breaker.state is BreakerState.CLOSED

    def test_failed_probe_reopens(self):
        breaker = _breaker()
        self._trip(breaker)
        breaker.record(False)
        assert breaker.state is BreakerState.OPEN
        assert breaker.recoveries == 0
        # The cooldown starts over after a failed probe.
        assert not breaker.allow()

    def test_transition_log_and_snapshot(self):
        breaker = _breaker()
        self._trip(breaker)
        breaker.record(True)
        breaker.allow()
        breaker.record(True)
        states = [t["to"] for t in breaker.transitions]
        assert states == ["open", "half_open", "closed"]
        snap = breaker.to_dict()
        assert snap["state"] == "closed"
        assert snap["trips"] == 1
        assert snap["recoveries"] == 1
        assert len(snap["transitions"]) == 3

    def test_on_transition_callback(self):
        seen = []
        breaker = CircuitBreaker(
            BreakerConfig(window=2, min_requests=1, failure_threshold=0.5),
            on_transition=seen.append,
        )
        breaker.allow()
        breaker.record(False)
        assert len(seen) == 1
        assert seen[0]["to"] == "open"
