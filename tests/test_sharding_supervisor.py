"""Chaos suite for shard supervision: ejection, failover, readmission.

The load-bearing claims, pinned as tests:

* **Conservation** — under any outage schedule (each shard killed in
  turn, random seeded schedules), every routed arrival is submitted to
  exactly one shard: ``sum(shard n_arrivals) == len(trace)`` and the
  coordinator's ``sessions_lost`` counter stays 0.
* **Determinism** — same seed, same outages, byte-identical telemetry
  and supervision report (modulo wall-clock histograms).
* **Pass-through** — a supervisor whose chaos schedule is inactive
  changes nothing: output is byte-identical to an unsupervised run.
* **Liveness** — the last healthy shard is never ejected, and degraded
  mode routes around the ring when the healthy floor is breached.
"""

import json

import pytest

from repro.games.resolution import Resolution
from repro.scheduling import generate_sessions
from repro.serving.faults import InjectionWindow, windowed_rate
from repro.sharding import (
    OutageWindow,
    RebalanceConfig,
    Rebalancer,
    ShardChaos,
    ShardChaosConfig,
    ShardConfig,
    ShardedBroker,
    ShardSupervisor,
    SupervisorConfig,
    build_shard_brokers,
    parse_outage_window,
)
from repro.sharding.supervisor import RECOVERY_BUCKETS


def _strip_wall_clock(snapshot: dict) -> dict:
    """Everything except latency histograms must be run-to-run identical."""
    snapshot = json.loads(json.dumps(snapshot))
    snapshot.pop("histograms", None)
    if "labeled" in snapshot:
        snapshot["labeled"].pop("histograms", None)
    return snapshot


@pytest.fixture(scope="module")
def predictor(minilab):
    return minilab.predictor


@pytest.fixture(scope="module")
def trace(predictor):
    return generate_sessions(
        predictor.db.names(),
        240,
        resolutions=[Resolution(1920, 1080), Resolution(1280, 720)],
        seed=5,
    )


def _run(
    predictor,
    trace,
    *,
    chaos: ShardChaosConfig | None = None,
    supervision: SupervisorConfig | None = None,
    n_shards: int = 4,
    chunk_size: int = 32,
    rebalancer: Rebalancer | None = None,
):
    brokers = build_shard_brokers(predictor, n_shards, ShardConfig(seed=3))
    supervisor = (
        ShardSupervisor(ShardChaos(chaos, n_shards), supervision)
        if chaos is not None
        else None
    )
    broker = ShardedBroker(
        brokers,
        supervisor=supervisor,
        rebalancer=rebalancer,
        parallel=False,
        chunk_size=chunk_size,
    )
    return broker.run(trace)


class TestOutageWindows:
    def test_parse_full_form(self):
        window = parse_outage_window("10:5:0.5@2")
        assert window == InjectionWindow(start=10.0, duration=5.0, rate=0.5, target=2)

    def test_parse_without_target(self):
        assert parse_outage_window("0:20:1").target is None

    def test_alias_is_injection_window(self):
        assert OutageWindow is InjectionWindow

    @pytest.mark.parametrize(
        "text", ["10:5", "10:5:0.5:7", "a:b:c", "1:2:0.5@x", ""]
    )
    def test_malformed_rejected_with_offending_text(self, text):
        with pytest.raises(ValueError, match="outage window"):
            parse_outage_window(text)

    def test_out_of_range_values_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            parse_outage_window("0:5:1.5")
        with pytest.raises(ValueError, match="duration"):
            parse_outage_window("0:0:0.5")

    def test_windowed_rate_sums_and_caps(self):
        windows = (
            InjectionWindow(start=0, duration=10, rate=0.6),
            InjectionWindow(start=5, duration=10, rate=0.6),
            InjectionWindow(start=0, duration=10, rate=0.6, target=2),
        )
        assert windowed_rate(0.0, windows, now=2.0) == 0.6
        assert windowed_rate(0.0, windows, now=7.0) == 1.0  # capped
        assert windowed_rate(0.0, windows, now=2.0, target=2) == pytest.approx(1.0)
        assert windowed_rate(0.1, windows, now=20.0) == pytest.approx(0.1)


class TestShardChaosConfig:
    @pytest.mark.parametrize("field", ["outage_rate", "flake_rate"])
    def test_rates_validated(self, field):
        with pytest.raises(ValueError, match=field):
            ShardChaosConfig(**{field: 1.5})

    def test_outage_chunks_validated(self):
        with pytest.raises(ValueError, match="outage_chunks"):
            ShardChaosConfig(outage_chunks=0)

    def test_active_property(self):
        assert not ShardChaosConfig().active
        assert ShardChaosConfig(outage_rate=0.1).active
        assert ShardChaosConfig(flake_rate=0.1).active
        assert ShardChaosConfig(
            windows=(InjectionWindow(start=0, duration=1, rate=0.5),)
        ).active


class TestShardChaos:
    def test_shard_count_validated(self):
        with pytest.raises(ValueError, match="n_shards"):
            ShardChaos(ShardChaosConfig(), 0)

    def test_same_seed_same_schedule(self):
        config = ShardChaosConfig(outage_rate=0.4, flake_rate=0.2, seed=11)
        a, b = ShardChaos(config, 3), ShardChaos(config, 3)
        seen = []
        for barrier in range(20):
            a.begin_barrier(float(barrier))
            b.begin_barrier(float(barrier))
            for shard in range(3):
                pa = [a.probe(shard) for _ in range(2)]
                pb = [b.probe(shard) for _ in range(2)]
                assert pa == pb
                seen.extend(pa)
        assert False in seen  # the schedule actually fired something

    def test_inactive_config_never_fails_a_probe(self):
        chaos = ShardChaos(ShardChaosConfig(), 2)
        for barrier in range(10):
            chaos.begin_barrier(float(barrier))
            assert chaos.probe(0) and chaos.probe(1)

    def test_outage_lasts_outage_chunks_barriers(self):
        config = ShardChaosConfig(
            outage_chunks=3,
            windows=(InjectionWindow(start=0, duration=1, rate=1.0),),
        )
        chaos = ShardChaos(config, 1)
        chaos.begin_barrier(0.0)
        assert not chaos.probe(0)  # outage fires on the first draw
        down = [chaos.is_down(0)]
        for barrier in range(1, 6):
            chaos.begin_barrier(float(barrier) + 1.0)  # window closed
            chaos.probe(0)
            down.append(chaos.is_down(0))
        assert down == [True, True, True, False, False, False]

    def test_flake_fails_exactly_one_probe(self):
        chaos = ShardChaos(ShardChaosConfig(flake_rate=1.0), 1)
        chaos.begin_barrier(0.0)
        assert not chaos.probe(0)
        assert chaos.probe(0)  # the retry sees through it

    def test_targeted_window_spares_other_shards(self):
        config = ShardChaosConfig(
            windows=(InjectionWindow(start=0, duration=100, rate=1.0, target=1),)
        )
        chaos = ShardChaos(config, 3)
        chaos.begin_barrier(5.0)
        assert chaos.probe(0)
        assert not chaos.probe(1)
        assert chaos.probe(2)


class TestSupervisorConfig:
    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"min_healthy": 0}, "min_healthy"),
            ({"max_retries": -1}, "max_retries"),
            ({"backoff_base_s": -0.1}, "backoff_base_s"),
            ({"cooldown_chunks": 0}, "cooldown_chunks"),
            ({"probe_window": 0}, "probe_window"),
            ({"drain_deadline_s": 0.0}, "drain_deadline_s"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            SupervisorConfig(**kwargs)

    def test_backoff_is_deterministic_exponential(self):
        config = SupervisorConfig(backoff_base_s=0.5, max_retries=3)
        assert [config.backoff_base_s * 2**i for i in range(3)] == [0.5, 1.0, 2.0]


class TestPassThrough:
    def test_inactive_supervisor_is_byte_identical(self, predictor, trace):
        plain = _run(predictor, trace)
        supervised = _run(
            predictor, trace, chaos=ShardChaosConfig(), supervision=SupervisorConfig()
        )
        assert _strip_wall_clock(plain.telemetry) == _strip_wall_clock(
            supervised.telemetry
        )
        assert _strip_wall_clock(plain.coordinator) == _strip_wall_clock(
            supervised.coordinator
        )
        assert supervised.supervision == {}
        assert "supervision" not in supervised.to_dict()
        assert "sessions_lost" not in supervised.coordinator["counters"]

    def test_shard_count_mismatch_rejected(self, predictor):
        brokers = build_shard_brokers(predictor, 2, ShardConfig(seed=3))
        supervisor = ShardSupervisor(
            ShardChaos(ShardChaosConfig(outage_rate=0.5), 3)
        )
        with pytest.raises(ValueError, match="covers 3 shards"):
            ShardedBroker(brokers, supervisor=supervisor, parallel=False)


class TestKillEachShardInTurn:
    @pytest.mark.parametrize("victim", [0, 1, 2, 3])
    def test_conservation_and_full_cycle(self, predictor, trace, victim):
        chaos = ShardChaosConfig(
            outage_chunks=2,
            windows=(
                InjectionWindow(start=0, duration=30, rate=1.0, target=victim),
            ),
        )
        report = _run(
            predictor, trace, chaos=chaos, supervision=SupervisorConfig()
        )
        counters = report.coordinator["counters"]
        assert counters["sessions_lost"] == 0
        assert sum(r.n_arrivals for r in report.shard_reports) == len(trace)
        assert counters["ring_ejections"] >= 1
        assert counters["ring_readmissions"] >= 1
        assert counters["shard_outages"] >= 1
        assert report.supervision["health"][str(victim)] == "healthy"
        # No shard ever saw a policy error: failover re-enters admission.
        assert report.telemetry["counters"].get("policy_errors", 0) == 0

    def test_failed_over_sessions_counted_once_each(self, predictor, trace):
        chaos = ShardChaosConfig(
            outage_chunks=2,
            windows=(InjectionWindow(start=0, duration=30, rate=1.0, target=0),),
        )
        report = _run(predictor, trace, chaos=chaos)
        counters = report.coordinator["counters"]
        migrated_in = report.telemetry["counters"].get("sessions_migrated_in", 0)
        assert counters["sessions_failed_over"] <= migrated_in


class TestRandomOutageSchedules:
    def test_conservation_under_random_outages(self, predictor, trace):
        chaos = ShardChaosConfig(outage_rate=0.3, outage_chunks=2, seed=7)
        report = _run(
            predictor,
            trace,
            chaos=chaos,
            supervision=SupervisorConfig(min_healthy=2),
        )
        counters = report.coordinator["counters"]
        assert counters["sessions_lost"] == 0
        assert sum(r.n_arrivals for r in report.shard_reports) == len(trace)
        assert counters["ring_ejections"] >= 1

    def test_same_seed_byte_identical(self, predictor, trace):
        chaos = ShardChaosConfig(outage_rate=0.3, outage_chunks=2, seed=7)
        a = _run(predictor, trace, chaos=chaos)
        b = _run(predictor, trace, chaos=chaos)
        assert _strip_wall_clock(a.coordinator) == _strip_wall_clock(b.coordinator)
        assert _strip_wall_clock(a.telemetry) == _strip_wall_clock(b.telemetry)
        assert a.supervision == b.supervision

    def test_different_seed_different_schedule(self, predictor, trace):
        outages = set()
        for seed in (7, 8, 9):
            chaos = ShardChaosConfig(outage_rate=0.3, outage_chunks=2, seed=seed)
            report = _run(predictor, trace, chaos=chaos)
            outages.add(report.coordinator["counters"].get("shard_outages", 0))
        assert len(outages) > 1

    def test_flakes_absorbed_by_retries(self, predictor, trace):
        chaos = ShardChaosConfig(flake_rate=0.5, seed=7)
        report = _run(predictor, trace, chaos=chaos)
        counters = report.coordinator["counters"]
        # Flakes fail one probe; the retry loop absorbs every one of
        # them, so the ring is never touched.
        assert counters.get("shard_flakes_recovered", 0) >= 1
        assert counters.get("ring_ejections", 0) == 0
        assert counters["sessions_lost"] == 0


class TestDegradedMode:
    def test_floor_breach_routes_to_least_loaded(self, predictor, trace):
        chaos = ShardChaosConfig(
            outage_chunks=2,
            windows=(InjectionWindow(start=0, duration=30, rate=1.0, target=0),),
        )
        report = _run(
            predictor,
            trace,
            chaos=chaos,
            supervision=SupervisorConfig(min_healthy=4),
        )
        counters = report.coordinator["counters"]
        assert counters["degraded_transitions"] >= 2  # entered and left
        assert counters["shard_fallbacks"] >= 1
        assert counters["sessions_lost"] == 0
        events = [
            e for e in report.coordinator["events"] if e["event"] == "degraded_mode"
        ]
        assert events[0]["active"] is True

    def test_healthy_fleet_never_degrades(self, predictor, trace):
        chaos = ShardChaosConfig(flake_rate=0.3, seed=5)
        report = _run(
            predictor, trace, chaos=chaos, supervision=SupervisorConfig(min_healthy=4)
        )
        counters = report.coordinator["counters"]
        assert counters.get("degraded_transitions", 0) == 0
        assert counters.get("shard_fallbacks", 0) == 0


class TestLastShardSuppression:
    def test_sole_shard_survives_total_outage(self, predictor, trace):
        chaos = ShardChaosConfig(
            outage_chunks=2,
            windows=(InjectionWindow(start=0, duration=1000, rate=1.0),),
        )
        report = _run(predictor, trace, chaos=chaos, n_shards=1)
        counters = report.coordinator["counters"]
        assert counters["ejections_suppressed"] >= 1
        assert counters.get("ring_ejections", 0) == 0
        assert counters["sessions_lost"] == 0
        assert report.shard_reports[0].n_arrivals == len(trace)

    def test_all_shards_down_keeps_one_serving(self, predictor, trace):
        chaos = ShardChaosConfig(
            outage_chunks=2,
            windows=(InjectionWindow(start=0, duration=1000, rate=1.0),),
        )
        report = _run(predictor, trace, chaos=chaos, n_shards=3)
        counters = report.coordinator["counters"]
        assert counters["ejections_suppressed"] >= 1
        assert counters["sessions_lost"] == 0
        assert sum(r.n_arrivals for r in report.shard_reports) == len(trace)


class TestSupervisionReport:
    @pytest.fixture(scope="class")
    def killed_report(self, predictor, trace):
        chaos = ShardChaosConfig(
            outage_chunks=2,
            windows=(InjectionWindow(start=0, duration=30, rate=1.0, target=1),),
        )
        return _run(predictor, trace, chaos=chaos)

    def test_breaker_timeline_shows_full_cycle(self, killed_report):
        transitions = killed_report.supervision["breakers"]["1"]["transitions"]
        states = [(t["from"], t["to"]) for t in transitions]
        assert ("closed", "open") in states
        assert ("open", "half_open") in states
        assert ("half_open", "closed") in states

    def test_supervision_section_in_report_dict(self, killed_report):
        payload = killed_report.to_dict()
        assert payload["supervision"]["config"]["min_healthy"] == 1
        assert payload["supervision"]["chaos"]["outage_chunks"] == 2
        assert set(payload["supervision"]["health"]) == {"0", "1", "2", "3"}

    def test_recovery_histogram_counts_chunks(self, killed_report):
        counters = killed_report.coordinator["counters"]
        hist = killed_report.coordinator["histograms"]["shard_recovery_chunks"]
        assert hist["count"] == counters["ring_readmissions"]
        edges = [b["le_s"] for b in hist["buckets"] if b["le_s"] is not None]
        assert edges == list(RECOVERY_BUCKETS)
        assert hist["total_s"] >= counters["ring_readmissions"]

    def test_health_labels_on_merged_telemetry(self, killed_report):
        entries = killed_report.telemetry["labeled"]["counters"]["admissions"]
        labels = {e["labels"]["shard"]: e["labels"]["health"] for e in entries}
        assert set(labels) == {"0", "1", "2", "3"}
        assert set(labels.values()) <= {"healthy", "ejected", "probing"}

    def test_supervise_and_failover_spans_traced(self, predictor, trace):
        from repro.obs import Tracer

        tracer = Tracer(enabled=True)
        brokers = build_shard_brokers(predictor, 4, ShardConfig(seed=3))
        chaos = ShardChaosConfig(
            outage_chunks=2,
            windows=(InjectionWindow(start=0, duration=30, rate=1.0, target=1),),
        )
        supervisor = ShardSupervisor(ShardChaos(chaos, 4))
        broker = ShardedBroker(
            brokers,
            supervisor=supervisor,
            tracer=tracer,
            parallel=False,
            chunk_size=32,
        )
        broker.run(trace)
        names = {span.name for span in tracer.spans}
        assert "supervise" in names
        assert "failover" in names
        failover = next(s for s in tracer.spans if s.name == "failover")
        assert failover.attributes["shard"] == 1
        assert "destinations" in failover.attributes


class TestRebalancerHealthySubset:
    def test_sessions_never_move_to_excluded_shards(self, predictor, trace):
        brokers = build_shard_brokers(predictor, 3, ShardConfig(seed=3))
        for broker in brokers:
            broker.start()
        for i, session in enumerate(trace[:40]):
            brokers[0].submit(session, i)
        rebalancer = Rebalancer(RebalanceConfig(interval=1, hot_factor=1.0))
        moved = rebalancer.rebalance(
            brokers, now=trace[39].arrival, index=39, healthy=[0, 2]
        )
        assert moved > 0
        assert brokers[1].fleet.n_live == 0
        assert brokers[2].fleet.n_live > 0

    def test_none_matches_all_shards(self, predictor, trace):
        def build_and_load():
            brokers = build_shard_brokers(predictor, 3, ShardConfig(seed=3))
            for broker in brokers:
                broker.start()
            for i, session in enumerate(trace[:40]):
                brokers[0].submit(session, i)
            return brokers

        rebalancer = Rebalancer(RebalanceConfig(interval=1, hot_factor=1.0))
        a, b = build_and_load(), build_and_load()
        moved_none = rebalancer.rebalance(a, now=trace[39].arrival, index=39)
        moved_all = rebalancer.rebalance(
            b, now=trace[39].arrival, index=39, healthy=[0, 1, 2]
        )
        assert moved_none == moved_all
        assert [x.fleet.n_live for x in a] == [x.fleet.n_live for x in b]


class TestEvictReason:
    def test_failover_reason_stamped_on_event(self, predictor, trace):
        brokers = build_shard_brokers(predictor, 1, ShardConfig(seed=3))
        broker = brokers[0]
        broker.start()
        broker.submit(trace[0], 0)
        (server_id,) = broker.fleet.server_ids()
        broker.evict_for_migration(server_id, now=1.0, index=0, reason="failover")
        events = [
            e
            for e in broker.controller.telemetry.events
            if e["event"] == "migration_out"
        ]
        assert events[-1]["reason"] == "failover"

    def test_default_reason_leaves_event_unchanged(self, predictor, trace):
        brokers = build_shard_brokers(predictor, 1, ShardConfig(seed=3))
        broker = brokers[0]
        broker.start()
        broker.submit(trace[0], 0)
        (server_id,) = broker.fleet.server_ids()
        broker.evict_for_migration(server_id, now=1.0, index=0)
        events = [
            e
            for e in broker.controller.telemetry.events
            if e["event"] == "migration_out"
        ]
        assert "reason" not in events[-1]
