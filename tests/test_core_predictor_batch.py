"""Tests for the predictor's batched API and up-front profile validation."""

import numpy as np
import pytest

from repro.core import InterferencePredictor, MissingProfileError
from repro.core.training import ColocationSpec, generate_colocations
from repro.games.resolution import REFERENCE_RESOLUTION


class CountingModel:
    """Wraps a CM/RM, counting ``predict_from_features`` invocations."""

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0

    def predict_from_features(self, X):
        self.calls += 1
        return self.inner.predict_from_features(X)


@pytest.fixture()
def counting_predictor(minilab):
    classifier = CountingModel(minilab.cm_model)
    regressor = CountingModel(minilab.rm_model)
    return (
        InterferencePredictor(minilab.db, classifier=classifier, regressor=regressor),
        classifier,
        regressor,
    )


def _specs(minilab, n_pairs=6, n_triples=3, seed=13):
    specs = generate_colocations(
        minilab.names, sizes={2: n_pairs, 3: n_triples}, seed=seed
    )
    # Include a solo spec: the batch path must handle size-1 colocations.
    specs.append(ColocationSpec(((minilab.names[0], REFERENCE_RESOLUTION),)))
    return specs


class TestBatchParity:
    """Batched predictions equal single calls, with fewer model invocations."""

    def test_predict_batch_matches_single_calls(self, minilab, counting_predictor):
        predictor, classifier, regressor = counting_predictor
        specs = _specs(minilab)
        batch = predictor.predict_batch(specs, qos=60.0)
        batch_calls = (classifier.calls, regressor.calls)
        for spec, result in zip(specs, batch):
            assert np.array_equal(result["fps"], predictor.predict_fps(spec))
            assert np.array_equal(
                result["degradations"], predictor.predict_degradations(spec)
            )
            assert np.array_equal(
                result["feasible"], predictor.predict_feasible(spec, 60.0)
            )
        # One invocation per model for the whole batch; each single-spec
        # call with >= 2 entries costs one more.
        assert batch_calls == (1, 1)
        assert classifier.calls > 1 + len(specs) // 2
        assert regressor.calls > 1 + len(specs) // 2

    def test_feasible_batch_matches(self, minilab, counting_predictor):
        predictor, classifier, _ = counting_predictor
        specs = _specs(minilab, seed=14)
        batched = predictor.predict_feasible_batch(specs, 60.0)
        assert classifier.calls == 1
        for spec, verdicts in zip(specs, batched):
            assert np.array_equal(verdicts, predictor.predict_feasible(spec, 60.0))

    def test_colocations_feasible_matches(self, minilab):
        specs = _specs(minilab, seed=15)
        whole = minilab.predictor.colocations_feasible(specs, 60.0)
        singles = [
            minilab.predictor.colocation_feasible(spec, 60.0) for spec in specs
        ]
        assert list(whole) == singles

    def test_degradations_batch_solo_is_ones(self, minilab):
        solo = ColocationSpec(((minilab.names[0], REFERENCE_RESOLUTION),))
        (out,) = minilab.predictor.predict_degradations_batch([solo])
        assert np.array_equal(out, np.ones(1))

    def test_predict_batch_without_qos_skips_cm(self, minilab, counting_predictor):
        predictor, classifier, _ = counting_predictor
        results = predictor.predict_batch(_specs(minilab, seed=16))
        assert classifier.calls == 0
        assert all("feasible" not in r for r in results)
        assert all("fps" in r for r in results)

    def test_unfitted_models_raise(self, minilab):
        cm_only = InterferencePredictor(minilab.db, classifier=minilab.cm_model)
        with pytest.raises(RuntimeError, match="regression"):
            cm_only.predict_degradations_batch(_specs(minilab))
        rm_only = InterferencePredictor(minilab.db, regressor=minilab.rm_model)
        with pytest.raises(RuntimeError, match="classification"):
            rm_only.predict_feasible_batch(_specs(minilab), 60.0)


class TestMissingProfileValidation:
    """Unknown games fail up front with one clear error naming them."""

    def test_single_call_raises_named_error(self, minilab):
        spec = ColocationSpec(
            (
                ("NoSuchGame", REFERENCE_RESOLUTION),
                (minilab.names[0], REFERENCE_RESOLUTION),
            )
        )
        with pytest.raises(MissingProfileError, match="NoSuchGame"):
            minilab.predictor.predict_fps(spec)
        with pytest.raises(MissingProfileError, match="NoSuchGame"):
            minilab.predictor.predict_feasible(spec, 60.0)

    def test_error_is_a_keyerror(self, minilab):
        spec = ColocationSpec((("NoSuchGame", REFERENCE_RESOLUTION),))
        with pytest.raises(KeyError):
            minilab.predictor.predict_fps(spec)

    def test_all_missing_games_named_once(self, minilab):
        spec = ColocationSpec(
            (
                ("GhostA", REFERENCE_RESOLUTION),
                ("GhostB", REFERENCE_RESOLUTION),
                ("GhostA", REFERENCE_RESOLUTION),
            )
        )
        with pytest.raises(MissingProfileError) as excinfo:
            minilab.predictor.predict_fps(spec)
        assert excinfo.value.missing == ("GhostA", "GhostB")
        assert "GhostA" in str(excinfo.value)
        assert "GhostB" in str(excinfo.value)

    def test_batch_raises_too(self, minilab):
        spec = ColocationSpec(
            (
                ("NoSuchGame", REFERENCE_RESOLUTION),
                (minilab.names[0], REFERENCE_RESOLUTION),
            )
        )
        with pytest.raises(MissingProfileError, match="NoSuchGame"):
            minilab.predictor.predict_feasible_batch([spec], 60.0)

    def test_validate_spec_passes_on_known_games(self, minilab):
        spec = ColocationSpec(((minilab.names[0], REFERENCE_RESOLUTION),))
        minilab.predictor.validate_spec(spec)
