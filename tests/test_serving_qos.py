"""Integration tests for the QoS ledger riding the serving stack.

The load-bearing properties:

* **Conservation** — every session the fleet opens is closed exactly
  once, through normal departures, crash evictions, migrations, and
  end-of-trace finalization alike.
* **Determinism** — the qos section is a pure function of the seed:
  byte-identical across same-seed runs, single-broker and sharded.
* **Ground-truth parity** — a ledger riding the offline simulator with
  the same server/config/target reproduces its violation-minutes
  accounting, because both score the same memoized measurements.
"""

import json

import pytest

from repro.games.resolution import Resolution
from repro.obs import QoSLedger, Tracer, build_qos_section
from repro.scheduling import generate_sessions
from repro.scheduling.dynamic import simulate_sessions
from repro.serving import (
    AdmissionController,
    CMFeasiblePolicy,
    RequestBroker,
    build_policy,
)
from repro.sharding import ShardConfig, ShardedBroker, build_shard_brokers

R1080 = Resolution(1920, 1080)
SLO_FPS = 30.0


@pytest.fixture(scope="module")
def trace(minilab):
    return generate_sessions(minilab.names, 120, arrival_rate=4.0, seed=11)


def make_ledger(minilab, **kwargs):
    kwargs.setdefault("slo_fps", SLO_FPS)
    return QoSLedger(minilab.catalog, minilab.predictor, **kwargs)


def run_broker(minilab, sessions, *, ledger, crash_rate=0.0):
    policy, fallback = build_policy("cm-feasible", predictor=minilab.predictor)
    controller = AdmissionController(policy, fallback=fallback)
    broker = RequestBroker(
        controller, crash_rate=crash_rate, crash_seed=3, ledger=ledger
    )
    return broker.run(sessions)


class TestBrokerLedger:
    def test_conservation_over_full_trace(self, minilab, trace):
        ledger = make_ledger(minilab)
        report = run_broker(minilab, trace, ledger=ledger)
        qos = report.qos
        assert qos, "qos section missing from report"
        sessions = qos["sessions"]
        assert sessions["opened"] == len(trace)
        assert sessions["closed"] == len(trace)
        assert sessions["conservation_errors"] == 0
        assert sessions["close_reasons"] == {"departed": len(trace)}
        assert qos["calibration"]["samples"] == len(trace)
        assert qos["slo"]["target_fps"] == SLO_FPS
        assert qos["per_game"] and qos["per_genre"]

    def test_report_payload_carries_qos_only_when_enabled(self, minilab, trace):
        ledger = make_ledger(minilab)
        with_ledger = run_broker(minilab, trace[:30], ledger=ledger)
        without = run_broker(minilab, trace[:30], ledger=None)
        assert "qos" in with_ledger.to_dict()
        assert "qos" not in without.to_dict()

    def test_same_seed_runs_are_byte_identical(self, minilab, trace):
        first = run_broker(minilab, trace, ledger=make_ledger(minilab))
        second = run_broker(minilab, trace, ledger=make_ledger(minilab))
        assert json.dumps(first.qos, sort_keys=True) == json.dumps(
            second.qos, sort_keys=True
        )

    def test_crash_chaos_conserves_sessions(self, minilab, trace):
        ledger = make_ledger(minilab)
        report = run_broker(minilab, trace, ledger=ledger, crash_rate=0.2)
        sessions = report.qos["sessions"]
        assert sessions["conservation_errors"] == 0
        reasons = sessions["close_reasons"]
        assert reasons.get("evicted", 0) > 0, "chaos run produced no evictions"
        # Evicted sessions are re-admitted and closed again later, so
        # opened (and closed) exceed the trace length — by the same amount.
        assert sessions["opened"] == sessions["closed"] > len(trace)

    def test_ledger_reuse_resets_between_runs(self, minilab, trace):
        ledger = make_ledger(minilab)
        run_broker(minilab, trace[:20], ledger=ledger)
        report = run_broker(minilab, trace[:20], ledger=ledger)
        assert report.qos["sessions"]["opened"] == 20

    def test_qos_spans_emitted_when_tracing(self, minilab, trace):
        policy, fallback = build_policy("cm-feasible", predictor=minilab.predictor)
        controller = AdmissionController(policy, fallback=fallback)
        tracer = Tracer(enabled=True)
        broker = RequestBroker(
            controller, tracer=tracer, ledger=make_ledger(minilab)
        )
        broker.run(trace[:20])
        spans = [s for s in tracer.spans if s.name == "qos"]
        assert spans, "no qos spans recorded"
        ops = {s.attributes["op"] for s in spans}
        assert "place" in ops
        assert all("server_id" in s.attributes for s in spans)


class TestOfflineCrossCheck:
    def test_ledger_reproduces_simulator_violation_minutes(self, minilab):
        sessions = generate_sessions(minilab.names, 60, arrival_rate=4.0, seed=9)
        policy = CMFeasiblePolicy(minilab.predictor, 60.0)
        ledger = make_ledger(minilab)
        metrics = simulate_sessions(
            minilab.catalog, sessions, policy, qos=SLO_FPS, ledger=ledger
        )
        slo = ledger.section()["slo"]
        assert slo["session_minutes"] == pytest.approx(metrics.session_minutes)
        assert slo["violation_minutes"] == pytest.approx(
            metrics.violation_minutes, rel=1e-9
        )
        assert ledger.section()["sessions"]["conservation_errors"] == 0


class TestShardedLedger:
    def test_requires_catalog(self, minilab):
        with pytest.raises(ValueError, match="catalog"):
            build_shard_brokers(
                minilab.predictor, 2, ShardConfig(slo_fps=SLO_FPS)
            )

    def test_merged_qos_with_per_shard_breakdown(self, minilab, trace):
        config = ShardConfig(slo_fps=SLO_FPS, seed=7)
        brokers = build_shard_brokers(
            minilab.predictor, 3, config, catalog=minilab.catalog
        )
        report = ShardedBroker(brokers).run(trace)
        qos = report.qos
        assert qos["sessions"]["opened"] == len(trace)
        assert qos["sessions"]["conservation_errors"] == 0
        per_shard = qos["per_shard"]
        assert per_shard, "per-shard breakdown missing"
        assert sum(g["opened"] for g in per_shard.values()) == len(trace)
        assert all(
            g["opened"] == g["closed"] for g in per_shard.values()
        ), "per-shard conservation broken"
        assert "qos" in report.to_dict()

    def test_sharded_run_is_deterministic(self, minilab, trace):
        def run():
            config = ShardConfig(slo_fps=SLO_FPS, seed=7)
            brokers = build_shard_brokers(
                minilab.predictor, 2, config, catalog=minilab.catalog
            )
            return ShardedBroker(brokers).run(trace).qos

        assert json.dumps(run(), sort_keys=True) == json.dumps(
            run(), sort_keys=True
        )

    def test_migrations_conserve_sessions(self, minilab):
        from repro.sharding import RebalanceConfig, Rebalancer

        sessions = generate_sessions(
            minilab.names, 200, arrival_rate=8.0, seed=13
        )
        config = ShardConfig(slo_fps=SLO_FPS, seed=7)
        brokers = build_shard_brokers(
            minilab.predictor, 3, config, catalog=minilab.catalog
        )
        rebalancer = Rebalancer(RebalanceConfig(interval=32, hot_factor=1.1))
        report = ShardedBroker(brokers, rebalancer=rebalancer).run(sessions)
        qos = report.qos
        assert qos["sessions"]["conservation_errors"] == 0
        moved = report.telemetry["counters"].get("rebalance_sessions_moved", 0)
        if moved:
            assert qos["sessions"]["close_reasons"].get("migrated", 0) == moved

    def test_shard_chaos_conserves_sessions(self, minilab):
        from repro.sharding import (
            ShardChaos,
            ShardChaosConfig,
            ShardSupervisor,
            SupervisorConfig,
        )

        sessions = generate_sessions(
            minilab.names, 200, arrival_rate=8.0, seed=17
        )
        config = ShardConfig(slo_fps=SLO_FPS, seed=7)
        brokers = build_shard_brokers(
            minilab.predictor, 3, config, catalog=minilab.catalog
        )
        chaos = ShardChaos(ShardChaosConfig(outage_rate=0.05, seed=17), 3)
        supervisor = ShardSupervisor(chaos, SupervisorConfig(min_healthy=1))
        report = ShardedBroker(
            brokers, supervisor=supervisor, chunk_size=32
        ).run(sessions)
        qos = report.qos
        assert qos["sessions"]["conservation_errors"] == 0
        assert qos["sessions"]["opened"] == qos["sessions"]["closed"]

    def test_merged_section_equals_rebuild_from_snapshot(self, minilab, trace):
        config = ShardConfig(slo_fps=SLO_FPS, seed=7)
        brokers = build_shard_brokers(
            minilab.predictor, 2, config, catalog=minilab.catalog
        )
        report = ShardedBroker(brokers).run(trace)
        rebuilt = build_qos_section(
            report.telemetry, slo_fps=SLO_FPS, budget_fraction=0.05
        )
        assert rebuilt == report.qos
