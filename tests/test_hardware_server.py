"""Tests for server specifications."""

import pytest

from repro.hardware.resources import Resource, ResourceVector
from repro.hardware.server import DEFAULT_SERVER, ServerSpec, server_catalog


class TestServerSpec:
    def test_default_is_reference(self):
        assert DEFAULT_SERVER.cpu_scale == 1.0
        assert DEFAULT_SERVER.gpu_scale == 1.0
        assert DEFAULT_SERVER.cpu_mem_gb == 8.0
        assert DEFAULT_SERVER.gpu_mem_gb == 6.0

    @pytest.mark.parametrize(
        "field", ["cpu_scale", "gpu_scale", "link_scale", "cpu_mem_gb", "gpu_mem_gb"]
    )
    def test_rejects_non_positive(self, field):
        with pytest.raises(ValueError, match=field):
            ServerSpec(**{field: 0.0})

    def test_domain_scale(self):
        spec = ServerSpec(cpu_scale=2.0, gpu_scale=3.0, link_scale=1.5)
        assert spec.domain_scale(Resource.CPU_CE) == 2.0
        assert spec.domain_scale(Resource.LLC) == 2.0
        assert spec.domain_scale(Resource.GPU_BW) == 3.0
        assert spec.domain_scale(Resource.PCIE_BW) == 1.5

    def test_normalize_utilization(self):
        spec = ServerSpec(gpu_scale=2.0)
        util = ResourceVector({Resource.GPU_CE: 0.8, Resource.CPU_CE: 0.5})
        scaled = spec.normalize_utilization(util)
        assert scaled[Resource.GPU_CE] == pytest.approx(0.4)
        assert scaled[Resource.CPU_CE] == pytest.approx(0.5)

    def test_dict_round_trip(self):
        spec = ServerSpec(name="x", cpu_scale=1.2)
        assert ServerSpec.from_dict(spec.to_dict()) == spec


class TestServerCatalog:
    def test_contains_reference(self):
        catalog = server_catalog()
        assert DEFAULT_SERVER.name in catalog

    def test_three_tiers(self):
        catalog = server_catalog()
        assert len(catalog) == 3
        scales = sorted(s.gpu_scale for s in catalog.values())
        assert scales[0] < 1.0 < scales[-1]
