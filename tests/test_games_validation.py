"""Tests for catalog observation validation."""

import pytest

from repro.games import build_catalog, validate_catalog
from repro.games.validation import ObservationReport


class TestValidateCatalog:
    @pytest.fixture(scope="class")
    def reports(self, catalog):
        return validate_catalog(catalog)

    def test_default_catalog_passes_everything(self, reports):
        failing = [r for r in reports if not r.passed]
        assert not failing, [f"{r.observation}: {r.detail}" for r in failing]

    def test_all_observations_covered(self, reports):
        ids = {r.observation for r in reports}
        for obs in ("Obs 1", "Obs 2", "Obs 3", "Obs 4", "Obs 6", "Obs 7", "Obs 8"):
            assert obs in ids

    def test_reports_carry_details(self, reports):
        for report in reports:
            assert isinstance(report, ObservationReport)
            assert report.description
            assert report.detail

    def test_other_seed_also_passes(self):
        # The observations are properties of the generator, not one seed.
        reports = validate_catalog(build_catalog(seed=12345))
        assert all(r.passed for r in reports)
