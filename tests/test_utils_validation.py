"""Tests for the validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_positive,
    check_probability_vector,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(1.5, "x") == 1.5

    @pytest.mark.parametrize("value", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects(self, value):
        with pytest.raises(ValueError, match="x"):
            check_positive(value, "x")


class TestCheckFraction:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_fraction(value, "f") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, float("nan")])
    def test_rejects(self, value):
        with pytest.raises(ValueError, match="f"):
            check_fraction(value, "f")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(1.0, 1.0, 2.0, "v") == 1.0
        assert check_in_range(2.0, 1.0, 2.0, "v") == 2.0

    def test_exclusive_bounds_reject_endpoints(self):
        with pytest.raises(ValueError):
            check_in_range(1.0, 1.0, 2.0, "v", inclusive=False)

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range(2.5, 1.0, 2.0, "v")


class TestCheckProbabilityVector:
    def test_accepts_valid(self):
        out = check_probability_vector([0.25, 0.75], "p")
        assert np.allclose(out, [0.25, 0.75])

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError, match="sum"):
            check_probability_vector([0.3, 0.3], "p")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_probability_vector([-0.5, 1.5], "p")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_probability_vector([], "p")
