"""Bitwise-parity locks for the vectorized cold-path pipeline.

Three properties pin the fast paths to the scalar implementations they
replaced: batch feature matrices equal row-by-row feature vectors
(exactly — same bits, not just close), packed ensemble evaluation equals
the per-tree Python loop, and incrementally maintained fleet signatures
equal a from-scratch recomputation after arbitrary mutation sequences.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features import (
    aggregate_intensity,
    aggregate_intensity_matrix,
    cm_feature_matrix,
    cm_feature_vector,
    rm_feature_matrix,
    rm_feature_vector,
)
from repro.games.resolution import Resolution
from repro.hardware.resources import NUM_RESOURCES
from repro.ml import (
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    RandomForestClassifier,
    RandomForestRegressor,
)
from repro.placement.fleet import FleetState, Session
from repro.placement.signature import signature_of

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
positive = st.floats(min_value=1e-3, max_value=1e4, allow_nan=False)


def _array(data, shape, elements=finite):
    size = int(np.prod(shape))
    flat = data.draw(st.lists(elements, min_size=size, max_size=size))
    return np.asarray(flat, dtype=float).reshape(shape)


class TestBatchFeatureParity:
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_aggregate_matrix_matches_scalar(self, data):
        g = data.draw(st.integers(1, 3))
        n = data.draw(st.integers(2, 4))
        stacks = _array(data, (g, n, NUM_RESOURCES))
        out = aggregate_intensity_matrix(stacks)
        for gi in range(g):
            for i in range(n):
                co = [stacks[gi, j] for j in range(n) if j != i]
                expected = aggregate_intensity(co)
                assert np.array_equal(out[gi, i], expected)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_rm_matrix_matches_scalar_rows(self, data):
        g = data.draw(st.integers(1, 3))
        n = data.draw(st.integers(2, 4))
        d = data.draw(st.integers(1, 8))
        sens = _array(data, (g, n, d))
        stacks = _array(data, (g, n, NUM_RESOURCES))
        X = rm_feature_matrix(sens, stacks)
        for gi in range(g):
            for i in range(n):
                co = [stacks[gi, j] for j in range(n) if j != i]
                row = rm_feature_vector(sens[gi, i], co)
                assert np.array_equal(X[gi * n + i], row)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_cm_matrix_matches_scalar_rows(self, data):
        g = data.draw(st.integers(1, 3))
        n = data.draw(st.integers(2, 4))
        d = data.draw(st.integers(1, 8))
        qos = data.draw(positive)
        solo = _array(data, (g, n), elements=positive)
        sens = _array(data, (g, n, d))
        stacks = _array(data, (g, n, NUM_RESOURCES))
        X = cm_feature_matrix(qos, solo, sens, stacks)
        for gi in range(g):
            for i in range(n):
                co = [stacks[gi, j] for j in range(n) if j != i]
                row = cm_feature_vector(qos, float(solo[gi, i]), sens[gi, i], co)
                assert np.array_equal(X[gi * n + i], row)


def _fit_models():
    rng = np.random.default_rng(7)
    X = rng.normal(size=(250, 6))
    y_reg = X[:, 0] - 2.0 * X[:, 1] + rng.normal(scale=0.2, size=250)
    y_bin = (X[:, 0] + X[:, 2] > 0).astype(int)
    # Three classes so bootstrap resamples can miss one, exercising the
    # classifier pack's class-order projection.
    y_multi = rng.integers(0, 3, size=250)
    return {
        "forest_reg": RandomForestRegressor(n_estimators=20, seed=1).fit(X, y_reg),
        "forest_clf": RandomForestClassifier(n_estimators=20, seed=2).fit(X, y_multi),
        "gbrt": GradientBoostingRegressor(n_estimators=30, seed=3).fit(X, y_reg),
        "gbdt": GradientBoostingClassifier(n_estimators=30, seed=4).fit(X, y_bin),
    }


MODELS = _fit_models()


class TestPackedEnsembleParity:
    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_forest_regressor_matches_tree_loop(self, data):
        n = data.draw(st.integers(1, 12))
        X = _array(data, (n, 6), elements=st.floats(-5, 5, allow_nan=False))
        model = MODELS["forest_reg"]
        expected = np.mean([t.predict(X) for t in model.estimators_], axis=0)
        assert np.array_equal(model.predict(X), expected)

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_forest_classifier_matches_tree_loop(self, data):
        n = data.draw(st.integers(1, 12))
        X = _array(data, (n, 6), elements=st.floats(-5, 5, allow_nan=False))
        model = MODELS["forest_clf"]
        proba = np.zeros((n, model.classes_.shape[0]))
        for t in model.estimators_:
            cols = np.searchsorted(model.classes_, t.classes_)
            proba[:, cols] += t.predict_proba(X)
        proba /= model.n_estimators
        assert np.array_equal(model.predict_proba(X), proba)

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_boosting_matches_stage_loop(self, data):
        n = data.draw(st.integers(1, 12))
        X = _array(data, (n, 6), elements=st.floats(-5, 5, allow_nan=False))
        for key, raw_of in (("gbrt", "predict"), ("gbdt", "decision_function")):
            model = MODELS[key]
            expected = np.full(n, model.init_)
            for t in model.estimators_:
                expected += model.learning_rate * t.predict(X)
            assert np.array_equal(getattr(model, raw_of)(X), expected)


GAMES = ["dota2", "csgo", "hl2", "tf2"]
RESOLUTIONS = [Resolution(1920, 1080), Resolution(1280, 720)]

fleet_ops = st.lists(
    st.tuples(
        st.sampled_from(["place_new", "place_join", "depart", "crash"]),
        st.integers(0, 10 ** 6),
    ),
    min_size=1,
    max_size=40,
)


class TestIncrementalSignatureParity:
    @given(fleet_ops)
    @settings(max_examples=60, deadline=None)
    def test_signatures_match_recomputation(self, ops):
        fleet = FleetState()
        clock = 0.0
        for op, r in ops:
            if op == "place_new" or fleet.n_open == 0:
                session = Session(
                    GAMES[r % len(GAMES)],
                    RESOLUTIONS[r % len(RESOLUTIONS)],
                    arrival=clock,
                    duration=1.0 + (r % 7),
                )
                fleet.place(None, session)
            elif op == "place_join":
                session = Session(
                    GAMES[r % len(GAMES)],
                    RESOLUTIONS[(r // 2) % len(RESOLUTIONS)],
                    arrival=clock,
                    duration=1.0 + (r % 5),
                )
                fleet.place(r % fleet.n_open, session)
            elif op == "depart":
                clock += 1.0 + (r % 3)
                fleet.pop_departures(clock)
            else:
                fleet.crash(fleet.server_ids()[r % fleet.n_open])
            recomputed = [
                signature_of(fleet.members(sid)) for sid in fleet.server_ids()
            ]
            assert fleet.signatures() == recomputed
