"""Tests for the VBP baseline."""

import numpy as np
import pytest

from repro.baselines import VBPJudge
from repro.baselines.vbp import VBP_RESOURCES
from repro.core.training import ColocationSpec
from repro.games.resolution import Resolution
from repro.hardware.resources import Resource

R1080 = Resolution(1920, 1080)
R720 = Resolution(1280, 720)


@pytest.fixture(scope="module")
def judge(minilab):
    return VBPJudge(minilab.db)


class TestDemandVector:
    def test_caches_excluded(self):
        assert Resource.LLC not in VBP_RESOURCES
        assert Resource.GPU_L2 not in VBP_RESOURCES
        assert len(VBP_RESOURCES) == 5

    def test_dimensions(self, minilab, judge):
        demand = judge.demand_vector(minilab.names[0], R1080)
        assert demand.shape == (7,)  # 5 shared + cpu mem + gpu mem
        assert np.all(demand >= 0)

    def test_memory_normalized_by_server(self, minilab, judge):
        profile = minilab.db.get(minilab.names[0])
        demand = judge.demand_vector(minilab.names[0], R1080)
        assert demand[-2] == pytest.approx(profile.cpu_mem_gb / 8.0)
        assert demand[-1] == pytest.approx(profile.gpu_mem_gb / 6.0)

    def test_resolution_affects_gpu_demand(self, minilab, judge):
        lo = judge.demand_vector(minilab.names[0], R720)
        hi = judge.demand_vector(minilab.names[0], R1080)
        assert hi.sum() >= lo.sum()


class TestFeasibility:
    def test_single_game_feasible(self, minilab, judge):
        spec = ColocationSpec(((minilab.names[0], R1080),))
        assert judge.colocation_feasible(spec)

    def test_overpacked_infeasible(self, minilab, judge):
        # Enough copies of the heaviest game must exceed some dimension.
        heaviest = max(
            minilab.names,
            key=lambda n: judge.demand_vector(n, R1080).max(),
        )
        spec = ColocationSpec(tuple((heaviest, R1080) for _ in range(8)))
        assert not judge.colocation_feasible(spec)

    def test_total_demand_is_sum(self, minilab, judge):
        a, b = minilab.names[:2]
        spec = ColocationSpec(((a, R1080), (b, R1080)))
        total = judge.total_demand(spec)
        expected = judge.demand_vector(a, R1080) + judge.demand_vector(b, R1080)
        assert np.allclose(total, expected)

    def test_predict_feasible_is_colocation_level(self, minilab, judge):
        spec = ColocationSpec(((minilab.names[0], R1080), (minilab.names[1], R1080)))
        verdicts = judge.predict_feasible(spec)
        assert len(set(verdicts.tolist())) == 1  # same verdict for all entries

    def test_qos_blindness(self, minilab, judge):
        """VBP cannot see frame rates: the verdict ignores the QoS floor."""
        spec = ColocationSpec(((minilab.names[0], R1080), (minilab.names[1], R1080)))
        assert judge.colocation_feasible(spec, 30.0) == judge.colocation_feasible(
            spec, 240.0
        )


class TestWorstFitHelpers:
    def test_remaining_capacity_empty_server(self, judge):
        assert judge.remaining_capacity(None) == pytest.approx(7.0)

    def test_remaining_capacity_decreases(self, minilab, judge):
        spec = ColocationSpec(((minilab.names[0], R1080),))
        assert judge.remaining_capacity(spec) < 7.0

    def test_fits_after_adding(self, minilab, judge):
        name = minilab.names[0]
        assert judge.fits_after_adding(None, name, R1080)
        crowded = ColocationSpec(tuple((name, R1080) for _ in range(8)))
        assert not judge.fits_after_adding(crowded, name, R1080)
