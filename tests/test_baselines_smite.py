"""Tests for the SMiTe baseline."""

import numpy as np
import pytest

from repro.baselines import SMiTePredictor
from repro.core.training import ColocationSpec
from repro.games.resolution import Resolution
from repro.hardware.resources import NUM_RESOURCES

R1080 = Resolution(1920, 1080)


@pytest.fixture(scope="module")
def fitted(minilab):
    return SMiTePredictor(minilab.db).fit(minilab.measured_train)


class TestFit:
    def test_learns_coefficients(self, fitted):
        assert fitted.coef_.shape == (NUM_RESOURCES,)
        assert np.isfinite(fitted.coef_).all()
        assert np.isfinite(fitted.intercept_)

    def test_unfitted_predict_raises(self, minilab):
        model = SMiTePredictor(minilab.db)
        spec = ColocationSpec(
            ((minilab.names[0], R1080), (minilab.names[1], R1080))
        )
        with pytest.raises(RuntimeError, match="fit"):
            model.predict_degradations(spec)

    def test_fit_requires_multi_game_measurements(self, minilab):
        with pytest.raises(ValueError):
            SMiTePredictor(minilab.db).fit([])


class TestPredict:
    def test_partner_aware_unlike_sigmoid(self, minilab, fitted):
        names = minilab.names
        a = ColocationSpec(((names[0], R1080), (names[1], R1080)))
        b = ColocationSpec(((names[0], R1080), (names[2], R1080)))
        # Different partners => different intensity sums => different output.
        assert fitted.predict_degradations(a)[0] != fitted.predict_degradations(b)[0]

    def test_additivity_assumption(self, minilab, fitted):
        """Eq. 9: the features for A vs {B,C} use I_B + I_C exactly."""
        names = minilab.names
        spec = ColocationSpec(tuple((n, R1080) for n in names[:3]))
        row = fitted._feature_row(spec, 0)
        scores = fitted._sensitivity_scores(names[0])
        summed = (
            minilab.db.get(names[1]).intensity_at(R1080).values
            + minilab.db.get(names[2]).intensity_at(R1080).values
        )
        assert np.allclose(row, scores * summed)

    def test_degradations_clipped(self, minilab, fitted):
        names = minilab.names
        spec = ColocationSpec(tuple((n, R1080) for n in names[:4]))
        degr = fitted.predict_degradations(spec)
        assert np.all((degr >= 0.01) & (degr <= 1.5))

    def test_feasibility_api(self, minilab, fitted):
        names = minilab.names
        spec = ColocationSpec(((names[0], R1080), (names[1], R1080)))
        verdicts = fitted.predict_feasible(spec, 60.0)
        assert verdicts.dtype == bool
        assert fitted.colocation_feasible(spec, 60.0) == bool(np.all(verdicts))

    def test_reasonable_accuracy(self, minilab, fitted):
        errors = []
        for m in minilab.measured_test:
            degr = fitted.predict_degradations(m.spec)
            for i, (name, res) in enumerate(m.spec.entries):
                solo = minilab.db.get(name).solo_fps_at(res)
                actual = m.fps[i] / solo
                errors.append(abs(degr[i] - actual) / actual)
        assert np.mean(errors) < 0.6
