"""Tests for collaborative-filtering profile completion."""

import numpy as np
import pytest

from repro.hardware.resources import NUM_RESOURCES, Resource
from repro.profiling import complete_profiles, profile_feature_matrix

OBSERVED = (Resource.CPU_CE, Resource.GPU_CE)


class TestFeatureMatrix:
    def test_shape(self, minilab):
        M = profile_feature_matrix(minilab.db)
        samples = len(
            next(iter(minilab.db.profiles()[0].sensitivity.values())).pressures
        )
        n_res = len(minilab.db.profiles()[0].profiled_resolutions)
        assert M.shape == (
            len(minilab.db),
            NUM_RESOURCES * samples + n_res * NUM_RESOURCES,
        )
        assert np.isfinite(M).all()


class TestCompleteProfiles:
    @pytest.fixture(scope="class")
    def completed(self, minilab):
        partial = minilab.names[:3]
        db = complete_profiles(
            minilab.db, {name: OBSERVED for name in partial}, rank=4
        )
        return partial, db

    def test_passthrough_for_full_games(self, minilab, completed):
        partial, db = completed
        for name in minilab.names:
            if name in partial:
                continue
            assert db.get(name) is minilab.db.get(name)

    def test_observed_resources_untouched(self, minilab, completed):
        partial, db = completed
        for name in partial:
            for res in OBSERVED:
                assert (
                    db.get(name).sensitivity[res]
                    == minilab.db.get(name).sensitivity[res]
                )

    def test_hidden_resources_replaced_and_plausible(self, minilab, completed):
        partial, db = completed
        for name in partial:
            for res in Resource:
                if res in OBSERVED:
                    continue
                curve = db.get(name).sensitivity[res]
                assert all(0.0 <= v <= 1.5 for v in curve.degradations)

    def test_reconstruction_correlates_with_truth(self, minilab, completed):
        partial, db = completed
        truths, recons = [], []
        for name in partial:
            for res in Resource:
                if res in OBSERVED:
                    continue
                truths.extend(minilab.db.get(name).sensitivity[res].degradations)
                recons.extend(db.get(name).sensitivity[res].degradations)
        mae = float(np.mean(np.abs(np.array(truths) - np.array(recons))))
        assert mae < 0.30  # far better than knowing nothing

    def test_intensity_completed_non_negative(self, minilab, completed):
        partial, db = completed
        for name in partial:
            for resolution in db.get(name).profiled_resolutions:
                assert all(v >= 0.0 for v in db.get(name).intensity[resolution])

    def test_no_partial_games_is_identity(self, minilab):
        assert complete_profiles(minilab.db, {}) is minilab.db

    def test_unknown_game_rejected(self, minilab):
        with pytest.raises(KeyError):
            complete_profiles(minilab.db, {"NoSuchGame": OBSERVED})

    def test_empty_observation_rejected(self, minilab):
        with pytest.raises(ValueError):
            complete_profiles(minilab.db, {minilab.names[0]: ()})
