"""Serving-tier tests for the downscale actuator and restore loop.

Covers the refactor's byte-parity contract (the default pipeline vs the
frozen pre-refactor engine under seeded chaos, and ``--no-degrade`` vs a
flag-less serve), the degraded placement surface of the broker report,
restore at arrival intervals and sharded chunk barriers, and degraded
sessions surviving crash/migration/failover with conservation intact.
"""

import json

import pytest

from repro.cli import main
from repro.games import DegradeLadder
from repro.obs import QoSLedger, Telemetry
from repro.placement import BreakerConfig, CMFeasiblePolicy, PredictionCache
from repro.placement.policies import WorstFitPolicy
from repro.serving import (
    AdmissionController,
    FaultConfig,
    FaultInjector,
    RequestBroker,
    TraceConfig,
    generate_trace,
)

LADDER = DegradeLadder.from_str("1080p,900p,720p")


@pytest.fixture()
def predictor_path(minilab, tmp_path):
    path = tmp_path / "predictor.json"
    minilab.predictor.save(path)
    return str(path)


def normalized(payload):
    """A report with wall-clock timing scrubbed, structure intact.

    Latency histograms (any metric ending in ``_s``) vary run to run —
    totals, means, percentiles, and which latency bucket a sample lands
    in.  Everything else (counters, events, placements, resilience,
    config) must match exactly.
    """

    def scrub_hist(hist):
        # One histogram payload (plain) or a list of labeled payloads.
        if isinstance(hist, list):
            return [scrub_hist(h) for h in hist]
        return {"count": hist.get("count"), "labels": hist.get("labels")}

    def scrub(node):
        if isinstance(node, dict):
            out = {}
            for key, value in node.items():
                if key == "histograms" and isinstance(value, dict):
                    out[key] = {
                        name: scrub_hist(hist) if name.endswith("_s") else hist
                        for name, hist in value.items()
                    }
                else:
                    out[key] = scrub(value)
            return out
        if isinstance(node, list):
            return [scrub(v) for v in node]
        return node

    return scrub(payload)


def build_controller(minilab, engine_cls, **kwargs):
    telemetry = Telemetry()
    injector = FaultInjector(
        FaultConfig(error_rate=0.08, corrupt_rate=0.02, seed=11),
        telemetry=telemetry,
    )
    policy = injector.wrap_policy(
        CMFeasiblePolicy(minilab.predictor, 45.0, cache=PredictionCache(256))
    )
    fallback = WorstFitPolicy(minilab.vbp)
    return engine_cls(
        policy,
        fallback=fallback,
        telemetry=telemetry,
        breaker=BreakerConfig(
            failure_threshold=0.5, window=12, min_requests=4, cooldown=10
        ),
        decision_deadline_s=5.0,
        **kwargs,
    )


class TestPreRefactorParity:
    """The pipeline's default chain IS the old engine, byte for byte."""

    def test_chaos_run_matches_frozen_engine(self, minilab):
        from tests import _reference_engine as frozen

        trace = TraceConfig(
            n_requests=250, arrival_rate=6.0, mean_duration=20.0, seed=5
        )
        sessions = generate_trace(minilab.predictor.db.names(), trace)

        def serve(engine_cls):
            controller = build_controller(minilab, engine_cls)
            broker = RequestBroker(controller, crash_rate=0.03, crash_seed=5)
            report = broker.run(list(sessions))
            return normalized(report.to_dict())

        new = serve(AdmissionController)
        old = serve(frozen.DecisionEngine)
        assert new == old

    def test_resilience_snapshot_keys_unchanged(self, minilab):
        from tests import _reference_engine as frozen

        new = build_controller(minilab, AdmissionController)
        old = build_controller(minilab, frozen.DecisionEngine)
        assert new.resilience_snapshot() == old.resilience_snapshot()


class TestDegradedServing:
    def run_broker(self, minilab, *, ladder=None, restore_interval=None, qos=45.0):
        telemetry = Telemetry()
        controller = AdmissionController(
            CMFeasiblePolicy(minilab.predictor, qos),
            telemetry=telemetry,
            downscale_ladder=ladder,
        )
        ledger = QoSLedger(
            minilab.catalog, minilab.predictor, slo_fps=qos, server=minilab.server
        )
        broker = RequestBroker(
            controller, ledger=ledger, restore_interval=restore_interval
        )
        trace = TraceConfig(
            n_requests=220, arrival_rate=9.0, mean_duration=25.0, seed=3
        )
        sessions = generate_trace(minilab.predictor.db.names(), trace)
        return broker.run(list(sessions))

    def test_degraded_records_carry_both_resolutions(self, minilab):
        report = self.run_broker(minilab, ladder=LADDER, restore_interval=50)
        degraded = [p for p in report.placements if p.resolution is not None]
        assert degraded, "expected at least one downscaled placement"
        for record in degraded:
            assert record.requested == "1920x1080"
            assert record.resolution in ("1600x900", "1280x720")
        plain = [p for p in report.placements if p.resolution is None]
        assert all("resolution" not in p.to_dict() for p in plain)

    def test_qos_ledger_books_degraded_minutes(self, minilab):
        report = self.run_broker(minilab, ladder=LADDER, restore_interval=50)
        assert report.qos["sessions"]["conservation_errors"] == 0
        degraded = report.qos.get("degraded")
        assert degraded is not None
        assert degraded["sessions"] > 0
        assert degraded["minutes"] > 0
        assert 0 < degraded["minutes_fraction"] < 1

    def test_qos_degraded_absent_without_ladder(self, minilab):
        report = self.run_broker(minilab)
        assert "degraded" not in report.qos
        assert all("resolution" not in p.to_dict() for p in report.placements)

    def test_resilience_reports_downscale_block(self, minilab):
        report = self.run_broker(minilab, ladder=LADDER, restore_interval=50)
        block = report.resilience["downscale"]
        assert block["ladder"] == ["1920x1080", "1600x900", "1280x720"]
        assert block["restore"] is True
        assert block["restore_interval"] == 50

    def test_restore_loop_emits_events_and_promotes(self, minilab):
        report = self.run_broker(minilab, ladder=LADDER, restore_interval=25)
        events = [
            e
            for e in report.telemetry.get("events", [])
            if e.get("event") == "restore"
        ]
        counters = report.telemetry.get("labeled", {}).get("counters", {})
        restores = sum(e["value"] for e in counters.get("restores", ()))
        if restores:
            assert events, "restore promotions should emit restore events"
            assert sum(e["promoted"] for e in events) == restores


class TestDegradedSharded:
    def test_degraded_sessions_survive_chaos(self, minilab):
        from repro.sharding import (
            RebalanceConfig,
            Rebalancer,
            ShardChaos,
            ShardChaosConfig,
            ShardConfig,
            ShardedBroker,
            ShardSupervisor,
            SupervisorConfig,
            build_shard_brokers,
        )

        telemetry = Telemetry()
        config = ShardConfig(
            policy="cm-feasible",
            qos=45.0,
            crash_rate=0.02,
            seed=9,
            slo_fps=45.0,
            degrade_ladder=LADDER,
        )
        brokers = build_shard_brokers(
            minilab.predictor, 3, config, catalog=minilab.catalog
        )
        chaos = ShardChaos(
            ShardChaosConfig(outage_rate=0.25, outage_chunks=1, seed=9), 3
        )
        broker = ShardedBroker(
            brokers,
            rebalancer=Rebalancer(RebalanceConfig(interval=40), telemetry=telemetry),
            supervisor=ShardSupervisor(chaos, SupervisorConfig(min_healthy=1)),
            telemetry=telemetry,
        )
        trace = TraceConfig(
            n_requests=300, arrival_rate=9.0, mean_duration=25.0, seed=9
        )
        sessions = generate_trace(minilab.predictor.db.names(), trace)
        report = broker.run(list(sessions))
        payload = report.to_dict()
        qos = payload["qos"]
        assert qos["sessions"]["opened"] == qos["sessions"]["closed"]
        lost = payload["telemetry"]["counters"].get("sessions_lost", 0)
        assert lost == 0
        assert qos.get("degraded", {}).get("sessions", 0) > 0, (
            "expected degraded sessions to survive migration/failover"
        )


class TestServeCliDegrade:
    def serve(self, predictor_path, tmp_path, *extra, requests="150"):
        out = tmp_path / f"report{abs(hash(extra)) % 10**8}.json"
        rc = main(
            [
                "serve",
                "--predictor",
                predictor_path,
                "--requests",
                requests,
                "--arrival-rate",
                "8",
                "--out",
                str(out),
                *extra,
            ]
        )
        return rc, out

    def test_malformed_ladder_one_line_error(self, predictor_path, tmp_path, capsys):
        rc, _ = self.serve(predictor_path, tmp_path, "--degrade-ladder", "nope")
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("error: bad resolution 'nope'")
        assert err.count("\n") == 1

    def test_restore_interval_requires_ladder(self, predictor_path, tmp_path, capsys):
        rc, _ = self.serve(predictor_path, tmp_path, "--restore-interval", "10")
        assert rc == 2
        assert "requires --degrade-ladder" in capsys.readouterr().err

    def test_bad_restore_interval_rejected(self, predictor_path, tmp_path, capsys):
        rc, _ = self.serve(
            predictor_path,
            tmp_path,
            "--degrade-ladder",
            "1080p,720p",
            "--restore-interval",
            "0",
        )
        assert rc == 1
        assert "must be >= 1" in capsys.readouterr().err

    def test_config_keys_only_when_armed(self, predictor_path, tmp_path):
        rc, out = self.serve(
            predictor_path, tmp_path, "--degrade-ladder", "1080p,900p,720p"
        )
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["config"]["degrade_ladder"] == [
            "1920x1080",
            "1600x900",
            "1280x720",
        ]
        assert payload["config"]["restore_interval"] == 256

        rc, out = self.serve(predictor_path, tmp_path)
        payload = json.loads(out.read_text())
        assert "degrade_ladder" not in payload["config"]
        assert "restore_interval" not in payload["config"]

    def test_no_degrade_byte_identical_to_flagless(self, predictor_path, tmp_path):
        rc1, out1 = self.serve(predictor_path, tmp_path, "--crash-rate", "0.02")
        rc2, out2 = self.serve(
            predictor_path,
            tmp_path,
            "--crash-rate",
            "0.02",
            "--degrade-ladder",
            "1080p,900p,720p",
            "--no-degrade",
        )
        assert rc1 == rc2 == 0
        a = normalized(json.loads(out1.read_text()))
        b = normalized(json.loads(out2.read_text()))
        assert a == b

    def test_no_degrade_sharded_byte_identical(self, predictor_path, tmp_path):
        common = ("--shards", "2", "--rebalance-interval", "50")
        rc1, out1 = self.serve(predictor_path, tmp_path, *common)
        rc2, out2 = self.serve(
            predictor_path,
            tmp_path,
            *common,
            "--degrade-ladder",
            "1080p,720p",
            "--no-degrade",
        )
        assert rc1 == rc2 == 0
        a = normalized(json.loads(out1.read_text()))
        b = normalized(json.loads(out2.read_text()))
        assert a == b

    def test_sharded_degrade_end_to_end(self, predictor_path, tmp_path):
        rc, out = self.serve(
            predictor_path,
            tmp_path,
            "--shards",
            "2",
            "--rebalance-interval",
            "40",
            "--slo-fps",
            "45",
            "--degrade-ladder",
            "1080p,900p,720p",
            requests="250",
        )
        assert rc == 0
        payload = json.loads(out.read_text())
        qos = payload["qos"]
        assert qos["sessions"]["opened"] == qos["sessions"]["closed"]
        assert payload["config"]["degrade_ladder"] == [
            "1920x1080",
            "1600x900",
            "1280x720",
        ]
