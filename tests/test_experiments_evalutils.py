"""Tests for shared evaluation plumbing."""

import numpy as np

from repro.experiments.evalutils import (
    baseline_sample_predictions,
    breakdown_by_size,
)


class TestBaselineSamplePredictions:
    def test_alignment_with_test_campaign(self, minilab):
        preds = baseline_sample_predictions(minilab, minilab.sigmoid)
        expected = sum(m.spec.size for m in minilab.measured_test if m.spec.size >= 2)
        assert len(preds.actual_degradation) == expected
        assert preds.sizes.min() >= 2

    def test_relative_errors_formula(self, minilab):
        preds = baseline_sample_predictions(minilab, minilab.sigmoid)
        manual = np.abs(
            preds.predicted_degradation - preds.actual_degradation
        ) / preds.actual_degradation
        assert np.allclose(preds.relative_errors, manual)

    def test_qos_labels(self, minilab):
        preds = baseline_sample_predictions(minilab, minilab.smite)
        actual, predicted = preds.qos_labels(60.0)
        assert set(np.unique(actual)) <= {0, 1}
        assert set(np.unique(predicted)) <= {0, 1}
        assert np.array_equal(actual, (preds.actual_fps >= 60.0).astype(int))

    def test_actual_degradation_consistent(self, minilab):
        preds = baseline_sample_predictions(minilab, minilab.sigmoid)
        assert np.allclose(
            preds.actual_degradation * preds.solo_fps, preds.actual_fps
        )


class TestBreakdownBySize:
    def test_groups(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        sizes = np.array([2, 2, 3, 3])
        out = breakdown_by_size(values, sizes)
        assert out == {"overall": 2.5, "2": 1.5, "3": 3.5}

    def test_custom_reducer(self):
        values = np.array([1.0, 5.0])
        sizes = np.array([2, 2])
        out = breakdown_by_size(values, sizes, reducer=np.max)
        assert out["overall"] == 5.0
