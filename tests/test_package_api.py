"""Tests for the top-level public API surface."""

import importlib

import pytest

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.hardware",
            "repro.games",
            "repro.bench",
            "repro.simulator",
            "repro.profiling",
            "repro.ml",
            "repro.core",
            "repro.baselines",
            "repro.scheduling",
            "repro.experiments",
            "repro.utils",
        ],
    )
    def test_subpackage_alls_resolve(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__, f"{module} missing docstring"
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_public_callables_documented(self):
        # Every public item exported at the top level carries a docstring.
        for name in repro.__all__:
            if name.startswith("__"):
                continue
            obj = getattr(repro, name)
            if callable(obj):
                assert obj.__doc__, f"repro.{name} missing docstring"
