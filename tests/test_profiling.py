"""Tests for the contention profiler and profile database."""

import numpy as np
import pytest

from repro.games.resolution import Resolution
from repro.hardware.resources import CPU_RESOURCES, Resource
from repro.profiling import ContentionProfiler, ProfileDatabase, ProfilerConfig


@pytest.fixture(scope="module")
def profile(catalog):
    """One fully profiled game (module-scoped: ~1s)."""
    profiler = ContentionProfiler()
    return profiler.profile_game(catalog.get("H1Z1"))


class TestProfilerConfig:
    def test_default_dials(self):
        config = ProfilerConfig()
        assert len(config.dials) == 11
        assert config.dials[0] == 0.0 and config.dials[-1] == 1.0

    def test_intensity_dials_coarser(self):
        config = ProfilerConfig()
        assert len(config.intensity_dials) < len(config.dials)

    def test_sensitivity_resolution_must_be_profiled(self):
        with pytest.raises(ValueError, match="sensitivity_resolution"):
            ProfilerConfig(
                resolutions=(Resolution(1280, 720), Resolution(1600, 900)),
                sensitivity_resolution=Resolution(1920, 1080),
            )

    def test_needs_two_resolutions(self):
        with pytest.raises(ValueError, match="two"):
            ProfilerConfig(
                resolutions=(Resolution(1920, 1080), Resolution(1920, 1080)),
            )


class TestProfileGame:
    def test_all_resources_profiled(self, profile):
        for res in Resource:
            assert res in profile.sensitivity
            curve = profile.sensitivity[res]
            assert len(curve.pressures) == 11

    def test_curve_starts_near_one(self, profile):
        for res in Resource:
            assert profile.sensitivity[res].degradations[0] == pytest.approx(
                1.0, abs=0.08
            )

    def test_curves_trend_downward(self, profile):
        # Not strictly monotone (measurement noise) but the endpoint must
        # be materially below the start for at least some resources.
        drops = [
            profile.sensitivity[res].degradations[0]
            - profile.sensitivity[res].degradations[-1]
            for res in Resource
        ]
        assert max(drops) > 0.15

    def test_three_profiled_resolutions(self, profile):
        assert len(profile.profiled_resolutions) == 3

    def test_intensity_non_negative(self, profile):
        for resolution in profile.profiled_resolutions:
            assert all(v >= 0.0 for v in profile.intensity[resolution])

    def test_observation7_cpu_intensity_resolution_stable(self, profile):
        resolutions = profile.profiled_resolutions
        for res in CPU_RESOURCES:
            values = [profile.intensity[r][res] for r in resolutions]
            assert np.ptp(values) < 0.25

    def test_observation8_gpu_intensity_grows_with_pixels(self, profile):
        resolutions = profile.profiled_resolutions
        values = [profile.intensity[r][Resource.GPU_CE] for r in resolutions]
        assert values[-1] >= values[0]

    def test_solo_fps_decreases_with_resolution(self, profile):
        resolutions = profile.profiled_resolutions
        fps = [profile.solo_fps[r] for r in resolutions]
        assert fps[0] > fps[-1]

    def test_demand_reflects_hidden_utilization(self, catalog, profile):
        spec = catalog.get("H1Z1")
        r1080 = Resolution(1920, 1080)
        measured = profile.demand[r1080]
        true = spec.utilization(r1080)
        for res in Resource:
            assert measured[res] == pytest.approx(true[res], rel=0.08)


class TestProfileDatabase:
    def test_add_get_len(self, profile):
        db = ProfileDatabase()
        db.add(profile)
        assert len(db) == 1
        assert db.get(profile.name) is profile
        assert profile.name in db

    def test_get_missing(self):
        with pytest.raises(KeyError, match="NoSuchGame"):
            ProfileDatabase().get("NoSuchGame")

    def test_subset(self, profile):
        db = ProfileDatabase()
        db.add(profile)
        sub = db.subset([profile.name])
        assert sub.names() == [profile.name]

    def test_save_load_round_trip(self, profile, tmp_path):
        db = ProfileDatabase(server_name="ref")
        db.add(profile)
        path = tmp_path / "db.json"
        db.save(path)
        restored = ProfileDatabase.load(path)
        assert restored.server_name == "ref"
        original = db.get(profile.name)
        loaded = restored.get(profile.name)
        assert loaded.solo_fps == original.solo_fps
        assert loaded.sensitivity[Resource.GPU_CE] == original.sensitivity[
            Resource.GPU_CE
        ]
        assert loaded.intensity == original.intensity

    def test_iteration_order(self, profile):
        db = ProfileDatabase()
        db.add(profile)
        assert [p.name for p in db] == [profile.name]
