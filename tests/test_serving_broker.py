"""Tests for the serving broker, admission controller, and policies.

The load-bearing properties: serving-loop placements match the offline
``scheduling.dynamic`` policies on the same seeded trace (decision
parity), missing profiles degrade to counted fallbacks instead of
crashing, and the cache actually serves the hot path.
"""

import json

import pytest

from repro.core import InterferencePredictor
from repro.games.resolution import Resolution
from repro.scheduling.dynamic import (
    cm_feasible_policy,
    generate_sessions,
    recording_policy,
    simulate_sessions,
)
from repro.serving import (
    AdmissionController,
    CMFeasiblePolicy,
    DedicatedPolicy,
    MaxFPSPolicy,
    OfflinePolicyAdapter,
    PredictionCache,
    RequestBroker,
    TraceConfig,
    WorstFitPolicy,
    build_policy,
    generate_trace,
)

R1080 = Resolution(1920, 1080)


def _run(policy, sessions, *, fallback=None):
    controller = AdmissionController(policy, fallback=fallback)
    return controller, RequestBroker(controller).run(sessions)


class TestPolicyParity:
    """Serving decisions must equal the offline dynamic policies'."""

    def test_cm_feasible_matches_offline_policy_500_requests(self, minilab):
        sessions = generate_sessions(minilab.names, 500, arrival_rate=4.0, seed=5)
        cache = PredictionCache(4096)
        serving = CMFeasiblePolicy(minilab.predictor, 60.0, cache=cache)
        controller, report = _run(serving, sessions)

        offline = OfflinePolicyAdapter(
            cm_feasible_policy(minilab.predictor, 60.0), name="offline-cm"
        )
        _, offline_report = _run(offline, sessions)

        assert report.n_sessions == 500
        assert report.choices() == offline_report.choices()
        assert report.server_ids() == offline_report.server_ids()
        # Zero unhandled exceptions: the fallback path never triggered.
        counters = report.telemetry["counters"]
        assert counters.get("policy_errors", 0) == 0
        assert counters.get("fallbacks", 0) == 0
        assert cache.hit_rate > 0

    def test_cm_feasible_matches_simulate_sessions(self, minilab):
        """Broker bookkeeping mirrors the offline event loop exactly."""
        sessions = generate_sessions(
            minilab.names[:4], 60, arrival_rate=4.0, seed=11
        )
        wrapped, record = recording_policy(
            cm_feasible_policy(minilab.predictor, 60.0)
        )
        simulate_sessions(minilab.catalog, sessions, wrapped, qos=60.0)

        serving = CMFeasiblePolicy(
            minilab.predictor, 60.0, cache=PredictionCache(1024)
        )
        _, report = _run(serving, sessions)
        assert report.choices() == record

    def test_margin_forwarded(self, minilab):
        with pytest.raises(ValueError, match="margin"):
            CMFeasiblePolicy(minilab.predictor, 60.0, margin=0.5)


class TestFallback:
    def test_missing_profile_falls_back_without_crash(self, minilab):
        """A game with no profile is served via the fallback chain."""
        known = minilab.names[:3]
        partial_db = minilab.db.subset(known)
        predictor = InterferencePredictor(
            partial_db, classifier=minilab.cm_model, regressor=minilab.rm_model
        )
        sessions = generate_sessions(
            minilab.names[:5], 40, arrival_rate=4.0, seed=7
        )
        assert any(s.game not in known for s in sessions)

        policy = CMFeasiblePolicy(predictor, 60.0, cache=PredictionCache(256))
        fallback = WorstFitPolicy(minilab.vbp)  # full-db VBP can still place
        controller, report = _run(policy, sessions, fallback=fallback)

        counters = report.telemetry["counters"]
        assert report.n_sessions == 40
        assert counters["fallbacks"] > 0
        assert counters["policy_errors"] == counters["fallbacks"]
        fallback_records = [p for p in report.placements if p.fallback]
        assert fallback_records
        assert all(p.policy == "worst-fit" for p in fallback_records)

    def test_double_failure_degrades_to_dedicated(self, minilab):
        """Primary and fallback both failing still never crashes."""
        partial_db = minilab.db.subset(minilab.names[:3])
        predictor = InterferencePredictor(
            partial_db, classifier=minilab.cm_model, regressor=minilab.rm_model
        )
        sessions = generate_sessions(
            minilab.names[:5], 30, arrival_rate=4.0, seed=8
        )
        policy = CMFeasiblePolicy(predictor, 60.0)
        fallback = WorstFitPolicy(minilab.vbp.__class__(partial_db))
        controller, report = _run(policy, sessions, fallback=fallback)
        counters = report.telemetry["counters"]
        assert counters["fallbacks"] > 0
        assert counters["fallback_errors"] > 0
        dedicated = [p for p in report.placements if p.policy == "dedicated"]
        assert dedicated
        assert all(p.choice is None for p in dedicated)

    def test_no_fallback_opens_server(self, minilab):
        class Exploding:
            name = "exploding"

            def select(self, signatures, session):
                raise RuntimeError("boom")

        sessions = generate_sessions(minilab.names[:3], 10, seed=9)
        _, report = _run(Exploding(), sessions)
        assert all(p.choice is None for p in report.placements)
        assert report.telemetry["counters"]["fallbacks"] == 10


class TestPolicies:
    def test_dedicated_opens_per_session(self, minilab):
        sessions = generate_sessions(minilab.names[:3], 15, seed=1)
        _, report = _run(DedicatedPolicy(), sessions)
        assert report.servers_opened == 15
        assert all(p.choice is None for p in report.placements)

    def test_max_fps_trivial_qos_packs(self, minilab):
        sessions = generate_sessions(
            minilab.names[:4], 30, arrival_rate=6.0, seed=2
        )
        policy = MaxFPSPolicy(minilab.predictor, 1.0, cache=PredictionCache(512))
        _, packed = _run(policy, sessions)
        _, dedicated = _run(DedicatedPolicy(), sessions)
        assert packed.servers_opened < dedicated.servers_opened

    def test_max_fps_impossible_qos_opens(self, minilab):
        sessions = generate_sessions(minilab.names[:4], 10, seed=3)
        policy = MaxFPSPolicy(minilab.predictor, 1e9)
        _, report = _run(policy, sessions)
        assert report.servers_opened == 10

    def test_worst_fit_prefers_emptier_server(self, minilab):
        policy = WorstFitPolicy(minilab.vbp)
        session = generate_sessions(minilab.names[:1], 1, seed=4)[0]
        fuller = tuple((minilab.names[i], R1080) for i in (1, 2))
        emptier = ((minilab.names[3], R1080),)
        choice = policy.select([fuller, emptier], session)
        assert choice in (0, 1, None)
        if choice is not None:
            # Worst fit: the emptier server has more slack.
            assert choice == 1

    def test_build_policy_variants(self, minilab):
        for name in ("cm-feasible", "max-fps", "worst-fit", "dedicated"):
            policy, fallback = build_policy(name, predictor=minilab.predictor)
            assert policy.name == name
            if name in ("cm-feasible", "max-fps"):
                assert fallback is not None and fallback.name == "worst-fit"
            else:
                assert fallback is None

    def test_build_policy_validation(self, minilab):
        with pytest.raises(ValueError, match="unknown policy"):
            build_policy("best-effort", predictor=minilab.predictor)
        with pytest.raises(ValueError, match="predictor"):
            build_policy("cm-feasible")
        rm_only = InterferencePredictor(minilab.db, regressor=minilab.rm_model)
        with pytest.raises(ValueError, match="classification"):
            build_policy("cm-feasible", predictor=rm_only)
        cm_only = InterferencePredictor(minilab.db, classifier=minilab.cm_model)
        with pytest.raises(ValueError, match="regression"):
            build_policy("max-fps", predictor=cm_only)


class TestBrokerAccounting:
    def test_telemetry_totals(self, minilab):
        sessions = generate_sessions(
            minilab.names[:4], 50, arrival_rate=4.0, seed=6
        )
        cache = PredictionCache(512)
        policy = CMFeasiblePolicy(minilab.predictor, 60.0, cache=cache)
        controller, report = _run(policy, sessions)
        counters = report.telemetry["counters"]
        assert counters["requests"] == 50
        assert counters["admissions"] + counters["servers_opened"] == 50
        assert counters["servers_opened"] == report.servers_opened
        assert report.telemetry["histograms"]["decision_latency_s"]["count"] == 50
        assert report.telemetry["caches"]["cm-feasible"]["hits"] == cache.hits

    def test_report_round_trips_through_json(self, minilab):
        sessions = generate_sessions(minilab.names[:3], 10, seed=12)
        _, report = _run(DedicatedPolicy(), sessions)
        parsed = json.loads(json.dumps(report.to_dict()))
        assert parsed["n_sessions"] == 10
        assert len(parsed["placements"]) == 10

    def test_trace_config(self):
        config = TraceConfig(n_requests=20, seed=3)
        trace = generate_trace(["a", "b"], config)
        assert len(trace) == 20
        assert trace == generate_trace(["a", "b"], config)
        with pytest.raises(ValueError):
            TraceConfig(n_requests=0)
        with pytest.raises(ValueError):
            TraceConfig(arrival_rate=0.0)
        mixed = TraceConfig(n_requests=200, mixed_resolutions=True, seed=4)
        resolutions = {s.resolution for s in generate_trace(["a"], mixed)}
        assert len(resolutions) > 1

    def test_trace_config_dict_round_trip(self):
        config = TraceConfig(n_requests=30, arrival_rate=3.5, seed=8)
        assert TraceConfig.from_dict(config.to_dict()) == config

    def test_trace_config_from_dict_rejects_malformed(self):
        with pytest.raises(ValueError, match="mapping"):
            TraceConfig.from_dict([1, 2])
        with pytest.raises(ValueError, match="unknown trace config key"):
            TraceConfig.from_dict({"n_requests": 5, "rate": 2.0})
        with pytest.raises(ValueError, match="arrival_rate"):
            TraceConfig.from_dict({"arrival_rate": "fast"})
        with pytest.raises(ValueError, match="n_requests"):
            TraceConfig.from_dict({"n_requests": True})
