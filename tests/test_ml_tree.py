"""Tests for the CART implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import DecisionTreeClassifier, DecisionTreeRegressor


def _xor_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return X, y


class TestDecisionTreeRegressor:
    def test_fits_training_data_exactly_when_unbounded(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 3))
        y = rng.normal(size=50)
        tree = DecisionTreeRegressor().fit(X, y)
        assert np.allclose(tree.predict(X), y)

    def test_max_depth_zero_predicts_mean(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = np.arange(10, dtype=float)
        tree = DecisionTreeRegressor(max_depth=0).fit(X, y)
        assert np.allclose(tree.predict(X), y.mean())

    def test_single_split(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 0.0, 10.0, 10.0])
        tree = DecisionTreeRegressor(max_depth=1).fit(X, y)
        assert np.allclose(tree.predict(X), y)
        assert tree.n_leaves_ == 2

    def test_min_samples_leaf_respected(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 2))
        y = rng.normal(size=100)
        tree = DecisionTreeRegressor(min_samples_leaf=10).fit(X, y)
        leaves, counts = np.unique(tree.apply(X), return_counts=True)
        assert counts.min() >= 10

    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(2).normal(size=(30, 2))
        tree = DecisionTreeRegressor().fit(X, np.ones(30))
        assert tree.n_leaves_ == 1

    def test_constant_features_single_leaf(self):
        X = np.ones((30, 3))
        y = np.arange(30, dtype=float)
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.n_leaves_ == 1

    def test_feature_importances_identify_signal(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(300, 5))
        y = 3.0 * X[:, 2] + 0.01 * rng.normal(size=300)
        tree = DecisionTreeRegressor(max_depth=4).fit(X, y)
        assert np.argmax(tree.feature_importances_) == 2
        assert tree.feature_importances_.sum() == pytest.approx(1.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fit"):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))

    def test_depth_property(self):
        X = np.arange(8, dtype=float).reshape(-1, 1)
        y = np.array([0, 0, 1, 1, 2, 2, 3, 3], dtype=float)
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        assert tree.depth_ <= 2

    @given(st.integers(1, 6))
    @settings(max_examples=10, deadline=None)
    def test_deeper_never_worse_on_train(self, depth):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(120, 3))
        y = np.sin(X[:, 0]) + X[:, 1] ** 2
        shallow = DecisionTreeRegressor(max_depth=depth).fit(X, y)
        deep = DecisionTreeRegressor(max_depth=depth + 1).fit(X, y)
        mse_s = np.mean((shallow.predict(X) - y) ** 2)
        mse_d = np.mean((deep.predict(X) - y) ** 2)
        assert mse_d <= mse_s + 1e-12


class TestDecisionTreeClassifier:
    def test_learns_xor(self):
        X, y = _xor_data()
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert np.mean(tree.predict(X) == y) > 0.95

    def test_predict_proba_rows_sum_to_one(self):
        X, y = _xor_data()
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        proba = tree.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert proba.shape == (len(X), 2)

    def test_string_labels(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array(["cat", "cat", "dog", "dog"])
        tree = DecisionTreeClassifier().fit(X, y)
        assert list(tree.predict(X)) == ["cat", "cat", "dog", "dog"]

    def test_multiclass(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0], [4.0], [5.0]])
        y = np.array([0, 0, 1, 1, 2, 2])
        tree = DecisionTreeClassifier().fit(X, y)
        assert np.array_equal(tree.predict(X), y)
        assert tree.predict_proba(X).shape == (6, 3)

    def test_max_features_subsampling_runs(self):
        X, y = _xor_data(200)
        tree = DecisionTreeClassifier(max_features="sqrt", seed=3).fit(X, y)
        assert tree.predict(X).shape == (200,)

    def test_invalid_max_features(self):
        X, y = _xor_data(50)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_features=0).fit(X, y)


class TestInputValidation:
    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((5, 2)), np.zeros(4))

    def test_nan_rejected(self):
        X = np.zeros((5, 2))
        X[0, 0] = np.nan
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(X, np.zeros(5))

    def test_clone_resets_state(self):
        X, y = _xor_data(50)
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        clone = tree.clone(max_depth=5)
        assert clone.max_depth == 5
        with pytest.raises(RuntimeError):
            clone.predict(X)
