"""Tests for the experiment lab: caching, splits, artifact wiring."""

import numpy as np

from repro.experiments.lab import Lab, LabConfig, get_lab


class TestLabConfig:
    def test_cache_key_stable(self):
        assert LabConfig().cache_key() == LabConfig().cache_key()

    def test_cache_key_sensitive_to_campaign(self):
        assert LabConfig().cache_key() != LabConfig(n_games=10).cache_key()

    def test_small_preset(self):
        small = LabConfig.small()
        assert small.n_games < LabConfig().n_games

    def test_sizes_dict(self):
        assert LabConfig().sizes_dict() == {2: 500, 3: 100, 4: 100}


class TestLabArtifacts:
    def test_names_lead_with_figure_games(self, minilab):
        # The six representative profiling subjects always lead the list
        # (further figure games follow when n_games allows).
        assert minilab.names[:6] == [
            "Dota2",
            "Far Cry4",
            "Granado Espada",
            "Rise of The Tomb Raider",
            "The Elder Scrolls5",
            "World of Warcraft",
        ]

    def test_full_config_includes_all_figure_games(self):
        lab = Lab(LabConfig())
        for name in ("Hobo Tough Life", "AirMech Strike", "ARK Survival Evolved"):
            assert name in lab.names

    def test_name_count(self, minilab):
        assert len(minilab.names) == minilab.config.n_games

    def test_db_covers_names(self, minilab):
        assert set(minilab.db.names()) == set(minilab.names)

    def test_measured_matches_campaign(self, minilab):
        assert len(minilab.measured) == len(minilab.colocations)
        sizes = [m.spec.size for m in minilab.measured]
        expected = minilab.config.sizes_dict()
        for size, count in expected.items():
            assert sizes.count(size) == count

    def test_split_disjoint_and_complete(self, minilab):
        train_ids = set(minilab.train_colocation_ids.tolist())
        assert len(train_ids) == minilab.config.n_train_colocations
        assert len(minilab.measured_train) == len(train_ids)
        assert len(minilab.measured_train) + len(minilab.measured_test) == len(
            minilab.measured
        )

    def test_dataset_split_leakage_free(self, minilab):
        cm_tr, cm_te, rm_tr, rm_te = minilab.split(60.0)
        assert not set(rm_tr.colocation_ids) & set(rm_te.colocation_ids)
        assert len(rm_tr) + len(rm_te) == sum(c.size for c in minilab.colocations)

    def test_training_subset_deterministic(self, minilab):
        _, _, rm_tr, _ = minilab.split(60.0)
        a = minilab.training_subset(rm_tr, 20, label="t")
        b = minilab.training_subset(rm_tr, 20, label="t")
        assert np.array_equal(a.X, b.X)

    def test_disk_cache_round_trip(self, minilab):
        # A fresh Lab with the same config must reuse the cached profiles
        # and measurements rather than recompute.
        twin = Lab(minilab.config)
        assert twin.db.names() == minilab.db.names()
        first = twin.measured[0]
        assert first.fps == minilab.measured[0].fps

    def test_get_lab_memoized(self):
        config = LabConfig.small()
        assert get_lab(config) is get_lab(config)
