"""Tests for permutation importance."""

import numpy as np
import pytest

from repro.ml import DecisionTreeRegressor, permutation_importance


class TestPermutationImportance:
    @pytest.fixture(scope="class")
    def setup(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(400, 4))
        y = 3.0 * X[:, 1] + 0.1 * rng.normal(size=400)  # only feature 1 matters
        model = DecisionTreeRegressor(max_depth=6).fit(X, y)
        return model, X, y

    def test_identifies_informative_feature(self, setup):
        model, X, y = setup
        imp = permutation_importance(
            model.predict,
            X,
            y,
            metric=lambda a, b: float(np.mean((a - b) ** 2)),
            rng=np.random.default_rng(1),
        )
        assert np.argmax(imp) == 1
        assert imp[1] > 10 * max(abs(imp[0]), abs(imp[2]), abs(imp[3]), 1e-9)

    def test_uninformative_features_near_zero(self, setup):
        model, X, y = setup
        imp = permutation_importance(
            model.predict,
            X,
            y,
            metric=lambda a, b: float(np.mean((a - b) ** 2)),
            rng=np.random.default_rng(2),
        )
        for j in (0, 2, 3):
            assert abs(imp[j]) < 0.1 * imp[1]

    def test_input_not_mutated(self, setup):
        model, X, y = setup
        X_copy = X.copy()
        permutation_importance(
            model.predict,
            X,
            y,
            metric=lambda a, b: float(np.mean((a - b) ** 2)),
            n_repeats=2,
            rng=np.random.default_rng(3),
        )
        assert np.array_equal(X, X_copy)

    def test_invalid_repeats(self, setup):
        model, X, y = setup
        with pytest.raises(ValueError):
            permutation_importance(
                model.predict, X, y, metric=lambda a, b: 0.0, n_repeats=0
            )
