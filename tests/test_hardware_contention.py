"""Tests for contention combinators, including the Observation 5 invariants."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware.contention import (
    ContentionModel,
    aggregate_pressure,
    bandwidth_pressure,
    cache_pressure,
    compute_pressure,
)
from repro.hardware.resources import NUM_RESOURCES, Resource

utils = st.lists(st.floats(0.0, 1.0), min_size=0, max_size=6)


class TestComputePressure:
    def test_empty_is_zero(self):
        assert compute_pressure([]) == 0.0

    def test_single_is_identity(self):
        assert compute_pressure([0.4]) == pytest.approx(0.4)

    def test_subadditive(self):
        assert compute_pressure([0.5, 0.5]) == pytest.approx(0.75)
        assert compute_pressure([0.5, 0.5]) < 1.0

    def test_saturated_corunner(self):
        assert compute_pressure([1.0, 0.3]) == pytest.approx(1.0)

    @given(utils)
    def test_bounded(self, us):
        assert 0.0 <= compute_pressure(us) <= 1.0

    @given(utils, st.floats(0.0, 1.0))
    def test_monotone_in_new_corunner(self, us, extra):
        assert compute_pressure(us + [extra]) >= compute_pressure(us) - 1e-12

    @given(st.lists(st.floats(0.0, 1.0), min_size=2, max_size=5))
    def test_symmetric(self, us):
        assert compute_pressure(us) == pytest.approx(compute_pressure(us[::-1]))


class TestBandwidthPressure:
    def test_additive_below_knee(self):
        assert bandwidth_pressure([0.2, 0.3], knee=0.65) == pytest.approx(0.5)

    def test_superadditive_past_knee(self):
        total = bandwidth_pressure([0.4, 0.4], knee=0.65, overshoot=0.35)
        assert total > 0.8

    def test_caps_at_one(self):
        assert bandwidth_pressure([0.9, 0.9, 0.9]) == 1.0

    @given(utils)
    def test_bounded(self, us):
        assert 0.0 <= bandwidth_pressure(us) <= 1.0

    @given(utils, st.floats(0.0, 1.0))
    def test_monotone(self, us, extra):
        assert bandwidth_pressure(us + [extra]) >= bandwidth_pressure(us) - 1e-12


class TestCachePressure:
    def test_empty_is_zero(self):
        assert cache_pressure([]) == 0.0

    def test_small_footprint_negligible(self):
        assert cache_pressure([0.05]) < 0.05

    def test_cliff_past_knee(self):
        below = cache_pressure([0.3])
        above = cache_pressure([0.3, 0.5])
        assert above > 2 * below

    @given(utils)
    def test_bounded(self, us):
        assert 0.0 <= cache_pressure(us) <= 1.0

    @given(utils, st.floats(0.0, 1.0))
    def test_monotone(self, us, extra):
        assert cache_pressure(us + [extra]) >= cache_pressure(us) - 1e-12


class TestAggregatePressure:
    def test_dispatch_by_kind(self):
        us = [0.5, 0.5]
        assert aggregate_pressure(Resource.CPU_CE, us) == pytest.approx(
            compute_pressure(us)
        )
        assert aggregate_pressure(Resource.MEM_BW, us) == pytest.approx(
            bandwidth_pressure(us)
        )
        assert aggregate_pressure(Resource.LLC, us) == pytest.approx(
            cache_pressure(us)
        )

    def test_rejects_negative_utilization(self):
        with pytest.raises(ValueError):
            aggregate_pressure(Resource.CPU_CE, [-0.1])


class TestObservation5:
    """Aggregate intensity must not equal the sum of individual pressures."""

    def test_compute_not_additive(self):
        single = compute_pressure([0.4])
        assert compute_pressure([0.4, 0.4]) != pytest.approx(2 * single)

    def test_cache_not_additive(self):
        single = cache_pressure([0.3])
        assert cache_pressure([0.3, 0.3]) != pytest.approx(2 * single)


class TestContentionModel:
    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            ContentionModel(cache_knee=0.0)
        with pytest.raises(ValueError):
            ContentionModel(bandwidth_overshoot=-1.0)

    def test_pressure_vector_shape(self):
        model = ContentionModel()
        rows = np.full((3, NUM_RESOURCES), 0.3)
        out = model.pressure_vector(rows)
        assert out.shape == (NUM_RESOURCES,)
        assert np.all((out >= 0) & (out <= 1))

    def test_pressure_vector_empty(self):
        model = ContentionModel()
        assert np.array_equal(
            model.pressure_vector(np.zeros((0, NUM_RESOURCES))),
            np.zeros(NUM_RESOURCES),
        )

    def test_pressure_vector_bad_shape(self):
        with pytest.raises(ValueError, match="shape"):
            ContentionModel().pressure_vector(np.zeros((2, 3)))

    def test_leave_one_out_matches_naive(self):
        model = ContentionModel()
        rng = np.random.default_rng(0)
        rows = rng.uniform(0, 1, size=(5, NUM_RESOURCES))
        fast = model.pressures_leave_one_out(rows)
        for i in range(5):
            naive = model.pressure_vector(np.delete(rows, i, axis=0))
            assert np.allclose(fast[i], naive, atol=1e-12)

    def test_leave_one_out_saturated_corunner(self):
        # Exercises the exact-fallback path when some 1-u == 0.
        model = ContentionModel()
        rows = np.zeros((3, NUM_RESOURCES))
        rows[0, int(Resource.CPU_CE)] = 1.0
        rows[1, int(Resource.CPU_CE)] = 0.5
        out = model.pressures_leave_one_out(rows)
        assert out[1, int(Resource.CPU_CE)] == pytest.approx(1.0)
        assert out[0, int(Resource.CPU_CE)] == pytest.approx(0.5)

    def test_leave_one_out_single_row_zero(self):
        model = ContentionModel()
        rows = np.full((1, NUM_RESOURCES), 0.9)
        assert np.array_equal(
            model.pressures_leave_one_out(rows), np.zeros((1, NUM_RESOURCES))
        )
