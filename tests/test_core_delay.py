"""Tests for processing-delay prediction."""

import numpy as np
import pytest

from repro.core.delay import (
    GAugurDelayRegressor,
    MeasuredDelays,
    build_delay_dataset,
    measure_delay_colocations,
    solo_delay_ms,
)
from repro.core.training import ColocationSpec
from repro.games.resolution import Resolution
from repro.ml import DecisionTreeRegressor

R1080 = Resolution(1920, 1080)


@pytest.fixture(scope="module")
def delay_samples(minilab):
    measured = measure_delay_colocations(
        minilab.catalog, minilab.colocations[:60], server=minilab.server
    )
    return measured, build_delay_dataset(measured, minilab.db)


class TestMeasureDelays:
    def test_alignment(self, delay_samples):
        measured, _ = delay_samples
        for m in measured:
            assert len(m.delays_ms) == m.spec.size
            assert all(d > 0 for d in m.delays_ms)

    def test_misaligned_rejected(self):
        spec = ColocationSpec((("A", R1080), ("B", R1080)))
        with pytest.raises(ValueError):
            MeasuredDelays(spec=spec, delays_ms=(10.0,))


class TestSoloDelay:
    def test_components(self, minilab):
        name = minilab.names[0]
        delay = solo_delay_ms(minilab.db, name, R1080)
        frame = 1000.0 / minilab.db.get(name).solo_fps_at(R1080)
        assert delay > frame

    def test_resolution_increases_delay(self, minilab):
        name = minilab.names[0]
        r720 = Resolution(1280, 720)
        assert solo_delay_ms(minilab.db, name, R1080) >= solo_delay_ms(
            minilab.db, name, r720
        )


class TestDelayDataset:
    def test_labels_are_inflation_ratios(self, delay_samples):
        _, samples = delay_samples
        assert samples.y.min() > 0.8
        assert samples.y.max() < 20.0
        assert np.median(samples.y) > 1.0

    def test_empty_rejected(self, minilab):
        with pytest.raises(ValueError):
            build_delay_dataset([], minilab.db)


class TestDelayRegressor:
    def test_fit_captures_training_structure(self, delay_samples):
        # Generalization quality is asserted at experiment scale in
        # benchmarks/test_extensions.py; the miniature lab only has ~80
        # training samples over 8 deliberately heavy games, so here we pin
        # the fit mechanics: the model explains the training targets far
        # better than their mean.
        _, samples = delay_samples
        train, _ = samples.split_by_colocation(range(0, 40))
        model = GAugurDelayRegressor(
            DecisionTreeRegressor(max_depth=6, min_samples_leaf=2)
        ).fit(train)
        pred = model.predict_from_features(train.X)
        err_model = np.mean(np.abs(pred - train.y) / train.y)
        err_mean = np.mean(np.abs(train.y.mean() - train.y) / train.y)
        assert err_model < 0.5 * err_mean

    def test_predict_delay_ms(self, minilab, delay_samples):
        _, samples = delay_samples
        model = GAugurDelayRegressor(DecisionTreeRegressor(max_depth=6)).fit(samples)
        spec = ColocationSpec(tuple((n, R1080) for n in minilab.names[:3]))
        delays = model.predict_delay_ms(minilab.db, spec)
        assert delays.shape == (3,)
        assert np.all(delays > 0)

    def test_singleton_is_solo_delay(self, minilab, delay_samples):
        _, samples = delay_samples
        model = GAugurDelayRegressor(DecisionTreeRegressor(max_depth=6)).fit(samples)
        name = minilab.names[0]
        spec = ColocationSpec(((name, R1080),))
        assert model.predict_delay_ms(minilab.db, spec)[0] == pytest.approx(
            solo_delay_ms(minilab.db, name, R1080)
        )

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GAugurDelayRegressor().predict_from_features(np.zeros((1, 92)))
