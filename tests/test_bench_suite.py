"""Tests for the pressure microbenchmarks."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bench import BENCHMARK_FACTORIES, PressureBenchmark, make_benchmark
from repro.hardware.resources import NUM_RESOURCES, Resource


class TestPressureBenchmark:
    def test_utilization_has_dial_on_target(self):
        bench = make_benchmark(Resource.GPU_CE, 0.7)
        util = bench.utilization()
        assert util[Resource.GPU_CE] == pytest.approx(0.7)

    def test_spill_proportional_to_dial(self):
        low = make_benchmark(Resource.GPU_BW, 0.2).utilization()
        high = make_benchmark(Resource.GPU_BW, 0.8).utilization()
        assert high[Resource.GPU_L2] == pytest.approx(4 * low[Resource.GPU_L2])

    def test_zero_dial_zero_utilization(self):
        util = make_benchmark(Resource.LLC, 0.0).utilization()
        assert all(v == 0.0 for v in util)

    def test_invalid_pressure_rejected(self):
        with pytest.raises(ValueError):
            make_benchmark(Resource.CPU_CE, 1.5)

    def test_spill_cannot_include_target(self):
        with pytest.raises(ValueError, match="target"):
            PressureBenchmark(
                resource=Resource.LLC, pressure=0.5, spill={Resource.LLC: 0.1}
            )

    def test_with_pressure(self):
        bench = make_benchmark(Resource.MEM_BW, 0.3)
        other = bench.with_pressure(0.9)
        assert other.pressure == 0.9
        assert other.resource == bench.resource
        assert other.spill == bench.spill

    def test_name_includes_resource_and_dial(self):
        assert "GPU-L2" in make_benchmark(Resource.GPU_L2, 0.25).name


class TestSlowdown:
    def test_no_pressure_no_slowdown(self):
        bench = make_benchmark(Resource.CPU_CE, 0.5)
        assert bench.slowdown(np.zeros(NUM_RESOURCES)) == pytest.approx(1.0)

    def test_responds_to_own_resource(self):
        bench = make_benchmark(Resource.GPU_BW, 0.5)
        pressures = np.zeros(NUM_RESOURCES)
        pressures[int(Resource.GPU_BW)] = 0.8
        assert bench.slowdown(pressures) == pytest.approx(
            1.0 + bench.slowdown_gain * 0.8
        )

    def test_weak_cross_response(self):
        bench = make_benchmark(Resource.GPU_BW, 0.5)
        own = np.zeros(NUM_RESOURCES)
        own[int(Resource.GPU_BW)] = 0.5
        cross = np.zeros(NUM_RESOURCES)
        cross[int(Resource.CPU_CE)] = 0.5
        assert bench.slowdown(own) > bench.slowdown(cross) > 1.0

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            make_benchmark(Resource.LLC, 0.5).slowdown(np.zeros(3))

    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    def test_monotone_in_own_pressure(self, p1, p2):
        bench = make_benchmark(Resource.PCIE_BW, 0.5)
        lo, hi = sorted([p1, p2])
        v_lo = np.zeros(NUM_RESOURCES)
        v_hi = np.zeros(NUM_RESOURCES)
        v_lo[int(Resource.PCIE_BW)] = lo
        v_hi[int(Resource.PCIE_BW)] = hi
        assert bench.slowdown(v_lo) <= bench.slowdown(v_hi)


class TestSuite:
    def test_one_benchmark_per_resource(self):
        assert set(BENCHMARK_FACTORIES) == set(Resource)

    def test_each_targets_its_resource(self):
        for res in Resource:
            assert make_benchmark(res, 0.5).resource == res

    def test_gpu_bw_spills_to_cache(self):
        # The paper: no cache-bypassing loads on GPUs, so GPU-BW pressure
        # necessarily pressures GPU caches.
        util = make_benchmark(Resource.GPU_BW, 1.0).utilization()
        assert util[Resource.GPU_L2] > 0.1

    def test_pcie_touches_both_sides(self):
        util = make_benchmark(Resource.PCIE_BW, 1.0).utilization()
        assert util[Resource.MEM_BW] > 0.0
        assert util[Resource.GPU_BW] > 0.0

    def test_spill_stays_small(self):
        # Design principle 2: minimal contention on other resources.
        for res in Resource:
            util = make_benchmark(res, 1.0).utilization().values.copy()
            util[int(res)] = 0.0
            assert util.max() <= 0.3
