"""Tests for the table/series renderers."""

import numpy as np
import pytest

from repro.experiments.tables import cdf_points, format_series, format_table


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(
            ["name", "value"], [["a", 1.5], ["bb", 2.0]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.500" in text and "2.000" in text

    def test_custom_float_format(self):
        text = format_table(["x"], [[1.23456]], float_fmt="{:.1f}")
        assert "1.2" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestFormatSeries:
    def test_series_columns(self):
        text = format_series(
            "n", [1, 2], {"s1": [0.1, 0.2], "s2": [0.3, 0.4]}
        )
        assert "s1" in text and "s2" in text
        assert "0.100" in text and "0.400" in text


class TestCdfPoints:
    def test_quantiles(self):
        q, v = cdf_points(np.arange(101), n_points=11)
        assert q[0] == 0.0 and q[-1] == 1.0
        assert v[0] == 0.0 and v[-1] == 100.0
        assert len(q) == len(v) == 11

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cdf_points([])
