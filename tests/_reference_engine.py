"""The decision engine: the one place policies meet the fleet.

Both frontends — the offline batch-clocked simulator
(:func:`repro.scheduling.dynamic.simulate_sessions`) and the online
event-loop broker (:class:`repro.serving.RequestBroker`) — answer every
arrival through :class:`DecisionEngine`: it dispatches the configured
policy (with counted fallback), validates the returned index, times the
decision against an optional deadline budget, feeds circuit breakers,
emits tracing spans and telemetry, and applies the decision to a
:class:`~repro.placement.fleet.FleetState`.  Offline/online placement
parity is therefore structural: there is no second copy of the dispatch
or mutation logic to drift.

A production dispatcher must never crash on one bad request, so in the
default (serving) configuration *any* exception during placement
evaluation — a game missing from the profile database
(:class:`repro.core.MissingProfileError`), an unfitted model raising
``RuntimeError``, a numerical failure, an injected chaos fault — is
counted and absorbed: the decision falls back to the conservative policy
(VBP worst-fit by default), and if that also fails, to opening a
dedicated server.  A policy returning an out-of-range server index is
treated exactly like a policy that raised (``invalid_choices`` counter),
so a buggy return value can never corrupt the fleet bookkeeping
downstream.  The offline frontend instead runs with ``strict=True``,
where a policy error propagates to the caller — a simulation with a
broken policy should fail loudly, not consolidate conservatively.

Beyond per-decision fallback, the engine runs an explicit degraded-mode
state machine when given a :class:`BreakerConfig`:

- **NORMAL** — the primary policy answers (its circuit breaker is
  CLOSED).
- **DEGRADED** — sustained primary failures (error rate or decision
  deadline overruns over a sliding window) tripped the primary breaker;
  arrivals are served by the fallback policy without consulting the
  primary.  After a cooldown the breaker half-opens and probes the
  primary; enough successful probes recover to NORMAL.
- **CONSERVATIVE** — the fallback's breaker tripped too (or there is no
  fallback); every arrival opens a dedicated server until a probe window
  recovers a policy.

Every decision is timed into a fixed-bucket latency histogram; when a
``decision_deadline_s`` budget is set, overruns are counted and fed to
the breaker as failures — a policy that answers correctly but too slowly
is still a policy you stop asking.
"""

from __future__ import annotations

import operator
import time
from dataclasses import dataclass
from enum import Enum

from repro.obs.metrics import Telemetry
from repro.obs.tracing import NOOP_TRACER, Tracer
from repro.placement.breaker import BreakerConfig, BreakerState, CircuitBreaker
from repro.placement.fleet import FleetState
from repro.placement.policies import AdmissionPolicy, Signature

__all__ = ["AdmissionDecision", "PlacementOutcome", "DecisionEngine", "Mode"]


class Mode(Enum):
    """Health modes of the admission path (see module docstring)."""

    NORMAL = "normal"
    DEGRADED = "degraded"
    CONSERVATIVE = "conservative"


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one placement evaluation.

    ``server`` is the index into the candidate-signature list (``None``
    opens a new server), ``policy`` names the policy whose answer was
    used, and ``fallback`` flags that the primary policy's answer was not
    (the primary failed, answered out of range, or was skipped by the
    breaker).
    """

    server: int | None
    policy: str
    fallback: bool


@dataclass(frozen=True)
class PlacementOutcome:
    """Outcome of one decision *applied* to a fleet.

    ``choice`` is the policy's index into the open-server list presented
    at decision time (``None`` = new server) — directly comparable
    across frontends; ``server_id`` is the stable id of the server that
    ended up hosting the session.
    """

    choice: int | None
    server_id: int
    policy: str
    fallback: bool


class DecisionEngine:
    """Evaluates placements through a primary policy and mutates the fleet.

    ``strict=True`` (the offline frontend) disables the absorb-and-
    degrade machinery: a policy exception propagates and an out-of-range
    index raises ``IndexError`` instead of being converted into a
    fallback decision.
    """

    def __init__(
        self,
        policy: AdmissionPolicy,
        *,
        fallback: AdmissionPolicy | None = None,
        telemetry: Telemetry | None = None,
        breaker: BreakerConfig | None = None,
        decision_deadline_s: float | None = None,
        tracer: Tracer | None = None,
        strict: bool = False,
    ):
        if decision_deadline_s is not None and decision_deadline_s <= 0:
            raise ValueError("decision_deadline_s must be positive")
        self.policy = policy
        self.fallback = fallback
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.decision_deadline_s = decision_deadline_s
        self.strict = bool(strict)
        self.mode = Mode.NORMAL
        self.mode_transitions: list[dict] = []
        self._primary_breaker: CircuitBreaker | None = None
        self._fallback_breaker: CircuitBreaker | None = None
        if breaker is not None:
            self._primary_breaker = CircuitBreaker(
                breaker, name="primary", on_transition=self._breaker_event("primary")
            )
            if fallback is not None:
                self._fallback_breaker = CircuitBreaker(
                    breaker,
                    name="fallback",
                    on_transition=self._breaker_event("fallback"),
                )
        self._instrument_members()

    def _instrument_members(self) -> None:
        # Flow the shared telemetry/tracer into the policies (and through
        # them into the predictor) so one request yields one trace.
        for member in (self.policy, self.fallback):
            instrument = getattr(member, "instrument", None)
            if callable(instrument):
                instrument(telemetry=self.telemetry, tracer=self.tracer)

    def set_tracer(self, tracer: Tracer) -> None:
        """Swap the tracer, re-instrumenting policies and predictor."""
        self.tracer = tracer
        self._instrument_members()

    def _breaker_event(self, which: str):
        def emit(change: dict) -> None:
            self.telemetry.event("breaker_transition", breaker=which, **change)
            self.tracer.instant("breaker_transition", breaker=which, **change)

        return emit

    # ------------------------------------------------------------------

    def _attempt(
        self, policy: AdmissionPolicy, signatures: list[Signature], session, *,
        is_fallback: bool,
    ) -> tuple[bool, int | None]:
        """Run one policy, validating its answer.  Returns (ok, choice)."""
        error_counter = "fallback_errors" if is_fallback else "policy_errors"
        span = self.tracer.span(
            "policy", policy=policy.name, fallback=is_fallback
        )
        try:
            with span:
                choice = policy.select(signatures, session)
        except Exception:
            if self.strict:
                raise
            self.telemetry.counter(error_counter).inc()
            return False, None
        if choice is None:
            return True, None
        try:
            index = operator.index(choice)
        except TypeError:
            index = -1
        if not 0 <= index < len(signatures):
            # A buggy policy return value is a policy error, not a crash
            # in the fleet bookkeeping downstream.
            if self.strict:
                raise IndexError(
                    f"policy {policy.name!r} returned server index {choice!r} "
                    f"for a pool of {len(signatures)} servers"
                )
            self.telemetry.counter("invalid_choices").inc()
            self.telemetry.counter(error_counter).inc()
            return False, None
        return True, index

    def decide(self, signatures: list[Signature], session) -> AdmissionDecision:
        """Place ``session`` against the open-server ``signatures``.

        Never raises (unless ``strict``): policy failures (exceptions,
        invalid indices, deadline overruns) are absorbed into the
        fallback chain (primary -> fallback -> dedicated) and surfaced as
        the ``policy_errors`` / ``fallbacks`` / ``fallback_errors`` /
        ``invalid_choices`` / ``deadline_overruns`` counters.
        """
        t = self.telemetry
        t.counter("requests").inc()
        span = self.tracer.span(
            "admission",
            game=getattr(session, "game", None),
            candidates=len(signatures),
        )
        with span:
            start = time.perf_counter()
            choice: int | None = None
            policy_used = "dedicated"
            used_fallback = False
            primary_ok: bool | None = None  # None = primary not consulted
            fallback_ok: bool | None = None

            primary_allowed = (
                self._primary_breaker.allow() if self._primary_breaker else True
            )
            if primary_allowed:
                primary_ok, choice = self._attempt(
                    self.policy, signatures, session, is_fallback=False
                )
                if primary_ok:
                    policy_used = self.policy.name
            else:
                t.counter("degraded_decisions").inc()

            if not (primary_allowed and primary_ok):
                used_fallback = True
                t.counter("fallbacks").inc()
                choice = None
                fallback_allowed = self.fallback is not None and (
                    self._fallback_breaker.allow() if self._fallback_breaker else True
                )
                if fallback_allowed:
                    fallback_ok, choice = self._attempt(
                        self.fallback, signatures, session, is_fallback=True
                    )
                    if fallback_ok:
                        policy_used = self.fallback.name
                    else:
                        choice = None
                elif self.fallback is not None:
                    t.counter("conservative_decisions").inc()

            elapsed = time.perf_counter() - start
            overrun = (
                self.decision_deadline_s is not None
                and elapsed > self.decision_deadline_s
            )
            if overrun:
                t.counter("deadline_overruns").inc()
            if self._primary_breaker is not None and primary_ok is not None:
                self._primary_breaker.record(primary_ok and not overrun)
            if self._fallback_breaker is not None and fallback_ok is not None:
                self._fallback_breaker.record(fallback_ok and not overrun)
            t.histogram("decision_latency_s").observe(elapsed)
            t.counter("admissions" if choice is not None else "servers_opened").inc()
            self._update_mode()
            t.counter("decisions", policy=policy_used, mode=self.mode.value).inc()
            span.set(
                policy=policy_used,
                fallback=used_fallback,
                choice=choice,
                mode=self.mode.value,
            )
        return AdmissionDecision(
            server=choice, policy=policy_used, fallback=used_fallback
        )

    def admit(self, fleet: FleetState, session) -> PlacementOutcome:
        """Decide against ``fleet``'s current pool and apply the placement.

        The one mutation path shared by every frontend: the decision is
        evaluated against :meth:`FleetState.signatures` and immediately
        applied with :meth:`FleetState.place`, so the index a policy
        returned can never be re-interpreted against a stale pool.
        The fleet maintains those signatures incrementally under
        mutation, so presenting the pool here is a pool-order list copy
        rather than a per-server canonicalization on every arrival.
        """
        decision = self.decide(fleet.signatures(), session)
        server_id = fleet.place(decision.server, session)
        return PlacementOutcome(
            choice=decision.server,
            server_id=server_id,
            policy=decision.policy,
            fallback=decision.fallback,
        )

    # ------------------------------------------------------------------

    def _update_mode(self) -> None:
        """Re-derive the health mode from the breaker states, logging changes."""
        if self._primary_breaker is None:
            return
        if self._primary_breaker.state is BreakerState.CLOSED:
            mode = Mode.NORMAL
        elif self.fallback is not None and (
            self._fallback_breaker is None
            or self._fallback_breaker.state is BreakerState.CLOSED
            or self._fallback_breaker.state is BreakerState.HALF_OPEN
        ):
            mode = Mode.DEGRADED
        else:
            mode = Mode.CONSERVATIVE
        if mode is not self.mode:
            change = {
                "decision": self.telemetry.counter("requests").value,
                "from": self.mode.value,
                "to": mode.value,
            }
            self.mode_transitions.append(change)
            self.telemetry.counter("mode_transitions").inc()
            self.telemetry.event("mode_transition", **change)
            self.tracer.instant("mode_transition", **change)
            self.mode = mode
        self.telemetry.gauge("mode_level").set(
            {"normal": 0, "degraded": 1, "conservative": 2}[mode.value]
        )

    def resilience_snapshot(self) -> dict:
        """JSON-able resilience state: mode, transitions, breakers, budget."""
        breakers = {}
        trips = recoveries = 0
        for breaker in (self._primary_breaker, self._fallback_breaker):
            if breaker is not None:
                breakers[breaker.name] = breaker.to_dict()
                trips += breaker.trips
                recoveries += breaker.recoveries
        return {
            "enabled": self._primary_breaker is not None,
            "mode": self.mode.value,
            "mode_transitions": list(self.mode_transitions),
            "decision_deadline_s": self.decision_deadline_s,
            "trips": trips,
            "recoveries": recoveries,
            "breakers": breakers,
        }

    def caches(self) -> dict[str, object]:
        """Prediction caches attached to the policies, keyed by policy name.

        Duck-typed on ``stats()`` so fault-injection cache wrappers
        (:class:`repro.serving.faults.FaultyCache`) are reported too.
        """
        out: dict[str, object] = {}
        for policy in (self.policy, self.fallback):
            cache = getattr(policy, "cache", None)
            if cache is not None and callable(getattr(cache, "stats", None)):
                out[policy.name] = cache
        return out
